#include "bench/bench_util.h"

#include <cstdio>

#include "exp/report.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::bench {

FigureBenchConfig MakeFigureBenchConfig() {
  FigureBenchConfig config{tpch::MakeTpchCatalog(100.0), {}, {}, false};
  config.quick = exp::QuickMode();
  if (config.quick) {
    for (int qn : exp::QuickQueryNumbers()) {
      config.queries.push_back(tpch::MakeTpchQuery(config.catalog, qn));
    }
    config.options.deltas = {2, 10, 100, 1000};
    config.options.discovery.random_samples = 16;
    config.options.discovery.sampled_vertices = 48;
    config.options.discovery.bisection_depth = 3;
    config.options.discovery.completeness_rounds = 1;
  } else {
    config.queries = tpch::MakeTpchQueries(config.catalog);
    config.options.deltas = {2, 5, 10, 100, 1000, 10000};
  }
  return config;
}

std::vector<exp::FigureSeries> RunWorstCaseFigure(
    const std::string& title, storage::LayoutPolicy policy) {
  const FigureBenchConfig config = MakeFigureBenchConfig();
  const exp::FigureRunner runner(config.catalog, config.options);

  std::vector<exp::FigureSeries> all;
  for (const query::Query& q : config.queries) {
    const Result<exp::QueryAnalysis> analysis = runner.Analyze(q, policy);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: analysis failed: %s\n", q.name.c_str(),
                   analysis.status().ToString().c_str());
      continue;
    }
    const Result<exp::FigureSeries> series = runner.GtcSeries(*analysis);
    if (!series.ok()) {
      std::fprintf(stderr, "%s: series failed: %s\n", q.name.c_str(),
                   series.status().ToString().c_str());
      continue;
    }
    std::fprintf(stderr,
                 "%-4s dims=%-2zu plans=%-3zu calls=%-5zu complete=%d\n",
                 q.name.c_str(), analysis->dims,
                 analysis->candidate_plans.size(), analysis->oracle_calls,
                 analysis->discovery_complete ? 1 : 0);
    all.push_back(*series);
  }
  std::fputs(exp::RenderFigureTable(title, all).c_str(), stdout);
  std::fputs("\nCSV:\n", stdout);
  std::fputs(exp::RenderFigureCsv(all).c_str(), stdout);
  return all;
}

}  // namespace costsense::bench
