#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "exp/report.h"
#include "runtime/thread_pool.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::bench {

FigureBenchConfig MakeFigureBenchConfig() {
  FigureBenchConfig config{tpch::MakeTpchCatalog(100.0), {}, {}, false};
  config.quick = exp::QuickMode();
  if (config.quick) {
    for (int qn : exp::QuickQueryNumbers()) {
      config.queries.push_back(tpch::MakeTpchQuery(config.catalog, qn));
    }
    config.options.deltas = {2, 10, 100, 1000};
    config.options.discovery.random_samples = 16;
    config.options.discovery.sampled_vertices = 48;
    config.options.discovery.bisection_depth = 3;
    config.options.discovery.completeness_rounds = 1;
  } else {
    config.queries = tpch::MakeTpchQueries(config.catalog);
    config.options.deltas = {2, 5, 10, 100, 1000, 10000};
  }
  return config;
}

void EmitBenchJson(const std::string& bench_name,
                   const runtime::RuntimeMetrics& metrics,
                   const std::vector<std::pair<std::string, double>>& extra) {
  const std::string line = metrics.ToJsonLine(bench_name, extra);
  std::fputs(line.c_str(), stderr);
  const char* path = std::getenv("COSTSENSE_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fputs(line.c_str(), f);
      std::fclose(f);
    }
  }
}

std::vector<exp::FigureSeries> RunWorstCaseFigure(
    const std::string& title, const std::string& bench_name,
    storage::LayoutPolicy policy,
    const exp::FigureRunner::Options::Resilience* resilience) {
  FigureBenchConfig config = MakeFigureBenchConfig();
  if (resilience != nullptr) config.options.resilience = *resilience;
  const exp::FigureRunner runner(config.catalog, config.options);
  runtime::ThreadPool& pool = runtime::ThreadPool::Global();

  runtime::RuntimeMetrics metrics;
  metrics.threads = pool.num_threads();

  // Phase 1 — analysis: every query discovers its candidate plans
  // concurrently (and each discovery fans out further over the same pool).
  runtime::WallTimer timer;
  const std::vector<Result<exp::QueryAnalysis>> analyses =
      runner.AnalyzeMany(config.queries, policy);
  metrics.phase_wall_ms.emplace_back("analyze", timer.ElapsedMs());

  // Phase 2 — series: pure geometry (per-rival fractional programs).
  timer.Restart();
  size_t oracle_calls = 0;
  size_t probe_calls = 0;
  std::vector<exp::FigureSeries> all;
  for (size_t i = 0; i < analyses.size(); ++i) {
    const query::Query& q = config.queries[i];
    const Result<exp::QueryAnalysis>& analysis = analyses[i];
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: analysis failed: %s\n", q.name.c_str(),
                   analysis.status().ToString().c_str());
      continue;
    }
    const Result<exp::FigureSeries> series = runner.GtcSeries(*analysis);
    if (!series.ok()) {
      std::fprintf(stderr, "%s: series failed: %s\n", q.name.c_str(),
                   series.status().ToString().c_str());
      continue;
    }
    std::fprintf(
        stderr,
        "%-4s dims=%-2zu plans=%-3zu calls=%-5zu hits=%-4zu complete=%d\n",
        q.name.c_str(), analysis->dims, analysis->candidate_plans.size(),
        analysis->oracle_calls, analysis->cache_hits,
        analysis->discovery_complete ? 1 : 0);
    oracle_calls += analysis->oracle_calls;
    metrics.cache_hits += analysis->cache_hits;
    metrics.cache_misses += analysis->cache_misses;
    probe_calls += analysis->oracle_probe_calls;
    metrics.oracle_attempts += analysis->oracle_attempts;
    metrics.oracle_retries += analysis->oracle_retries;
    metrics.oracle_failures += analysis->oracle_failures;
    metrics.faults_injected += analysis->faults_injected;
    metrics.degraded_points += analysis->degraded_points;
    all.push_back(*series);
  }
  metrics.phase_wall_ms.emplace_back("series", timer.ElapsedMs());
  if (probe_calls > 0) {
    metrics.coverage = static_cast<double>(probe_calls -
                                           metrics.oracle_failures) /
                       static_cast<double>(probe_calls);
  }

  const runtime::PoolStats pool_stats = pool.stats();
  metrics.tasks_run = pool_stats.tasks_run;
  metrics.queue_high_water = pool_stats.queue_high_water;

  // Figure output on stdout only: byte-identical for every thread count.
  std::fputs(exp::RenderFigureTable(title, all).c_str(), stdout);
  std::fputs("\nCSV:\n", stdout);
  std::fputs(exp::RenderFigureCsv(all).c_str(), stdout);

  std::fputs(metrics.Render().c_str(), stderr);
  EmitBenchJson(bench_name, metrics,
                {{"queries", static_cast<double>(all.size())},
                 {"oracle_calls", static_cast<double>(oracle_calls)},
                 {"quick", config.quick ? 1.0 : 0.0}});
  return all;
}

}  // namespace costsense::bench
