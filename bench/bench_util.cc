#include "bench/bench_util.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "exp/report.h"
#include "runtime/cache_store.h"
#include "runtime/thread_pool.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::bench {

FigureBenchConfig MakeFigureBenchConfig(const engine::EngineConfig& config) {
  FigureBenchConfig bench{tpch::MakeTpchCatalog(100.0), {}, {}, config.quick};
  bench.options.cache = config.cache;
  if (bench.quick) {
    for (int qn : exp::QuickQueryNumbers()) {
      bench.queries.push_back(tpch::MakeTpchQuery(bench.catalog, qn));
    }
    bench.options.deltas = {2, 10, 100, 1000};
    bench.options.discovery.random_samples = 16;
    bench.options.discovery.sampled_vertices = 48;
    bench.options.discovery.bisection_depth = 3;
    bench.options.discovery.completeness_rounds = 1;
  } else {
    bench.queries = tpch::MakeTpchQueries(bench.catalog);
    bench.options.deltas = {2, 5, 10, 100, 1000, 10000};
  }
  return bench;
}

void EmitBenchJson(const engine::EngineConfig& config,
                   const std::string& bench_name,
                   const runtime::RuntimeMetrics& metrics,
                   const std::vector<std::pair<std::string, double>>& extra) {
  const std::string line = metrics.ToJsonLine(bench_name, extra);
  std::fputs(line.c_str(), stderr);
  if (!config.bench_json_path.empty()) {
    std::FILE* f = std::fopen(config.bench_json_path.c_str(), "a");
    if (f != nullptr) {
      std::fputs(line.c_str(), f);
      std::fclose(f);
    }
  }
}

std::vector<exp::FigureSeries> RunWorstCaseFigure(
    engine::Engine& eng, const std::string& title,
    const std::string& bench_name, storage::LayoutPolicy policy,
    const exp::FigureRunner::Options::Resilience* resilience) {
  FigureBenchConfig config = MakeFigureBenchConfig(eng.config());
  if (resilience != nullptr) config.options.resilience = *resilience;

  // Optional persisted oracle cache: load the snapshot (or cold-start on
  // corruption/mismatch, with typed telemetry), warm every per-query
  // stack, and save the merged warmth back on the way out. Warm or cold,
  // figure stdout is byte-identical — only the counters move.
  std::unique_ptr<runtime::CacheStore> store;
  if (!eng.config().cache_path.empty()) {
    runtime::CacheStoreOptions store_options;
    store_options.path = eng.config().cache_path;
    store_options.catalog_hash = config.catalog.Fingerprint();
    store_options.mantissa_bits = config.options.cache.mantissa_bits;
    store = std::make_unique<runtime::CacheStore>(std::move(store_options));
    config.options.store = store.get();
  }

  const exp::FigureRunner runner(config.catalog, config.options);
  runtime::ThreadPool& pool = eng.pool();

  runtime::RuntimeMetrics metrics;
  metrics.threads = pool.num_threads();

  // Phase 1 — analysis: every query discovers its candidate plans
  // concurrently (and each discovery fans out further over the same pool).
  runtime::WallTimer timer;
  const std::vector<Result<exp::QueryAnalysis>> analyses =
      runner.AnalyzeMany(config.queries, policy);
  metrics.phase_wall_ms.emplace_back("analyze", timer.ElapsedMs());

  // Phase 2 — series: pure geometry (per-rival fractional programs).
  timer.Restart();
  size_t oracle_calls = 0;
  size_t probe_calls = 0;
  size_t cache_imported = 0;
  std::vector<exp::FigureSeries> all;
  for (size_t i = 0; i < analyses.size(); ++i) {
    const query::Query& q = config.queries[i];
    const Result<exp::QueryAnalysis>& analysis = analyses[i];
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: analysis failed: %s\n", q.name.c_str(),
                   analysis.status().ToString().c_str());
      continue;
    }
    const Result<exp::FigureSeries> series = runner.GtcSeries(*analysis);
    if (!series.ok()) {
      std::fprintf(stderr, "%s: series failed: %s\n", q.name.c_str(),
                   series.status().ToString().c_str());
      continue;
    }
    std::fprintf(
        stderr,
        "%-4s dims=%-2zu plans=%-3zu calls=%-5zu hits=%-4zu complete=%d\n",
        q.name.c_str(), analysis->dims, analysis->candidate_plans.size(),
        analysis->oracle_calls, analysis->cache_hits,
        analysis->discovery_complete ? 1 : 0);
    oracle_calls += analysis->oracle_calls;
    metrics.cache_hits += analysis->cache_hits;
    metrics.cache_misses += analysis->cache_misses;
    cache_imported += analysis->cache_imported;
    probe_calls += analysis->oracle_probe_calls;
    metrics.oracle_attempts += analysis->oracle_attempts;
    metrics.oracle_retries += analysis->oracle_retries;
    metrics.oracle_failures += analysis->oracle_failures;
    metrics.faults_injected += analysis->faults_injected;
    metrics.degraded_points += analysis->degraded_points;
    all.push_back(*series);
  }
  metrics.phase_wall_ms.emplace_back("series", timer.ElapsedMs());
  if (probe_calls > 0) {
    metrics.coverage = static_cast<double>(probe_calls -
                                           metrics.oracle_failures) /
                       static_cast<double>(probe_calls);
  }

  const runtime::PoolStats pool_stats = pool.stats();
  metrics.tasks_run = pool_stats.tasks_run;
  metrics.queue_high_water = pool_stats.queue_high_water;

  // Figure output through the configured sinks: the text sink keeps
  // stdout byte-identical for every thread count, the JSON sidecar (when
  // configured) captures the same series structured.
  std::unique_ptr<engine::ArtifactWriter> writer = eng.MakeArtifactWriter();
  writer->WriteFigure(title, all);
  std::vector<std::pair<std::string, double>> extra = {
      {"queries", static_cast<double>(all.size())},
      {"oracle_calls", static_cast<double>(oracle_calls)},
      {"quick", config.quick ? 1.0 : 0.0}};
  if (store != nullptr) {
    // Persist the merged warmth before reporting, so the telemetry line
    // reflects what actually reached disk.
    const Status saved = store->Save();
    if (!saved.ok()) {
      std::fprintf(stderr, "%s: cache store save: %s\n", bench_name.c_str(),
                   saved.ToString().c_str());
    }
    const runtime::CacheStoreTelemetry t = store->telemetry();
    std::fprintf(stderr,
                 "cache-store: loaded=%zu imported=%zu saved=%zu "
                 "rejected(crc=%zu truncated=%zu version=%zu catalog=%zu "
                 "quantization=%zu)\n",
                 t.loaded, cache_imported, t.saved, t.rejected_crc,
                 t.rejected_truncated, t.rejected_version, t.rejected_catalog,
                 t.rejected_quantization);
    extra.emplace_back("cache_imported", static_cast<double>(cache_imported));
    extra.emplace_back("store_loaded", static_cast<double>(t.loaded));
    extra.emplace_back("store_saved", static_cast<double>(t.saved));
    extra.emplace_back("store_rejected", t.rejected() ? 1.0 : 0.0);
  }
  writer->WriteRunMetrics(bench_name, metrics, extra);
  const Status finish = writer->Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "%s: artifact sink: %s\n", bench_name.c_str(),
                 finish.ToString().c_str());
  }
  return all;
}

int RunBenchMain(int argc, char** argv, const std::string& name,
                 const std::function<int(engine::Engine&, int, char**)>& body) {
  Result<engine::EngineConfig> config = engine::EngineConfig::FromEnv();
  if (!config.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 config.status().ToString().c_str());
    return 2;
  }
  std::vector<char*> passthrough;
  passthrough.push_back(argc > 0 ? argv[0] : nullptr);
  for (int i = 1; i < argc; ++i) {
    if (engine::EngineConfig::IsOverride(argv[i])) {
      const Status applied = config->ApplyOverride(argv[i]);
      if (!applied.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     applied.ToString().c_str());
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  Result<engine::Engine> eng = engine::Engine::Create(std::move(*config));
  if (!eng.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 eng.status().ToString().c_str());
    return 2;
  }

  runtime::WallTimer timer;
  const int rc =
      body(*eng, static_cast<int>(passthrough.size()), passthrough.data());

  // The uniform footprint line: every binary reports wall time, thread
  // count, mode and exit code machine-readably, even the ones with
  // bespoke stdout. Richer per-figure lines (cache/resilience counters)
  // are emitted separately by RunWorstCaseFigure and friends.
  runtime::RuntimeMetrics metrics;
  metrics.threads = runtime::GlobalThreadCount();
  metrics.phase_wall_ms.emplace_back("main", timer.ElapsedMs());
  EmitBenchJson(eng->config(), name, metrics,
                {{"quick", eng->config().quick ? 1.0 : 0.0},
                 {"exit_code", static_cast<double>(rc)}});
  return rc;
}

}  // namespace costsense::bench
