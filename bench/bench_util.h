#ifndef COSTSENSE_BENCH_BENCH_UTIL_H_
#define COSTSENSE_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "exp/figure_runner.h"
#include "query/query.h"
#include "runtime/metrics.h"
#include "storage/layout.h"

namespace costsense::bench {

/// Shared setup for the figure/table reproduction binaries: the SF-100
/// TPC-H catalog (the paper's database), the query list (all 22, or the
/// highlighted subset when the engine config says quick), and
/// FigureRunner options scaled to the mode.
struct FigureBenchConfig {
  catalog::Catalog catalog;
  std::vector<query::Query> queries;
  exp::FigureRunner::Options options;
  bool quick = false;
};

FigureBenchConfig MakeFigureBenchConfig(const engine::EngineConfig& config);

/// Emits one machine-readable JSON line for a bench run: always to
/// stderr, and appended to config.bench_json_path when non-empty (e.g.
/// BENCH_fig6.json), so successive PRs can track the perf trajectory.
/// `extra` adds numeric fields.
void EmitBenchJson(
    const engine::EngineConfig& config, const std::string& bench_name,
    const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra = {});

/// Runs one full worst-case figure (paper Figures 5/6/7 depending on
/// `policy`): per-query candidate-plan discovery and the GTC-vs-delta
/// curve, fanned out over the process-global thread pool (sized by the
/// engine config; 1 recovers the serial path, with byte-identical
/// stdout). Output goes through the engine's artifact sinks: table and
/// CSV on stdout, progress/metrics/perf-JSON on stderr, plus the
/// structured JSON sidecar when configured. Returns the computed series
/// for further use.
///
/// When `resilience` is non-null the per-query oracle stacks run behind
/// the fault-injection + retry tier with that configuration; the
/// aggregated attempt/retry/failure/degraded counters land in the emitted
/// RuntimeMetrics. With fault bursts the retry budget absorbs, stdout is
/// byte-identical to a fault-free run — the fault-sweep harness asserts
/// exactly that.
std::vector<exp::FigureSeries> RunWorstCaseFigure(
    engine::Engine& eng, const std::string& title,
    const std::string& bench_name, storage::LayoutPolicy policy,
    const exp::FigureRunner::Options::Resilience* resilience = nullptr);

/// The one main() behind every bench binary. Reads the engine config from
/// the environment, applies any key=value overrides from argv (overrides
/// win; see EngineConfig::ApplyOverride), creates the Engine (sizing the
/// global pool, installing the sweep kernel) and runs `body` with the
/// remaining pass-through arguments (argv[0] plus everything that was not
/// a recognized override — google-benchmark flags flow through
/// untouched). A malformed config or override prints the typed error to
/// stderr and exits 2 without running the bench.
///
/// After the body returns, one uniform perf-JSON line is emitted (stderr
/// + config.bench_json_path) carrying the total wall time, thread count,
/// quick flag, and the body's exit code — so every binary, including the
/// ones with bespoke output, reports a machine-readable footprint.
int RunBenchMain(int argc, char** argv, const std::string& name,
                 const std::function<int(engine::Engine&, int, char**)>& body);

}  // namespace costsense::bench

#endif  // COSTSENSE_BENCH_BENCH_UTIL_H_
