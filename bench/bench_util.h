#ifndef COSTSENSE_BENCH_BENCH_UTIL_H_
#define COSTSENSE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exp/figure_runner.h"
#include "query/query.h"
#include "runtime/metrics.h"
#include "storage/layout.h"

namespace costsense::bench {

/// Shared setup for the figure/table reproduction binaries: the SF-100
/// TPC-H catalog (the paper's database), the query list (all 22, or the
/// highlighted subset under COSTSENSE_QUICK=1), and FigureRunner options
/// scaled to the mode.
struct FigureBenchConfig {
  catalog::Catalog catalog;
  std::vector<query::Query> queries;
  exp::FigureRunner::Options options;
  bool quick = false;
};

FigureBenchConfig MakeFigureBenchConfig();

/// Emits one machine-readable JSON line for a bench run: always to
/// stderr, and appended to the file named by the COSTSENSE_BENCH_JSON
/// environment variable when set (e.g. BENCH_fig6.json), so successive
/// PRs can track the perf trajectory. `extra` adds numeric fields.
void EmitBenchJson(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra = {});

/// Runs one full worst-case figure (paper Figures 5/6/7 depending on
/// `policy`): per-query candidate-plan discovery and the GTC-vs-delta
/// curve, fanned out over the process-global thread pool (COSTSENSE_THREADS;
/// 1 recovers the serial path, with byte-identical stdout). The table and
/// CSV go to stdout; progress, runtime metrics and the JSON perf line go
/// to stderr. Returns the computed series for further use.
///
/// When `resilience` is non-null the per-query oracle stacks run behind
/// the fault-injection + retry tier with that configuration; the
/// aggregated attempt/retry/failure/degraded counters land in the emitted
/// RuntimeMetrics. With fault bursts the retry budget absorbs, stdout is
/// byte-identical to a fault-free run — the fault-sweep harness asserts
/// exactly that.
std::vector<exp::FigureSeries> RunWorstCaseFigure(
    const std::string& title, const std::string& bench_name,
    storage::LayoutPolicy policy,
    const exp::FigureRunner::Options::Resilience* resilience = nullptr);

}  // namespace costsense::bench

#endif  // COSTSENSE_BENCH_BENCH_UTIL_H_
