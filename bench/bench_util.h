#ifndef COSTSENSE_BENCH_BENCH_UTIL_H_
#define COSTSENSE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exp/figure_runner.h"
#include "query/query.h"
#include "storage/layout.h"

namespace costsense::bench {

/// Shared setup for the figure/table reproduction binaries: the SF-100
/// TPC-H catalog (the paper's database), the query list (all 22, or the
/// highlighted subset under COSTSENSE_QUICK=1), and FigureRunner options
/// scaled to the mode.
struct FigureBenchConfig {
  catalog::Catalog catalog;
  std::vector<query::Query> queries;
  exp::FigureRunner::Options options;
  bool quick = false;
};

FigureBenchConfig MakeFigureBenchConfig();

/// Runs one full worst-case figure (paper Figures 5/6/7 depending on
/// `policy`): per-query candidate-plan discovery and the GTC-vs-delta
/// curve, printed as a table on stdout (and progress on stderr).
/// Returns the computed series for further use.
std::vector<exp::FigureSeries> RunWorstCaseFigure(
    const std::string& title, storage::LayoutPolicy policy);

}  // namespace costsense::bench

#endif  // COSTSENSE_BENCH_BENCH_UTIL_H_
