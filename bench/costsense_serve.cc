// costsense-serve: the long-lived multi-tenant sensitivity-analysis
// server. Listens on a Unix-domain socket (COSTSENSE_SERVE_SOCKET /
// serve_socket=...), runs each accepted session on its own thread, and
// multiplexes requests onto the process-global thread pool behind bounded
// admission (serve_inflight / serve_queue) — saturated load comes back as
// typed kUnavailable responses, never hangs. All sessions share the warm
// per-(query, policy) oracle caches.
//
// Usage:
//   costsense_serve [quick=1 threads=N serve_socket=PATH serve_inflight=K
//                    serve_queue=Q serve_deadline_ms=MS cache_path=FILE
//                    serve_stats_interval_ms=MS serve_idle_timeout_ms=MS
//                    serve_drain_timeout_ms=MS ...]
//                   [--max-sessions=N] [--drain-timeout-ms=MS]
//
// --max-sessions=N exits after N sessions finish (benches and tests use
// this for a drivable shutdown; 0 = serve until the socket is torn down).
// --drain-timeout-ms=MS bounds shutdown against a wedged session (same
// knob as serve_drain_timeout_ms; the flag wins). With cache_path set the
// server loads the oracle-cache snapshot at startup (cold on corruption or
// catalog mismatch, with typed telemetry) and persists it on clean
// shutdown; with serve_stats_interval_ms set it writes periodic stats
// snapshots through the artifact sinks while serving, not only at
// shutdown, and reaps idle sessions on the same cadence.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/artifact.h"
#include "runtime/metrics.h"
#include "serve/server.h"
#include "serve/snapshotter.h"
#include "serve/transport.h"

namespace costsense::bench {
namespace {

int ServeMain(engine::Engine& eng, int argc, char** argv) {
  size_t max_sessions = 0;
  size_t drain_timeout_ms_flag = 0;
  bool drain_flag_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string sessions_prefix = "--max-sessions=";
    const std::string drain_prefix = "--drain-timeout-ms=";
    if (arg.rfind(sessions_prefix, 0) == 0) {
      max_sessions =
          static_cast<size_t>(std::atol(arg.c_str() + sessions_prefix.size()));
    } else if (arg.rfind(drain_prefix, 0) == 0) {
      drain_timeout_ms_flag =
          static_cast<size_t>(std::atol(arg.c_str() + drain_prefix.size()));
      drain_flag_set = true;
    } else {
      std::fprintf(stderr, "costsense-serve: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  const engine::EngineConfig& config = eng.config();
  serve::ServerOptions options;
  options.max_inflight = config.serve_inflight;
  options.max_queued = config.serve_queue;
  options.dispatcher.cache = config.cache;
  options.dispatcher.max_retries = config.max_retries;
  options.dispatcher.default_deadline_ns =
      static_cast<uint64_t>(config.serve_deadline_ms) * 1'000'000ULL;
  options.dispatcher.pool = &eng.pool();
  options.dispatcher.cache_path = config.cache_path;
  const size_t drain_timeout_ms =
      drain_flag_set ? drain_timeout_ms_flag : config.serve_drain_timeout_ms;
  options.drain_timeout_ns =
      static_cast<uint64_t>(drain_timeout_ms) * 1'000'000ULL;
  options.idle_timeout_ns =
      static_cast<uint64_t>(config.serve_idle_timeout_ms) * 1'000'000ULL;
  if (config.quick) {
    options.dispatcher.discovery.random_samples = 16;
    options.dispatcher.discovery.sampled_vertices = 48;
    options.dispatcher.discovery.bisection_depth = 3;
    options.dispatcher.discovery.completeness_rounds = 1;
  }
  serve::Server server(options);

  Result<std::unique_ptr<serve::SocketListener>> listener =
      serve::SocketListener::Bind(config.serve_socket);
  if (!listener.ok()) {
    std::fprintf(stderr, "costsense-serve: %s\n",
                 listener.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr,
               "costsense-serve: listening on %s (inflight=%zu queue=%zu "
               "deadline_ms=%zu drain_ms=%zu idle_ms=%zu threads=%zu)\n",
               config.serve_socket.c_str(), options.max_inflight,
               options.max_queued, config.serve_deadline_ms, drain_timeout_ms,
               config.serve_idle_timeout_ms, eng.pool().num_threads());

  // The periodic in-flight stats snapshotter (and idle watchdog driver);
  // inert when the interval knob is 0. It shares the artifact writer with
  // the shutdown record below, so it is stopped before that write.
  std::unique_ptr<engine::ArtifactWriter> writer = eng.MakeArtifactWriter();
  serve::SnapshotterOptions snapshot_options;
  snapshot_options.interval_ns =
      static_cast<uint64_t>(config.serve_stats_interval_ms) * 1'000'000ULL;
  serve::StatsSnapshotter snapshotter(server, *writer, snapshot_options);
  snapshotter.Start();

  runtime::WallTimer timer;
  const Status served = server.ServeBlocking(**listener, max_sessions);
  if (!served.ok()) {
    std::fprintf(stderr, "costsense-serve: %s\n", served.ToString().c_str());
  }
  snapshotter.Stop();
  server.Shutdown();
  (*listener)->Close();

  // Shutdown telemetry through the configured sinks, with an explicit
  // checkpoint Flush so the sidecar is on disk before teardown.
  const serve::ServerStats stats = server.stats();
  if (stats.dispatcher.persistent) {
    const runtime::CacheStoreTelemetry& st = stats.dispatcher.store;
    std::fprintf(stderr,
                 "costsense-serve: cache-store loaded=%zu saved=%zu "
                 "rejected(crc=%zu truncated=%zu version=%zu catalog=%zu "
                 "quantization=%zu)%s\n",
                 st.loaded, st.saved, st.rejected_crc, st.rejected_truncated,
                 st.rejected_version, st.rejected_catalog,
                 st.rejected_quantization,
                 stats.shutdown.persist_failed ? " persist-FAILED" : "");
  }
  runtime::RuntimeMetrics metrics;
  metrics.threads = eng.pool().num_threads();
  metrics.phase_wall_ms.emplace_back("serve", timer.ElapsedMs());
  metrics.AddCacheStats(stats.dispatcher.cache);
  writer->WriteRunMetrics(
      "costsense_serve", metrics,
      {{"sessions", static_cast<double>(stats.sessions)},
       {"requests", static_cast<double>(stats.dispatcher.requests)},
       {"failed_requests",
        static_cast<double>(stats.dispatcher.failed_requests)},
       {"admission_rejected", static_cast<double>(stats.admission.rejected)},
       {"peak_inflight", static_cast<double>(stats.admission.peak_inflight)},
       {"peak_queued", static_cast<double>(stats.admission.peak_queued)},
       {"contexts", static_cast<double>(stats.dispatcher.contexts)},
       {"stats_snapshots", static_cast<double>(snapshotter.ticks())},
       {"idle_reaped", static_cast<double>(stats.idle_reaped)},
       {"forced_sessions",
        static_cast<double>(stats.shutdown.forced_sessions)},
       {"drain_wait_ms",
        static_cast<double>(stats.shutdown.drain_wait_ns) / 1e6},
       {"store_loaded", static_cast<double>(stats.dispatcher.store.loaded)},
       {"store_saved", static_cast<double>(stats.dispatcher.store.saved)},
       {"store_rejected",
        stats.dispatcher.store.rejected() ? 1.0 : 0.0}});
  const Status checkpoint = writer->Flush();
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "costsense-serve: checkpoint flush: %s\n",
                 checkpoint.ToString().c_str());
  }
  const Status finished = writer->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "costsense-serve: artifact sink: %s\n",
                 finished.ToString().c_str());
  }
  return served.ok() ? 0 : 1;
}

}  // namespace
}  // namespace costsense::bench

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(argc, argv, "costsense_serve",
                                        costsense::bench::ServeMain);
}
