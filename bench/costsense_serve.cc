// costsense-serve: the long-lived multi-tenant sensitivity-analysis
// server. Listens on a Unix-domain socket (COSTSENSE_SERVE_SOCKET /
// serve_socket=...), runs each accepted session on its own thread, and
// multiplexes requests onto the process-global thread pool behind bounded
// admission (serve_inflight / serve_queue) — saturated load comes back as
// typed kUnavailable responses, never hangs. All sessions share the warm
// per-(query, policy) oracle caches.
//
// Usage:
//   costsense_serve [quick=1 threads=N serve_socket=PATH serve_inflight=K
//                    serve_queue=Q serve_deadline_ms=MS ...]
//                   [--max-sessions=N]
//
// --max-sessions=N exits after N sessions finish (benches and tests use
// this for a drivable shutdown; 0 = serve until the socket is torn down).
// On shutdown the final server statistics flow through the artifact sinks
// with an explicit checkpoint Flush.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/artifact.h"
#include "runtime/metrics.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace costsense::bench {
namespace {

int ServeMain(engine::Engine& eng, int argc, char** argv) {
  size_t max_sessions = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--max-sessions=";
    if (arg.rfind(prefix, 0) == 0) {
      max_sessions = static_cast<size_t>(std::atol(arg.c_str() + prefix.size()));
    } else {
      std::fprintf(stderr, "costsense-serve: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  const engine::EngineConfig& config = eng.config();
  serve::ServerOptions options;
  options.max_inflight = config.serve_inflight;
  options.max_queued = config.serve_queue;
  options.dispatcher.cache = config.cache;
  options.dispatcher.max_retries = config.max_retries;
  options.dispatcher.default_deadline_ns =
      static_cast<uint64_t>(config.serve_deadline_ms) * 1'000'000ULL;
  options.dispatcher.pool = &eng.pool();
  if (config.quick) {
    options.dispatcher.discovery.random_samples = 16;
    options.dispatcher.discovery.sampled_vertices = 48;
    options.dispatcher.discovery.bisection_depth = 3;
    options.dispatcher.discovery.completeness_rounds = 1;
  }
  serve::Server server(options);

  Result<std::unique_ptr<serve::SocketListener>> listener =
      serve::SocketListener::Bind(config.serve_socket);
  if (!listener.ok()) {
    std::fprintf(stderr, "costsense-serve: %s\n",
                 listener.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr,
               "costsense-serve: listening on %s (inflight=%zu queue=%zu "
               "deadline_ms=%zu threads=%zu)\n",
               config.serve_socket.c_str(), options.max_inflight,
               options.max_queued, config.serve_deadline_ms,
               eng.pool().num_threads());

  runtime::WallTimer timer;
  const Status served = server.ServeBlocking(**listener, max_sessions);
  if (!served.ok()) {
    std::fprintf(stderr, "costsense-serve: %s\n", served.ToString().c_str());
  }
  server.Shutdown();
  (*listener)->Close();

  // Shutdown telemetry through the configured sinks, with an explicit
  // checkpoint Flush so the sidecar is on disk before teardown.
  const serve::ServerStats stats = server.stats();
  runtime::RuntimeMetrics metrics;
  metrics.threads = eng.pool().num_threads();
  metrics.phase_wall_ms.emplace_back("serve", timer.ElapsedMs());
  metrics.AddCacheStats(stats.dispatcher.cache);
  std::unique_ptr<engine::ArtifactWriter> writer = eng.MakeArtifactWriter();
  writer->WriteRunMetrics(
      "costsense_serve", metrics,
      {{"sessions", static_cast<double>(stats.sessions)},
       {"requests", static_cast<double>(stats.dispatcher.requests)},
       {"failed_requests",
        static_cast<double>(stats.dispatcher.failed_requests)},
       {"admission_rejected", static_cast<double>(stats.admission.rejected)},
       {"peak_inflight", static_cast<double>(stats.admission.peak_inflight)},
       {"peak_queued", static_cast<double>(stats.admission.peak_queued)},
       {"contexts", static_cast<double>(stats.dispatcher.contexts)}});
  const Status checkpoint = writer->Flush();
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "costsense-serve: checkpoint flush: %s\n",
                 checkpoint.ToString().c_str());
  }
  const Status finished = writer->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "costsense-serve: artifact sink: %s\n",
                 finished.ToString().c_str());
  }
  return served.ok() ? 0 : 1;
}

}  // namespace
}  // namespace costsense::bench

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(argc, argv, "costsense_serve",
                                        costsense::bench::ServeMain);
}
