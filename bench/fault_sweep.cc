// Fault-sweep acceptance harness for the resilience tier: runs the
// worst-case figure pipeline (queries 1 and 19, per-table-and-index
// layout) at injected transient-fault rates {0%, 5%, 20%} with a retry
// budget that absorbs every burst, and asserts the figure output (table,
// CSV, discovered plan ids) is byte-identical to a fault-free run at
// thread counts 1 and 3. A final run at 20% faults with a zero retry
// budget must still complete, with the driver-side degraded counts
// reconciling exactly against the injector's own fault log. One JSON perf
// line per configuration lands on stderr / COSTSENSE_BENCH_JSON.
//
// Exit status 0 means every assertion held.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exp/figure_runner.h"
#include "exp/report.h"
#include "runtime/metrics.h"
#include "runtime/resilience/clock.h"
#include "runtime/thread_pool.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::bench {
namespace {

struct RunOutput {
  std::string table;
  std::string csv;
  std::vector<std::string> plan_ids;
  runtime::RuntimeMetrics metrics;
  size_t probe_calls = 0;
  bool all_ok = true;
  // Per-analysis counters, for the per-query accounting identity.
  std::vector<exp::QueryAnalysis> analyses;
};

RunOutput RunFigure(const catalog::Catalog& catalog, runtime::ThreadPool* pool,
                    bool resilience_enabled, double fault_rate,
                    size_t max_retries,
                    runtime::resilience::Clock* clock) {
  exp::FigureRunner::Options options;
  options.deltas = {2, 10, 100, 1000};
  options.discovery.random_samples = 12;
  options.discovery.sampled_vertices = 24;
  options.discovery.bisection_depth = 2;
  options.discovery.completeness_rounds = 1;
  options.pool = pool;
  options.resilience.enabled = resilience_enabled;
  options.resilience.faults.fault_rate = fault_rate;
  options.resilience.retry.max_retries = max_retries;
  options.resilience.clock = clock;
  const exp::FigureRunner runner(catalog, options);

  std::vector<query::Query> queries;
  for (int qn : {1, 19}) queries.push_back(tpch::MakeTpchQuery(catalog, qn));
  const std::vector<Result<exp::QueryAnalysis>> analyses =
      runner.AnalyzeMany(queries, storage::LayoutPolicy::kPerTableAndIndex);

  RunOutput out;
  out.metrics.threads = pool->num_threads();
  std::vector<exp::FigureSeries> all;
  for (const Result<exp::QueryAnalysis>& analysis : analyses) {
    if (!analysis.ok()) {
      std::fprintf(stderr, "analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      out.all_ok = false;
      continue;
    }
    for (const core::PlanUsage& p : analysis->candidate_plans) {
      out.plan_ids.push_back(p.plan_id);
    }
    const Result<exp::FigureSeries> series = runner.GtcSeries(*analysis);
    if (!series.ok()) {
      std::fprintf(stderr, "series failed: %s\n",
                   series.status().ToString().c_str());
      out.all_ok = false;
      continue;
    }
    all.push_back(*series);
    out.metrics.cache_hits += analysis->cache_hits;
    out.metrics.cache_misses += analysis->cache_misses;
    out.probe_calls += analysis->oracle_probe_calls;
    out.metrics.oracle_attempts += analysis->oracle_attempts;
    out.metrics.oracle_retries += analysis->oracle_retries;
    out.metrics.oracle_failures += analysis->oracle_failures;
    out.metrics.faults_injected += analysis->faults_injected;
    out.metrics.degraded_points += analysis->degraded_points;
    out.analyses.push_back(*analysis);
  }
  if (out.probe_calls > 0) {
    out.metrics.coverage =
        static_cast<double>(out.probe_calls - out.metrics.oracle_failures) /
        static_cast<double>(out.probe_calls);
  }
  out.table = exp::RenderFigureTable("fault-sweep", all);
  out.csv = exp::RenderFigureCsv(all);
  return out;
}

int Run(engine::Engine& eng) {
  const catalog::Catalog catalog = tpch::MakeTpchCatalog(100.0);
  runtime::resilience::ManualClock clock;

  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      ++failures;
    }
  };

  // Absorbed-fault equivalence: at every thread count, every fault rate
  // the retry budget can absorb must leave the figure output untouched.
  const double kRates[] = {0.0, 0.05, 0.20};
  std::string reference_table;  // the threads=1 fault-free output
  for (size_t threads : {size_t{1}, size_t{3}}) {
    runtime::ThreadPool pool(threads);
    const RunOutput baseline =
        RunFigure(catalog, &pool, /*resilience_enabled=*/false,
                  /*fault_rate=*/0.0, /*max_retries=*/0, nullptr);
    check(baseline.all_ok, "baseline run completed");
    if (reference_table.empty()) {
      reference_table = baseline.table;
    } else {
      // The pre-existing guarantee the resilience tier must not erode:
      // serial and parallel figure output is byte-identical.
      check(baseline.table == reference_table,
            "baseline output identical across thread counts");
    }

    for (double rate : kRates) {
      const RunOutput run =
          RunFigure(catalog, &pool, /*resilience_enabled=*/true, rate,
                    /*max_retries=*/5, &clock);
      const std::string tag =
          "threads=" + std::to_string(threads) +
          " rate=" + std::to_string(rate);
      check(run.all_ok, tag + ": run completed");
      check(run.table == baseline.table, tag + ": table byte-identical");
      check(run.csv == baseline.csv, tag + ": csv byte-identical");
      check(run.plan_ids == baseline.plan_ids,
            tag + ": plan ids byte-identical");
      check(run.metrics.oracle_failures == 0, tag + ": no surfaced failures");
      check(run.metrics.degraded_points == 0, tag + ": no degraded points");
      check(run.metrics.coverage == 1.0, tag + ": full coverage");
      if (rate > 0.0) {
        check(run.metrics.faults_injected > 0,
              tag + ": faults were actually injected");
        check(run.metrics.oracle_retries >= run.metrics.faults_injected,
              tag + ": every fault was absorbed by a retry");
      }
      EmitBenchJson(
          eng.config(), "fault_sweep_t" + std::to_string(threads), run.metrics,
          {{"fault_rate", rate},
           {"retry_budget", 5.0},
           {"probe_calls", static_cast<double>(run.probe_calls)}});
    }
  }

  // Budget exhaustion: with no retries at a 20% fault rate the sweep must
  // still complete, and the degraded accounting must reconcile exactly —
  // per analysis, each injected fault is one surfaced oracle failure is
  // one driver-side degraded point.
  {
    runtime::ThreadPool pool(3);
    const RunOutput degraded =
        RunFigure(catalog, &pool, /*resilience_enabled=*/true,
                  /*fault_rate=*/0.20, /*max_retries=*/0, &clock);
    check(degraded.all_ok, "degraded run completed with exit-0 analyses");
    check(degraded.metrics.faults_injected > 0,
          "degraded run injected faults");
    check(degraded.metrics.coverage < 1.0,
          "degraded run reports partial coverage");
    for (const exp::QueryAnalysis& a : degraded.analyses) {
      check(a.degraded_points == a.oracle_failures,
            a.query_name + ": degraded points == oracle failures");
      check(a.oracle_failures == a.faults_injected,
            a.query_name + ": oracle failures == injected faults");
      check(a.probe_coverage < 1.0,
            a.query_name + ": per-query coverage marked partial");
      check(a.oracle_attempts == a.oracle_probe_calls + a.oracle_retries,
            a.query_name + ": attempts == calls + retries");
    }
    EmitBenchJson(eng.config(), "fault_sweep_degraded", degraded.metrics,
                  {{"fault_rate", 0.20},
                   {"retry_budget", 0.0},
                   {"probe_calls",
                    static_cast<double>(degraded.probe_calls)}});
  }

  if (failures == 0) {
    std::fprintf(stderr, "fault_sweep: PASS\n");
    return 0;
  }
  std::fprintf(stderr, "fault_sweep: %d assertion(s) FAILED\n", failures);
  return 1;
}

}  // namespace
}  // namespace costsense::bench

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "fault_sweep",
      [](costsense::engine::Engine& eng, int, char**) {
        return costsense::bench::Run(eng);
      });
}
