// Reproduces paper Figure 5: worst-case global relative cost of the 22
// TPC-H queries vs. resource-cost error delta, with all tables and indexes
// on the SAME storage device (3 resources: d_s, d_t, CPU). Expected shape:
// every curve flattens to a small constant (no complementary plans;
// Theorem 2 regime) — the paper saw at most 5x even at delta = 10000.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "fig5_shared_device",
      [](costsense::engine::Engine& eng, int, char**) {
        costsense::bench::RunWorstCaseFigure(
            eng,
            "Figure 5: worst-case GTC, all tables and indexes on one device",
            "fig5_shared_device",
            costsense::storage::LayoutPolicy::kSharedDevice);
        return 0;
      });
}
