// Reproduces paper Figure 6: worst-case global relative cost vs. delta
// with every table and every table's index set on its OWN device, plus a
// temp device (2k+2 resources for a k-table query; d_s:d_t tied).
// Expected shape: most queries grow quadratically in delta (complementary
// plans exist; Theorem 1 regime), with Q20-style outliers.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "fig6_separate_devices",
      [](costsense::engine::Engine& eng, int, char**) {
        costsense::bench::RunWorstCaseFigure(
            eng,
            "Figure 6: worst-case GTC, tables and indexes on separate devices",
            "fig6_separate_devices",
            costsense::storage::LayoutPolicy::kPerTableAndIndex);
        return 0;
      });
}
