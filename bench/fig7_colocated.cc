// Reproduces paper Figure 7: worst-case global relative cost vs. delta
// with one device per table, indexes colocated with their table, plus
// temp (k+2 resources). Expected shape: intermediate between Figures 5
// and 6 — most queries reach a constant (access-path complementary pairs
// are gone), some still grow quadratically (temp-complementary remain).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "fig7_colocated",
      [](costsense::engine::Engine& eng, int, char**) {
        costsense::bench::RunWorstCaseFigure(
            eng,
            "Figure 7: worst-case GTC, one device per table with its indexes",
            "fig7_colocated",
            costsense::storage::LayoutPolicy::kPerTableColocated);
        return 0;
      });
}
