// Reproduces the paper's per-query plan-switch anatomy (Sections
// 8.1.1-8.1.3):
//  * Q8/Q19: the LINEITEM-PART join method flips between hash join and
//    index nested loops as the relative cost of random vs sequential I/O
//    (d_s : d_t) moves.
//  * Q20: on the shared device, expensive random I/O turns index filters
//    into table scans; with separate devices, the cost of the PARTSUPP
//    index drives an INL <-> hash switch that makes Q20 an order of
//    magnitude more sensitive than its peers.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "opt/explain.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

/// First join operator (mnemonic) in the plan id joining refs whose
/// aliases appear in `a` and `b` — crude but effective anatomy probe.
std::string JoinMethodBetween(const std::string& plan_id,
                              const std::string& a, const std::string& b) {
  // The join "between" two tables is the innermost operator whose argument
  // span mentions both: scan every join-operator span and keep the
  // shortest one that qualifies.
  std::string best = "-";
  size_t best_len = plan_id.size() + 1;
  for (const char* method : {"INL", "HSJ", "SMJ", "BNL"}) {
    size_t pos = 0;
    while ((pos = plan_id.find(method, pos)) != std::string::npos) {
      // The operator's argument span: find its matching parentheses.
      const size_t open = plan_id.find('(', pos);
      if (open == std::string::npos) break;
      int depth = 1;
      size_t close = open + 1;
      while (close < plan_id.size() && depth > 0) {
        if (plan_id[close] == '(') ++depth;
        if (plan_id[close] == ')') --depth;
        ++close;
      }
      const std::string span = plan_id.substr(open, close - open);
      auto mentions = [&span](const std::string& alias) {
        return span.find("(" + alias + ")") != std::string::npos ||
               span.find("(" + alias + ".") != std::string::npos;
      };
      if (mentions(a) && mentions(b) && span.size() < best_len) {
        best = method;
        best_len = span.size();
      }
      pos = close;
    }
  }
  return best;
}

void SeekTransferSweep(const catalog::Catalog& cat, int query_number,
                       const char* alias_a, const char* alias_b) {
  const query::Query q = tpch::MakeTpchQuery(cat, query_number);
  const storage::StorageLayout layout(storage::LayoutPolicy::kSharedDevice,
                                      cat, query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  std::printf("\n%s on one device: %s-%s join method vs d_s:d_t ratio\n",
              q.name.c_str(), alias_a, alias_b);
  std::printf("%-12s %-8s %s\n", "ds:dt", "method", "plan");
  for (double ratio : {0.01, 0.1, 1.0, 2.7, 10.0, 100.0, 1000.0}) {
    core::CostVector c = space.BaselineCosts();
    c[0] = c[1] * ratio;  // d_s relative to d_t
    const auto r = optimizer.Optimize(q, c);
    std::printf("%-12s %-8s %.70s\n", FormatDouble(ratio).c_str(),
                JoinMethodBetween(r->plan->id, alias_a, alias_b).c_str(),
                r->plan->id.c_str());
  }
}

void Q20IndexDeviceSweep(const catalog::Catalog& cat) {
  const query::Query q = tpch::MakeTpchQuery(cat, 20);
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  // Locate the partsupp-index device dimension.
  size_t ps_ix_dim = 0;
  const int ps_table = cat.TableId("partsupp").value();
  for (size_t i = 0; i < space.dim_info().size(); ++i) {
    if (space.dim_info()[i].cls == core::DimClass::kIndex &&
        space.dim_info()[i].table_id == ps_table) {
      ps_ix_dim = i;
    }
  }
  std::printf("\nQ20 with separate devices: PART-PARTSUPP method vs cost "
              "of PARTSUPP's index device\n");
  std::printf("%-12s %-8s %s\n", "ix-cost-mult", "method", "plan");
  for (double mult : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    core::CostVector c = space.BaselineCosts();
    c[ps_ix_dim] *= mult;
    const auto r = optimizer.Optimize(q, c);
    std::printf("%-12s %-8s %.70s\n", FormatDouble(mult).c_str(),
                JoinMethodBetween(r->plan->id, "ps", "p").c_str(),
                r->plan->id.c_str());
  }
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "fig_query_anatomy",
      [](costsense::engine::Engine&, int, char**) {
        using namespace costsense;
        const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
        SeekTransferSweep(cat, 8, "l", "p");
        SeekTransferSweep(cat, 19, "l", "p");
        SeekTransferSweep(cat, 20, "ps", "p");
        Q20IndexDeviceSweep(cat);
        return 0;
      });
}
