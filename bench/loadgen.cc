// loadgen: load generator for the costsense-serve analysis server.
// Drives concurrent client sessions through the in-process transport
// against one shared server — the same session/admission/dispatcher path
// a socket client exercises, minus the kernel socket — and reports exact
// p50/p99/p999 service latency into the bench JSON sidecar.
//
// Two client populations can run side by side:
//   open-loop   (--sessions=S)     offered arrivals at --rate Hz per
//               session, protocol v1 request/response calls. Arrivals
//               never wait for responses, so this population measures
//               behaviour under a fixed offered load.
//   closed-loop (--closed-loop=N)  N clients each cycling request ->
//               response -> think, protocol v2 streamed calls. Each
//               client has at most one request outstanding, so this
//               population measures service latency without coordinated
//               omission from queueing behind its own backlog.
//
// The workload is deterministic: each client forks its own Rng stream
// from the seed and draws its request mix (query, analysis kind, layout
// policy, delta set) and its exponential gaps (inter-arrival or think
// time) from it. Schedules are charged to a client-local ManualClock —
// virtual time records the offered schedule reproducibly while real wall
// time measures service latency — so two runs offer byte-identical
// request streams.
//
// Usage:
//   loadgen [quick=1 threads=N ...] [--sessions=S] [--requests=R]
//           [--rate=HZ] [--closed-loop=N] [--think-ms=T]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/artifact.h"
#include "exp/report.h"
#include "runtime/metrics.h"
#include "runtime/resilience/clock.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace costsense::bench {
namespace {

struct LoadgenOptions {
  size_t sessions = 3;
  size_t requests_per_session = 16;
  /// Offered arrival rate per session (Hz) on the virtual clock.
  double rate_hz = 200.0;
  /// Closed-loop clients running alongside the open-loop sessions
  /// (0 = open-loop only).
  size_t closed_loop = 0;
  /// Mean think time per closed-loop cycle (ms) on the virtual clock.
  double think_ms = 2.0;
  uint64_t seed = 0x10adULL;
};

bool ParseFlag(const char* arg, const char* name, double* out) {
  const std::string prefix = std::string(name) + "=";
  if (std::string(arg).rfind(prefix, 0) != 0) return false;
  *out = std::atof(arg + prefix.size());
  return true;
}

/// One session's deterministic request stream.
std::vector<serve::AnalysisRequest> MakeWorkload(Rng& rng, size_t count,
                                                 bool quick) {
  // Quick mode sticks to the two cheapest highlighted queries so the
  // smoke test finishes in seconds; full mode draws from the quick-report
  // subset the figure binaries also use.
  const std::vector<uint16_t> queries =
      quick ? std::vector<uint16_t>{1, 6}
            : [] {
                std::vector<uint16_t> qs;
                for (int qn : exp::QuickQueryNumbers()) {
                  qs.push_back(static_cast<uint16_t>(qn));
                }
                return qs;
              }();
  const storage::LayoutPolicy policies[] = {
      storage::LayoutPolicy::kSharedDevice,
      storage::LayoutPolicy::kPerTableColocated,
  };
  const std::vector<std::vector<double>> delta_sets = {
      {100.0}, {2.0, 10.0, 100.0}, {10.0, 1000.0}};

  std::vector<serve::AnalysisRequest> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    serve::AnalysisRequest request;
    request.kind = static_cast<serve::AnalysisKind>(rng.Index(3));
    request.policy = policies[rng.Index(2)];
    request.query_number = queries[rng.Index(queries.size())];
    request.deltas = delta_sets[rng.Index(delta_sets.size())];
    out.push_back(std::move(request));
  }
  return out;
}

/// The three analysis kinds, indexable for the per-kind breakdown.
constexpr serve::AnalysisKind kKinds[] = {serve::AnalysisKind::kDiscovery,
                                          serve::AnalysisKind::kWorstCase,
                                          serve::AnalysisKind::kGtcSeries};
constexpr size_t kNumKinds = sizeof(kKinds) / sizeof(kKinds[0]);

struct SessionResult {
  /// kOk request latencies in issue order, split by analysis kind —
  /// discovery, worst-case and GTC-series requests have very different
  /// cost profiles, and one blended percentile hides which one regressed.
  std::vector<double> latencies_ms[kNumKinds];
  size_t shed = 0;                   // kUnavailable (admission overload)
  size_t errors = 0;                 // any other non-OK response code
  uint64_t virtual_arrival_ns = 0;   // last offered arrival timestamp
};

/// Nearest-rank percentile of an already-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<size_t>(rank, 1)) - 1];
}

int LoadgenMain(engine::Engine& eng, int argc, char** argv) {
  LoadgenOptions load;
  for (int i = 1; i < argc; ++i) {
    double value = 0.0;
    if (ParseFlag(argv[i], "--sessions", &value)) {
      load.sessions = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--requests", &value)) {
      load.requests_per_session = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      load.rate_hz = value;
    } else if (ParseFlag(argv[i], "--closed-loop", &value)) {
      load.closed_loop = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--think-ms", &value)) {
      load.think_ms = value;
    } else {
      std::fprintf(stderr, "loadgen: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (load.sessions + load.closed_loop == 0 ||
      load.requests_per_session == 0 || load.rate_hz <= 0.0 ||
      load.think_ms < 0.0) {
    std::fprintf(stderr,
                 "loadgen: need at least one client; requests and rate must "
                 "be > 0 and think time >= 0\n");
    return 2;
  }

  const engine::EngineConfig& config = eng.config();
  serve::ServerOptions options;
  options.max_inflight = config.serve_inflight;
  options.max_queued = config.serve_queue;
  options.dispatcher.cache = config.cache;
  options.dispatcher.max_retries = config.max_retries;
  options.dispatcher.default_deadline_ns =
      static_cast<uint64_t>(config.serve_deadline_ms) * 1'000'000ULL;
  options.dispatcher.pool = &eng.pool();
  if (config.quick) {
    options.dispatcher.discovery.random_samples = 16;
    options.dispatcher.discovery.sampled_vertices = 48;
    options.dispatcher.discovery.bisection_depth = 3;
    options.dispatcher.discovery.completeness_rounds = 1;
  }
  serve::Server server(options);

  const size_t total_clients = load.sessions + load.closed_loop;
  std::vector<SessionResult> results(total_clients);
  std::vector<std::thread> clients;
  runtime::WallTimer run_timer;
  for (size_t s = 0; s < total_clients; ++s) {
    const bool closed = s >= load.sessions;
    clients.emplace_back([&, s, closed] {
      Rng rng = Rng(load.seed).Fork(s);
      const std::vector<serve::AnalysisRequest> workload =
          MakeWorkload(rng, load.requests_per_session, config.quick);
      // The offered schedule: exponential gaps, charged to a client-local
      // virtual clock. Open-loop charges an arrival gap *before* each
      // request; closed-loop charges a think gap *after* each response.
      // Virtual time makes either schedule a pure function of the seed;
      // the requests themselves are issued as fast as the server absorbs
      // them.
      runtime::resilience::ManualClock schedule;
      SessionResult& result = results[s];

      auto [client, server_end] = serve::InProcessTransport::CreatePair();
      std::unique_ptr<serve::FrameTransport> transport = std::move(server_end);
      std::thread session_thread([&server, &transport] {
        serve::Session session(server, std::move(transport));
        const Status status = session.Run();
        if (!status.ok()) {
          std::fprintf(stderr, "loadgen: session: %s\n",
                       status.ToString().c_str());
        }
      });
      const double mean_gap_s =
          closed ? load.think_ms / 1e3 : 1.0 / load.rate_hz;
      for (const serve::AnalysisRequest& request : workload) {
        const uint64_t gap_ns = static_cast<uint64_t>(
            -std::log(1.0 - rng.Uniform()) * mean_gap_s * 1e9);
        if (!closed) schedule.SleepFor(gap_ns);
        runtime::WallTimer latency;
        // Closed-loop clients speak protocol v2 — the streamed frame
        // path — so one run covers both wire formats under concurrency.
        const Result<serve::AnalysisResponse> response =
            closed ? serve::CallV2(*client, request)
                   : serve::Call(*client, request);
        if (response.ok() && response->ok()) {
          result.latencies_ms[static_cast<size_t>(request.kind)].push_back(
              latency.ElapsedMs());
        } else if (response.ok() &&
                   response->code == StatusCode::kUnavailable) {
          ++result.shed;  // load shedding is the admission design working
        } else {
          ++result.errors;
        }
        if (closed) schedule.SleepFor(gap_ns);
      }
      result.virtual_arrival_ns = schedule.NowNanos();
      client->Close();
      session_thread.join();
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_ms = run_timer.ElapsedMs();
  server.Shutdown();

  std::vector<double> latencies;
  std::vector<double> by_kind[kNumKinds];
  std::vector<double> by_mode[2];  // 0 = open-loop, 1 = closed-loop
  size_t shed = 0;
  size_t errors = 0;
  uint64_t virtual_ns = 0;
  for (size_t s = 0; s < results.size(); ++s) {
    const SessionResult& r = results[s];
    const size_t mode = s >= load.sessions ? 1 : 0;
    for (size_t k = 0; k < kNumKinds; ++k) {
      latencies.insert(latencies.end(), r.latencies_ms[k].begin(),
                       r.latencies_ms[k].end());
      by_kind[k].insert(by_kind[k].end(), r.latencies_ms[k].begin(),
                        r.latencies_ms[k].end());
      by_mode[mode].insert(by_mode[mode].end(), r.latencies_ms[k].begin(),
                           r.latencies_ms[k].end());
    }
    shed += r.shed;
    errors += r.errors;
    virtual_ns = std::max(virtual_ns, r.virtual_arrival_ns);
  }
  std::sort(latencies.begin(), latencies.end());
  for (std::vector<double>& v : by_kind) std::sort(v.begin(), v.end());
  for (std::vector<double>& v : by_mode) std::sort(v.begin(), v.end());

  const serve::ServerStats stats = server.stats();
  runtime::RuntimeMetrics metrics;
  metrics.threads = eng.pool().num_threads();
  metrics.phase_wall_ms.emplace_back("load", wall_ms);
  metrics.AddCacheStats(stats.dispatcher.cache);
  const runtime::PoolStats pool_stats = eng.pool().stats();
  metrics.tasks_run = pool_stats.tasks_run;
  metrics.queue_high_water = pool_stats.queue_high_water;

  // Metrics through the configured sinks (stderr render + the bench-JSON
  // line + the structured sidecar when configured), then an explicit
  // checkpoint Flush so the artifacts survive even if the process dies
  // before the summary.
  std::unique_ptr<engine::ArtifactWriter> writer = eng.MakeArtifactWriter();
  std::vector<std::pair<std::string, double>> extras = {
      {"sessions", static_cast<double>(load.sessions)},
      {"closed_clients", static_cast<double>(load.closed_loop)},
      {"requests", static_cast<double>(latencies.size() + shed + errors)},
      {"shed", static_cast<double>(shed)},
      {"errors", static_cast<double>(errors)},
      {"admission_rejected", static_cast<double>(stats.admission.rejected)},
      {"peak_inflight", static_cast<double>(stats.admission.peak_inflight)},
      {"contexts", static_cast<double>(stats.dispatcher.contexts)},
      {"offered_virtual_ms", static_cast<double>(virtual_ns) / 1e6},
      {"lat_p50_ms", Percentile(latencies, .5)},
      {"lat_p99_ms", Percentile(latencies, .99)},
      {"lat_p999_ms", Percentile(latencies, .999)}};
  // The per-mode breakdown (lat_open_p50_ms, lat_closed_p50_ms, ...):
  // open-loop latencies include queueing behind the offered schedule,
  // closed-loop latencies are pure service time (one request outstanding
  // per client) — blending them would hide which one regressed.
  const char* const kModeNames[2] = {"open", "closed"};
  for (size_t m = 0; m < 2; ++m) {
    const std::string name = kModeNames[m];
    extras.emplace_back("requests_" + name,
                        static_cast<double>(by_mode[m].size()));
    extras.emplace_back("lat_" + name + "_p50_ms", Percentile(by_mode[m], .5));
    extras.emplace_back("lat_" + name + "_p99_ms", Percentile(by_mode[m], .99));
  }
  // The per-kind breakdown (lat_discovery_p50_ms, ...): same nearest-rank
  // percentiles over each kind's own sample, plus its request count so a
  // tiny sample can't masquerade as a tight tail.
  for (size_t k = 0; k < kNumKinds; ++k) {
    const std::string name = serve::AnalysisKindName(kKinds[k]);
    extras.emplace_back("requests_" + name,
                        static_cast<double>(by_kind[k].size()));
    extras.emplace_back("lat_" + name + "_p50_ms", Percentile(by_kind[k], .5));
    extras.emplace_back("lat_" + name + "_p99_ms", Percentile(by_kind[k], .99));
  }
  writer->WriteRunMetrics("loadgen", metrics, extras);
  const Status checkpoint = writer->Flush();
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "loadgen: checkpoint flush: %s\n",
                 checkpoint.ToString().c_str());
  }

  std::fprintf(
      stderr,
      "loadgen: %zu open + %zu closed client(s) x %zu request(s): ok=%zu "
      "shed=%zu errors=%zu rejected=%zu p50=%.3fms p99=%.3fms p999=%.3fms\n",
      load.sessions, load.closed_loop, load.requests_per_session,
      latencies.size(), shed, errors,
      static_cast<size_t>(stats.admission.rejected), Percentile(latencies, .5),
      Percentile(latencies, .99), Percentile(latencies, .999));

  const Status finished = writer->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "loadgen: artifact sink: %s\n",
                 finished.ToString().c_str());
  }
  // Shed requests are the admission design working under deliberate
  // overload; any other non-OK analysis outcome in this workload is a bug.
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace costsense::bench

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(argc, argv, "loadgen",
                                        costsense::bench::LoadgenMain);
}
