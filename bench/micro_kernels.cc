// Microbenchmark for the batched plan-cost kernel layer: scalar vs
// incremental (Gray-code) vertex sweeps across an (n x d) grid, and
// naive vs sum-prescreened dominance filtering. Every timed pair is also
// checked for result equality — a mismatch is a hard failure, since the
// kernels promise byte-identical answers.
//
// Output: a human-readable table on stdout, plus one JSON line per grid
// point on stderr (and appended to $COSTSENSE_BENCH_JSON when set).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/dominance.h"
#include "core/plan_matrix.h"
#include "core/worst_case.h"
#include "runtime/metrics.h"

namespace costsense {
namespace {

using core::Box;
using core::CostVector;
using core::PlanUsage;
using core::SweepKernel;
using core::UsageVector;
using core::WorstCaseResult;

std::vector<PlanUsage> RandomPlans(Rng& rng, size_t dims, size_t count) {
  std::vector<PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1.0, 1e4);
    }
    if (u.Sum() == 0.0) u[0] = 1.0;
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

Box RandomBox(Rng& rng, size_t dims) {
  CostVector base(dims);
  for (size_t i = 0; i < dims; ++i) base[i] = rng.LogUniform(0.01, 10.0);
  return Box::MultiplicativeBand(base, 100.0);
}

bool SameResult(const WorstCaseResult& a, const WorstCaseResult& b) {
  return a.gtc == b.gtc && a.worst_costs == b.worst_costs &&
         a.worst_rival == b.worst_rival &&
         a.degenerate_vertices == b.degenerate_vertices;
}

/// Times `reps` runs of the sweep under `kernel` and returns total ms.
double TimeSweep(const UsageVector& initial, const core::PlanMatrix& matrix,
                 const Box& box, SweepKernel kernel, int reps,
                 WorstCaseResult* out) {
  runtime::WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    *out = core::WorstCaseOverPlanMatrix(initial, matrix, box, kernel);
  }
  return timer.ElapsedMs();
}

int RunSweepGrid(const engine::EngineConfig& config) {
  struct GridPoint {
    size_t dims;
    size_t plans;
  };
  const std::vector<GridPoint> grid = {{8, 32}, {12, 64}, {12, 128}, {16, 64}};
  const bool quick = config.quick;

  std::printf("batched vertex-sweep kernels: scalar vs incremental\n");
  std::printf("%6s %6s %10s %12s %14s %9s\n", "dims", "plans", "vertices",
              "scalar_ms", "incremental_ms", "speedup");
  int failures = 0;
  for (const GridPoint& g : grid) {
    if (quick && g.dims > 12) continue;
    Rng rng(0xbe9c0000 + g.dims * 131 + g.plans);
    const auto plans = RandomPlans(rng, g.dims, g.plans);
    const core::PlanMatrix matrix(plans);
    const Box box = RandomBox(rng, g.dims);
    const UsageVector& initial = plans[0].usage;

    // Calibrate rep count so each side runs a few hundred ms even on the
    // small grid points.
    WorstCaseResult scalar_result;
    WorstCaseResult incremental_result;
    const double probe_ms = TimeSweep(initial, matrix, box,
                                      SweepKernel::kScalar, 1, &scalar_result);
    const int reps =
        std::max(1, static_cast<int>((quick ? 50.0 : 300.0) / (probe_ms + 0.01)));

    const double scalar_ms = TimeSweep(initial, matrix, box,
                                       SweepKernel::kScalar, reps,
                                       &scalar_result);
    const double incremental_ms =
        TimeSweep(initial, matrix, box, SweepKernel::kIncremental, reps,
                  &incremental_result);
    if (!SameResult(scalar_result, incremental_result)) {
      std::fprintf(stderr,
                   "FAIL: kernels disagree at dims=%zu plans=%zu "
                   "(scalar gtc=%.17g incremental gtc=%.17g)\n",
                   g.dims, g.plans, scalar_result.gtc, incremental_result.gtc);
      ++failures;
      continue;
    }
    const double speedup = scalar_ms / incremental_ms;
    std::printf("%6zu %6zu %10" PRIu64 " %12.2f %14.2f %8.2fx\n", g.dims,
                g.plans, box.VertexCount(), scalar_ms, incremental_ms,
                speedup);

    runtime::RuntimeMetrics metrics;
    metrics.phase_wall_ms.emplace_back("scalar", scalar_ms);
    metrics.phase_wall_ms.emplace_back("incremental", incremental_ms);
    metrics.degenerate_vertices =
        scalar_result.degenerate_vertices * static_cast<size_t>(reps);
    bench::EmitBenchJson(config, "micro_kernels_sweep", metrics,
                         {{"dims", static_cast<double>(g.dims)},
                          {"plans", static_cast<double>(g.plans)},
                          {"reps", static_cast<double>(reps)},
                          {"scalar_ms", scalar_ms},
                          {"incremental_ms", incremental_ms},
                          {"speedup", speedup}});
  }
  return failures;
}

bool SameSurvivors(const std::vector<PlanUsage>& a,
                   const std::vector<PlanUsage>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].plan_id != b[i].plan_id || !(a[i].usage == b[i].usage)) {
      return false;
    }
  }
  return true;
}

/// The pre-prescreen all-pairs dominance filter, kept here as the timing
/// baseline (and correctness reference) for FilterDominated.
std::vector<PlanUsage> NaiveFilterDominated(std::vector<PlanUsage> plans,
                                            double tol) {
  std::vector<bool> keep(plans.size(), true);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size() && keep[i]; ++j) {
      if (i == j) continue;
      if (core::Dominates(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
      if (j < i && linalg::ApproxEqual(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
    }
  }
  std::vector<PlanUsage> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (keep[i]) out.push_back(std::move(plans[i]));
  }
  return out;
}

int RunDominanceGrid(const engine::EngineConfig& config) {
  const bool quick = config.quick;
  const std::vector<size_t> sizes = quick ? std::vector<size_t>{256}
                                          : std::vector<size_t>{256, 1024};
  constexpr size_t kDims = 16;

  std::printf("\ndominance filter: naive all-pairs vs sum prescreen\n");
  std::printf("%6s %6s %10s %13s %9s %10s\n", "dims", "plans", "naive_ms",
              "prescreen_ms", "speedup", "survivors");
  int failures = 0;
  for (size_t n : sizes) {
    Rng rng(0xd03u + n);
    auto plans = RandomPlans(rng, kDims, n);
    // Mix in structure the filter can exploit: duplicates and dominated
    // variants of existing plans (discovery output looks like this).
    const size_t extras = n / 4;
    for (size_t k = 0; k < extras; ++k) {
      PlanUsage copy = plans[rng.Index(n)];
      copy.plan_id += "_v" + std::to_string(k);
      if (rng.Uniform() < 0.5) {
        copy.usage[rng.Index(kDims)] += rng.LogUniform(1.0, 100.0);
      }
      plans.push_back(std::move(copy));
    }

    const int reps = quick ? 3 : 10;
    runtime::WallTimer timer;
    std::vector<PlanUsage> naive;
    for (int r = 0; r < reps; ++r) {
      naive = NaiveFilterDominated(plans, 1e-9);
    }
    const double naive_ms = timer.ElapsedMs();
    timer.Restart();
    std::vector<PlanUsage> screened;
    for (int r = 0; r < reps; ++r) {
      screened = core::FilterDominated(plans, 1e-9);
    }
    const double prescreen_ms = timer.ElapsedMs();
    if (!SameSurvivors(naive, screened)) {
      std::fprintf(stderr,
                   "FAIL: dominance survivor sets differ at n=%zu "
                   "(naive=%zu prescreen=%zu)\n",
                   plans.size(), naive.size(), screened.size());
      ++failures;
      continue;
    }
    const double speedup = naive_ms / prescreen_ms;
    std::printf("%6zu %6zu %10.2f %13.2f %8.2fx %10zu\n", kDims, plans.size(),
                naive_ms, prescreen_ms, speedup, screened.size());

    runtime::RuntimeMetrics metrics;
    metrics.phase_wall_ms.emplace_back("naive", naive_ms);
    metrics.phase_wall_ms.emplace_back("prescreen", prescreen_ms);
    bench::EmitBenchJson(config, "micro_kernels_dominance", metrics,
                         {{"dims", static_cast<double>(kDims)},
                          {"plans", static_cast<double>(plans.size())},
                          {"reps", static_cast<double>(reps)},
                          {"naive_ms", naive_ms},
                          {"prescreen_ms", prescreen_ms},
                          {"speedup", speedup},
                          {"survivors", static_cast<double>(screened.size())}});
  }
  return failures;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_kernels",
      [](costsense::engine::Engine& eng, int, char**) {
        int failures = costsense::RunSweepGrid(eng.config());
        failures += costsense::RunDominanceGrid(eng.config());
        if (failures > 0) {
          std::fprintf(stderr, "micro_kernels: %d equivalence failure(s)\n",
                       failures);
          return 1;
        }
        return 0;
      });
}
