// Microbenchmark for the batched plan-cost kernel layer: scalar vs
// incremental (Gray-code) vs simd vertex sweeps across an (n x d) grid,
// and naive vs sum-prescreened dominance filtering. Every timed group is
// also checked for result equality — a mismatch is a hard failure, since
// the kernels promise byte-identical answers.
//
// Output: a human-readable table on stdout, plus one JSON line per grid
// point on stderr (and appended to $COSTSENSE_BENCH_JSON when set). The
// sweep lines carry roofline-style fields per kernel — plan-cost
// evaluations per second (costs_per_sec: plans x vertices x reps over
// wall time, one shared numerator so kernels compare as effective
// throughput) and the kernel's actual memory traffic per second
// (bytes_per_sec) — so BENCH_*.json trajectories are absolute and
// comparable across machines, not just relative speedups.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/dominance.h"
#include "core/plan_matrix.h"
#include "core/worst_case.h"
#include "linalg/simd_kernels.h"
#include "runtime/metrics.h"

namespace costsense {
namespace {

using core::Box;
using core::CostVector;
using core::PlanUsage;
using core::SweepKernel;
using core::UsageVector;
using core::WorstCaseResult;

std::vector<PlanUsage> RandomPlans(Rng& rng, size_t dims, size_t count) {
  std::vector<PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1.0, 1e4);
    }
    if (u.Sum() == 0.0) u[0] = 1.0;
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

Box RandomBox(Rng& rng, size_t dims) {
  CostVector base(dims);
  for (size_t i = 0; i < dims; ++i) base[i] = rng.LogUniform(0.01, 10.0);
  return Box::MultiplicativeBand(base, 100.0);
}

bool SameResult(const WorstCaseResult& a, const WorstCaseResult& b) {
  return a.gtc == b.gtc && a.worst_costs == b.worst_costs &&
         a.worst_rival == b.worst_rival &&
         a.degenerate_vertices == b.degenerate_vertices;
}

/// Times `reps` runs of the sweep under `kernel` and returns an estimated
/// total ms. The reps are split into four batches and the *fastest* batch
/// sets the per-rep time: on a shared 1-CPU host, scheduling noise only
/// ever adds time, so best-of-batches recovers the machine's actual
/// throughput where a single mean would smear preemption spikes across
/// the comparison.
double TimeSweep(const UsageVector& initial, const core::PlanMatrix& matrix,
                 const Box& box, SweepKernel kernel, int reps,
                 WorstCaseResult* out) {
  const int batches = reps >= 4 ? 4 : 1;
  const int per_batch = reps / batches;
  double best_ms = 0.0;
  for (int b = 0; b < batches; ++b) {
    const int todo = per_batch + (b < reps % batches ? 1 : 0);
    if (todo == 0) continue;
    runtime::WallTimer timer;
    for (int r = 0; r < todo; ++r) {
      *out = core::WorstCaseOverPlanMatrix(initial, matrix, box, kernel);
    }
    const double per_rep = timer.ElapsedMs() / todo;
    if (b == 0 || per_rep < best_ms) best_ms = per_rep;
  }
  return best_ms * reps;
}

/// Bytes one sweep actually moves per vertex under `kernel`, for the
/// roofline bytes_per_sec field. The scalar kernel re-reads the whole
/// n x d matrix and rewrites the n costs at every vertex; the incremental
/// kernels read one n-long column and read+write the n costs per flip,
/// plus a full-matrix refresh every kRefreshPeriod (64) vertices. Exact
/// rechecks are rare enough (guard band 1e-9) to ignore.
double BytesPerVertex(SweepKernel kernel, size_t plans, size_t dims) {
  const double n = static_cast<double>(plans);
  const double d = static_cast<double>(dims);
  if (kernel == SweepKernel::kScalar) return 8.0 * (n * d + n);
  return 8.0 * (3.0 * n + n * d / 64.0);
}

int RunSweepGrid(const engine::EngineConfig& config) {
  struct GridPoint {
    size_t dims;
    size_t plans;
  };
  // The d >= 12 rows use plan counts large enough that the per-flip axpy
  // dominates the fixed Gray-walk overhead (~tens of ns per vertex for
  // bookkeeping and the screen); at 64-128 plans that overhead is most of
  // the runtime and every kernel converges to it. {8, 32} stays as the
  // small-case reference point.
  const std::vector<GridPoint> grid = {
      {8, 32}, {12, 512}, {12, 1024}, {12, 2048}, {16, 512}};
  const bool quick = config.quick;
  // kSimd resolves to kIncremental off AVX2 hosts; time it regardless (the
  // fallback is itself the honest number for this machine) but label the
  // JSON so trajectories do not mix backends.
  const bool simd_avx2 =
      core::EffectiveSweepKernel(SweepKernel::kSimd) == SweepKernel::kSimd;

  std::printf("batched vertex-sweep kernels: scalar vs incremental vs simd\n");
  std::printf("simd backend: %s\n", linalg::SimdBackendName());
  std::printf("%6s %6s %10s %11s %9s %9s %8s %8s %12s\n", "dims", "plans",
              "vertices", "scalar_ms", "incr_ms", "simd_ms", "incr_x",
              "simd_x", "simd_Mcost/s");
  int failures = 0;
  for (const GridPoint& g : grid) {
    if (quick && g.dims > 12) continue;
    Rng rng(0xbe9c0000 + g.dims * 131 + g.plans);
    const auto plans = RandomPlans(rng, g.dims, g.plans);
    const core::PlanMatrix matrix(plans);
    const Box box = RandomBox(rng, g.dims);
    const UsageVector& initial = plans[0].usage;

    // Calibrate rep count so each side runs a few hundred ms even on the
    // small grid points.
    WorstCaseResult scalar_result;
    WorstCaseResult incremental_result;
    WorstCaseResult simd_result;
    const double probe_ms = TimeSweep(initial, matrix, box,
                                      SweepKernel::kScalar, 1, &scalar_result);
    const int reps = std::max(
        4, static_cast<int>((quick ? 50.0 : 300.0) / (probe_ms + 0.01)));

    const double scalar_ms = TimeSweep(initial, matrix, box,
                                       SweepKernel::kScalar, reps,
                                       &scalar_result);
    const double incremental_ms =
        TimeSweep(initial, matrix, box, SweepKernel::kIncremental, reps,
                  &incremental_result);
    const double simd_ms = TimeSweep(initial, matrix, box, SweepKernel::kSimd,
                                     reps, &simd_result);
    if (!SameResult(scalar_result, incremental_result) ||
        !SameResult(scalar_result, simd_result)) {
      std::fprintf(stderr,
                   "FAIL: kernels disagree at dims=%zu plans=%zu "
                   "(scalar gtc=%.17g incremental gtc=%.17g simd gtc=%.17g)\n",
                   g.dims, g.plans, scalar_result.gtc, incremental_result.gtc,
                   simd_result.gtc);
      ++failures;
      continue;
    }
    const double speedup = scalar_ms / incremental_ms;
    const double simd_speedup = incremental_ms / simd_ms;
    // Shared roofline numerator: one sweep rep evaluates (or incrementally
    // maintains) plans x vertices plan costs.
    const double costs =
        static_cast<double>(reps) * static_cast<double>(box.VertexCount()) *
        static_cast<double>(g.plans);
    const double scalar_cps = costs / (scalar_ms / 1e3);
    const double incremental_cps = costs / (incremental_ms / 1e3);
    const double simd_cps = costs / (simd_ms / 1e3);
    const double vertices_swept =
        static_cast<double>(reps) * static_cast<double>(box.VertexCount());
    std::printf("%6zu %6zu %10" PRIu64 " %11.2f %9.2f %9.2f %7.2fx %7.2fx "
                "%12.1f\n",
                g.dims, g.plans, box.VertexCount(), scalar_ms, incremental_ms,
                simd_ms, speedup, simd_speedup, simd_cps / 1e6);

    runtime::RuntimeMetrics metrics;
    metrics.phase_wall_ms.emplace_back("scalar", scalar_ms);
    metrics.phase_wall_ms.emplace_back("incremental", incremental_ms);
    metrics.phase_wall_ms.emplace_back("simd", simd_ms);
    metrics.degenerate_vertices =
        scalar_result.degenerate_vertices * static_cast<size_t>(reps);
    bench::EmitBenchJson(
        config, "micro_kernels_sweep", metrics,
        {{"dims", static_cast<double>(g.dims)},
         {"plans", static_cast<double>(g.plans)},
         {"vertices", static_cast<double>(box.VertexCount())},
         {"reps", static_cast<double>(reps)},
         {"scalar_ms", scalar_ms},
         {"incremental_ms", incremental_ms},
         {"simd_ms", simd_ms},
         {"speedup", speedup},
         {"simd_speedup", simd_speedup},
         {"simd_avx2", simd_avx2 ? 1.0 : 0.0},
         {"scalar_costs_per_sec", scalar_cps},
         {"incremental_costs_per_sec", incremental_cps},
         {"simd_costs_per_sec", simd_cps},
         {"scalar_bytes_per_sec",
          vertices_swept * BytesPerVertex(SweepKernel::kScalar, g.plans,
                                          g.dims) /
              (scalar_ms / 1e3)},
         {"incremental_bytes_per_sec",
          vertices_swept * BytesPerVertex(SweepKernel::kIncremental, g.plans,
                                          g.dims) /
              (incremental_ms / 1e3)},
         {"simd_bytes_per_sec",
          vertices_swept * BytesPerVertex(SweepKernel::kSimd, g.plans,
                                          g.dims) /
              (simd_ms / 1e3)}});
  }
  return failures;
}

bool SameSurvivors(const std::vector<PlanUsage>& a,
                   const std::vector<PlanUsage>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].plan_id != b[i].plan_id || !(a[i].usage == b[i].usage)) {
      return false;
    }
  }
  return true;
}

/// The pre-prescreen all-pairs dominance filter, kept here as the timing
/// baseline (and correctness reference) for FilterDominated.
std::vector<PlanUsage> NaiveFilterDominated(std::vector<PlanUsage> plans,
                                            double tol) {
  std::vector<bool> keep(plans.size(), true);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size() && keep[i]; ++j) {
      if (i == j) continue;
      if (core::Dominates(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
      if (j < i && linalg::ApproxEqual(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
    }
  }
  std::vector<PlanUsage> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (keep[i]) out.push_back(std::move(plans[i]));
  }
  return out;
}

int RunDominanceGrid(const engine::EngineConfig& config) {
  const bool quick = config.quick;
  const std::vector<size_t> sizes = quick ? std::vector<size_t>{256}
                                          : std::vector<size_t>{256, 1024};
  constexpr size_t kDims = 16;

  std::printf("\ndominance filter: naive all-pairs vs sum prescreen\n");
  std::printf("%6s %6s %10s %13s %9s %10s\n", "dims", "plans", "naive_ms",
              "prescreen_ms", "speedup", "survivors");
  int failures = 0;
  for (size_t n : sizes) {
    Rng rng(0xd03u + n);
    auto plans = RandomPlans(rng, kDims, n);
    // Mix in structure the filter can exploit: duplicates and dominated
    // variants of existing plans (discovery output looks like this).
    const size_t extras = n / 4;
    for (size_t k = 0; k < extras; ++k) {
      PlanUsage copy = plans[rng.Index(n)];
      copy.plan_id += "_v" + std::to_string(k);
      if (rng.Uniform() < 0.5) {
        copy.usage[rng.Index(kDims)] += rng.LogUniform(1.0, 100.0);
      }
      plans.push_back(std::move(copy));
    }

    const int reps = quick ? 3 : 10;
    runtime::WallTimer timer;
    std::vector<PlanUsage> naive;
    for (int r = 0; r < reps; ++r) {
      naive = NaiveFilterDominated(plans, 1e-9);
    }
    const double naive_ms = timer.ElapsedMs();
    timer.Restart();
    std::vector<PlanUsage> screened;
    for (int r = 0; r < reps; ++r) {
      screened = core::FilterDominated(plans, 1e-9);
    }
    const double prescreen_ms = timer.ElapsedMs();
    if (!SameSurvivors(naive, screened)) {
      std::fprintf(stderr,
                   "FAIL: dominance survivor sets differ at n=%zu "
                   "(naive=%zu prescreen=%zu)\n",
                   plans.size(), naive.size(), screened.size());
      ++failures;
      continue;
    }
    const double speedup = naive_ms / prescreen_ms;
    std::printf("%6zu %6zu %10.2f %13.2f %8.2fx %10zu\n", kDims, plans.size(),
                naive_ms, prescreen_ms, speedup, screened.size());

    runtime::RuntimeMetrics metrics;
    metrics.phase_wall_ms.emplace_back("naive", naive_ms);
    metrics.phase_wall_ms.emplace_back("prescreen", prescreen_ms);
    bench::EmitBenchJson(config, "micro_kernels_dominance", metrics,
                         {{"dims", static_cast<double>(kDims)},
                          {"plans", static_cast<double>(plans.size())},
                          {"reps", static_cast<double>(reps)},
                          {"naive_ms", naive_ms},
                          {"prescreen_ms", prescreen_ms},
                          {"speedup", speedup},
                          {"survivors", static_cast<double>(screened.size())}});
  }
  return failures;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_kernels",
      [](costsense::engine::Engine& eng, int, char**) {
        int failures = costsense::RunSweepGrid(eng.config());
        failures += costsense::RunDominanceGrid(eng.config());
        if (failures > 0) {
          std::fprintf(stderr, "micro_kernels: %d equivalence failure(s)\n",
                       failures);
          return 1;
        }
        return 0;
      });
}
