// Micro-benchmarks of the optimizer itself: cost of one full
// dynamic-programming optimization per TPC-H query class, plus the
// ablation the paper's setup implies (bushy vs left-deep enumeration —
// DB2's optimization level 7 considers bushy trees, Section 7.1).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/feasible_region.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

const catalog::Catalog& Cat() {
  static const catalog::Catalog* cat =
      new catalog::Catalog(tpch::MakeTpchCatalog(100.0));
  return *cat;
}

void BM_OptimizeTpch(benchmark::State& state) {
  const query::Query q = tpch::MakeTpchQuery(Cat(), static_cast<int>(state.range(0)));
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, Cat(),
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(Cat(), layout, space);
  const core::Box box =
      core::Box::MultiplicativeBand(space.BaselineCosts(), 100.0);
  Rng rng(1);
  for (auto _ : state) {
    const auto r = optimizer.Optimize(q, box.SampleLogUniform(rng));
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetLabel("tables=" + std::to_string(q.num_tables()));
}
BENCHMARK(BM_OptimizeTpch)->Arg(1)->Arg(3)->Arg(5)->Arg(9)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_OptimizeBushyVsLeftDeep(benchmark::State& state) {
  const query::Query q = tpch::MakeTpchQuery(Cat(), 8);
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, Cat(),
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  opt::OptimizerOptions options;
  options.bushy_joins = state.range(0) != 0;
  const opt::Optimizer optimizer(Cat(), layout, space, options);
  for (auto _ : state) {
    const auto r = optimizer.OptimizeAtBaseline(q);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetLabel(options.bushy_joins ? "bushy" : "left-deep");
}
BENCHMARK(BM_OptimizeBushyVsLeftDeep)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_MakeTpchCatalog(benchmark::State& state) {
  for (auto _ : state) {
    const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
    benchmark::DoNotOptimize(cat.num_indexes());
  }
}
BENCHMARK(BM_MakeTpchCatalog)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_optimizer",
      [](costsense::engine::Engine&, int gb_argc, char** gb_argv) {
        benchmark::Initialize(&gb_argc, gb_argv);
        if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv)) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
      });
}
