// Micro-benchmarks of the parallel analysis runtime: fork-join dispatch
// overhead of ThreadPool::ParallelFor at several pool sizes, and the
// hit/miss path costs of the sharded memoizing oracle cache. These price
// the fixed costs that the figure drivers amortize over real optimizer
// calls (an optimizer invocation is ~100us-10ms; a cache hit should be
// ~100ns, so memoization pays off after a single duplicate probe).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/vectors.h"
#include "runtime/oracle_stack.h"
#include "runtime/oracle_cache.h"
#include "runtime/thread_pool.h"
#include "tests/core/fake_oracle.h"

namespace costsense {
namespace {

void BM_ParallelForDispatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<size_t>(state.range(0)));
  const size_t n = 256;
  std::atomic<size_t> sink{0};
  for (auto _ : state) {
    (void)pool.ParallelFor(n, [&](size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
      return Status::Ok();
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

std::vector<core::PlanUsage> MakePlans(size_t dims, size_t count) {
  Rng rng(17);
  std::vector<core::PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    core::UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) u[i] = rng.LogUniform(1.0, 1e4);
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

void BM_OracleCacheHit(benchmark::State& state) {
  const size_t dims = 8;
  core::FakeOracle base(MakePlans(dims, 16), /*white_box=*/true);
  runtime::OracleStack stack = runtime::OracleStackBuilder().Build(base);
  runtime::CachingOracle& cache = stack.cache();
  const core::CostVector c(dims, 1.0);
  cache.Optimize(c);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Optimize(c).total_cost);
  }
}
BENCHMARK(BM_OracleCacheHit)->Unit(benchmark::kNanosecond);

void BM_OracleCacheMiss(benchmark::State& state) {
  const size_t dims = 8;
  core::FakeOracle base(MakePlans(dims, 16), /*white_box=*/true);
  runtime::OracleCacheOptions options;
  options.max_entries = 1 << 10;  // force steady-state eviction
  runtime::OracleStack stack =
      runtime::OracleStackBuilder().WithCache(options).Build(base);
  runtime::CachingOracle& cache = stack.cache();
  Rng rng(3);
  core::CostVector c(dims, 1.0);
  for (auto _ : state) {
    c[0] = rng.LogUniform(1.0, 1e6);
    benchmark::DoNotOptimize(cache.Optimize(c).total_cost);
  }
  state.counters["evictions"] =
      static_cast<double>(cache.stats().evictions);
}
BENCHMARK(BM_OracleCacheMiss)->Unit(benchmark::kNanosecond);

void BM_OracleCacheConcurrent(benchmark::State& state) {
  const size_t dims = 8;
  core::FakeOracle base(MakePlans(dims, 16), /*white_box=*/true);
  runtime::OracleStack stack = runtime::OracleStackBuilder().Build(base);
  runtime::CachingOracle& cache = stack.cache();
  runtime::ThreadPool pool(static_cast<size_t>(state.range(0)));
  std::vector<core::CostVector> points;
  Rng rng(11);
  for (size_t i = 0; i < 512; ++i) {
    core::CostVector c(dims, 1.0);
    c[i % dims] = rng.LogUniform(1.0, 1e3);
    points.push_back(std::move(c));
  }
  for (auto _ : state) {
    (void)pool.ParallelFor(points.size(), [&](size_t i) {
      benchmark::DoNotOptimize(cache.Optimize(points[i]).total_cost);
      return Status::Ok();
    });
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_OracleCacheConcurrent)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_runtime",
      [](costsense::engine::Engine&, int gb_argc, char** gb_argv) {
        benchmark::Initialize(&gb_argc, gb_argv);
        if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv)) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
      });
}
