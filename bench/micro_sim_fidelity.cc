// Quantifies the paper's disclaimer that its two-parameter disk model is
// "not entirely accurate ... a good first approximation" (Section 3.1):
// replays synthetic I/O traces against the positional (Ruemmler-Wilkes
// style) disk simulator and compares against the additive d_s/d_t
// estimate, using d_s = the geometry's equivalent average repositioning
// cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/replay.h"

namespace costsense {
namespace {

int Run() {
  const sim::DiskGeometry disk;  // defaults approximate a 2003-era drive
  const double ds = disk.EquivalentSeekCost();
  const double dt = disk.transfer_per_page;
  std::printf("additive model parameters: d_s=%s d_t=%s\n",
              FormatDouble(ds).c_str(), FormatDouble(dt).c_str());
  std::printf("%-28s %12s %12s %8s\n", "workload", "simulated", "additive",
              "err%");

  Rng rng(11);
  const uint64_t device_pages =
      static_cast<uint64_t>(disk.pages_per_cylinder) * disk.num_cylinders;

  struct Case {
    const char* name;
    sim::IoTrace trace;
  };
  std::vector<Case> cases;

  {
    Case c{"sequential scan 100k pages", {}};
    sim::AppendSequential(c.trace, 0, 0, 100000, 32);
    cases.push_back(std::move(c));
  }
  {
    Case c{"random probes 10k pages", {}};
    sim::AppendRandom(c.trace, 0, 10000, device_pages, rng);
    cases.push_back(std::move(c));
  }
  {
    Case c{"clustered probes (narrow)", {}};
    // Random single-page reads confined to 1% of the disk: shorter seeks
    // than the average the additive model assumes.
    for (int i = 0; i < 10000; ++i) {
      c.trace.push_back({0, rng.Index(device_pages / 100), 1});
    }
    cases.push_back(std::move(c));
  }
  {
    Case c{"mixed scan + probes", {}};
    sim::AppendSequential(c.trace, 0, 0, 50000, 32);
    sim::AppendRandom(c.trace, 0, 5000, device_pages, rng);
    cases.push_back(std::move(c));
  }
  {
    Case c{"external sort (2 passes)", {}};
    for (int pass = 0; pass < 2; ++pass) {
      sim::AppendSequential(c.trace, 0, 0, 40000, 32);       // read
      sim::AppendSequential(c.trace, 0, 1000000, 40000, 32);  // write
    }
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    const sim::ReplayResult r = sim::Replay(c.trace, {disk});
    const double add = sim::AdditiveEstimate(c.trace, ds, dt);
    std::printf("%-28s %12s %12s %7.1f%%\n", c.name,
                FormatDouble(r.total_time).c_str(),
                FormatDouble(add).c_str(),
                100.0 * (add - r.total_time) / r.total_time);
  }
  std::printf("\nThe additive model tracks sequential and uniformly random "
              "workloads closely\nand overprices locality-heavy access — "
              "the error band the paper's framework\ntreats as feasible "
              "cost perturbation.\n");
  return 0;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_sim_fidelity",
      [](costsense::engine::Engine&, int, char**) {
        return costsense::Run();
      });
}
