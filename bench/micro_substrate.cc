// Micro-benchmarks of the supporting substrates: SQL parsing, linear
// algebra, usage-vector extraction through the narrow interface, disk
// trace replay, and risk profiling.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/risk.h"
#include "core/usage_extraction.h"
#include "linalg/least_squares.h"
#include "query/parser.h"
#include "sim/replay.h"
#include "tests/core/fake_oracle.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

const catalog::Catalog& Cat() {
  static const catalog::Catalog* cat =
      new catalog::Catalog(tpch::MakeTpchCatalog(100.0));
  return *cat;
}

void BM_ParseSql(benchmark::State& state) {
  const char* sql =
      "SELECT l.l_returnflag, SUM(l.l_extendedprice) FROM lineitem l, "
      "orders o, customer c WHERE l.l_orderkey = o.o_orderkey AND "
      "o.o_custkey = c.c_custkey AND l.l_shipdate >= DATE '1995-06-01' "
      "AND c.c_mktsegment = 'BUILDING' GROUP BY l.l_returnflag "
      "ORDER BY l.l_returnflag";
  for (auto _ : state) {
    const auto q = query::ParseSql(Cat(), sql);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseSql)->Unit(benchmark::kMicrosecond);

void BM_LeastSquares(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<linalg::Vector> rows;
  linalg::Vector truth(n), t(2 * n);
  for (size_t j = 0; j < n; ++j) truth[j] = rng.LogUniform(1.0, 1e6);
  for (size_t i = 0; i < 2 * n; ++i) {
    linalg::Vector r(n);
    for (size_t j = 0; j < n; ++j) r[j] = rng.LogUniform(0.01, 100.0);
    t[i] = linalg::Dot(r, truth);
    rows.push_back(std::move(r));
  }
  const linalg::Matrix m = linalg::Matrix::FromRows(rows);
  for (auto _ : state) {
    const auto fit = linalg::LeastSquares(m, t);
    benchmark::DoNotOptimize(fit.ok());
  }
}
BENCHMARK(BM_LeastSquares)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_UsageExtraction(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  Rng init(7);
  std::vector<core::PlanUsage> plans;
  for (int p = 0; p < 6; ++p) {
    core::UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) u[i] = init.LogUniform(1.0, 1e5);
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 100.0);
  core::FakeOracle probe(plans, false);
  const std::string target = probe.Optimize(box.Center()).plan_id;
  size_t calls = 0, runs = 0;
  for (auto _ : state) {
    core::FakeOracle oracle(plans, false);
    Rng rng(11);
    const auto ex = core::ExtractUsageVector(oracle, target, box.Center(),
                                             box, rng, {});
    benchmark::DoNotOptimize(ex.ok());
    calls += oracle.calls();
    ++runs;
  }
  state.counters["oracle_calls"] =
      static_cast<double>(calls) / static_cast<double>(runs);
}
BENCHMARK(BM_UsageExtraction)->Arg(3)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_TraceReplay(benchmark::State& state) {
  const sim::DiskGeometry disk;
  Rng rng(5);
  sim::IoTrace trace;
  sim::AppendSequential(trace, 0, 0, 50000, 32);
  sim::AppendRandom(trace, 0, static_cast<uint64_t>(state.range(0)),
                    1u << 24, rng);
  for (auto _ : state) {
    const auto r = sim::Replay(trace, {disk});
    benchmark::DoNotOptimize(r.total_time);
  }
}
BENCHMARK(BM_TraceReplay)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_RiskProfile(benchmark::State& state) {
  Rng init(9);
  const size_t dims = 10;
  std::vector<core::PlanUsage> plans;
  for (int p = 0; p < 12; ++p) {
    core::UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = init.Uniform() < 0.2 ? 0.0 : init.LogUniform(1.0, 1e5);
    }
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 100.0);
  for (auto _ : state) {
    Rng rng(13);
    const auto profile =
        core::ComputeRiskProfile(plans[0].usage, plans, box, rng, 2000);
    benchmark::DoNotOptimize(profile->p99);
  }
}
BENCHMARK(BM_RiskProfile)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_substrate",
      [](costsense::engine::Engine&, int gb_argc, char** gb_argv) {
        benchmark::Initialize(&gb_argc, gb_argv);
        if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv)) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
      });
}
