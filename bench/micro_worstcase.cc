// Micro-benchmarks of the sensitivity machinery, including the ablation
// DESIGN.md calls out: the paper's 2^n vertex sweep (Observation 2)
// versus this library's exact fractional maximization, which replaces it above
// ~20 resources. Also prices the simplex itself and candidate-plan
// discovery per oracle call.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/discovery.h"
#include "core/worst_case.h"
#include "lp/fractional.h"
#include "lp/simplex.h"
#include "tests/core/fake_oracle.h"

namespace costsense {
namespace {

std::vector<core::PlanUsage> MakePlans(size_t dims, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<core::PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    core::UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1.0, 1e5);
    }
    if (u.Sum() == 0.0) u[0] = 1.0;
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

void BM_WorstCaseVertexSweep(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const auto plans = MakePlans(dims, 12, 42);
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 100.0);
  for (auto _ : state) {
    const auto r =
        core::WorstCaseOverPlansByVertices(plans[0].usage, plans, box);
    benchmark::DoNotOptimize(r.gtc);
  }
}
BENCHMARK(BM_WorstCaseVertexSweep)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_WorstCaseLp(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const auto plans = MakePlans(dims, 12, 42);
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 100.0);
  for (auto _ : state) {
    const auto r = core::WorstCaseOverPlansByLp(plans[0].usage, plans, box);
    benchmark::DoNotOptimize(r->gtc);
  }
}
BENCHMARK(BM_WorstCaseLp)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_FractionalMaximize(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const auto plans = MakePlans(dims, 2, 7);
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 100.0);
  for (auto _ : state) {
    const auto r = lp::MaximizeRatioOverBox(plans[0].usage, plans[1].usage,
                                            box.lower(), box.upper());
    benchmark::DoNotOptimize(r->value);
  }
}
BENCHMARK(BM_FractionalMaximize)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Discovery(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const auto plans = MakePlans(dims, 10, 99);
  const core::Box box =
      core::Box::MultiplicativeBand(core::CostVector(dims, 1.0), 1000.0);
  size_t calls = 0, found = 0, runs = 0;
  for (auto _ : state) {
    core::FakeOracle oracle(plans, /*white_box=*/true);
    Rng rng(5);
    const auto d = core::DiscoverCandidatePlans(oracle, box, rng, {});
    benchmark::DoNotOptimize(d->plans.size());
    calls += d->oracle_calls;
    found += d->plans.size();
    ++runs;
  }
  state.counters["oracle_calls"] =
      static_cast<double>(calls) / static_cast<double>(runs);
  state.counters["plans_found"] =
      static_cast<double>(found) / static_cast<double>(runs);
}
BENCHMARK(BM_Discovery)->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "micro_worstcase",
      [](costsense::engine::Engine&, int gb_argc, char** gb_argv) {
        benchmark::Initialize(&gb_argc, gb_argv);
        if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv)) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
      });
}
