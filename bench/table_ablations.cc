// Ablations of the design choices DESIGN.md Section 5 calls out, measured
// on the queries the paper highlights:
//
//  1. Plan-space richness (bushy trees / index-only plans, the features
//     the paper credits DB2's optimization level 7 with): effect on
//     candidate-plan counts and on worst-case GTC.
//  2. Discovery strategy: optimizer calls and plans found with and
//     without segment bisection and the completeness probe.
#include <cstdio>

#include "bench/bench_util.h"
#include "blackbox/narrow_optimizer.h"
#include "common/strings.h"
#include "core/discovery.h"
#include "core/worst_case.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

struct AblationRow {
  size_t plans = 0;
  size_t calls = 0;
  double gtc_at_100 = 1.0;
};

AblationRow RunOne(const catalog::Catalog& cat, const query::Query& q,
                   const opt::OptimizerOptions& opt_options,
                   const core::DiscoveryOptions& disc_options) {
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space, opt_options);
  blackbox::NarrowOptimizer oracle(optimizer, q, /*white_box=*/true);
  const core::Box box =
      core::Box::MultiplicativeBand(space.BaselineCosts(), 100.0);
  Rng rng(17);

  AblationRow row;
  const auto d = core::DiscoverCandidatePlans(oracle, box, rng, disc_options);
  if (!d.ok()) return row;
  row.plans = d->plans.size();
  row.calls = oracle.calls();

  const auto initial = optimizer.OptimizeAtBaseline(q);
  std::vector<core::PlanUsage> plans;
  for (const auto& dp : d->plans) plans.push_back(dp.plan);
  const auto wc =
      core::WorstCaseOverPlansByLp(initial->plan->usage, plans, box);
  if (wc.ok()) row.gtc_at_100 = wc->gtc;
  return row;
}

int Run(engine::Engine& eng) {
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const std::vector<int> queries =
      eng.config().quick ? std::vector<int>{8, 20} :
                           std::vector<int>{3, 8, 11, 19, 20};

  core::DiscoveryOptions light;
  light.random_samples = 24;
  light.sampled_vertices = 64;
  light.completeness_rounds = 1;

  std::printf("Ablation 1: optimizer plan-space features "
              "(separate-device layout, delta band 100x)\n");
  std::printf("%-6s | %-22s | %-22s | %-22s\n", "query",
              "full (bushy+ixonly)", "left-deep only", "no index-only");
  for (int qn : queries) {
    const query::Query q = tpch::MakeTpchQuery(cat, qn);
    opt::OptimizerOptions full;
    opt::OptimizerOptions left_deep;
    left_deep.bushy_joins = false;
    opt::OptimizerOptions no_ixonly;
    no_ixonly.enable_index_only = false;

    const auto a = RunOne(cat, q, full, light);
    const auto b = RunOne(cat, q, left_deep, light);
    const auto c = RunOne(cat, q, no_ixonly, light);
    std::printf("%-6s | plans=%-3zu gtc=%-9s | plans=%-3zu gtc=%-9s | "
                "plans=%-3zu gtc=%-9s\n",
                q.name.c_str(), a.plans, FormatDouble(a.gtc_at_100).c_str(),
                b.plans, FormatDouble(b.gtc_at_100).c_str(), c.plans,
                FormatDouble(c.gtc_at_100).c_str());
  }

  std::printf("\nAblation 2: discovery strategy (plans found / optimizer "
              "calls)\n");
  std::printf("%-6s | %-18s | %-18s | %-18s\n", "query", "full strategy",
              "no bisection", "no completeness");
  for (int qn : queries) {
    const query::Query q = tpch::MakeTpchQuery(cat, qn);
    core::DiscoveryOptions no_bisect = light;
    no_bisect.bisection_depth = 0;
    core::DiscoveryOptions no_complete = light;
    no_complete.completeness_rounds = 0;

    const auto a = RunOne(cat, q, {}, light);
    const auto b = RunOne(cat, q, {}, no_bisect);
    const auto c = RunOne(cat, q, {}, no_complete);
    std::printf("%-6s | %3zu / %-10zu | %3zu / %-10zu | %3zu / %-10zu\n",
                q.name.c_str(), a.plans, a.calls, b.plans, b.calls, c.plans,
                c.calls);
  }
  return 0;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "table_ablations",
      [](costsense::engine::Engine& eng, int, char**) {
        return costsense::Run(eng);
      });
}
