// Reproduces the paper's two worked examples that anchor its bounds:
//
//  Part 1 (Example 1 / Theorem 1): two fully complementary plans
//  A = (1,0), B = (0,1). With costs allowed to drift by a factor delta in
//  each coordinate, the worst-case relative cost is exactly delta^2 —
//  the delta^2 upper bound is tight.
//
//  Part 2 (Example 2 / Theorem 2): the 3-table chain T1 - T2 - T3, one
//  million tuples per table, join selectivities 1e-8, T1 on its own
//  storage device. Plan A (scan T1, probe T2 then T3) reads all 1e6 T1
//  tuples; plan B (scan T3, probe T2 then T1) touches T1 only through
//  ~1e4 index probes fetching ~100 tuples — a 1e4 ratio on T1's
//  resource, so Theorem 2's constant bound is large but finite.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/strings.h"
#include "core/bounds.h"
#include "core/feasible_region.h"
#include "core/relative_cost.h"
#include "core/worst_case.h"
#include "lp/fractional.h"
#include "opt/explain.h"
#include "opt/optimizer.h"
#include "query/builder.h"

namespace costsense {
namespace {

void Part1() {
  std::printf("Part 1 - Example 1: tightness of the delta^2 bound\n");
  std::printf("%-10s %-14s %-14s\n", "delta", "worst T_rel", "delta^2 bound");
  const core::UsageVector a{1.0, 0.0};
  const core::UsageVector b{0.0, 1.0};
  for (double delta : {2.0, 5.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const core::Box box =
        core::Box::MultiplicativeBand(core::CostVector{1.0, 1.0}, delta);
    const auto sol =
        lp::MaximizeRatioOverBox(a, b, box.lower(), box.upper());
    std::printf("%-10s %-14s %-14s\n", FormatDouble(delta).c_str(),
                FormatDouble(sol->value).c_str(),
                FormatDouble(core::Theorem1UpperBound(1.0, delta)).c_str());
  }
}

void Part2() {
  std::printf("\nPart 2 - Example 2: the T1-T2-T3 chain through the real "
              "optimizer\n");
  catalog::Catalog cat;
  std::vector<int> ids;
  for (const char* name : {"t1", "t2", "t3"}) {
    ids.push_back(cat.AddTable(catalog::Table(
        name, 1e6, 4096,
        {catalog::MakeColumn("pk", 1e6, 1, 1e6, 4),
         catalog::MakeColumn("fk", 1e6, 1, 1e6, 4),
         catalog::MakeColumn("pad", 1e6, 0, 0, 80)})));
  }
  for (size_t i = 0; i < 3; ++i) {
    cat.AddIndex(std::string("pk") + std::to_string(i + 1),
                 ids[i], {0}, true, false);
    cat.AddIndex(std::string("fk") + std::to_string(i + 1),
                 ids[i], {1}, false, false);
  }
  const query::Query q = query::QueryBuilder(cat, "chain")
                             .Table("t1", "t1")
                             .Table("t2", "t2")
                             .Table("t3", "t3")
                             .Join("t1", "pk", "t2", "fk", query::JoinKind::kInner, 1e-8)
                             .Join("t2", "pk", "t3", "fk", query::JoinKind::kInner, 1e-8)
                             .Build();
  // Probe-based plans only surface when table data and index devices are
  // priced separately (the paper's Section 8.1.2 layout).
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  // Dimension bookkeeping.
  std::vector<size_t> data_dim(3), ix_dim(3);
  for (size_t d = 0; d < space.dim_info().size(); ++d) {
    const auto& info = space.dim_info()[d];
    if (info.table_id < 0) continue;
    if (info.cls == core::DimClass::kTable) {
      data_dim[static_cast<size_t>(info.table_id)] = d;
    } else if (info.cls == core::DimClass::kIndex) {
      ix_dim[static_cast<size_t>(info.table_id)] = d;
    }
  }
  // Plan A's world: scanning t1 is the only cheap bulk access (t2, t3
  // data devices dear; all indexes cheap), so the optimizer scans t1 and
  // probes t2 then t3. Plan B's world is the mirror image.
  auto make_world = [&](size_t scan_table) {
    core::CostVector c = space.BaselineCosts();
    for (size_t t = 0; t < 3; ++t) {
      if (t != scan_table) c[data_dim[t]] *= 1e4;
      c[ix_dim[t]] /= 100.0;
    }
    return c;
  };
  const auto plan_a = optimizer.Optimize(q, make_world(0));  // scans t1
  const auto plan_b = optimizer.Optimize(q, make_world(2));  // scans t3
  std::printf("plan A (t1 is the scan side): %s\n", plan_a->plan->id.c_str());
  std::printf("plan B (t3 is the scan side): %s\n", plan_b->plan->id.c_str());

  const core::RatioBound rb =
      core::ComputeRatioBound(plan_a->plan->usage, plan_b->plan->usage);
  std::printf(
      "complementary=%s  (the paper's Example 2 counts tuples: 1e6 scanned "
      "vs 1e2 fetched\n on T1 => ratio 1e4; our page-based usage shows the "
      "same asymmetry below)\n",
      rb.complementary ? "yes" : "no");
  std::printf("t1 data-device usage:  A=%s  B=%s  (ratio %s)\n",
              FormatDouble(plan_a->plan->usage[data_dim[0]]).c_str(),
              FormatDouble(plan_b->plan->usage[data_dim[0]]).c_str(),
              FormatDouble(plan_a->plan->usage[data_dim[0]] /
                           std::max(1e-12,
                                    plan_b->plan->usage[data_dim[0]]))
                  .c_str());
  std::printf("t1 index-device usage: A=%s  B=%s\n",
              FormatDouble(plan_a->plan->usage[ix_dim[0]]).c_str(),
              FormatDouble(plan_b->plan->usage[ix_dim[0]]).c_str());

  std::printf("\nworst-case GTC of plan A vs delta (bounded by the plan "
              "set's constant):\n");
  const std::vector<core::PlanUsage> plans = {
      {plan_a->plan->id, plan_a->plan->usage},
      {plan_b->plan->id, plan_b->plan->usage}};
  std::printf("%-10s %-14s\n", "delta", "worst GTC");
  for (double delta : {10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    const core::Box box =
        core::Box::MultiplicativeBand(space.BaselineCosts(), delta);
    const auto wc =
        core::WorstCaseOverPlansByLp(plan_a->plan->usage, plans, box);
    std::printf("%-10s %-14s\n", FormatDouble(delta).c_str(),
                FormatDouble(wc->gtc).c_str());
  }
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "table_bounds",
      [](costsense::engine::Engine&, int, char**) {
        costsense::Part1();
        costsense::Part2();
        return 0;
      });
}
