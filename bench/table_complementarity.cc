// Reproduces the paper's Section 8.2 analysis of resource usage vectors:
// for each storage layout, the census of candidate-optimal plan pairs —
// how many are complementary, of which kind (table / access-path / temp),
// and how many are near-complementary (element ratio > 10x).
//
// Expected shape (paper Section 8.2): no complementary pairs on the
// shared device; many access-path and temp complementary pairs with
// tables and indexes separated, but NO table-complementary pairs;
// colocating indexes with tables removes the access-path kind while temp
// complementarity remains.
#include <cstdio>

#include "bench/bench_util.h"
#include "exp/report.h"

namespace costsense {
namespace {

int Run(engine::Engine& eng) {
  bench::FigureBenchConfig config = bench::MakeFigureBenchConfig(eng.config());
  // The census classifies plan pairs; moderate discovery sampling is
  // enough and keeps the three-layout sweep fast even in full mode.
  config.options.discovery.sampled_vertices = 96;
  config.options.discovery.completeness_rounds = 1;
  const exp::FigureRunner runner(config.catalog, config.options);

  for (storage::LayoutPolicy policy :
       {storage::LayoutPolicy::kSharedDevice,
        storage::LayoutPolicy::kPerTableAndIndex,
        storage::LayoutPolicy::kPerTableColocated}) {
    std::vector<std::pair<std::string, core::ComplementarityReport>> rows;
    size_t total_compl = 0, total_table = 0, total_path = 0, total_temp = 0;
    for (const query::Query& q : config.queries) {
      const Result<exp::QueryAnalysis> analysis = runner.Analyze(q, policy);
      if (!analysis.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     analysis.status().ToString().c_str());
        continue;
      }
      core::ComplementarityReport report = runner.Complementarity(*analysis);
      total_compl += report.num_complementary;
      total_table += report.num_table;
      total_path += report.num_access_path;
      total_temp += report.num_temp;
      rows.emplace_back(q.name, std::move(report));
    }
    std::fputs(
        exp::RenderComplementarityTable(
            std::string("Section 8.2 census, layout = ") +
                storage::LayoutPolicyName(policy),
            rows)
            .c_str(),
        stdout);
    std::printf(
        "totals: complementary=%zu table=%zu access-path=%zu temp=%zu\n\n",
        total_compl, total_table, total_path, total_temp);
  }
  return 0;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "table_complementarity",
      [](costsense::engine::Engine& eng, int, char**) {
        return costsense::Run(eng);
      });
}
