// Reproduces the paper's Section 6.1.1 validation: resource usage vectors
// estimated by least squares through the narrow optimizer interface (plan
// id + total cost only, m >= 2n samples, normal equations solved by
// Gaussian elimination) are compared against held-out optimizer calls.
// The paper reports the discrepancy to be "less than one percent"; this
// table reports the same statistic per extracted plan, plus — because our
// optimizer is white-box-capable — the true extraction error against the
// actual usage vector, which DB2 could never reveal.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "blackbox/narrow_optimizer.h"
#include "common/strings.h"
#include "core/discovery.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

int Run(engine::Engine& eng) {
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const std::vector<int> query_numbers =
      eng.config().quick ? std::vector<int>{3, 6} :
                           std::vector<int>{1, 3, 6, 12, 14, 19};

  std::printf("%-6s %-44s %10s %10s %8s\n", "query", "plan", "val_err",
              "true_err", "samples");
  double worst_val = 0.0;
  for (int qn : query_numbers) {
    const query::Query q = tpch::MakeTpchQuery(cat, qn);
    const storage::StorageLayout layout(
        storage::LayoutPolicy::kSharedDevice, cat,
        query::ReferencedTables(q));
    const storage::ResourceSpace space = layout.BuildResourceSpace();
    const opt::Optimizer optimizer(cat, layout, space);

    // Narrow oracle: discovery must reconstruct usage by least squares.
    blackbox::NarrowOptimizer narrow(optimizer, q, /*white_box=*/false);
    const core::Box box =
        core::Box::MultiplicativeBand(space.BaselineCosts(), 1000.0);
    Rng rng(7);
    core::DiscoveryOptions opts;
    opts.completeness_rounds = 1;
    const Result<core::DiscoveryResult> d =
        core::DiscoverCandidatePlans(narrow, box, rng, opts);
    if (!d.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", qn, d.status().ToString().c_str());
      continue;
    }
    for (const core::DiscoveredPlan& dp : d->plans) {
      if (!dp.usage_from_least_squares) continue;
      // True error: compare against the white-box usage vector of the
      // same plan (re-optimize at the witness to fetch it).
      const Result<opt::Optimized> truth = optimizer.Optimize(q, dp.witness);
      double true_err = -1.0;
      if (truth.ok() && truth->plan->id == dp.plan.plan_id) {
        const core::UsageVector& t = truth->plan->usage;
        double num = 0.0, den = 0.0;
        for (size_t i = 0; i < t.size(); ++i) {
          num += (dp.plan.usage[i] - t[i]) * (dp.plan.usage[i] - t[i]);
          den += t[i] * t[i];
        }
        true_err = den > 0 ? std::sqrt(num / den) : 0.0;
      }
      worst_val = std::max(worst_val, dp.extraction_error);
      std::printf("%-6s %-44.44s %9.4f%% %9.4f%% %8s\n", q.name.c_str(),
                  dp.plan.plan_id.c_str(), dp.extraction_error * 100.0,
                  true_err * 100.0, "2n+4");
    }
  }
  std::printf("\nworst held-out validation error: %.4f%% (paper: <1%%)\n",
              worst_val * 100.0);
  return 0;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "table_least_squares",
      [](costsense::engine::Engine& eng, int, char**) {
        return costsense::Run(eng);
      });
}
