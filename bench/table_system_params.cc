// Reproduces the paper's Section 7.3 system-parameter table: the tunable
// parameters (transplanted from IBM's TPC-H Full Disclosure Report) that
// affect the optimizer, with this reproduction's effective values — and,
// beyond the paper, a demonstration that the memory parameters actually
// steer plan choice (shrinking the sort heap makes the optimizer favor
// plans that avoid big external sorts).
#include <cstdio>

#include "bench/bench_util.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense {
namespace {

int Run() {
  const catalog::SystemConfig config;
  std::printf("Section 7.3 tunable system parameters:\n");
  std::printf("%-28s %s\n", "Parameter Name", "Value");
  for (const auto& [name, value] : config.ToParameterTable()) {
    std::printf("%-28s %s\n", name.c_str(), value.c_str());
  }

  std::printf("\nEffect check: Q1 final sort under shrinking OPT_SORTHEAP\n");
  std::printf("%-14s %-12s %s\n", "sortheap(pg)", "est. cost", "plan");
  for (double heap : {128000.0, 8000.0, 500.0}) {
    catalog::SystemConfig small = config;
    small.sort_heap_pages = heap;
    const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0, small);
    const query::Query q = tpch::MakeTpchQuery(cat, 1);
    const storage::StorageLayout layout(
        storage::LayoutPolicy::kSharedDevice, cat,
        query::ReferencedTables(q));
    const storage::ResourceSpace space = layout.BuildResourceSpace();
    const opt::Optimizer optimizer(cat, layout, space);
    const auto r = optimizer.OptimizeAtBaseline(q);
    std::printf("%-14.0f %-12.4g %.60s\n", heap, r->total_cost,
                r->plan->id.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace costsense

int main(int argc, char** argv) {
  return costsense::bench::RunBenchMain(
      argc, argv, "table_system_params",
      [](costsense::engine::Engine&, int, char**) {
        return costsense::Run();
      });
}
