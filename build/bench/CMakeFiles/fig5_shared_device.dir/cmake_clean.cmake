file(REMOVE_RECURSE
  "CMakeFiles/fig5_shared_device.dir/fig5_shared_device.cc.o"
  "CMakeFiles/fig5_shared_device.dir/fig5_shared_device.cc.o.d"
  "fig5_shared_device"
  "fig5_shared_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_shared_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
