# Empty dependencies file for fig5_shared_device.
# This may be replaced when dependencies are built.
