file(REMOVE_RECURSE
  "CMakeFiles/fig6_separate_devices.dir/fig6_separate_devices.cc.o"
  "CMakeFiles/fig6_separate_devices.dir/fig6_separate_devices.cc.o.d"
  "fig6_separate_devices"
  "fig6_separate_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_separate_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
