# Empty dependencies file for fig6_separate_devices.
# This may be replaced when dependencies are built.
