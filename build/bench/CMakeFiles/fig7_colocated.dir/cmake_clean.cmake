file(REMOVE_RECURSE
  "CMakeFiles/fig7_colocated.dir/fig7_colocated.cc.o"
  "CMakeFiles/fig7_colocated.dir/fig7_colocated.cc.o.d"
  "fig7_colocated"
  "fig7_colocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
