# Empty dependencies file for fig7_colocated.
# This may be replaced when dependencies are built.
