file(REMOVE_RECURSE
  "CMakeFiles/fig_query_anatomy.dir/fig_query_anatomy.cc.o"
  "CMakeFiles/fig_query_anatomy.dir/fig_query_anatomy.cc.o.d"
  "fig_query_anatomy"
  "fig_query_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_query_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
