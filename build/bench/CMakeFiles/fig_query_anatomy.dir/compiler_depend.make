# Empty compiler generated dependencies file for fig_query_anatomy.
# This may be replaced when dependencies are built.
