file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_fidelity.dir/micro_sim_fidelity.cc.o"
  "CMakeFiles/micro_sim_fidelity.dir/micro_sim_fidelity.cc.o.d"
  "micro_sim_fidelity"
  "micro_sim_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
