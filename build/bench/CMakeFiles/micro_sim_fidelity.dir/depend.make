# Empty dependencies file for micro_sim_fidelity.
# This may be replaced when dependencies are built.
