file(REMOVE_RECURSE
  "CMakeFiles/micro_worstcase.dir/micro_worstcase.cc.o"
  "CMakeFiles/micro_worstcase.dir/micro_worstcase.cc.o.d"
  "micro_worstcase"
  "micro_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
