# Empty compiler generated dependencies file for micro_worstcase.
# This may be replaced when dependencies are built.
