file(REMOVE_RECURSE
  "CMakeFiles/table_ablations.dir/table_ablations.cc.o"
  "CMakeFiles/table_ablations.dir/table_ablations.cc.o.d"
  "table_ablations"
  "table_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
