# Empty compiler generated dependencies file for table_ablations.
# This may be replaced when dependencies are built.
