file(REMOVE_RECURSE
  "CMakeFiles/table_bounds.dir/table_bounds.cc.o"
  "CMakeFiles/table_bounds.dir/table_bounds.cc.o.d"
  "table_bounds"
  "table_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
