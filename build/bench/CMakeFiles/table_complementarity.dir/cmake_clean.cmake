file(REMOVE_RECURSE
  "CMakeFiles/table_complementarity.dir/table_complementarity.cc.o"
  "CMakeFiles/table_complementarity.dir/table_complementarity.cc.o.d"
  "table_complementarity"
  "table_complementarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_complementarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
