# Empty compiler generated dependencies file for table_complementarity.
# This may be replaced when dependencies are built.
