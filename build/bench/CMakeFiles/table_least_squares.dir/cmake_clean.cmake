file(REMOVE_RECURSE
  "CMakeFiles/table_least_squares.dir/table_least_squares.cc.o"
  "CMakeFiles/table_least_squares.dir/table_least_squares.cc.o.d"
  "table_least_squares"
  "table_least_squares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_least_squares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
