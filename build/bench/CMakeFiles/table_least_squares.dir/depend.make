# Empty dependencies file for table_least_squares.
# This may be replaced when dependencies are built.
