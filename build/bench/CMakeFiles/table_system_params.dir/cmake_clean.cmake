file(REMOVE_RECURSE
  "CMakeFiles/table_system_params.dir/table_system_params.cc.o"
  "CMakeFiles/table_system_params.dir/table_system_params.cc.o.d"
  "table_system_params"
  "table_system_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
