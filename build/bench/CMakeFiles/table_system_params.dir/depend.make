# Empty dependencies file for table_system_params.
# This may be replaced when dependencies are built.
