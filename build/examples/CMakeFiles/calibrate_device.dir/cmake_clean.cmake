file(REMOVE_RECURSE
  "CMakeFiles/calibrate_device.dir/calibrate_device.cpp.o"
  "CMakeFiles/calibrate_device.dir/calibrate_device.cpp.o.d"
  "calibrate_device"
  "calibrate_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
