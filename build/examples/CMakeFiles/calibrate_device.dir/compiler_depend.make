# Empty compiler generated dependencies file for calibrate_device.
# This may be replaced when dependencies are built.
