file(REMOVE_RECURSE
  "CMakeFiles/device_degradation.dir/device_degradation.cpp.o"
  "CMakeFiles/device_degradation.dir/device_degradation.cpp.o.d"
  "device_degradation"
  "device_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
