# Empty dependencies file for device_degradation.
# This may be replaced when dependencies are built.
