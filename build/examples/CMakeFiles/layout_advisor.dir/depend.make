# Empty dependencies file for layout_advisor.
# This may be replaced when dependencies are built.
