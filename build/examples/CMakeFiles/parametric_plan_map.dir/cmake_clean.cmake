file(REMOVE_RECURSE
  "CMakeFiles/parametric_plan_map.dir/parametric_plan_map.cpp.o"
  "CMakeFiles/parametric_plan_map.dir/parametric_plan_map.cpp.o.d"
  "parametric_plan_map"
  "parametric_plan_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parametric_plan_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
