# Empty compiler generated dependencies file for parametric_plan_map.
# This may be replaced when dependencies are built.
