file(REMOVE_RECURSE
  "CMakeFiles/robust_plan_picker.dir/robust_plan_picker.cpp.o"
  "CMakeFiles/robust_plan_picker.dir/robust_plan_picker.cpp.o.d"
  "robust_plan_picker"
  "robust_plan_picker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_plan_picker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
