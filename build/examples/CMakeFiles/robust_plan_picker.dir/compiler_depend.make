# Empty compiler generated dependencies file for robust_plan_picker.
# This may be replaced when dependencies are built.
