file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_audit.dir/sensitivity_audit.cpp.o"
  "CMakeFiles/sensitivity_audit.dir/sensitivity_audit.cpp.o.d"
  "sensitivity_audit"
  "sensitivity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
