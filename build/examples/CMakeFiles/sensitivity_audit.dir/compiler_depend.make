# Empty compiler generated dependencies file for sensitivity_audit.
# This may be replaced when dependencies are built.
