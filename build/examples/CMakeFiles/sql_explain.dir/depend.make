# Empty dependencies file for sql_explain.
# This may be replaced when dependencies are built.
