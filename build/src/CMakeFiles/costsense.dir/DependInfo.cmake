
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blackbox/narrow_optimizer.cc" "src/CMakeFiles/costsense.dir/blackbox/narrow_optimizer.cc.o" "gcc" "src/CMakeFiles/costsense.dir/blackbox/narrow_optimizer.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/costsense.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/column.cc" "src/CMakeFiles/costsense.dir/catalog/column.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/column.cc.o.d"
  "/root/repo/src/catalog/histogram.cc" "src/CMakeFiles/costsense.dir/catalog/histogram.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/histogram.cc.o.d"
  "/root/repo/src/catalog/index.cc" "src/CMakeFiles/costsense.dir/catalog/index.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/index.cc.o.d"
  "/root/repo/src/catalog/selectivity.cc" "src/CMakeFiles/costsense.dir/catalog/selectivity.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/selectivity.cc.o.d"
  "/root/repo/src/catalog/system_config.cc" "src/CMakeFiles/costsense.dir/catalog/system_config.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/system_config.cc.o.d"
  "/root/repo/src/catalog/table.cc" "src/CMakeFiles/costsense.dir/catalog/table.cc.o" "gcc" "src/CMakeFiles/costsense.dir/catalog/table.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/costsense.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/costsense.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/costsense.dir/common/status.cc.o" "gcc" "src/CMakeFiles/costsense.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/costsense.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/costsense.dir/common/strings.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/costsense.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/complementarity.cc" "src/CMakeFiles/costsense.dir/core/complementarity.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/complementarity.cc.o.d"
  "/root/repo/src/core/discovery.cc" "src/CMakeFiles/costsense.dir/core/discovery.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/discovery.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/costsense.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/feasible_region.cc" "src/CMakeFiles/costsense.dir/core/feasible_region.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/feasible_region.cc.o.d"
  "/root/repo/src/core/region_of_influence.cc" "src/CMakeFiles/costsense.dir/core/region_of_influence.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/region_of_influence.cc.o.d"
  "/root/repo/src/core/relative_cost.cc" "src/CMakeFiles/costsense.dir/core/relative_cost.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/relative_cost.cc.o.d"
  "/root/repo/src/core/risk.cc" "src/CMakeFiles/costsense.dir/core/risk.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/risk.cc.o.d"
  "/root/repo/src/core/robust.cc" "src/CMakeFiles/costsense.dir/core/robust.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/robust.cc.o.d"
  "/root/repo/src/core/switchover.cc" "src/CMakeFiles/costsense.dir/core/switchover.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/switchover.cc.o.d"
  "/root/repo/src/core/usage_extraction.cc" "src/CMakeFiles/costsense.dir/core/usage_extraction.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/usage_extraction.cc.o.d"
  "/root/repo/src/core/vectors.cc" "src/CMakeFiles/costsense.dir/core/vectors.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/vectors.cc.o.d"
  "/root/repo/src/core/worst_case.cc" "src/CMakeFiles/costsense.dir/core/worst_case.cc.o" "gcc" "src/CMakeFiles/costsense.dir/core/worst_case.cc.o.d"
  "/root/repo/src/exp/figure_runner.cc" "src/CMakeFiles/costsense.dir/exp/figure_runner.cc.o" "gcc" "src/CMakeFiles/costsense.dir/exp/figure_runner.cc.o.d"
  "/root/repo/src/exp/plan_map.cc" "src/CMakeFiles/costsense.dir/exp/plan_map.cc.o" "gcc" "src/CMakeFiles/costsense.dir/exp/plan_map.cc.o.d"
  "/root/repo/src/exp/report.cc" "src/CMakeFiles/costsense.dir/exp/report.cc.o" "gcc" "src/CMakeFiles/costsense.dir/exp/report.cc.o.d"
  "/root/repo/src/linalg/least_squares.cc" "src/CMakeFiles/costsense.dir/linalg/least_squares.cc.o" "gcc" "src/CMakeFiles/costsense.dir/linalg/least_squares.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/costsense.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/costsense.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/CMakeFiles/costsense.dir/linalg/vector.cc.o" "gcc" "src/CMakeFiles/costsense.dir/linalg/vector.cc.o.d"
  "/root/repo/src/lp/fractional.cc" "src/CMakeFiles/costsense.dir/lp/fractional.cc.o" "gcc" "src/CMakeFiles/costsense.dir/lp/fractional.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/CMakeFiles/costsense.dir/lp/simplex.cc.o" "gcc" "src/CMakeFiles/costsense.dir/lp/simplex.cc.o.d"
  "/root/repo/src/opt/access_paths.cc" "src/CMakeFiles/costsense.dir/opt/access_paths.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/access_paths.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/CMakeFiles/costsense.dir/opt/cost_model.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/cost_model.cc.o.d"
  "/root/repo/src/opt/explain.cc" "src/CMakeFiles/costsense.dir/opt/explain.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/explain.cc.o.d"
  "/root/repo/src/opt/join_enum.cc" "src/CMakeFiles/costsense.dir/opt/join_enum.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/join_enum.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/costsense.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/plan.cc" "src/CMakeFiles/costsense.dir/opt/plan.cc.o" "gcc" "src/CMakeFiles/costsense.dir/opt/plan.cc.o.d"
  "/root/repo/src/query/builder.cc" "src/CMakeFiles/costsense.dir/query/builder.cc.o" "gcc" "src/CMakeFiles/costsense.dir/query/builder.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/costsense.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/costsense.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/costsense.dir/query/query.cc.o" "gcc" "src/CMakeFiles/costsense.dir/query/query.cc.o.d"
  "/root/repo/src/sim/calibrate.cc" "src/CMakeFiles/costsense.dir/sim/calibrate.cc.o" "gcc" "src/CMakeFiles/costsense.dir/sim/calibrate.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/CMakeFiles/costsense.dir/sim/disk.cc.o" "gcc" "src/CMakeFiles/costsense.dir/sim/disk.cc.o.d"
  "/root/repo/src/sim/replay.cc" "src/CMakeFiles/costsense.dir/sim/replay.cc.o" "gcc" "src/CMakeFiles/costsense.dir/sim/replay.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/costsense.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/costsense.dir/sim/trace.cc.o.d"
  "/root/repo/src/storage/device.cc" "src/CMakeFiles/costsense.dir/storage/device.cc.o" "gcc" "src/CMakeFiles/costsense.dir/storage/device.cc.o.d"
  "/root/repo/src/storage/layout.cc" "src/CMakeFiles/costsense.dir/storage/layout.cc.o" "gcc" "src/CMakeFiles/costsense.dir/storage/layout.cc.o.d"
  "/root/repo/src/storage/resource_space.cc" "src/CMakeFiles/costsense.dir/storage/resource_space.cc.o" "gcc" "src/CMakeFiles/costsense.dir/storage/resource_space.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "src/CMakeFiles/costsense.dir/tpch/dbgen.cc.o" "gcc" "src/CMakeFiles/costsense.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/indexes.cc" "src/CMakeFiles/costsense.dir/tpch/indexes.cc.o" "gcc" "src/CMakeFiles/costsense.dir/tpch/indexes.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/costsense.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/costsense.dir/tpch/queries.cc.o.d"
  "/root/repo/src/tpch/schema.cc" "src/CMakeFiles/costsense.dir/tpch/schema.cc.o" "gcc" "src/CMakeFiles/costsense.dir/tpch/schema.cc.o.d"
  "/root/repo/src/tpch/stats.cc" "src/CMakeFiles/costsense.dir/tpch/stats.cc.o" "gcc" "src/CMakeFiles/costsense.dir/tpch/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
