file(REMOVE_RECURSE
  "libcostsense.a"
)
