# Empty compiler generated dependencies file for costsense.
# This may be replaced when dependencies are built.
