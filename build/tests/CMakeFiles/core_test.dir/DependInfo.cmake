
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/algorithms_test.cc" "tests/CMakeFiles/core_test.dir/core/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/algorithms_test.cc.o.d"
  "/root/repo/tests/core/bounds_test.cc" "tests/CMakeFiles/core_test.dir/core/bounds_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bounds_test.cc.o.d"
  "/root/repo/tests/core/complementarity_test.cc" "tests/CMakeFiles/core_test.dir/core/complementarity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/complementarity_test.cc.o.d"
  "/root/repo/tests/core/geometry_test.cc" "tests/CMakeFiles/core_test.dir/core/geometry_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/geometry_test.cc.o.d"
  "/root/repo/tests/core/region_test.cc" "tests/CMakeFiles/core_test.dir/core/region_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/region_test.cc.o.d"
  "/root/repo/tests/core/risk_test.cc" "tests/CMakeFiles/core_test.dir/core/risk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/risk_test.cc.o.d"
  "/root/repo/tests/core/robust_test.cc" "tests/CMakeFiles/core_test.dir/core/robust_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/robust_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/costsense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
