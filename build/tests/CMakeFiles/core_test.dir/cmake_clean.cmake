file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/algorithms_test.cc.o"
  "CMakeFiles/core_test.dir/core/algorithms_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/bounds_test.cc.o"
  "CMakeFiles/core_test.dir/core/bounds_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/complementarity_test.cc.o"
  "CMakeFiles/core_test.dir/core/complementarity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/geometry_test.cc.o"
  "CMakeFiles/core_test.dir/core/geometry_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/region_test.cc.o"
  "CMakeFiles/core_test.dir/core/region_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/risk_test.cc.o"
  "CMakeFiles/core_test.dir/core/risk_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/robust_test.cc.o"
  "CMakeFiles/core_test.dir/core/robust_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
