# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(linalg_test "/root/repo/build/tests/linalg_test")
set_tests_properties(linalg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lp_test "/root/repo/build/tests/lp_test")
set_tests_properties(lp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;25;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(catalog_test "/root/repo/build/tests/catalog_test")
set_tests_properties(catalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;35;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;37;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(optimizer_test "/root/repo/build/tests/optimizer_test")
set_tests_properties(optimizer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;38;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpch_test "/root/repo/build/tests/tpch_test")
set_tests_properties(tpch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;39;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;40;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exp_test "/root/repo/build/tests/exp_test")
set_tests_properties(exp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;41;costsense_test;/root/repo/tests/CMakeLists.txt;0;")
