// Closing the loop the paper opens: the sensitivity analysis shows stale
// storage cost parameters can cost delta^2 in plan quality; this example
// shows how a monitoring agent refreshes them. It times a mixed probe
// workload on a (simulated) healthy and a degraded device, fits d_s/d_t
// by least squares, and re-optimizes a query with the refreshed numbers.
//
//   $ ./calibrate_device
#include <cstdio>

#include "common/strings.h"
#include "core/relative_cost.h"
#include "opt/optimizer.h"
#include "sim/calibrate.h"
#include "sim/replay.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main() {
  using namespace costsense;

  auto fit_device = [](const sim::DiskGeometry& disk, uint64_t seed) {
    Rng rng(seed);
    const uint64_t device_pages =
        static_cast<uint64_t>(disk.pages_per_cylinder) * disk.num_cylinders;
    const std::vector<sim::IoTrace> workload =
        sim::MakeCalibrationWorkload(device_pages, rng);
    std::vector<double> times;
    for (const sim::IoTrace& t : workload) {
      times.push_back(sim::Replay(t, {disk}).total_time);
    }
    return sim::CalibrateAdditiveModel(workload, times).value();
  };

  const sim::DiskGeometry healthy;
  sim::DiskGeometry degraded = healthy;  // a rebuild-throttled device
  degraded.min_seek *= 20;
  degraded.max_seek *= 20;
  degraded.rotation *= 20;
  degraded.transfer_per_page *= 4;

  const sim::CalibrationResult before = fit_device(healthy, 1);
  const sim::CalibrationResult after = fit_device(degraded, 2);
  std::printf("fitted parameters (from 7 timed calibration runs each):\n");
  std::printf("  %-10s d_s=%-8s d_t=%-8s rms-err=%.2f%%\n", "healthy",
              FormatDouble(before.seek_cost).c_str(),
              FormatDouble(before.transfer_cost).c_str(),
              before.rms_relative_error * 100);
  std::printf("  %-10s d_s=%-8s d_t=%-8s rms-err=%.2f%%\n", "degraded",
              FormatDouble(after.seek_cost).c_str(),
              FormatDouble(after.transfer_cost).c_str(),
              after.rms_relative_error * 100);

  // Feed the refreshed parameters to the optimizer: Q20's partsupp-index
  // device is the degraded one.
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, 20);
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  size_t target_dim = 0;
  const int partsupp = cat.TableId("partsupp").value();
  for (size_t d = 0; d < space.dim_info().size(); ++d) {
    if (space.dim_info()[d].table_id == partsupp &&
        space.dim_info()[d].cls == core::DimClass::kIndex) {
      target_dim = d;
    }
  }
  const core::CostVector stale = space.BaselineCosts();
  core::CostVector fresh = stale;
  // Tied granularity: the device coordinate is a multiplier; the fitted
  // slowdown is the time ratio of a representative probe-heavy mix.
  const double slowdown =
      (after.seek_cost + after.transfer_cost) /
      (before.seek_cost + before.transfer_cost);
  fresh[target_dim] *= slowdown;

  const auto stale_plan = optimizer.Optimize(q, stale);
  const auto fresh_plan = optimizer.Optimize(q, fresh);
  std::printf("\nfitted slowdown of the partsupp-index device: %.1fx\n",
              slowdown);
  std::printf("stale-parameter plan:   %.60s\n", stale_plan->plan->id.c_str());
  std::printf("refreshed-param plan:   %.60s\n", fresh_plan->plan->id.c_str());
  std::printf("running the stale plan under the real costs wastes %.2fx\n",
              core::RelativeTotalCost(stale_plan->plan->usage,
                                      fresh_plan->plan->usage, fresh));
  return 0;
}
