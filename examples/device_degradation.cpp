// Device degradation scenario: a RAID rebuild (the paper cites Brown &
// Patterson) degrades the device holding PARTSUPP's indexes mid-day. The
// optimizer's catalog still carries the healthy costs. This example walks
// the degradation factor from 1x to 100x and reports, at each level:
//   * what the stale-cost optimizer keeps running (the initial plan),
//   * what it should run (re-optimized under true costs),
//   * the global relative cost of not reacting,
// then cross-checks one point with the positional disk simulator.
//
//   $ ./device_degradation
#include <cstdio>

#include "common/strings.h"
#include "core/relative_cost.h"
#include "opt/optimizer.h"
#include "sim/replay.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main() {
  using namespace costsense;
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, 20);

  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  const core::CostVector healthy = space.BaselineCosts();
  const auto initial = optimizer.Optimize(q, healthy);
  std::printf("healthy-cost plan for %s:\n  %s\n\n", q.name.c_str(),
              initial->plan->id.c_str());

  // Which dimension prices the device holding partsupp's indexes? (The
  // paper singles this resource out as what makes Q20 an order of
  // magnitude more sensitive than its peers, Section 8.1.2.)
  size_t target_dim = 0;
  const int partsupp = cat.TableId("partsupp").value();
  for (size_t d = 0; d < space.dim_info().size(); ++d) {
    if (space.dim_info()[d].table_id == partsupp &&
        space.dim_info()[d].cls == core::DimClass::kIndex) {
      target_dim = d;
    }
  }

  std::printf("%-10s %-10s %-12s %s\n", "slowdown", "stale GTC",
              "re-optimized", "true-optimal plan");
  for (double slow : {1.0, 2.0, 5.0, 10.0, 30.0, 100.0, 1000.0}) {
    core::CostVector truth = healthy;
    truth[target_dim] *= slow;
    const auto best = optimizer.Optimize(q, truth);
    const double gtc = core::RelativeTotalCost(initial->plan->usage,
                                               best->plan->usage, truth);
    const bool switched = best->plan->id != initial->plan->id;
    std::printf("%-10s %-10s %-12s %.55s\n", FormatDouble(slow).c_str(),
                FormatDouble(gtc).c_str(), switched ? "new plan" : "same",
                best->plan->id.c_str());
  }

  // Sanity-check the additive story against the positional simulator:
  // replay a degraded random-I/O burst on the index device.
  sim::DiskGeometry degraded;
  degraded.min_seek *= 30;
  degraded.max_seek *= 30;
  degraded.rotation *= 30;
  degraded.transfer_per_page *= 30;
  sim::DiskGeometry healthy_disk;
  Rng rng(3);
  sim::IoTrace probe_burst;
  sim::AppendRandom(probe_burst, 0, 2000, 1u << 24, rng);
  const double t_h = sim::Replay(probe_burst, {healthy_disk}).total_time;
  const double t_d = sim::Replay(probe_burst, {degraded}).total_time;
  std::printf("\nsimulator cross-check: the same probe burst takes %.1fx "
              "longer on the degraded device\n",
              t_d / t_h);
  return 0;
}
