// Layout advisor: the paper's bottom line is that separating data
// structures across devices makes plan quality hostage to cost-estimate
// accuracy. This example turns that into advice: for a workload, compare
// the three storage layouts by (a) estimated plan cost when estimates are
// right and (b) worst-case regret when estimates are off by a factor of
// ten — the administrator's robustness/performance trade-off.
//
//   $ ./layout_advisor
#include <cstdio>

#include "common/strings.h"
#include "exp/figure_runner.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main() {
  using namespace costsense;
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const std::vector<int> workload = {3, 5, 10, 12};
  const double delta = 10.0;

  exp::FigureRunner::Options options;
  options.deltas = {delta};
  options.discovery.random_samples = 24;
  options.discovery.sampled_vertices = 64;
  options.discovery.completeness_rounds = 1;
  const exp::FigureRunner runner(cat, options);

  std::printf("workload: TPC-H Q3, Q5, Q10, Q12 (SF 100); error band: "
              "costs within %sx of estimates\n\n",
              FormatDouble(delta).c_str());
  std::printf("%-22s %-16s %-16s\n", "layout",
              "est. cost (sum)", "worst regret");

  for (storage::LayoutPolicy policy :
       {storage::LayoutPolicy::kSharedDevice,
        storage::LayoutPolicy::kPerTableColocated,
        storage::LayoutPolicy::kPerTableAndIndex}) {
    double est_cost_sum = 0.0;
    double worst_regret = 1.0;
    for (int qn : workload) {
      const query::Query q = tpch::MakeTpchQuery(cat, qn);
      const storage::StorageLayout layout(policy, cat,
                                          query::ReferencedTables(q));
      const storage::ResourceSpace space = layout.BuildResourceSpace();
      const opt::Optimizer optimizer(cat, layout, space);
      est_cost_sum += optimizer.OptimizeAtBaseline(q)->total_cost;

      const auto analysis = runner.Analyze(q, policy);
      if (!analysis.ok()) continue;
      const auto series = runner.GtcSeries(*analysis);
      if (!series.ok()) continue;
      worst_regret = std::max(worst_regret, series->points[0].gtc);
    }
    std::printf("%-22s %-16s %-16s\n", storage::LayoutPolicyName(policy),
                FormatDouble(est_cost_sum).c_str(),
                FormatDouble(worst_regret).c_str());
  }
  std::printf(
      "\nreading: more devices can lower best-case cost (parallel spindles,"
      "\nnot modeled here) but widen worst-case regret; keep indexes with\n"
      "their tables unless cost estimates are actively maintained — the\n"
      "paper's concluding advice.\n");
  return 0;
}
