// Plan diagram: rasterize which plan is optimal across a 2-D slice of the
// resource cost space — the picture behind the paper's switchover planes
// and cone-shaped regions of influence (Figures 2 and 4), in the plan
// diagram tradition of the parametric query optimization literature.
//
//   $ ./parametric_plan_map [query 1..22]
//   $ ./parametric_plan_map 8      # d_s x d_t plane of the shared device
#include <cstdio>
#include <cstdlib>

#include "blackbox/narrow_optimizer.h"
#include "exp/plan_map.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main(int argc, char** argv) {
  using namespace costsense;
  const int qn = argc > 1 ? std::atoi(argv[1]) : 8;
  if (qn < 1 || qn > 22) {
    std::fprintf(stderr, "query number must be 1..22\n");
    return 1;
  }
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, qn);

  // Shared device, split granularity: dims are [d_s, d_t, cpu]; sweep the
  // disk plane, exactly the axes of the paper's first experiment.
  const storage::StorageLayout layout(storage::LayoutPolicy::kSharedDevice,
                                      cat, query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);
  blackbox::NarrowOptimizer oracle(optimizer, q, /*white_box=*/false);

  const core::Box box =
      core::Box::MultiplicativeBand(space.BaselineCosts(), 100.0);
  const auto map = exp::ComputePlanMap(oracle, box, /*dim_x=*/0,
                                       /*dim_y=*/1, /*resolution=*/28);
  if (!map.ok()) {
    std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
    return 1;
  }
  std::printf("%s over the (d_s, d_t) plane, 1/100x .. 100x around DB2 "
              "defaults\n(%zu optimizer calls)\n\n",
              q.name.c_str(), oracle.calls());
  std::fputs(exp::RenderPlanMap(*map, "d_s (seek cost)",
                                "d_t (transfer cost)")
                 .c_str(),
             stdout);
  std::printf(
      "\nRegions meet along straight log-log diagonals: switchover planes\n"
      "through the origin. Any 45-degree ray stays inside one region —\n"
      "the scale invariance of Observation 1.\n");
  return 0;
}
