// Quickstart: optimize a TPC-H query, read its plan and resource usage
// vector, then see how a storage cost error changes the optimizer's mind
// — the paper's core loop in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "core/relative_cost.h"
#include "opt/explain.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main() {
  using namespace costsense;

  // 1. The paper's database: TPC-H at scale factor 100, with the
  //    benchmark index set and DB2-style configuration.
  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, 20);  // the paper's most
  // sensitive query: its PART-PARTSUPP join method hinges on index cost

  // 2. A storage layout maps tables/indexes/temp to devices and defines
  //    the resource cost vector space (here: every table and index set on
  //    its own device, the paper's Section 8.1.2 setup).
  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();

  // 3. Optimize at the estimated (DB2-default) costs.
  const opt::Optimizer optimizer(cat, layout, space);
  const core::CostVector estimated = space.BaselineCosts();
  const auto initial = optimizer.Optimize(q, estimated);
  std::printf("=== %s at estimated costs ===\n%s\n", q.name.c_str(),
              opt::Explain(*initial->plan, q).c_str());
  std::printf("%s\n",
              opt::ExplainSummary(*initial->plan, space, estimated).c_str());

  // 4. Suppose one resource is actually 50x more expensive than estimated
  //    (stale configuration, load spike, RAID rebuild, ...). Sweep every
  //    resource to see which failure the initial plan is exposed to: the
  //    global relative cost (paper Section 5.2) of keeping the stale plan.
  std::printf("=== exposure to a 50x error (either direction), per "
              "resource ===\n");
  std::printf("%-16s %-8s %-10s %s\n", "resource", "error", "GTC",
              "true optimum");
  double worst_gtc = 1.0;
  core::CostVector worst_truth = estimated;
  for (size_t d = 0; d < space.dims(); ++d) {
    for (double factor : {50.0, 1.0 / 50.0}) {
      core::CostVector truth = estimated;
      truth[d] *= factor;
      const auto best = optimizer.Optimize(q, truth);
      const double gtc = core::RelativeTotalCost(initial->plan->usage,
                                                 best->plan->usage, truth);
      std::printf("%-16s %-8s %-10.2f %.50s\n",
                  space.dim_info()[d].name.c_str(),
                  factor > 1.0 ? "50x" : "1/50x", gtc,
                  best->plan->id.c_str());
      if (gtc > worst_gtc) {
        worst_gtc = gtc;
        worst_truth = truth;
      }
    }
  }

  // 5. The worst single-device failure in detail.
  const auto best = optimizer.Optimize(q, worst_truth);
  std::printf("\n=== true optimum under the worst failure (GTC %.2fx) "
              "===\n%s",
              worst_gtc, opt::Explain(*best->plan, q).c_str());
  return 0;
}
