// Robust plan selection — the constructive extension of the paper's
// diagnosis. Instead of running the plan that is optimal under the
// (possibly stale) estimated costs, pick the candidate plan whose
// worst-case global relative cost over the whole feasible cost region is
// smallest (minimax regret). For queries with complementary plans this
// replaces a delta^2 exposure with a small constant guarantee.
//
//   $ ./robust_plan_picker [query 1..22] [delta]
//   $ ./robust_plan_picker 19 100
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "core/robust.h"
#include "exp/figure_runner.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main(int argc, char** argv) {
  using namespace costsense;
  const int qn = argc > 1 ? std::atoi(argv[1]) : 19;
  const double delta = argc > 2 ? std::atof(argv[2]) : 100.0;
  if (qn < 1 || qn > 22 || delta < 1.0) {
    std::fprintf(stderr, "usage: robust_plan_picker [1..22] [delta>=1]\n");
    return 1;
  }

  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, qn);
  exp::FigureRunner::Options options;
  options.deltas = {delta};
  const exp::FigureRunner runner(cat, options);

  const auto analysis =
      runner.Analyze(q, storage::LayoutPolicy::kPerTableAndIndex);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }

  const core::Box box =
      core::Box::MultiplicativeBand(analysis->baseline, delta);
  const auto choice = core::ChooseRobustPlan(analysis->candidate_plans, box);
  if (!choice.ok()) {
    std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
    return 1;
  }

  std::printf("%s, separate-device layout, costs uncertain within %sx\n\n",
              q.name.c_str(), FormatDouble(delta).c_str());
  std::printf("%-10s %-60s\n", "worst GTC", "candidate plan");
  for (size_t i = 0; i < analysis->candidate_plans.size(); ++i) {
    const bool is_initial =
        analysis->candidate_plans[i].plan_id == analysis->initial_plan_id;
    const bool is_robust = i == choice->plan_index;
    std::printf("%-10s %.55s%s%s\n",
                FormatDouble(choice->per_plan_worst_gtc[i]).c_str(),
                analysis->candidate_plans[i].plan_id.c_str(),
                is_initial ? "   <- estimate-optimal" : "",
                is_robust ? "   <- robust choice" : "");
  }

  // Headline comparison.
  double initial_worst = 0.0;
  for (size_t i = 0; i < analysis->candidate_plans.size(); ++i) {
    if (analysis->candidate_plans[i].plan_id == analysis->initial_plan_id) {
      initial_worst = choice->per_plan_worst_gtc[i];
    }
  }
  std::printf("\nestimate-optimal plan risks %sx; the robust plan "
              "guarantees within %sx of optimal.\n",
              FormatDouble(initial_worst).c_str(),
              FormatDouble(choice->worst_case_gtc).c_str());
  return 0;
}
