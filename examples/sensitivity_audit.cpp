// Sensitivity audit: how exposed is one query to storage-cost estimation
// error under a given layout? Runs the paper's full per-query analysis —
// candidate-plan discovery, complementarity census, worst-case GTC curve
// and the applicable theoretical bound.
//
//   $ ./sensitivity_audit [query 1..22] [shared|separate|colocated]
//   $ ./sensitivity_audit 20 separate
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "core/bounds.h"
#include "exp/figure_runner.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

int main(int argc, char** argv) {
  using namespace costsense;
  const int qn = argc > 1 ? std::atoi(argv[1]) : 20;
  storage::LayoutPolicy policy = storage::LayoutPolicy::kPerTableAndIndex;
  if (argc > 2) {
    if (std::strcmp(argv[2], "shared") == 0) {
      policy = storage::LayoutPolicy::kSharedDevice;
    } else if (std::strcmp(argv[2], "colocated") == 0) {
      policy = storage::LayoutPolicy::kPerTableColocated;
    }
  }
  if (qn < 1 || qn > 22) {
    std::fprintf(stderr, "query number must be 1..22\n");
    return 1;
  }

  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const query::Query q = tpch::MakeTpchQuery(cat, qn);

  exp::FigureRunner::Options options;
  options.deltas = {2, 5, 10, 100, 1000, 10000};
  const exp::FigureRunner runner(cat, options);

  std::printf("auditing %s under the '%s' layout...\n", q.name.c_str(),
              storage::LayoutPolicyName(policy));
  const auto analysis = runner.Analyze(q, policy);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("resources: %zu   candidate optimal plans: %zu   optimizer "
              "calls: %zu\n",
              analysis->dims, analysis->candidate_plans.size(),
              analysis->oracle_calls);
  std::printf("initial plan (at DB2-default costs):\n  %s\n",
              analysis->initial_plan_id.c_str());

  const core::ComplementarityReport census = runner.Complementarity(*analysis);
  std::printf("\nplan-pair census: %zu pairs, %zu complementary "
              "(access-path %zu, temp %zu, table %zu)\n",
              census.num_pairs, census.num_complementary,
              census.num_access_path, census.num_temp, census.num_table);

  const double bound =
      core::WorstCaseConstantBound(analysis->candidate_plans);
  if (std::isinf(bound)) {
    std::printf("complementary plans exist: worst case grows like delta^2 "
                "(Theorem 1)\n");
  } else {
    std::printf("no complementary plans: worst case capped at %s for ANY "
                "cost error (Theorem 2)\n",
                FormatDouble(bound).c_str());
  }

  const auto series = runner.GtcSeries(*analysis);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%-10s %-14s %s\n", "delta", "worst GTC", "driven by");
  for (const exp::GtcPoint& p : series->points) {
    std::printf("%-10s %-14s %.60s\n", FormatDouble(p.delta).c_str(),
                FormatDouble(p.gtc).c_str(), p.worst_rival.c_str());
  }
  return 0;
}
