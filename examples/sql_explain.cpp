// SQL front end: type a query against the TPC-H schema, get the optimized
// plan, its resource usage vector, and a one-shot sensitivity readout
// (worst-case GTC at delta = 10 under the separate-device layout).
//
//   $ ./sql_explain "SELECT SUM(l_extendedprice) FROM lineitem, part
//                     WHERE l_partkey = p_partkey AND p_brand = 'Brand#23'"
#include <cstdio>

#include "common/strings.h"
#include "core/risk.h"
#include "core/worst_case.h"
#include "exp/figure_runner.h"
#include "opt/explain.h"
#include "opt/optimizer.h"
#include "query/parser.h"
#include "tpch/schema.h"

int main(int argc, char** argv) {
  using namespace costsense;
  const char* sql = argc > 1
                        ? argv[1]
                        : "SELECT SUM(l_extendedprice) FROM lineitem l, "
                          "part p WHERE l.l_partkey = p.p_partkey AND "
                          "p.p_container = 'SM BOX' AND l.l_quantity < 5";

  const catalog::Catalog cat = tpch::MakeTpchCatalog(100.0);
  const Result<query::Query> q = query::ParseSql(cat, sql);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  const storage::StorageLayout layout(
      storage::LayoutPolicy::kPerTableAndIndex, cat,
      query::ReferencedTables(*q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);
  const auto best = optimizer.OptimizeAtBaseline(*q);
  if (!best.ok()) {
    std::fprintf(stderr, "%s\n", best.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:\n%s\n%s", opt::Explain(*best->plan, *q).c_str(),
              opt::ExplainSummary(*best->plan, space, space.BaselineCosts())
                  .c_str());

  // Sensitivity readout: discover rivals and profile the risk.
  exp::FigureRunner::Options options;
  options.deltas = {10.0};
  options.discovery.random_samples = 24;
  options.discovery.sampled_vertices = 64;
  options.discovery.completeness_rounds = 1;
  const exp::FigureRunner runner(cat, options);
  const auto analysis =
      runner.Analyze(*q, storage::LayoutPolicy::kPerTableAndIndex);
  if (analysis.ok()) {
    const core::Box box =
        core::Box::MultiplicativeBand(analysis->baseline, 10.0);
    const auto wc = core::WorstCaseOverPlansByLp(
        analysis->initial_usage, analysis->candidate_plans, box);
    Rng rng(1);
    const auto risk = core::ComputeRiskProfile(
        analysis->initial_usage, analysis->candidate_plans, box, rng);
    if (wc.ok() && risk.ok()) {
      std::printf(
          "\nsensitivity (costs within 10x of estimates, %zu candidate "
          "plans):\n  worst-case GTC %.3f | mean %.3f | p99 %.3f | "
          "suboptimal in %.0f%% of scenarios\n",
          analysis->candidate_plans.size(), wc->gtc, risk->mean_gtc,
          risk->p99, risk->prob_suboptimal * 100.0);
    }
  }
  return 0;
}
