#include "blackbox/narrow_optimizer.h"

#include "common/macros.h"

namespace costsense::blackbox {

NarrowOptimizer::NarrowOptimizer(const opt::Optimizer& optimizer,
                                 const query::Query& query, bool white_box)
    : optimizer_(optimizer), query_(query), white_box_(white_box) {}

core::OracleResult NarrowOptimizer::Optimize(const core::CostVector& c) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  const Result<opt::Optimized> r = optimizer_.Optimize(query_, c);
  COSTSENSE_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  core::OracleResult out;
  out.plan_id = r->plan->id;
  out.total_cost = r->total_cost;
  if (white_box_) out.usage = r->plan->usage;
  return out;
}

size_t NarrowOptimizer::dims() const { return optimizer_.space().dims(); }

Result<opt::Optimized> NarrowOptimizer::Inspect(
    const core::CostVector& c) const {
  return optimizer_.Optimize(query_, c);
}

}  // namespace costsense::blackbox
