#ifndef COSTSENSE_BLACKBOX_NARROW_OPTIMIZER_H_
#define COSTSENSE_BLACKBOX_NARROW_OPTIMIZER_H_

#include <atomic>

#include "core/oracle.h"
#include "opt/optimizer.h"
#include "query/query.h"

namespace costsense::blackbox {

/// Adapts (optimizer, query) to the PlanOracle interface the sensitivity
/// algorithms consume. In narrow mode it reveals only the chosen plan's
/// identity and estimated total cost — the "limitations of commercial
/// optimizers" the paper works around with least-squares extraction
/// (Section 6.1.1). White-box mode additionally exposes the usage vector,
/// which the paper could not do with DB2; it exists to validate the
/// extraction and to accelerate the figure sweeps.
class NarrowOptimizer : public core::PlanOracle {
 public:
  /// Neither the optimizer nor the query is owned; both must outlive this.
  NarrowOptimizer(const opt::Optimizer& optimizer, const query::Query& query,
                  bool white_box = false);

  core::OracleResult Optimize(const core::CostVector& c) override;
  size_t dims() const override;

  /// Number of optimization calls made so far (the paper's experiments are
  /// budgeted in optimizer invocations). The counter is atomic, and
  /// Optimize() touches no other mutable state, so one NarrowOptimizer may
  /// be shared by concurrent probes (e.g. behind runtime::CachingOracle).
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }
  void ResetCallCount() { calls_.store(0, std::memory_order_relaxed); }

  /// Re-runs the optimizer at `c` and returns the full plan (for EXPLAIN
  /// inspection once an interesting cost point is identified).
  [[nodiscard]] Result<opt::Optimized> Inspect(const core::CostVector& c) const;

 private:
  const opt::Optimizer& optimizer_;
  const query::Query& query_;
  bool white_box_;
  std::atomic<size_t> calls_{0};
};

}  // namespace costsense::blackbox

#endif  // COSTSENSE_BLACKBOX_NARROW_OPTIMIZER_H_
