#include "catalog/catalog.h"

#include <bit>

#include "common/macros.h"

namespace costsense::catalog {
namespace {

/// FNV-1a accumulation helpers for Catalog::Fingerprint(). Doubles are
/// hashed by IEEE-754 bit pattern, so any statistical perturbation —
/// however small — changes the fingerprint.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashDouble(uint64_t& h, double v) {
  HashU64(h, std::bit_cast<uint64_t>(v));
}
void HashString(uint64_t& h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

int Catalog::AddTable(Table table) {
  for (const Table& t : tables_) {
    COSTSENSE_CHECK_MSG(t.name() != table.name(), "duplicate table name");
  }
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

int Catalog::AddIndex(std::string name, int table_id,
                      std::vector<size_t> key_columns, bool unique,
                      bool clustered) {
  COSTSENSE_CHECK(table_id >= 0 &&
                  table_id < static_cast<int>(tables_.size()));
  indexes_.push_back(MakeIndex(std::move(name), table_id, tables_[table_id],
                               std::move(key_columns), unique, clustered,
                               config_.page_size_bytes));
  return static_cast<int>(indexes_.size()) - 1;
}

const Table& Catalog::table(int id) const {
  COSTSENSE_CHECK(id >= 0 && id < static_cast<int>(tables_.size()));
  return tables_[id];
}

const Index& Catalog::index(int id) const {
  COSTSENSE_CHECK(id >= 0 && id < static_cast<int>(indexes_.size()));
  return indexes_[id];
}

Result<int> Catalog::TableId(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return static_cast<int>(i);
  }
  return Status::NotFound("no table named '" + name + "'");
}

std::vector<int> Catalog::IndexesOn(int table_id) const {
  std::vector<int> out;
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].table_id == table_id) out.push_back(static_cast<int>(i));
  }
  return out;
}

uint64_t Catalog::Fingerprint() const {
  uint64_t h = kFnvOffset;
  HashDouble(h, config_.page_size_bytes);
  HashDouble(h, config_.buffer_pool_pages);
  HashDouble(h, config_.sort_heap_pages);
  HashU64(h, static_cast<uint64_t>(config_.degree_of_parallelism));
  HashU64(h, static_cast<uint64_t>(config_.optimization_level));
  HashDouble(h, config_.prefetch_pages);
  HashDouble(h, config_.merge_fan_in);
  HashDouble(h, config_.hash_build_memory_fraction);
  HashDouble(h, config_.cpu_tuple_instructions);
  HashDouble(h, config_.cpu_predicate_instructions);
  HashDouble(h, config_.cpu_probe_instructions);
  HashDouble(h, config_.cpu_hash_build_instructions);
  HashDouble(h, config_.cpu_hash_probe_instructions);
  HashDouble(h, config_.cpu_sort_compare_instructions);
  HashDouble(h, config_.cpu_agg_instructions);
  HashDouble(h, config_.cpu_join_output_instructions);

  HashU64(h, tables_.size());
  for (const Table& t : tables_) {
    HashString(h, t.name());
    HashDouble(h, t.row_count());
    HashDouble(h, t.row_width_bytes());
    HashDouble(h, t.pages());
    HashU64(h, t.num_columns());
    for (const Column& c : t.columns()) {
      HashString(h, c.name);
      HashDouble(h, c.stats.n_distinct);
      HashDouble(h, c.stats.min_value);
      HashDouble(h, c.stats.max_value);
      HashDouble(h, c.stats.avg_width_bytes);
    }
  }

  HashU64(h, indexes_.size());
  for (const Index& idx : indexes_) {
    HashString(h, idx.name);
    HashU64(h, static_cast<uint64_t>(idx.table_id));
    HashU64(h, idx.key_columns.size());
    for (size_t col : idx.key_columns) HashU64(h, col);
    HashU64(h, idx.unique ? 1 : 0);
    HashU64(h, idx.clustered ? 1 : 0);
    HashDouble(h, idx.leaf_pages);
    HashU64(h, static_cast<uint64_t>(idx.levels));
    HashDouble(h, idx.key_width_bytes);
  }

  // Final avalanche so near-identical catalogs don't share low bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

int Catalog::FindIndexByLeadingColumn(int table_id, size_t column) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].table_id == table_id &&
        indexes_[i].key_columns.front() == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace costsense::catalog
