#include "catalog/catalog.h"

#include "common/macros.h"

namespace costsense::catalog {

int Catalog::AddTable(Table table) {
  for (const Table& t : tables_) {
    COSTSENSE_CHECK_MSG(t.name() != table.name(), "duplicate table name");
  }
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

int Catalog::AddIndex(std::string name, int table_id,
                      std::vector<size_t> key_columns, bool unique,
                      bool clustered) {
  COSTSENSE_CHECK(table_id >= 0 &&
                  table_id < static_cast<int>(tables_.size()));
  indexes_.push_back(MakeIndex(std::move(name), table_id, tables_[table_id],
                               std::move(key_columns), unique, clustered,
                               config_.page_size_bytes));
  return static_cast<int>(indexes_.size()) - 1;
}

const Table& Catalog::table(int id) const {
  COSTSENSE_CHECK(id >= 0 && id < static_cast<int>(tables_.size()));
  return tables_[id];
}

const Index& Catalog::index(int id) const {
  COSTSENSE_CHECK(id >= 0 && id < static_cast<int>(indexes_.size()));
  return indexes_[id];
}

Result<int> Catalog::TableId(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return static_cast<int>(i);
  }
  return Status::NotFound("no table named '" + name + "'");
}

std::vector<int> Catalog::IndexesOn(int table_id) const {
  std::vector<int> out;
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].table_id == table_id) out.push_back(static_cast<int>(i));
  }
  return out;
}

int Catalog::FindIndexByLeadingColumn(int table_id, size_t column) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].table_id == table_id &&
        indexes_[i].key_columns.front() == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace costsense::catalog
