#ifndef COSTSENSE_CATALOG_CATALOG_H_
#define COSTSENSE_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "catalog/system_config.h"
#include "catalog/table.h"
#include "common/status.h"

namespace costsense::catalog {

/// The system catalog: tables, indexes and configuration. This plays the
/// role of the DB2 catalog into which the paper loaded the db2look dump of
/// the benchmark system's statistics (Section 7.2) — the optimizer reads
/// everything it knows about the data from here.
class Catalog {
 public:
  explicit Catalog(SystemConfig config = {}) : config_(std::move(config)) {}

  const SystemConfig& config() const { return config_; }

  /// Registers a table; returns its id. Table names must be unique.
  int AddTable(Table table);
  /// Builds and registers an index over table `table_id`; returns its id.
  int AddIndex(std::string name, int table_id, std::vector<size_t> key_columns,
               bool unique, bool clustered);

  size_t num_tables() const { return tables_.size(); }
  size_t num_indexes() const { return indexes_.size(); }

  const Table& table(int id) const;
  const Index& index(int id) const;

  [[nodiscard]] Result<int> TableId(const std::string& name) const;

  /// Ids of all indexes on `table_id`.
  std::vector<int> IndexesOn(int table_id) const;

  /// The first index on `table_id` whose leading key column is `column`,
  /// or -1 if none exists.
  int FindIndexByLeadingColumn(int table_id, size_t column) const;

  /// A stable 64-bit hash of everything the optimizer reads from this
  /// catalog: system configuration, per-table and per-column statistics,
  /// and every index definition. Two catalogs that fingerprint equal
  /// produce identical plan choices at identical cost points, so the hash
  /// keys persisted oracle caches (runtime/cache_store.h) — a snapshot
  /// built over a different catalog (a different scale factor, or a
  /// q-error-perturbed variant of this one) is refused on load.
  uint64_t Fingerprint() const;

 private:
  SystemConfig config_;
  std::vector<Table> tables_;
  std::vector<Index> indexes_;
};

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_CATALOG_H_
