#include "catalog/column.h"

namespace costsense::catalog {

Column MakeColumn(std::string name, double n_distinct, double min_value,
                  double max_value, double avg_width_bytes) {
  Column c;
  c.name = std::move(name);
  c.stats.n_distinct = n_distinct;
  c.stats.min_value = min_value;
  c.stats.max_value = max_value;
  c.stats.avg_width_bytes = avg_width_bytes;
  return c;
}

}  // namespace costsense::catalog
