#ifndef COSTSENSE_CATALOG_COLUMN_H_
#define COSTSENSE_CATALOG_COLUMN_H_

#include <string>

namespace costsense::catalog {

/// Per-column statistics of the kind RUNSTATS collects and db2look dumps
/// (the paper transplanted exactly such statistics from IBM's published
/// 100 GB TPC-H run into an empty catalog, Section 7.2).
struct ColumnStats {
  /// Number of distinct values (COLCARD).
  double n_distinct = 1.0;
  /// Low/high key values for range selectivity (LOW2KEY/HIGH2KEY); only
  /// meaningful for numeric-ish columns.
  double min_value = 0.0;
  double max_value = 0.0;
  /// Average stored width in bytes (AVGCOLLEN).
  double avg_width_bytes = 8.0;
};

/// A column of a table.
struct Column {
  std::string name;
  ColumnStats stats;
};

/// Convenience constructor for a column whose values are uniform over
/// [min_value, max_value] with `n_distinct` distinct values.
Column MakeColumn(std::string name, double n_distinct, double min_value,
                  double max_value, double avg_width_bytes);

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_COLUMN_H_
