#include "catalog/histogram.h"

#include <algorithm>
#include <cmath>

namespace costsense::catalog {

Result<EquiDepthHistogram> EquiDepthHistogram::Build(
    std::vector<double> values, size_t num_buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot build a histogram of nothing");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  num_buckets = std::min(num_buckets, n);

  EquiDepthHistogram h;
  h.total_rows_ = static_cast<double>(n);
  h.bounds_.push_back(values.front());

  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    // Target end of this bucket; extend past duplicates so a value never
    // straddles a boundary.
    size_t end = (b + 1) * n / num_buckets;
    if (end < n) {
      while (end < n && values[end] == values[end - 1]) ++end;
    }
    if (end <= start) continue;  // swallowed by a duplicate run
    double distinct = 1.0;
    for (size_t i = start + 1; i < end; ++i) {
      if (values[i] != values[i - 1]) distinct += 1.0;
    }
    h.bounds_.push_back(values[end - 1]);
    h.counts_.push_back(static_cast<double>(end - start));
    h.distinct_.push_back(distinct);
    start = end;
    if (start >= n) break;
  }
  return h;
}

double EquiDepthHistogram::FractionBelow(double v) const {
  if (v < bounds_.front()) return 0.0;
  if (v >= bounds_.back()) return 1.0;
  double below = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double lo = bounds_[b];
    const double hi = bounds_[b + 1];
    if (v >= hi) {
      below += counts_[b];
      continue;
    }
    // Linear interpolation within the bucket.
    const double width = hi - lo;
    const double frac = width > 0.0 ? (v - lo) / width : 1.0;
    below += counts_[b] * std::clamp(frac, 0.0, 1.0);
    break;
  }
  return below / total_rows_;
}

double EquiDepthHistogram::RangeSelectivity(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return std::clamp(FractionBelow(hi) - FractionBelow(lo) +
                        EqualitySelectivity(lo),
                    0.0, 1.0);
}

double EquiDepthHistogram::EqualitySelectivity(double v) const {
  if (v < bounds_.front() || v > bounds_.back()) return 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (v <= bounds_[b + 1] || b + 1 == counts_.size()) {
      const double distinct = std::max(1.0, distinct_[b]);
      return counts_[b] / distinct / total_rows_;
    }
  }
  return 0.0;
}

}  // namespace costsense::catalog
