#ifndef COSTSENSE_CATALOG_HISTOGRAM_H_
#define COSTSENSE_CATALOG_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace costsense::catalog {

/// An equi-depth histogram — the "WITH DISTRIBUTION" statistics the paper's
/// RUNSTATS invocation collects (Section 7.2). Bucket i covers
/// (bound[i], bound[i+1]] and holds ~1/buckets of the rows; selectivity
/// estimates interpolate linearly within a bucket.
class EquiDepthHistogram {
 public:
  /// Builds a histogram with up to `num_buckets` buckets over `values`
  /// (need not be sorted; copied and sorted internally). Fails on empty
  /// input or zero buckets.
  [[nodiscard]] static Result<EquiDepthHistogram> Build(std::vector<double> values,
                                          size_t num_buckets);

  size_t num_buckets() const { return counts_.size(); }
  double total_rows() const { return total_rows_; }
  /// Bucket boundaries, size num_buckets() + 1; bounds().front() is the
  /// minimum, bounds().back() the maximum.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Fraction of rows with value <= v (0 below the min, 1 above the max,
  /// linear interpolation within a bucket).
  double FractionBelow(double v) const;

  /// Selectivity of lo <= value <= hi.
  double RangeSelectivity(double lo, double hi) const;

  /// Selectivity of value == v: the containing bucket's fraction divided
  /// by its estimated distinct values.
  double EqualitySelectivity(double v) const;

 private:
  EquiDepthHistogram() = default;

  std::vector<double> bounds_;       // num_buckets + 1 edges
  std::vector<double> counts_;       // rows per bucket
  std::vector<double> distinct_;     // distinct values per bucket
  double total_rows_ = 0.0;
};

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_HISTOGRAM_H_
