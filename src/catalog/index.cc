#include "catalog/index.h"

#include <cmath>

#include "common/macros.h"

namespace costsense::catalog {

namespace {
constexpr double kRidBytes = 8.0;
constexpr double kLeafFillFactor = 0.7;
}  // namespace

Index MakeIndex(std::string name, int table_id, const Table& table,
                std::vector<size_t> key_columns, bool unique, bool clustered,
                double page_size_bytes) {
  COSTSENSE_CHECK(!key_columns.empty());
  Index idx;
  idx.name = std::move(name);
  idx.table_id = table_id;
  idx.unique = unique;
  idx.clustered = clustered;

  double key_width = 0.0;
  for (size_t col : key_columns) {
    COSTSENSE_CHECK(col < table.num_columns());
    key_width += table.column(col).stats.avg_width_bytes;
  }
  idx.key_columns = std::move(key_columns);
  idx.key_width_bytes = key_width;

  const double entry_bytes = key_width + kRidBytes;
  const double entries_per_leaf =
      std::max(2.0, std::floor(page_size_bytes * kLeafFillFactor /
                               entry_bytes));
  idx.leaf_pages = std::max(1.0, std::ceil(table.row_count() /
                                           entries_per_leaf));
  // Internal fan-out approximately equals leaf entry density.
  const double fanout = entries_per_leaf;
  double level_pages = idx.leaf_pages;
  int levels = 1;
  while (level_pages > 1.0) {
    level_pages = std::ceil(level_pages / fanout);
    ++levels;
  }
  idx.levels = levels;
  return idx;
}

}  // namespace costsense::catalog
