#ifndef COSTSENSE_CATALOG_INDEX_H_
#define COSTSENSE_CATALOG_INDEX_H_

#include <string>
#include <vector>

#include "catalog/table.h"

namespace costsense::catalog {

/// A B-tree index over one or more columns of a table, with the derived
/// statistics the cost model needs (leaf page count and tree height).
struct Index {
  std::string name;
  int table_id = -1;
  /// Ordinal positions of the key columns in the table, leading first.
  std::vector<size_t> key_columns;
  bool unique = false;
  /// Clustered: table rows are stored in index order, so a range of the
  /// index maps to a contiguous range of data pages.
  bool clustered = false;
  double leaf_pages = 1.0;
  /// Non-leaf levels above the leaves (probe cost).
  int levels = 1;
  /// Total key width in bytes (for index-only width estimates).
  double key_width_bytes = 8.0;
};

/// Builds an index over `table` (which has id `table_id`), deriving leaf
/// page count and levels from the table's statistics: leaves hold
/// (key + 8-byte RID) entries at 70% fill; levels = ceil(log_fanout).
Index MakeIndex(std::string name, int table_id, const Table& table,
                std::vector<size_t> key_columns, bool unique, bool clustered,
                double page_size_bytes);

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_INDEX_H_
