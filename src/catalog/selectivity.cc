#include "catalog/selectivity.h"

#include <algorithm>
#include <cmath>

namespace costsense::catalog {

double EqualitySelectivity(const ColumnStats& stats) {
  return 1.0 / std::max(1.0, stats.n_distinct);
}

double RangeSelectivity(const ColumnStats& stats, double value_lo,
                        double value_hi) {
  const double width = stats.max_value - stats.min_value;
  if (width <= 0.0) return 1.0;
  const double lo = std::max(value_lo, stats.min_value);
  const double hi = std::min(value_hi, stats.max_value);
  if (hi <= lo) return 0.0;
  return std::clamp((hi - lo) / width, 0.0, 1.0);
}

double JoinSelectivity(const ColumnStats& left, const ColumnStats& right) {
  return 1.0 / std::max({1.0, left.n_distinct, right.n_distinct});
}

double ExpectedPagesFetched(double rows_fetched, double table_rows,
                            double table_pages) {
  if (rows_fetched <= 0.0 || table_pages <= 0.0) return 0.0;
  if (table_pages <= 1.0) return 1.0;
  // pages * (1 - (1 - 1/pages)^k), with (1-1/p)^k = exp(k * log1p(-1/p))
  // to stay stable when p is ~1e7 and k is ~1e9.
  const double log_miss = rows_fetched * std::log1p(-1.0 / table_pages);
  const double touched = table_pages * -std::expm1(log_miss);
  return std::min(touched, std::min(rows_fetched, table_pages));
}

}  // namespace costsense::catalog
