#ifndef COSTSENSE_CATALOG_SELECTIVITY_H_
#define COSTSENSE_CATALOG_SELECTIVITY_H_

#include "catalog/column.h"

namespace costsense::catalog {

/// Selinger-style default selectivity of an equality predicate on the
/// column: 1 / n_distinct.
double EqualitySelectivity(const ColumnStats& stats);

/// Selectivity of a range predicate value_lo <= col <= value_hi under the
/// uniform assumption; clamps to [0, 1]. Open-ended ranges pass the
/// column's own min/max.
double RangeSelectivity(const ColumnStats& stats, double value_lo,
                        double value_hi);

/// Selinger default equi-join selectivity: 1 / max(ndv_left, ndv_right).
double JoinSelectivity(const ColumnStats& left, const ColumnStats& right);

/// Expected number of distinct pages touched when fetching `rows_fetched`
/// random rows of a table with `table_rows` rows on `table_pages` pages —
/// the Cardenas/Yao estimate pages * (1 - (1 - 1/pages)^rows), evaluated
/// in a numerically stable way for the billions-of-rows scale of TPC-H
/// SF 100. Used to price unclustered index fetches.
double ExpectedPagesFetched(double rows_fetched, double table_rows,
                            double table_pages);

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_SELECTIVITY_H_
