#include "catalog/system_config.h"

#include "common/strings.h"

namespace costsense::catalog {

std::vector<std::pair<std::string, std::string>>
SystemConfig::ToParameterTable() const {
  return {
      {"DB2_EXTENDED_OPTIMIZATION", "YES"},
      {"DB2_ANTIJOIN", "Y"},
      {"DB2_CORRELATED_PREDICATES", "Y"},
      {"DB2_NEW_CORR_SQ_FF", "Y"},
      {"DB2_VECTOR", "Y"},
      {"DB2_HASH_JOIN", "Y"},
      {"DB2_BINSORT", "Y"},
      {"INTRA_PARALLEL", "YES"},
      {"FEDERATED", "NO"},
      {"DFT_DEGREE", StrFormat("%d", degree_of_parallelism)},
      {"AVG_APPLS", "1"},
      {"LOCKLIST", "16384"},
      {"DFT_QUERYOPT", StrFormat("%d", optimization_level)},
      {"OPT_BUFFPAGE", StrFormat("%.0f", buffer_pool_pages)},
      {"OPT_SORTHEAP", StrFormat("%.0f", sort_heap_pages)},
  };
}

}  // namespace costsense::catalog
