#ifndef COSTSENSE_CATALOG_SYSTEM_CONFIG_H_
#define COSTSENSE_CATALOG_SYSTEM_CONFIG_H_

#include <string>
#include <vector>

namespace costsense::catalog {

/// Optimizer-visible system configuration, mirroring the "Tunable System
/// Parameters" the paper transplanted from the TPC-H Full Disclosure Report
/// (paper Section 7.3): a 2.5 GB buffer pool (OPT_BUFFPAGE = 640000 pages)
/// and a 512 MB sort heap (OPT_SORTHEAP = 128000 pages), optimization level
/// 7, degree 32.
struct SystemConfig {
  /// Page size in bytes (DB2 default 4 KiB).
  double page_size_bytes = 4096.0;
  /// Buffer pool pages the optimizer assumes (OPT_BUFFPAGE).
  double buffer_pool_pages = 640000.0;
  /// Sort heap pages the optimizer assumes (OPT_SORTHEAP).
  double sort_heap_pages = 128000.0;
  /// Declared degree of parallelism (DFT_DEGREE). Kept for fidelity with
  /// the paper's setup; the cost formulas are single-stream (parallelism
  /// rescales all plans alike and cancels out of relative costs).
  int degree_of_parallelism = 32;
  /// Optimization level (DFT_QUERYOPT). Level >= 5 enables bushy join
  /// trees in this optimizer, mirroring DB2's "robust set of alternative
  /// plans" (paper Section 7.1).
  int optimization_level = 7;

  /// Pages fetched per sequential-I/O "seek": sequential scans pay one
  /// seek per prefetch extent rather than one per page.
  double prefetch_pages = 32.0;
  /// Maximum runs merged per external-sort pass.
  double merge_fan_in = 64.0;
  /// Fraction of the buffer pool a hash join build side may occupy before
  /// it must partition to temp.
  double hash_build_memory_fraction = 0.8;

  // CPU path lengths, in instructions (the CPU resource is priced in
  // time-units per instruction; the paper's starting value is 1e-6).
  double cpu_tuple_instructions = 300.0;      // touch one tuple
  double cpu_predicate_instructions = 100.0;  // evaluate one predicate
  double cpu_probe_instructions = 500.0;      // one B-tree probe
  double cpu_hash_build_instructions = 200.0;
  double cpu_hash_probe_instructions = 150.0;
  double cpu_sort_compare_instructions = 80.0;
  double cpu_agg_instructions = 120.0;
  double cpu_join_output_instructions = 60.0;  // emit one joined tuple

  /// Renders the DB2-style parameter table of paper Section 7.3 with this
  /// configuration's effective values (used by bench/table_system_params).
  std::vector<std::pair<std::string, std::string>> ToParameterTable() const;
};

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_SYSTEM_CONFIG_H_
