#include "catalog/table.h"

#include <cmath>

#include "common/macros.h"

namespace costsense::catalog {

namespace {
constexpr double kRowOverheadBytes = 10.0;  // header + null map + slot
constexpr double kPageFillFactor = 0.9;
}  // namespace

Table::Table(std::string name, double row_count, double page_size_bytes,
             std::vector<Column> columns)
    : name_(std::move(name)),
      row_count_(row_count),
      columns_(std::move(columns)) {
  COSTSENSE_CHECK_MSG(row_count_ >= 0.0, "negative row count");
  COSTSENSE_CHECK_MSG(page_size_bytes > 0.0, "page size must be positive");
  double width = kRowOverheadBytes;
  for (const Column& c : columns_) width += c.stats.avg_width_bytes;
  row_width_bytes_ = width;
  const double rows_per_page =
      std::max(1.0, std::floor(page_size_bytes * kPageFillFactor / width));
  pages_ = std::max(1.0, std::ceil(row_count_ / rows_per_page));
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table " + name_);
}

}  // namespace costsense::catalog
