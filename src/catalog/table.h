#ifndef COSTSENSE_CATALOG_TABLE_H_
#define COSTSENSE_CATALOG_TABLE_H_

#include <string>
#include <vector>

#include "catalog/column.h"
#include "common/status.h"

namespace costsense::catalog {

/// A base table with its statistics. Row counts and page counts are
/// doubles because TPC-H at scale factor 100 has 600M-row tables and all
/// cost arithmetic is in floating point anyway.
class Table {
 public:
  Table(std::string name, double row_count, double page_size_bytes,
        std::vector<Column> columns);

  const std::string& name() const { return name_; }
  double row_count() const { return row_count_; }
  /// Data pages, derived from row count, total row width and page size
  /// (90% fill).
  double pages() const { return pages_; }
  /// Total row width in bytes (sum of column widths + per-row overhead).
  double row_width_bytes() const { return row_width_bytes_; }

  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t i) const { return columns_[i]; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the column with `name`, or NotFound.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

 private:
  std::string name_;
  double row_count_;
  double row_width_bytes_;
  double pages_;
  std::vector<Column> columns_;
};

}  // namespace costsense::catalog

#endif  // COSTSENSE_CATALOG_TABLE_H_
