#ifndef COSTSENSE_COMMON_MACROS_H_
#define COSTSENSE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// CHECK-style invariant macros. These guard internal invariants whose
/// violation indicates a programming error; they abort rather than return a
/// Status. User-input validation paths return Status instead.
#define COSTSENSE_CHECK(cond)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define COSTSENSE_CHECK_MSG(cond, msg)                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status from an expression that yields a Status.
#define COSTSENSE_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::costsense::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                           \
  } while (0)

#endif  // COSTSENSE_COMMON_MACROS_H_
