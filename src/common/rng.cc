#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace costsense {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::LogUniform(double lo, double hi) {
  COSTSENSE_CHECK(lo > 0.0 && hi >= lo);
  const double u = Uniform(std::log(lo), std::log(hi));
  return std::exp(u);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Collapse the 256-bit state into one word, perturb it by the stream id,
  // and let the seeding splitmix re-expand it. Distinct stream ids give
  // uncorrelated children; the parent state is left untouched.
  uint64_t mixed = s_[0];
  mixed ^= Rotl(s_[1], 13);
  mixed ^= Rotl(s_[2], 29);
  mixed ^= Rotl(s_[3], 43);
  uint64_t sm = stream_id + 0x9e3779b97f4a7c15ULL;
  mixed ^= SplitMix64(sm);
  return Rng(mixed);
}

uint64_t Rng::Index(uint64_t n) {
  COSTSENSE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x = Next();
  while (x >= limit) x = Next();
  return x % n;
}

}  // namespace costsense
