#ifndef COSTSENSE_COMMON_RNG_H_
#define COSTSENSE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace costsense {

/// Deterministic pseudo-random number generator (splitmix64-seeded
/// xoshiro256**). All stochastic algorithms in costsense (plan discovery
/// sampling, least-squares perturbation, property tests) take an explicit
/// Rng so that experiments are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a double uniform in [0, 1).
  double Uniform();

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns log-uniform value in [lo, hi]; lo and hi must be positive.
  /// Used to sample multiplicative cost errors the way the paper sweeps
  /// delta factors.
  double LogUniform(double lo, double hi);

  /// Returns an integer uniform in [0, n); n must be positive.
  uint64_t Index(uint64_t n);

  /// Derives an independent child generator from this generator's current
  /// state and `stream_id`, without advancing this generator. The same
  /// (state, stream_id) pair always yields the same child stream, so
  /// per-task generators forked before a parallel fan-out are
  /// deterministic regardless of thread count or execution order.
  Rng Fork(uint64_t stream_id) const;

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace costsense

#endif  // COSTSENSE_COMMON_RNG_H_
