#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace costsense {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace costsense
