#ifndef COSTSENSE_COMMON_STATUS_H_
#define COSTSENSE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace costsense {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// A dependency (optimizer backend, device, remote interface) is
  /// transiently unable to answer; retrying the same call may succeed.
  kUnavailable,
  /// A per-call or per-run time budget expired before the operation
  /// completed.
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error result, modeled after absl::Status.
///
/// costsense does not throw exceptions across API boundaries; fallible
/// operations return `Status` or `Result<T>` instead. The class-level
/// [[nodiscard]] makes the compiler reject silently dropped statuses from
/// any call site (enforced under -DCOSTSENSE_WERROR=ON); the per-function
/// attributes repeat the contract where the declaration is read.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Access the value only after checking `ok()`; `value()` on an error
/// aborts the process (there are no exceptions to throw).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  Result(T value) : rep_(std::move(value)) {}
  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error status, or OK if a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(rep_));
}

}  // namespace costsense

#endif  // COSTSENSE_COMMON_STATUS_H_
