#include "common/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace costsense {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v) {
  if (v == 0.0) return "0";
  const double mag = std::fabs(v);
  std::string s = (mag >= 1e7 || mag < 1e-4) ? StrFormat("%.4g", v)
                                             : StrFormat("%.6f", v);
  // Trim trailing zeros after a decimal point (but keep "1e+07" intact).
  if (s.find('e') == std::string::npos &&
      s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace costsense
