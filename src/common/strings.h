#ifndef COSTSENSE_COMMON_STRINGS_H_
#define COSTSENSE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace costsense {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    // costsense-lint: allow(R3, "format-checking attribute, not an output call")
    __attribute__((format(printf, 1, 2)));

/// Formats a double compactly for plan ids and reports (trims trailing
/// zeros, uses scientific notation for very large/small magnitudes).
std::string FormatDouble(double v);

}  // namespace costsense

#endif  // COSTSENSE_COMMON_STRINGS_H_
