#include "core/bounds.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace costsense::core {

double Theorem1UpperBound(double gamma, double delta) {
  COSTSENSE_CHECK(delta >= 1.0 && gamma > 0.0);
  return gamma * delta * delta;
}

RatioBound ComputeRatioBound(const UsageVector& a, const UsageVector& b,
                             double zero_tol) {
  COSTSENSE_CHECK(a.size() == b.size());
  RatioBound out;
  out.r_min = std::numeric_limits<double>::infinity();
  out.r_max = -std::numeric_limits<double>::infinity();
  bool any_ratio = false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Absolute zero test: Theorem 2 hinges on whether a plan uses the
    // resource at all, not on how lopsided the pair's usage is (lopsided
    // but positive pairs just get a large finite r_max).
    const bool zero_a = a[i] <= zero_tol;
    const bool zero_b = b[i] <= zero_tol;
    if (zero_a && zero_b) continue;  // neither plan touches this resource
    if (zero_a != zero_b) {
      out.complementary = true;
      continue;
    }
    const double r = a[i] / b[i];
    out.r_min = std::min(out.r_min, r);
    out.r_max = std::max(out.r_max, r);
    any_ratio = true;
  }
  if (!any_ratio) {
    // Both vectors are (numerically) zero everywhere, or every dimension
    // was complementary: fall back to a neutral ratio.
    out.r_min = 1.0;
    out.r_max = 1.0;
  }
  return out;
}

double WorstCaseConstantBound(const std::vector<PlanUsage>& plans,
                              double zero_tol) {
  double bound = 1.0;
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size(); ++j) {
      if (i == j) continue;
      const RatioBound rb =
          ComputeRatioBound(plans[i].usage, plans[j].usage, zero_tol);
      if (rb.complementary) {
        return std::numeric_limits<double>::infinity();
      }
      bound = std::max(bound, rb.r_max);
    }
  }
  return bound;
}

}  // namespace costsense::core
