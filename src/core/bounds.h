#ifndef COSTSENSE_CORE_BOUNDS_H_
#define COSTSENSE_CORE_BOUNDS_H_

#include <vector>

#include "core/vectors.h"

namespace costsense::core {

/// Theorem 1 (paper Section 5.4): if every resource-cost estimate is within
/// a multiplicative factor of [1/delta, delta] of the truth and
/// T_rel(a,b,C) = gamma, then T_rel under any feasible costs lies in
/// [gamma / delta^2, gamma * delta^2]. This returns the upper end,
/// gamma * delta^2. The bound is tight (paper Example 1).
double Theorem1UpperBound(double gamma, double delta);

/// Result of the Theorem 2 analysis of one plan pair.
struct RatioBound {
  /// True if the pair is complementary: some resource is used by exactly
  /// one of the two plans (paper Section 5.5). Theorem 2 does not apply.
  bool complementary = false;
  /// min_i a_i / b_i over dims where the ratio is defined (only meaningful
  /// when !complementary).
  double r_min = 0.0;
  /// max_i a_i / b_i (only meaningful when !complementary).
  double r_max = 0.0;
};

/// Theorem 2 (paper Section 5.5): for non-complementary plans a and b the
/// relative total cost under *any* positive cost vector lies within
/// [r_min, r_max] of element-wise usage ratios. Elements where both plans
/// use (approximately) zero are skipped; an element where exactly one plan
/// uses zero marks the pair complementary. `zero_tol` is the absolute
/// threshold below which a usage element counts as zero (any genuine
/// access in this cost model charges at least ~0.01 of a page or seek).
RatioBound ComputeRatioBound(const UsageVector& a, const UsageVector& b,
                             double zero_tol = 1e-9);

/// Corollary to Theorem 2 (paper Eq. 9): if no pair of candidate optimal
/// plans is complementary, the optimizer's choice is within
///   max_{a,b} max(r_min^{a,b}, r_max^{a,b})
/// of optimal, for any cost errors whatsoever. Returns +infinity if some
/// pair is complementary (the constant bound does not exist).
double WorstCaseConstantBound(const std::vector<PlanUsage>& plans,
                              double zero_tol = 1e-9);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_BOUNDS_H_
