#include "core/complementarity.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace costsense::core {

namespace {

/// Absolute zero test: complementarity is about whether a plan touches a
/// resource AT ALL (paper Section 5.5), so the threshold must not scale
/// with the rival's usage — a plan that rescans a one-page table 1e14
/// times must not make the rival's single genuine access look like zero.
/// Any real touch in this cost model is at least ~0.01 of a page/seek.
bool IsZero(double v, double /*other*/, double tol) { return v <= tol; }

}  // namespace

PairAnalysis AnalyzePair(const UsageVector& a, const UsageVector& b,
                         const std::vector<DimInfo>& dims,
                         const ComplementarityOptions& options) {
  COSTSENSE_CHECK(a.size() == b.size());
  COSTSENSE_CHECK(dims.size() == a.size());

  PairAnalysis out;
  // Total (data + index) usage per table per plan, to decide whether a
  // plan touches a table at all.
  std::map<int, double> touch_a;
  std::map<int, double> touch_b;
  // Tables with a zero/non-zero mismatch on some table/index dimension.
  std::map<int, bool> table_dim_mismatch;

  for (size_t i = 0; i < a.size(); ++i) {
    const bool zero_a = IsZero(a[i], b[i], options.zero_tol);
    const bool zero_b = IsZero(b[i], a[i], options.zero_tol);
    if (dims[i].cls == DimClass::kTable || dims[i].cls == DimClass::kIndex) {
      touch_a[dims[i].table_id] += a[i];
      touch_b[dims[i].table_id] += b[i];
    }
    if (zero_a && zero_b) continue;
    if (zero_a != zero_b) {
      out.complementary = true;
      switch (dims[i].cls) {
        case DimClass::kTemp:
          // Exactly one plan materializes sorted runs / hash partitions.
          out.temp_complementary = true;
          break;
        case DimClass::kIndex:
        case DimClass::kTable:
          table_dim_mismatch[dims[i].table_id] = true;
          break;
        case DimClass::kCpu:
        case DimClass::kOther:
          break;  // every plan burns CPU; plain complementarity only
      }
      continue;
    }
    const double ratio = std::max(a[i] / b[i], b[i] / a[i]);
    out.max_element_ratio = std::max(out.max_element_ratio, ratio);
  }

  // Attribute per-table mismatches (paper Section 5.6): if one plan does
  // not touch the table at all (neither data nor index pages) the plans
  // retrieve different numbers of tuples — table complementary. If both
  // plans touch the table but through different structures (index-only vs
  // scan, probe vs fetch), that is an access-path difference.
  for (const auto& [table_id, mismatch] : table_dim_mismatch) {
    if (!mismatch) continue;
    const double ta = touch_a[table_id];
    const double tb = touch_b[table_id];
    const bool a_touches = !IsZero(ta, tb, options.zero_tol);
    const bool b_touches = !IsZero(tb, ta, options.zero_tol);
    if (a_touches != b_touches) {
      out.table_complementary = true;
    } else {
      out.access_path_complementary = true;
    }
  }
  return out;
}

ComplementarityReport AnalyzePlanSet(const std::vector<PlanUsage>& plans,
                                     const std::vector<DimInfo>& dims,
                                     const ComplementarityOptions& options) {
  ComplementarityReport report;
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = i + 1; j < plans.size(); ++j) {
      PairAnalysis pa =
          AnalyzePair(plans[i].usage, plans[j].usage, dims, options);
      pa.plan_a = i;
      pa.plan_b = j;
      ++report.num_pairs;
      if (pa.complementary) ++report.num_complementary;
      if (pa.table_complementary) ++report.num_table;
      if (pa.access_path_complementary) ++report.num_access_path;
      if (pa.temp_complementary) ++report.num_temp;
      if (!pa.complementary &&
          pa.max_element_ratio > options.near_ratio_threshold) {
        ++report.num_near_complementary;
      }
      report.pairs.push_back(std::move(pa));
    }
  }
  return report;
}

}  // namespace costsense::core
