#ifndef COSTSENSE_CORE_COMPLEMENTARITY_H_
#define COSTSENSE_CORE_COMPLEMENTARITY_H_

#include <string>
#include <vector>

#include "core/vectors.h"

namespace costsense::core {

/// Why a pair of plans is complementary (paper Section 5.6). A pair can
/// carry several flags at once (e.g. it can be both access-path and temp
/// complementary).
struct PairAnalysis {
  size_t plan_a = 0;
  size_t plan_b = 0;
  /// Some resource is used by exactly one of the two plans.
  bool complementary = false;
  /// The plans access different numbers of tuples from some base table,
  /// with no accompanying access-path difference on that table.
  bool table_complementary = false;
  /// The plans retrieve tuples of some table through different access
  /// paths (one uses an index the other does not, or trades index pages
  /// for table pages).
  bool access_path_complementary = false;
  /// Exactly one of the plans spills to temporary structures (sorted runs,
  /// hash partitions).
  bool temp_complementary = false;
  /// Largest ratio between corresponding *defined* (both non-zero)
  /// elements, max(a_i/b_i, b_i/a_i); the paper flags pairs with ratios
  /// above an order of magnitude as near-complementary.
  double max_element_ratio = 1.0;
};

/// Aggregate complementarity census over a candidate plan set.
struct ComplementarityReport {
  std::vector<PairAnalysis> pairs;
  size_t num_pairs = 0;
  size_t num_complementary = 0;
  size_t num_table = 0;
  size_t num_access_path = 0;
  size_t num_temp = 0;
  /// Pairs whose max element ratio exceeds `near_ratio_threshold` without
  /// being complementary.
  size_t num_near_complementary = 0;
};

/// Options for the census.
struct ComplementarityOptions {
  /// Absolute threshold under which a usage element counts as "the plan
  /// does not touch this resource". Usage units (pages, seeks, pre-priced
  /// time units, instructions) are all >= ~0.01 for any genuine access;
  /// raise this when classifying least-squares-extracted vectors, whose
  /// zeros carry estimation noise.
  double zero_tol = 1e-6;
  /// Ratio above which a non-complementary pair counts as "near" (the
  /// paper uses an order of magnitude).
  double near_ratio_threshold = 10.0;
};

/// Classifies one plan pair against the dimension metadata. `dims` must
/// describe each coordinate of the usage vectors (class + owning table).
PairAnalysis AnalyzePair(const UsageVector& a, const UsageVector& b,
                         const std::vector<DimInfo>& dims,
                         const ComplementarityOptions& options = {});

/// Runs AnalyzePair over all unordered pairs of `plans` and aggregates the
/// paper's Section 8.2 statistics.
ComplementarityReport AnalyzePlanSet(const std::vector<PlanUsage>& plans,
                                     const std::vector<DimInfo>& dims,
                                     const ComplementarityOptions& options = {});

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_COMPLEMENTARITY_H_
