#include "core/discovery.h"

#include <cmath>
#include <map>
#include <utility>

#include "core/region_of_influence.h"

namespace costsense::core {
namespace {

/// Book-keeping for one plan while discovery is running.
struct Found {
  CostVector witness;
  std::optional<UsageVector> usage;  // white-box usage if the oracle gave it
  double total_cost_at_witness = 0.0;
};

class Discoverer {
 public:
  Discoverer(PlanOracle& oracle, const Box& box, Rng& rng,
             const DiscoveryOptions& options)
      : oracle_(oracle), box_(box), rng_(rng), options_(options) {}

  Result<DiscoveryResult> Run() {
    SeedProbes();
    BisectBetweenWitnesses();

    // Resolve usage vectors (least squares where the oracle is narrow),
    // then iterate the completeness check: find a deep-interior witness of
    // each region of influence implied by the discovered set and confirm
    // the oracle agrees there. A disagreement *is* a new plan.
    bool complete = false;
    std::vector<DiscoveredPlan> plans;
    for (size_t round = 0; round <= options_.completeness_rounds; ++round) {
      Result<std::vector<DiscoveredPlan>> resolved = ResolveUsageVectors();
      if (!resolved.ok()) return resolved.status();
      plans = std::move(resolved).value();
      if (round == options_.completeness_rounds) break;
      // Each probe LP carries one constraint per discovered plan; for
      // extremely rich plan sets (hundreds of candidates over a 10^4-wide
      // band) the probing cost outweighs its marginal coverage.
      if (plans.size() > 150) break;
      const size_t before = found_.size();
      Status st = CompletenessProbe(plans);
      if (!st.ok()) return st;
      if (found_.size() == before) {
        complete = true;
        break;
      }
    }

    ComputeMargins(plans);
    DiscoveryResult out;
    out.plans = std::move(plans);
    out.oracle_calls = calls_;
    out.complete = complete;
    return out;
  }

 private:
  OracleResult Probe(const CostVector& c) {
    ++calls_;
    OracleResult r = oracle_.Optimize(c);
    auto [it, inserted] = found_.try_emplace(r.plan_id);
    if (inserted) {
      it->second.witness = c;
      it->second.usage = r.usage;
      it->second.total_cost_at_witness = r.total_cost;
    }
    return r;
  }

  void SeedProbes() {
    Probe(box_.Center());
    // Axis extremes: cheapest / most expensive along each single resource.
    for (size_t i = 0; i < box_.dims(); ++i) {
      CostVector lo = box_.Center();
      lo[i] = box_.lower()[i];
      Probe(lo);
      CostVector hi = box_.Center();
      hi[i] = box_.upper()[i];
      Probe(hi);
    }
    // Vertices: exhaustive when small, sampled otherwise. Vertices matter
    // because worst cases live there (Observation 2).
    if (box_.dims() <= options_.full_vertex_sweep_max_dims) {
      const uint64_t n = box_.VertexCount();
      for (uint64_t mask = 0; mask < n; ++mask) Probe(box_.Vertex(mask));
    } else {
      for (size_t k = 0; k < options_.sampled_vertices; ++k) {
        uint64_t mask = rng_.Next();
        if (box_.dims() < 64) mask &= (uint64_t{1} << box_.dims()) - 1;
        Probe(box_.Vertex(mask));
      }
    }
    for (size_t k = 0; k < options_.random_samples; ++k) {
      Probe(box_.SampleLogUniform(rng_));
    }
  }

  /// Geometric midpoint of two cost vectors (log-space bisection, matching
  /// the multiplicative structure of the region).
  static CostVector GeoMid(const CostVector& a, const CostVector& b) {
    CostVector m(a.size());
    for (size_t i = 0; i < a.size(); ++i) m[i] = std::sqrt(a[i] * b[i]);
    return m;
  }

  void Bisect(const CostVector& a, const std::string& plan_a,
              const CostVector& b, const std::string& plan_b, size_t depth) {
    if (depth == 0 || plan_a == plan_b) return;
    if (found_.size() >= options_.max_plans) return;
    const CostVector mid = GeoMid(a, b);
    const OracleResult r = Probe(mid);
    Bisect(a, plan_a, mid, r.plan_id, depth - 1);
    Bisect(mid, r.plan_id, b, plan_b, depth - 1);
  }

  void BisectBetweenWitnesses() {
    // Snapshot witnesses first; Bisect mutates found_.
    std::vector<std::pair<std::string, CostVector>> snapshot;
    snapshot.reserve(found_.size());
    for (const auto& [id, f] : found_) snapshot.emplace_back(id, f.witness);

    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i < snapshot.size(); ++i) {
      for (size_t j = i + 1; j < snapshot.size(); ++j) {
        pairs.emplace_back(i, j);
      }
    }
    // Plan-rich queries would spend quadratic optimizer calls here; refine
    // a random subset of segments instead (the completeness probe catches
    // anything bisection misses).
    if (pairs.size() > options_.max_bisection_pairs) {
      rng_.Shuffle(pairs);
      pairs.resize(options_.max_bisection_pairs);
    }
    for (const auto& [i, j] : pairs) {
      Bisect(snapshot[i].second, snapshot[i].first, snapshot[j].second,
             snapshot[j].first, options_.bisection_depth);
      if (found_.size() >= options_.max_plans) return;
    }
  }

  Result<std::vector<DiscoveredPlan>> ResolveUsageVectors() {
    std::vector<DiscoveredPlan> plans;
    plans.reserve(found_.size());
    for (const auto& [id, f] : found_) {
      DiscoveredPlan dp;
      dp.plan.plan_id = id;
      dp.witness = f.witness;
      if (f.usage.has_value()) {
        dp.plan.usage = *f.usage;
      } else {
        Result<ExtractedUsage> ex = ExtractUsageVector(
            oracle_, id, f.witness, box_, rng_, options_.extraction);
        if (!ex.ok()) {
          // Thin region: fall back to a rank-one estimate from the single
          // witness (usage colinear with nothing better available). Skip
          // the plan rather than poison the set.
          continue;
        }
        calls_ += ex->oracle_calls;
        dp.plan.usage = ex->usage;
        dp.usage_from_least_squares = true;
        dp.extraction_error = ex->validation_error;
      }
      plans.push_back(std::move(dp));
    }
    return plans;
  }

  /// Annotates per-plan interior margins. Each margin is one LP with
  /// |plans| constraints, so this is quadratic in the plan count; it is
  /// informational only and skipped for very large plan sets.
  void ComputeMargins(std::vector<DiscoveredPlan>& plans) const {
    if (plans.size() > 96) return;
    for (size_t i = 0; i < plans.size(); ++i) {
      std::vector<PlanUsage> rivals;
      rivals.reserve(plans.size() - 1);
      for (size_t j = 0; j < plans.size(); ++j) {
        if (j != i) rivals.push_back(plans[j].plan);
      }
      Result<CandidacyResult> cr =
          FindRegionWitness(plans[i].plan.usage, rivals, box_);
      if (cr.ok() && cr->candidate) plans[i].margin = cr->margin;
    }
  }

  Status CompletenessProbe(const std::vector<DiscoveredPlan>& plans) {
    // Each probe solves an LP with |plans| constraints; for very rich plan
    // sets check a random subset per round (coverage accumulates across
    // rounds).
    std::vector<size_t> order(plans.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    constexpr size_t kMaxProbesPerRound = 128;
    if (order.size() > kMaxProbesPerRound) {
      rng_.Shuffle(order);
      order.resize(kMaxProbesPerRound);
    }
    for (size_t idx : order) {
      const DiscoveredPlan& dp = plans[idx];
      std::vector<PlanUsage> rivals;
      for (const DiscoveredPlan& other : plans) {
        if (other.plan.plan_id != dp.plan.plan_id) {
          rivals.push_back(other.plan);
        }
      }
      Result<CandidacyResult> cr =
          FindRegionWitness(dp.plan.usage, rivals, box_);
      if (!cr.ok()) return cr.status();
      if (!cr->candidate || cr->margin <= 0.0) continue;
      // The discovered set predicts plan dp at this deep-interior point; if
      // the oracle disagrees, Probe records the new plan automatically.
      Probe(cr->witness);
      if (found_.size() >= options_.max_plans) break;
    }
    return Status::Ok();
  }

  PlanOracle& oracle_;
  const Box& box_;
  Rng& rng_;
  const DiscoveryOptions& options_;
  std::map<std::string, Found> found_;
  size_t calls_ = 0;
};

}  // namespace

Result<DiscoveryResult> DiscoverCandidatePlans(
    PlanOracle& oracle, const Box& box, Rng& rng,
    const DiscoveryOptions& options) {
  if (oracle.dims() != box.dims()) {
    return Status::InvalidArgument("oracle and box dimensions differ");
  }
  Discoverer d(oracle, box, rng, options);
  return d.Run();
}

}  // namespace costsense::core
