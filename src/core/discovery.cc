#include "core/discovery.h"

#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "core/region_of_influence.h"
#include "runtime/thread_pool.h"

namespace costsense::core {
namespace {

/// Stable 64-bit hash of a plan id, used to key per-plan forked RNG
/// streams: the same plan always extracts with the same stream, no matter
/// how many other plans were discovered first or on which thread it runs.
uint64_t PlanStreamId(const std::string& plan_id) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char ch : plan_id) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Book-keeping for one plan while discovery is running.
struct Found {
  CostVector witness;
  std::optional<UsageVector> usage;  // white-box usage if the oracle gave it
  double total_cost_at_witness = 0.0;
};

class Discoverer {
 public:
  Discoverer(FalliblePlanOracle& oracle, const Box& box, Rng& rng,
             const DiscoveryOptions& options)
      : oracle_(oracle), box_(box), rng_(rng), options_(options) {}

  Result<DiscoveryResult> Run() {
    SeedProbes();
    BisectBetweenWitnesses();

    // Resolve usage vectors (least squares where the oracle is narrow),
    // then iterate the completeness check: find a deep-interior witness of
    // each region of influence implied by the discovered set and confirm
    // the oracle agrees there. A disagreement *is* a new plan.
    bool complete = false;
    std::vector<DiscoveredPlan> plans;
    for (size_t round = 0; round <= options_.completeness_rounds; ++round) {
      Result<std::vector<DiscoveredPlan>> resolved = ResolveUsageVectors();
      if (!resolved.ok()) return resolved.status();
      plans = std::move(resolved).value();
      if (round == options_.completeness_rounds) break;
      // Each probe LP carries one constraint per discovered plan; for
      // extremely rich plan sets (hundreds of candidates over a 10^4-wide
      // band) the probing cost outweighs its marginal coverage.
      if (plans.size() > 150) break;
      const size_t before = found_.size();
      Status st = CompletenessProbe(plans);
      if (!st.ok()) return st;
      if (found_.size() == before) {
        complete = true;
        break;
      }
    }

    ComputeMargins(plans);
    DiscoveryResult out;
    out.plans = std::move(plans);
    out.oracle_calls = calls_;
    out.complete = complete;
    out.failed_probes = failed_probes_;
    return out;
  }

 private:
  /// Evaluates the oracle at every point (fanning out over the pool when
  /// one is configured) and records first-seen witnesses in point order —
  /// the same order a serial probe loop would, so the discovered set is
  /// independent of thread count and scheduling. A probe that errors
  /// leaves an empty slot and is counted, never recorded: degradation is
  /// losing witnesses, not inventing them.
  std::vector<std::optional<OracleResult>> ProbeBatch(
      const std::vector<CostVector>& points) {
    std::vector<std::optional<OracleResult>> results(points.size());
    const Status pool_status =
        runtime::ForEachIndex(options_.pool, points.size(), [&](size_t i) {
      Result<OracleResult> r = oracle_.TryOptimize(points[i]);
      if (r.ok()) results[i] = std::move(r).value();
      return Status::Ok();
    });
    COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
    calls_ += points.size();
    for (size_t i = 0; i < points.size(); ++i) {
      if (results[i].has_value()) {
        Record(points[i], *results[i]);
      } else {
        ++failed_probes_;
      }
    }
    return results;
  }

  void Record(const CostVector& c, const OracleResult& r) {
    auto [it, inserted] = found_.try_emplace(r.plan_id);
    if (inserted) {
      it->second.witness = c;
      it->second.usage = r.usage;
      it->second.total_cost_at_witness = r.total_cost;
    }
  }

  void SeedProbes() {
    // Generate every seed point serially (all rng_ draws happen here, in
    // the fixed order the serial algorithm used), then probe as one batch.
    std::vector<CostVector> points;
    points.push_back(box_.Center());
    // Axis extremes: cheapest / most expensive along each single resource.
    for (size_t i = 0; i < box_.dims(); ++i) {
      CostVector lo = box_.Center();
      lo[i] = box_.lower()[i];
      points.push_back(std::move(lo));
      CostVector hi = box_.Center();
      hi[i] = box_.upper()[i];
      points.push_back(std::move(hi));
    }
    // Vertices: exhaustive when small, sampled otherwise. Vertices matter
    // because worst cases live there (Observation 2).
    if (box_.dims() <= options_.full_vertex_sweep_max_dims) {
      const uint64_t n = box_.VertexCount();
      for (uint64_t mask = 0; mask < n; ++mask) {
        points.emplace_back(box_.dims());
        box_.VertexInto(mask, points.back());
      }
    } else {
      for (size_t k = 0; k < options_.sampled_vertices; ++k) {
        uint64_t mask = rng_.Next();
        if (box_.dims() < 64) mask &= (uint64_t{1} << box_.dims()) - 1;
        points.emplace_back(box_.dims());
        box_.VertexInto(mask, points.back());
      }
    }
    for (size_t k = 0; k < options_.random_samples; ++k) {
      points.push_back(box_.SampleLogUniform(rng_));
    }
    ProbeBatch(points);
  }

  /// Geometric midpoint of two cost vectors (log-space bisection, matching
  /// the multiplicative structure of the region).
  static CostVector GeoMid(const CostVector& a, const CostVector& b) {
    CostVector m(a.size());
    for (size_t i = 0; i < a.size(); ++i) m[i] = std::sqrt(a[i] * b[i]);
    return m;
  }

  /// One segment whose endpoints are witnesses of *different* plans: by
  /// Observation 3 an undiscovered plan can only hide between differing
  /// endpoints, so these are the only segments worth refining.
  struct Segment {
    CostVector a;
    std::string plan_a;
    CostVector b;
    std::string plan_b;
  };

  void BisectBetweenWitnesses() {
    // Snapshot witnesses first; probing mutates found_.
    std::vector<std::pair<std::string, CostVector>> snapshot;
    snapshot.reserve(found_.size());
    for (const auto& [id, f] : found_) snapshot.emplace_back(id, f.witness);

    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i < snapshot.size(); ++i) {
      for (size_t j = i + 1; j < snapshot.size(); ++j) {
        pairs.emplace_back(i, j);
      }
    }
    // Plan-rich queries would spend quadratic optimizer calls here; refine
    // a random subset of segments instead (the completeness probe catches
    // anything bisection misses).
    if (pairs.size() > options_.max_bisection_pairs) {
      rng_.Shuffle(pairs);
      pairs.resize(options_.max_bisection_pairs);
    }

    // Level-synchronous bisection: each level probes the midpoints of
    // every open segment as one parallel batch, then splits segments whose
    // midpoint plan differs from an endpoint. The probe tree is the same
    // one the recursive serial bisection explores; batching it per depth
    // exposes hundreds of independent optimizer calls at a time. Shared
    // midpoints (e.g. every complementary vertex pair meets the center)
    // collapse in the oracle cache rather than re-running the optimizer.
    std::vector<Segment> frontier;
    frontier.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      if (snapshot[i].first == snapshot[j].first) continue;
      frontier.push_back(Segment{snapshot[i].second, snapshot[i].first,
                                 snapshot[j].second, snapshot[j].first});
    }
    for (size_t depth = options_.bisection_depth;
         depth > 0 && !frontier.empty(); --depth) {
      if (found_.size() >= options_.max_plans) return;
      std::vector<CostVector> mids;
      mids.reserve(frontier.size());
      for (const Segment& s : frontier) mids.push_back(GeoMid(s.a, s.b));
      const std::vector<std::optional<OracleResult>> results =
          ProbeBatch(mids);
      std::vector<Segment> next;
      for (size_t k = 0; k < frontier.size(); ++k) {
        // A failed midpoint stops refinement of this segment; later
        // completeness rounds can still recover plans hiding inside it.
        if (!results[k].has_value()) continue;
        const Segment& s = frontier[k];
        const std::string& mid_plan = results[k]->plan_id;
        if (mid_plan != s.plan_a) {
          next.push_back(Segment{s.a, s.plan_a, mids[k], mid_plan});
        }
        if (mid_plan != s.plan_b) {
          next.push_back(Segment{mids[k], mid_plan, s.b, s.plan_b});
        }
      }
      frontier = std::move(next);
    }
  }

  Result<std::vector<DiscoveredPlan>> ResolveUsageVectors() {
    // Deterministic work list in found_'s (sorted) iteration order.
    std::vector<std::pair<std::string, const Found*>> todo;
    todo.reserve(found_.size());
    for (const auto& [id, f] : found_) todo.emplace_back(id, &f);

    // Per-plan extraction is independent: each plan gets its own RNG
    // stream forked from the shared generator and keyed by plan id, so
    // the sample set — and therefore the fit — is the same whether plans
    // extract one after another or all at once. White-box plans skip the
    // oracle entirely. A failed extraction (thin region) yields an empty
    // slot: skip the plan rather than poison the set.
    std::vector<std::optional<DiscoveredPlan>> slots(todo.size());
    std::vector<ExtractionTelemetry> telemetry(todo.size());
    Status st = runtime::ForEachIndex(
        options_.pool, todo.size(), [&](size_t k) {
          const auto& [id, f] = todo[k];
          DiscoveredPlan dp;
          dp.plan.plan_id = id;
          dp.witness = f->witness;
          if (f->usage.has_value()) {
            dp.plan.usage = *f->usage;
          } else {
            Rng stream = rng_.Fork(PlanStreamId(id));
            Result<ExtractedUsage> ex =
                ExtractUsageVector(oracle_, id, f->witness, box_, stream,
                                   options_.extraction, &telemetry[k]);
            // Thin region or probes lost to oracle failures: skip the plan
            // rather than poison the set (telemetry keeps the accounting).
            if (!ex.ok()) return Status::Ok();
            dp.plan.usage = ex->usage;
            dp.usage_from_least_squares = true;
            dp.extraction_error = ex->validation_error;
          }
          slots[k] = std::move(dp);
          return Status::Ok();
        });
    if (!st.ok()) return st;

    std::vector<DiscoveredPlan> plans;
    plans.reserve(todo.size());
    for (size_t k = 0; k < todo.size(); ++k) {
      calls_ += telemetry[k].oracle_calls;
      failed_probes_ += telemetry[k].failed_probes;
      if (slots[k].has_value()) plans.push_back(std::move(*slots[k]));
    }
    return plans;
  }

  /// Annotates per-plan interior margins. Each margin is one LP with
  /// |plans| constraints, so this is quadratic in the plan count; it is
  /// informational only and skipped for very large plan sets. The LPs are
  /// independent and fan out over the pool.
  void ComputeMargins(std::vector<DiscoveredPlan>& plans) const {
    if (plans.size() > 96) return;
    const Status pool_status =
        runtime::ForEachIndex(options_.pool, plans.size(), [&](size_t i) {
      std::vector<PlanUsage> rivals;
      rivals.reserve(plans.size() - 1);
      for (size_t j = 0; j < plans.size(); ++j) {
        if (j != i) rivals.push_back(plans[j].plan);
      }
      Result<CandidacyResult> cr =
          FindRegionWitness(plans[i].plan.usage, rivals, box_);
      if (cr.ok() && cr->candidate) plans[i].margin = cr->margin;
      return Status::Ok();
    });
    COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
  }

  Status CompletenessProbe(const std::vector<DiscoveredPlan>& plans) {
    // Each probe solves an LP with |plans| constraints; for very rich plan
    // sets check a random subset per round (coverage accumulates across
    // rounds).
    std::vector<size_t> order(plans.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    constexpr size_t kMaxProbesPerRound = 128;
    if (order.size() > kMaxProbesPerRound) {
      rng_.Shuffle(order);
      order.resize(kMaxProbesPerRound);
    }
    // Phase 1 (parallel, pure LP): a deep-interior witness per region.
    std::vector<std::optional<Result<CandidacyResult>>> witnesses(
        order.size());
    const Status pool_status =
        runtime::ForEachIndex(options_.pool, order.size(), [&](size_t k) {
      const DiscoveredPlan& dp = plans[order[k]];
      std::vector<PlanUsage> rivals;
      for (const DiscoveredPlan& other : plans) {
        if (other.plan.plan_id != dp.plan.plan_id) {
          rivals.push_back(other.plan);
        }
      }
      witnesses[k].emplace(FindRegionWitness(dp.plan.usage, rivals, box_));
      return Status::Ok();
    });
    COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
    // Phase 2 (batched): the discovered set predicts each plan at its
    // witness; probe them all — where the oracle disagrees, Record adds
    // the new plan automatically.
    std::vector<CostVector> probes;
    for (size_t k = 0; k < order.size(); ++k) {
      const Result<CandidacyResult>& cr = *witnesses[k];
      if (!cr.ok()) return cr.status();
      if (!cr->candidate || cr->margin <= 0.0) continue;
      if (found_.size() + probes.size() >= options_.max_plans) break;
      probes.push_back(cr->witness);
    }
    ProbeBatch(probes);
    return Status::Ok();
  }

  FalliblePlanOracle& oracle_;
  const Box& box_;
  Rng& rng_;
  const DiscoveryOptions& options_;
  std::map<std::string, Found> found_;
  size_t calls_ = 0;
  size_t failed_probes_ = 0;
};

}  // namespace

Result<DiscoveryResult> DiscoverCandidatePlans(
    PlanOracle& oracle, const Box& box, Rng& rng,
    const DiscoveryOptions& options) {
  InfallibleOracleAdapter adapter(oracle);
  return DiscoverCandidatePlans(adapter, box, rng, options);
}

Result<DiscoveryResult> DiscoverCandidatePlans(
    FalliblePlanOracle& oracle, const Box& box, Rng& rng,
    const DiscoveryOptions& options) {
  if (oracle.dims() != box.dims()) {
    return Status::InvalidArgument("oracle and box dimensions differ");
  }
  Discoverer d(oracle, box, rng, options);
  return d.Run();
}

}  // namespace costsense::core
