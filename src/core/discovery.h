#ifndef COSTSENSE_CORE_DISCOVERY_H_
#define COSTSENSE_CORE_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/feasible_region.h"
#include "core/oracle.h"
#include "core/usage_extraction.h"
#include "core/vectors.h"

namespace costsense::runtime {
class ThreadPool;
}  // namespace costsense::runtime

namespace costsense::core {

/// Tuning for candidate-optimal plan discovery.
struct DiscoveryOptions {
  /// Random log-uniform probes of the feasible region.
  size_t random_samples = 48;
  /// Enumerate all box vertices when dims <= this (else sample vertices).
  size_t full_vertex_sweep_max_dims = 10;
  /// Random vertices probed when the full sweep is too large.
  size_t sampled_vertices = 256;
  /// Recursive bisection depth along segments between witnesses of
  /// different plans (Observation 3: a plan optimal at both endpoints is
  /// optimal on the whole segment, so only differing endpoints can hide
  /// undiscovered plans between them).
  size_t bisection_depth = 5;
  /// Cap on witness pairs refined by bisection; above it a random subset
  /// of pairs is used (plan-rich queries would otherwise spend quadratic
  /// optimizer calls on segment refinement).
  size_t max_bisection_pairs = 300;
  /// Rounds of the completeness check: probe a deep-interior witness of
  /// each region of influence and verify the oracle agrees.
  size_t completeness_rounds = 3;
  /// Safety cap on the total number of plans to discover.
  size_t max_plans = 512;
  /// When the oracle does not reveal usage vectors, extract them by least
  /// squares with these options.
  ExtractionOptions extraction;
  /// Optional thread pool for fanning out oracle probes, per-plan
  /// least-squares extractions, and the margin/completeness LPs; null runs
  /// everything inline. Parallel runs are bit-identical to serial ones:
  /// probe points are generated serially from `rng`, evaluated
  /// concurrently, and recorded in generation order, while per-plan
  /// extraction streams are forked from `rng` keyed by plan id. The oracle
  /// must be safe to call concurrently when a pool is supplied (wrap it in
  /// runtime::CachingOracle, or see blackbox::NarrowOptimizer).
  runtime::ThreadPool* pool = nullptr;
};

/// One discovered candidate optimal plan.
struct DiscoveredPlan {
  PlanUsage plan;
  /// A feasible cost vector at which the oracle chose this plan.
  CostVector witness;
  /// Normalized interior margin of the plan's region of influence within
  /// the discovered set (0 = boundary-only / tie).
  double margin = 0.0;
  /// True if the usage vector came from least-squares extraction rather
  /// than directly from the oracle.
  bool usage_from_least_squares = false;
  /// Validation error of the extraction (0 when white-box).
  double extraction_error = 0.0;
};

/// Result of a discovery run.
struct DiscoveryResult {
  std::vector<DiscoveredPlan> plans;
  size_t oracle_calls = 0;
  /// True if the final completeness round found no new plan (the
  /// discovered regions of influence tile the feasible region as far as
  /// interior probing can tell — the practical analogue of the paper's
  /// Observation-3 polytope check).
  bool complete = false;
  /// Probes that returned an error after the oracle stack's own retries
  /// and were skipped (fallible overload only; 0 against an infallible
  /// oracle). Includes probes dropped inside usage extraction. Nonzero
  /// counts mean the discovered set is a partial view: plans witnessed
  /// only by failed probes may be missing.
  size_t failed_probes = 0;
};

/// Finds the candidate optimal plans of the feasible box through the
/// oracle, following the paper's five-step procedure (Section 6.2.1):
/// sample cost vectors, ask the optimizer for the optimal plan at each,
/// estimate usage vectors (least squares if the oracle is narrow), and
/// verify completeness using the convexity of regions of influence.
[[nodiscard]] Result<DiscoveryResult> DiscoverCandidatePlans(PlanOracle& oracle,
                                               const Box& box, Rng& rng,
                                               const DiscoveryOptions& options);

/// Fallible-oracle overload with graceful degradation: a probe that errors
/// (after whatever retries the oracle stack performs internally) is
/// skipped and counted in DiscoveryResult::failed_probes rather than
/// aborting the run — a failed seed probe loses at most one witness, a
/// failed midpoint stops refining one segment, a failed extraction drops
/// one narrow plan. Against an oracle that never errors this is
/// call-for-call identical to the overload above.
[[nodiscard]] Result<DiscoveryResult> DiscoverCandidatePlans(FalliblePlanOracle& oracle,
                                               const Box& box, Rng& rng,
                                               const DiscoveryOptions& options);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_DISCOVERY_H_
