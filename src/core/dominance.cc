#include "core/dominance.h"

#include <cmath>

namespace costsense::core {

bool Dominates(const UsageVector& a, const UsageVector& b, double tol) {
  if (a.size() != b.size()) return false;
  bool strictly_less_somewhere = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + tol) return false;
    if (a[i] < b[i] - tol) strictly_less_somewhere = true;
  }
  return strictly_less_somewhere;
}

std::vector<PlanUsage> FilterDominated(std::vector<PlanUsage> plans,
                                       double tol) {
  // Decide survivors first, then move them out: moving as we scan would
  // leave earlier entries empty and break later dominance checks.
  std::vector<bool> keep(plans.size(), true);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size() && keep[i]; ++j) {
      if (i == j) continue;
      if (Dominates(plans[j].usage, plans[i].usage, tol)) keep[i] = false;
      // Collapse exact duplicates onto the earliest index.
      if (j < i && linalg::ApproxEqual(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
    }
  }
  std::vector<PlanUsage> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (keep[i]) out.push_back(std::move(plans[i]));
  }
  return out;
}

}  // namespace costsense::core
