#include "core/dominance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace costsense::core {

bool Dominates(const UsageVector& a, const UsageVector& b, double tol) {
  if (a.size() != b.size()) return false;
  bool strictly_less_somewhere = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + tol) return false;
    if (a[i] < b[i] - tol) strictly_less_somewhere = true;
  }
  return strictly_less_somewhere;
}

std::vector<PlanUsage> FilterDominated(std::vector<PlanUsage> plans,
                                       double tol) {
  // Sort-by-sum prescreen: any plan that eliminates plan i — a dominator,
  // or an earlier duplicate — has coordinates elementwise within tol of
  // plan i's, so its usage sum can exceed sum_i by at most dims * tol
  // (plus rounding). Floating-point addition is monotone, so the same
  // bound holds for the floating-point sums. Scanning candidate
  // eliminators in ascending-sum order and breaking past that window
  // skips most pairs outright; the predicates actually applied are the
  // exact ones from the naive scan, so the survivor set is identical and
  // an over-generous rounding pad only costs extra checks.
  const size_t n = plans.size();
  std::vector<double> sums(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < plans[i].usage.size(); ++k) s += plans[i].usage[k];
    sums[i] = s;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&sums](size_t a, size_t b) { return sums[a] < sums[b]; });
  // Decide survivors first, then move them out: moving as we scan would
  // leave earlier entries empty and break later dominance checks.
  std::vector<bool> keep(n, true);
  for (size_t i = 0; i < n; ++i) {
    double cutoff =
        sums[i] + tol * static_cast<double>(plans[i].usage.size());
    cutoff += 1e-9 * (2.0 + std::fabs(cutoff));
    for (size_t k = 0; k < n && keep[i]; ++k) {
      const size_t j = order[k];
      if (sums[j] - 1e-9 * std::fabs(sums[j]) > cutoff) break;
      if (i == j) continue;
      if (Dominates(plans[j].usage, plans[i].usage, tol)) keep[i] = false;
      // Collapse exact duplicates onto the earliest index.
      if (j < i && linalg::ApproxEqual(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
    }
  }
  std::vector<PlanUsage> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (keep[i]) out.push_back(std::move(plans[i]));
  }
  return out;
}

}  // namespace costsense::core
