#ifndef COSTSENSE_CORE_DOMINANCE_H_
#define COSTSENSE_CORE_DOMINANCE_H_

#include <vector>

#include "core/vectors.h"

namespace costsense::core {

/// True if plan `a` dominates plan `b`: B lies in the positive first
/// quadrant relative to A (B = A + q with q >= 0 and q != 0), so b can never
/// be optimal under any positive cost vector (paper Section 4.4, Figure 3).
bool Dominates(const UsageVector& a, const UsageVector& b, double tol = 0.0);

/// Removes every plan that is dominated by some other plan in `plans`.
/// Exact duplicates (identical usage vectors) are collapsed to the first
/// occurrence. The survivors are the only possible candidate optimal plans.
std::vector<PlanUsage> FilterDominated(std::vector<PlanUsage> plans,
                                       double tol = 0.0);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_DOMINANCE_H_
