#include "core/feasible_region.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace costsense::core {

namespace {

// The box invariants, shared by the CHECKing constructor and the
// Status-returning factories. Non-finite bounds are rejected outright: an
// infinite upper bound would make every vertex sweep and LP degenerate,
// and a NaN silently poisons comparisons.
Status CheckBoxBounds(const CostVector& lower, const CostVector& upper) {
  if (lower.size() != upper.size()) {
    return Status::InvalidArgument(
        StrFormat("box bounds disagree on dimension: %zu vs %zu",
                  lower.size(), upper.size()));
  }
  for (size_t i = 0; i < lower.size(); ++i) {
    if (!std::isfinite(lower[i]) || !std::isfinite(upper[i])) {
      return Status::InvalidArgument(
          StrFormat("box bounds must be finite (dim %zu: [%g, %g])", i,
                    lower[i], upper[i]));
    }
    if (!(lower[i] > 0.0)) {
      return Status::InvalidArgument(StrFormat(
          "cost lower bounds must be positive (dim %zu: %g)", i, lower[i]));
    }
    if (lower[i] > upper[i]) {
      return Status::InvalidArgument(StrFormat(
          "lower bound above upper (dim %zu: [%g, %g])", i, lower[i],
          upper[i]));
    }
  }
  return Status::Ok();
}

}  // namespace

Box::Box(CostVector lower, CostVector upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  const Status s = CheckBoxBounds(lower_, upper_);
  COSTSENSE_CHECK_MSG(s.ok(), s.ToString().c_str());
}

Box Box::MultiplicativeBand(const CostVector& baseline, double delta) {
  COSTSENSE_CHECK_MSG(delta >= 1.0, "delta must be >= 1");
  CostVector lo(baseline.size());
  CostVector hi(baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    lo[i] = baseline[i] / delta;
    hi[i] = baseline[i] * delta;
  }
  return Box(std::move(lo), std::move(hi));
}

Result<Box> Box::Validated(CostVector lower, CostVector upper) {
  const Status s = CheckBoxBounds(lower, upper);
  if (!s.ok()) return s;
  return Box(std::move(lower), std::move(upper));
}

Result<Box> Box::ValidatedMultiplicativeBand(const CostVector& baseline,
                                             double delta) {
  if (!std::isfinite(delta) || delta < 1.0) {
    return Status::InvalidArgument(
        StrFormat("delta must be finite and >= 1 (got %g)", delta));
  }
  CostVector lo(baseline.size());
  CostVector hi(baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    lo[i] = baseline[i] / delta;
    hi[i] = baseline[i] * delta;
  }
  return Validated(std::move(lo), std::move(hi));
}

uint64_t Box::VertexCount() const {
  COSTSENSE_CHECK_MSG(dims() < 64, "vertex enumeration limited to 63 dims");
  return uint64_t{1} << dims();
}

CostVector Box::Vertex(uint64_t mask) const {
  CostVector v(dims());
  VertexInto(mask, v);
  return v;
}

void Box::VertexInto(uint64_t mask, CostVector& out) const {
  COSTSENSE_CHECK(out.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = (mask >> i) & 1 ? upper_[i] : lower_[i];
  }
}

CostVector Box::Center() const {
  CostVector v(dims());
  for (size_t i = 0; i < dims(); ++i) {
    v[i] = std::sqrt(lower_[i] * upper_[i]);
  }
  return v;
}

bool Box::Contains(const CostVector& c, double tol) const {
  if (c.size() != dims()) return false;
  for (size_t i = 0; i < dims(); ++i) {
    const double slack = tol * (upper_[i] - lower_[i] + 1.0);
    if (c[i] < lower_[i] - slack || c[i] > upper_[i] + slack) return false;
  }
  return true;
}

CostVector Box::SampleLogUniform(Rng& rng) const {
  CostVector v(dims());
  SampleLogUniformInto(rng, v);
  return v;
}

void Box::SampleLogUniformInto(Rng& rng, CostVector& out) const {
  COSTSENSE_CHECK(out.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = (lower_[i] == upper_[i]) ? lower_[i]
                                      : rng.LogUniform(lower_[i], upper_[i]);
  }
}

}  // namespace costsense::core
