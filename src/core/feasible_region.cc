#include "core/feasible_region.h"

#include <cmath>

#include "common/macros.h"

namespace costsense::core {

Box::Box(CostVector lower, CostVector upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  COSTSENSE_CHECK(lower_.size() == upper_.size());
  for (size_t i = 0; i < lower_.size(); ++i) {
    COSTSENSE_CHECK_MSG(lower_[i] > 0.0, "cost lower bounds must be positive");
    COSTSENSE_CHECK_MSG(lower_[i] <= upper_[i], "lower bound above upper");
  }
}

Box Box::MultiplicativeBand(const CostVector& baseline, double delta) {
  COSTSENSE_CHECK_MSG(delta >= 1.0, "delta must be >= 1");
  CostVector lo(baseline.size());
  CostVector hi(baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    lo[i] = baseline[i] / delta;
    hi[i] = baseline[i] * delta;
  }
  return Box(std::move(lo), std::move(hi));
}

uint64_t Box::VertexCount() const {
  COSTSENSE_CHECK_MSG(dims() < 64, "vertex enumeration limited to 63 dims");
  return uint64_t{1} << dims();
}

CostVector Box::Vertex(uint64_t mask) const {
  CostVector v(dims());
  VertexInto(mask, v);
  return v;
}

void Box::VertexInto(uint64_t mask, CostVector& out) const {
  COSTSENSE_CHECK(out.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = (mask >> i) & 1 ? upper_[i] : lower_[i];
  }
}

CostVector Box::Center() const {
  CostVector v(dims());
  for (size_t i = 0; i < dims(); ++i) {
    v[i] = std::sqrt(lower_[i] * upper_[i]);
  }
  return v;
}

bool Box::Contains(const CostVector& c, double tol) const {
  if (c.size() != dims()) return false;
  for (size_t i = 0; i < dims(); ++i) {
    const double slack = tol * (upper_[i] - lower_[i] + 1.0);
    if (c[i] < lower_[i] - slack || c[i] > upper_[i] + slack) return false;
  }
  return true;
}

CostVector Box::SampleLogUniform(Rng& rng) const {
  CostVector v(dims());
  SampleLogUniformInto(rng, v);
  return v;
}

void Box::SampleLogUniformInto(Rng& rng, CostVector& out) const {
  COSTSENSE_CHECK(out.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = (lower_[i] == upper_[i]) ? lower_[i]
                                      : rng.LogUniform(lower_[i], upper_[i]);
  }
}

}  // namespace costsense::core
