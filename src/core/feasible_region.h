#ifndef COSTSENSE_CORE_FEASIBLE_REGION_H_
#define COSTSENSE_CORE_FEASIBLE_REGION_H_

#include <bit>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "core/vectors.h"

namespace costsense::core {

/// The mask of the vertex visited at position `rank` of a Gray-code walk:
/// consecutive ranks yield masks differing in exactly one bit, and ranks
/// [0, 2^d) visit every d-bit mask exactly once. The incremental sweep
/// kernels walk vertices in this order so all plan costs update in O(n)
/// per vertex instead of O(n * d).
inline uint64_t GrayCode(uint64_t rank) { return rank ^ (rank >> 1); }

/// The bit position that flips between GrayCode(rank - 1) and
/// GrayCode(rank); rank must be positive.
inline int GrayFlipBit(uint64_t rank) { return std::countr_zero(rank); }

/// The feasible cost region (paper Section 3.3) as an axis-aligned box in
/// cost space: the true cost vector is assumed to lie within
/// [c_i / delta, c_i * delta] per resource, around the optimizer's
/// estimated costs. The paper's worst-case experiments (Section 6.1) use
/// exactly this multiplicative band.
class Box {
 public:
  /// Builds a box from explicit bounds; lower must be positive and finite
  /// and element-wise <= the (finite) upper (CHECKed).
  Box(CostVector lower, CostVector upper);

  /// The paper's construction: each estimated cost c_i may be off by a
  /// multiplicative factor in [1/delta, delta]. Requires delta >= 1 and a
  /// positive baseline.
  static Box MultiplicativeBand(const CostVector& baseline, double delta);

  /// Validating factories: the same invariants as the constructors above,
  /// reported as a typed InvalidArgument instead of a process-fatal CHECK.
  /// For bounds that arrive from outside the process's own arithmetic —
  /// checkpoint files, configuration, extraction output — where a bad
  /// value must degrade one analysis, not kill the run.
  [[nodiscard]] static Result<Box> Validated(CostVector lower, CostVector upper);
  [[nodiscard]] static Result<Box> ValidatedMultiplicativeBand(const CostVector& baseline,
                                                 double delta);

  size_t dims() const { return lower_.size(); }
  const CostVector& lower() const { return lower_; }
  const CostVector& upper() const { return upper_; }

  /// Number of vertices, 2^dims (CHECK-fails above 63 dims).
  uint64_t VertexCount() const;

  /// Vertex by bitmask: bit i set selects upper_[i], clear selects
  /// lower_[i]. The paper's Observation 2 reduces worst-case analysis to a
  /// sweep over exactly these points.
  CostVector Vertex(uint64_t mask) const;

  /// Writes Vertex(mask) into `out` without allocating; out must already
  /// have dims() elements (CHECKed). Vertex-sweep loops mutate one scratch
  /// vector in place instead of allocating 2^d fresh ones.
  void VertexInto(uint64_t mask, CostVector& out) const;

  /// Signed change of coordinate i when a vertex walk flips it to the
  /// upper (`up` true) or lower bound: +/-(upper_i - lower_i). This is the
  /// per-dimension delta of the Gray-code incremental cost update.
  double FlipDelta(size_t i, bool up) const {
    return up ? upper_[i] - lower_[i] : lower_[i] - upper_[i];
  }

  /// Geometric center: per-dim sqrt(lower*upper) — the multiplicative
  /// midpoint, which maps back to the baseline for MultiplicativeBand
  /// boxes. (The arithmetic midpoint would be biased toward the upper
  /// bound under multiplicative error.)
  CostVector Center() const;

  /// True if `c` lies inside the box (with tolerance `tol` per dim,
  /// relative to the dim's width).
  bool Contains(const CostVector& c, double tol = 1e-12) const;

  /// Samples a point log-uniformly per dimension: each coordinate is
  /// lower_i * (upper_i/lower_i)^u with u ~ U[0,1]. Matches the
  /// multiplicative-error model.
  CostVector SampleLogUniform(Rng& rng) const;

  /// SampleLogUniform into a caller-owned vector of dims() elements
  /// (CHECKed); identical rng draw sequence, no allocation.
  void SampleLogUniformInto(Rng& rng, CostVector& out) const;

 private:
  CostVector lower_;
  CostVector upper_;
};

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_FEASIBLE_REGION_H_
