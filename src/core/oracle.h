#ifndef COSTSENSE_CORE_ORACLE_H_
#define COSTSENSE_CORE_ORACLE_H_

#include <optional>
#include <string>

#include "core/vectors.h"

namespace costsense::core {

/// What a (possibly narrow) optimizer interface reports for one
/// optimization call: the chosen plan's identity and its estimated total
/// cost under the supplied resource costs — exactly the information the
/// paper says commercial optimizers expose (Section 7.1).
struct OracleResult {
  /// Canonical identifier of the estimated optimal plan; equal ids mean
  /// equal plans.
  std::string plan_id;
  /// Estimated total cost of that plan, U . C.
  double total_cost = 0.0;
  /// Resource usage vector of the plan, when the oracle is willing to
  /// reveal it (white-box mode). Commercial optimizers do not provide this
  /// (paper Section 6.1.1); the narrow wrapper leaves it empty and forces
  /// least-squares extraction.
  std::optional<UsageVector> usage;
};

/// Abstract optimizer interface used by the sensitivity algorithms: feed in
/// a resource cost vector, get back the estimated optimal plan and its
/// estimated total cost.
class PlanOracle {
 public:
  virtual ~PlanOracle() = default;

  /// Optimizes under resource costs `c` (dimension must equal dims()).
  virtual OracleResult Optimize(const CostVector& c) = 0;

  /// Dimensionality of the resource cost space this oracle prices over.
  virtual size_t dims() const = 0;
};

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_ORACLE_H_
