#ifndef COSTSENSE_CORE_ORACLE_H_
#define COSTSENSE_CORE_ORACLE_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "core/vectors.h"

namespace costsense::core {

/// What a (possibly narrow) optimizer interface reports for one
/// optimization call: the chosen plan's identity and its estimated total
/// cost under the supplied resource costs — exactly the information the
/// paper says commercial optimizers expose (Section 7.1).
struct OracleResult {
  /// Canonical identifier of the estimated optimal plan; equal ids mean
  /// equal plans.
  std::string plan_id;
  /// Estimated total cost of that plan, U . C.
  double total_cost = 0.0;
  /// Resource usage vector of the plan, when the oracle is willing to
  /// reveal it (white-box mode). Commercial optimizers do not provide this
  /// (paper Section 6.1.1); the narrow wrapper leaves it empty and forces
  /// least-squares extraction.
  std::optional<UsageVector> usage;
};

/// Abstract optimizer interface used by the sensitivity algorithms: feed in
/// a resource cost vector, get back the estimated optimal plan and its
/// estimated total cost.
class PlanOracle {
 public:
  virtual ~PlanOracle() = default;

  /// Optimizes under resource costs `c` (dimension must equal dims()).
  virtual OracleResult Optimize(const CostVector& c) = 0;

  /// Dimensionality of the resource cost space this oracle prices over.
  virtual size_t dims() const = 0;
};

/// The fallible flavor of the same interface. Real optimizer endpoints
/// time out, flake under load, and return garbage; decorators that model
/// or absorb those failures (runtime::resilience) speak this contract,
/// and the drivers (discovery, vertex sweeps, extraction) degrade
/// per-point instead of aborting a whole run on one bad reply.
class FalliblePlanOracle {
 public:
  virtual ~FalliblePlanOracle() = default;

  /// Optimizes under resource costs `c`, or reports why it could not:
  /// kUnavailable for transient faults, kDeadlineExceeded for blown time
  /// budgets, kInternal for replies rejected by validation.
  [[nodiscard]] virtual Result<OracleResult> TryOptimize(const CostVector& c) = 0;

  virtual size_t dims() const = 0;
};

/// Adapts an infallible PlanOracle to the fallible interface (every call
/// succeeds by contract). Lets the degradation-aware driver internals run
/// unchanged on oracles that cannot fail, with identical behavior to the
/// pre-resilience code path.
class InfallibleOracleAdapter final : public FalliblePlanOracle {
 public:
  /// `base` is not owned and must outlive this.
  explicit InfallibleOracleAdapter(PlanOracle& base) : base_(base) {}

  [[nodiscard]] Result<OracleResult> TryOptimize(const CostVector& c) override {
    return base_.Optimize(c);
  }
  size_t dims() const override { return base_.dims(); }

 private:
  PlanOracle& base_;
};

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_ORACLE_H_
