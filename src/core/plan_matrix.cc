#include "core/plan_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "linalg/kernels.h"
#include "linalg/simd_kernels.h"

namespace costsense::core {

namespace {

// Shared by the CHECKing constructor and the Status-returning factory. A
// non-finite usage entry would poison every batched dot product built on
// the matrix, so it is rejected at flattening time.
Status CheckPlanSet(const std::vector<PlanUsage>& plans) {
  const size_t dims = plans.empty() ? 0 : plans[0].usage.size();
  for (size_t p = 0; p < plans.size(); ++p) {
    if (plans[p].usage.size() != dims) {
      return Status::InvalidArgument(StrFormat(
          "plan usage vectors must share one dimensionality "
          "(plan %s has %zu dims, expected %zu)",
          plans[p].plan_id.c_str(), plans[p].usage.size(), dims));
    }
    for (size_t i = 0; i < dims; ++i) {
      if (!std::isfinite(plans[p].usage[i])) {
        return Status::InvalidArgument(
            StrFormat("plan %s has non-finite usage in dim %zu (%g)",
                      plans[p].plan_id.c_str(), i, plans[p].usage[i]));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<PlanMatrix> PlanMatrix::Validated(const std::vector<PlanUsage>& plans) {
  COSTSENSE_RETURN_IF_ERROR(CheckPlanSet(plans));
  return PlanMatrix(plans);
}

PlanMatrix::PlanMatrix(const std::vector<PlanUsage>& plans)
    : rows_(plans.size()),
      dims_(plans.empty() ? 0 : plans[0].usage.size()) {
  row_major_.resize(rows_ * dims_);
  col_major_.resize(rows_ * dims_);
  sums_.resize(rows_);
  norms_.resize(rows_);
  ids_.reserve(rows_);
  for (size_t p = 0; p < rows_; ++p) {
    const PlanUsage& plan = plans[p];
    COSTSENSE_CHECK_MSG(plan.usage.size() == dims_,
                        "plan usage vectors must share one dimensionality");
    ids_.push_back(plan.plan_id);
    double sum = 0.0;
    double sq = 0.0;
    for (size_t i = 0; i < dims_; ++i) {
      const double u = plan.usage[i];
      COSTSENSE_CHECK_MSG(std::isfinite(u),
                          "plan usage vectors must be finite");
      row_major_[p * dims_ + i] = u;
      col_major_[i * rows_ + p] = u;
      sum += u;
      sq += u * u;
    }
    sums_[p] = sum;
    norms_[p] = std::sqrt(sq);
    max_norm_ = std::max(max_norm_, norms_[p]);
  }
}

void PlanMatrix::BatchTotalCosts(const CostVector& c,
                                 std::vector<double>& out) const {
  COSTSENSE_CHECK_MSG(c.size() == dims_ || rows_ == 0,
                      "cost vector dims do not match plan matrix");
  out.resize(rows_);
  if (rows_ == 0) return;
  linalg::MatVecRowMajor(row_major_.data(), rows_, dims_, c.data().data(),
                         out.data());
}

void PlanMatrix::BatchTotalCostsScreen(const CostVector& c,
                                       std::vector<double>& out) const {
  COSTSENSE_CHECK_MSG(c.size() == dims_ || rows_ == 0,
                      "cost vector dims do not match plan matrix");
  out.resize(rows_);
  if (rows_ == 0) return;
  linalg::MatVecRowMajorSimd(row_major_.data(), rows_, dims_, c.data().data(),
                             out.data());
}

}  // namespace costsense::core
