#include "core/plan_matrix.h"

#include <cmath>

#include "common/macros.h"
#include "linalg/kernels.h"

namespace costsense::core {

PlanMatrix::PlanMatrix(const std::vector<PlanUsage>& plans)
    : rows_(plans.size()),
      dims_(plans.empty() ? 0 : plans[0].usage.size()) {
  row_major_.resize(rows_ * dims_);
  col_major_.resize(rows_ * dims_);
  sums_.resize(rows_);
  norms_.resize(rows_);
  ids_.reserve(rows_);
  for (size_t p = 0; p < rows_; ++p) {
    const PlanUsage& plan = plans[p];
    COSTSENSE_CHECK_MSG(plan.usage.size() == dims_,
                        "plan usage vectors must share one dimensionality");
    ids_.push_back(plan.plan_id);
    double sum = 0.0;
    double sq = 0.0;
    for (size_t i = 0; i < dims_; ++i) {
      const double u = plan.usage[i];
      row_major_[p * dims_ + i] = u;
      col_major_[i * rows_ + p] = u;
      sum += u;
      sq += u * u;
    }
    sums_[p] = sum;
    norms_[p] = std::sqrt(sq);
  }
}

void PlanMatrix::BatchTotalCosts(const CostVector& c,
                                 std::vector<double>& out) const {
  COSTSENSE_CHECK_MSG(c.size() == dims_ || rows_ == 0,
                      "cost vector dims do not match plan matrix");
  out.resize(rows_);
  if (rows_ == 0) return;
  linalg::MatVecRowMajor(row_major_.data(), rows_, dims_, c.data().data(),
                         out.data());
}

}  // namespace costsense::core
