#ifndef COSTSENSE_CORE_PLAN_MATRIX_H_
#define COSTSENSE_CORE_PLAN_MATRIX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/vectors.h"

namespace costsense::core {

/// A candidate plan set flattened into structure-of-arrays form for the
/// batched plan-cost kernels: one contiguous row-major buffer (plan p's
/// usage vector is the p-th row) for full-vector products, plus a
/// column-major transpose (dimension i's values across all plans are
/// contiguous) for the Gray-code incremental sweep, which touches one
/// dimension of every plan per vertex. Per-plan element sums and Euclidean
/// norms are cached at construction (the dominance prescreen and bench
/// reporting read them repeatedly).
///
/// BatchTotalCosts reproduces TotalCost bit for bit per plan (left-to-right
/// accumulation; see linalg/kernels.h), so code rewritten on top of a
/// PlanMatrix returns byte-identical results to the per-plan loops it
/// replaces.
class PlanMatrix {
 public:
  /// Flattens `plans`; all usage vectors must share one dimensionality and
  /// contain only finite values (CHECKed). An empty plan set yields a
  /// 0 x 0 matrix.
  explicit PlanMatrix(const std::vector<PlanUsage>& plans);

  /// Validating factory: the same invariants reported as a typed
  /// InvalidArgument instead of a process-fatal CHECK. For plan sets built
  /// from an untrusted source — a faulty oracle reply, a checkpoint, a
  /// least-squares fit that went non-finite — where a garbage usage vector
  /// must fail one analysis, not abort the sweep that batched it.
  [[nodiscard]] static Result<PlanMatrix> Validated(const std::vector<PlanUsage>& plans);

  /// Number of plans (matrix rows).
  size_t rows() const { return rows_; }
  /// Resource-space dimensionality (matrix columns).
  size_t dims() const { return dims_; }

  const std::string& plan_id(size_t p) const { return ids_[p]; }
  double at(size_t p, size_t i) const { return row_major_[p * dims_ + i]; }

  /// Plan p's usage vector, contiguous, dims() long.
  const double* row(size_t p) const { return row_major_.data() + p * dims_; }
  /// Dimension i's usage across all plans, contiguous, rows() long.
  const double* col(size_t i) const { return col_major_.data() + i * rows_; }

  /// Cached element sum of plan p's usage vector.
  double row_sum(size_t p) const { return sums_[p]; }
  /// Cached Euclidean norm of plan p's usage vector.
  double row_norm(size_t p) const { return norms_[p]; }
  /// Cached maximum of row_norm over all plans (0 for an empty set). The
  /// SIMD screening paths use it to size rigorous error bands around
  /// approximate costs.
  double max_row_norm() const { return max_norm_; }

  /// out[p] = U_p . c for every plan, resizing `out` to rows(). Blocked
  /// matrix-vector kernel; each entry is bit-identical to
  /// TotalCost(plans[p].usage, c).
  void BatchTotalCosts(const CostVector& c, std::vector<double>& out) const;

  /// Approximate twin of BatchTotalCosts on the dispatched SIMD mat-vec
  /// (linalg/simd_kernels.h): lane-reassociated sums, so entries carry
  /// ~dims*eps relative error. Screen-only — callers must re-evaluate any
  /// decision winner with BatchTotalCosts (or an exact per-row dot) before
  /// emitting it. Falls back to the exact kernel when SIMD is compiled
  /// out.
  void BatchTotalCostsScreen(const CostVector& c,
                             std::vector<double>& out) const;

 private:
  size_t rows_ = 0;
  size_t dims_ = 0;
  std::vector<double> row_major_;
  std::vector<double> col_major_;
  std::vector<double> sums_;
  std::vector<double> norms_;
  double max_norm_ = 0.0;
  std::vector<std::string> ids_;
};

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_PLAN_MATRIX_H_
