#include "core/region_of_influence.h"

#include <cmath>

#include "common/macros.h"
#include "lp/simplex.h"

namespace costsense::core {

Result<CandidacyResult> FindRegionWitness(const UsageVector& a,
                                          const std::vector<PlanUsage>& rivals,
                                          const Box& box) {
  const size_t n = box.dims();
  if (a.size() != n) {
    return Status::InvalidArgument("usage vector dims do not match box");
  }

  // Variables: w_0..w_{n-1} in [0, 1] (normalized position within the
  // box: C_i = lo_i + w_i * width_i) and s (the optimality margin).
  // Normalizing both the variables and each rival row keeps the tableau
  // well-conditioned despite usage/cost magnitudes spanning many orders.
  lp::Problem p;
  p.num_vars = n + 1;
  p.maximize = true;
  p.objective = linalg::Vector(n + 1);
  p.objective[n] = 1.0;

  const CostVector& lo = box.lower();
  const CostVector& hi = box.upper();
  const CostVector center = box.Center();

  // w_i <= 1
  for (size_t i = 0; i < n; ++i) {
    lp::Constraint con;
    con.coeffs = linalg::Vector(n + 1);
    con.coeffs[i] = 1.0;
    con.rel = lp::Relation::kLessEqual;
    con.rhs = 1.0;
    p.constraints.push_back(std::move(con));
  }
  // s <= 1 (keeps the LP bounded; the margin is normalized below).
  {
    lp::Constraint con;
    con.coeffs = linalg::Vector(n + 1);
    con.coeffs[n] = 1.0;
    con.rel = lp::Relation::kLessEqual;
    con.rhs = 1.0;
    p.constraints.push_back(std::move(con));
  }
  // For each rival b: (B - A).(lo + w*width) >= s * sigma, where sigma
  // scales the margin to the constraint's magnitude at the box center.
  for (const PlanUsage& rival : rivals) {
    if (rival.usage.size() != n) {
      return Status::InvalidArgument("rival usage dims do not match box");
    }
    linalg::Vector diff = rival.usage - a;
    if (diff.InfNorm() == 0.0) continue;  // identical usage: always a tie
    double sigma = 0.0;
    for (size_t i = 0; i < n; ++i) sigma += std::fabs(diff[i]) * center[i];
    COSTSENSE_CHECK(sigma > 0.0);

    lp::Constraint con;
    con.coeffs = linalg::Vector(n + 1);
    for (size_t i = 0; i < n; ++i) {
      con.coeffs[i] = diff[i] * (hi[i] - lo[i]) / sigma;
    }
    con.coeffs[n] = -1.0;
    con.rel = lp::Relation::kGreaterEqual;
    con.rhs = -linalg::Dot(diff, lo) / sigma;
    p.constraints.push_back(std::move(con));
  }

  const lp::Solution sol = lp::Solve(p);
  CandidacyResult out;
  if (sol.status != lp::SolveStatus::kOptimal) {
    out.candidate = false;  // infeasible even with zero margin
    return out;
  }
  out.candidate = true;
  out.margin = sol.x[n];
  out.witness = CostVector(n);
  for (size_t i = 0; i < n; ++i) {
    out.witness[i] = lo[i] + sol.x[i] * (hi[i] - lo[i]);
  }
  return out;
}

bool InRegionOfInfluence(const std::vector<PlanUsage>& plans, size_t index,
                         const CostVector& c, double rel_tol) {
  COSTSENSE_CHECK(index < plans.size());
  const double mine = TotalCost(plans[index].usage, c);
  for (size_t j = 0; j < plans.size(); ++j) {
    if (j == index) continue;
    const double theirs = TotalCost(plans[j].usage, c);
    if (mine > theirs * (1.0 + rel_tol)) return false;
  }
  return true;
}

}  // namespace costsense::core
