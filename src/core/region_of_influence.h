#ifndef COSTSENSE_CORE_REGION_OF_INFLUENCE_H_
#define COSTSENSE_CORE_REGION_OF_INFLUENCE_H_

#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "core/vectors.h"

namespace costsense::core {

/// Answer to "is this plan optimal anywhere in the feasible region, and if
/// so where?".
struct CandidacyResult {
  /// True if some feasible cost vector makes the plan (weakly) optimal
  /// against all rivals — the definition of candidate optimal (paper
  /// Section 4.4).
  bool candidate = false;
  /// Normalized optimality margin at the witness: 0 means the plan only
  /// ties on the boundary of its region of influence; > 0 means the witness
  /// is in the region's interior.
  double margin = 0.0;
  /// A feasible cost vector under which the plan is optimal (valid when
  /// candidate is true).
  CostVector witness;
};

/// Decides by linear programming whether the plan with usage vector `a` is
/// candidate optimal against `rivals` within the feasible box, i.e. whether
/// its region of influence (paper Section 4.5)
///   V_a = { C in box : A.C <= B.C for all rivals B }
/// is non-empty — and finds a deepest-margin witness inside it.
///
/// This is the LP replacement for the paper's geometric construction:
/// regions of influence are convex polytopes bounded by switchover planes,
/// so emptiness and interior points are exactly LP questions.
[[nodiscard]] Result<CandidacyResult> FindRegionWitness(const UsageVector& a,
                                          const std::vector<PlanUsage>& rivals,
                                          const Box& box);

/// True if `c` lies in the region of influence of `plans[index]` relative
/// to the full set (i.e. that plan is cheapest at `c`, within relative
/// tolerance `rel_tol` for ties).
bool InRegionOfInfluence(const std::vector<PlanUsage>& plans, size_t index,
                         const CostVector& c, double rel_tol = 1e-12);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_REGION_OF_INFLUENCE_H_
