#include "core/relative_cost.h"

#include <limits>

#include "common/macros.h"

namespace costsense::core {

double RelativeTotalCost(const UsageVector& a, const UsageVector& b,
                         const CostVector& c) {
  const double denom = TotalCost(b, c);
  COSTSENSE_CHECK_MSG(denom > 0.0, "reference plan has non-positive cost");
  return TotalCost(a, c) / denom;
}

size_t OptimalPlanIndex(const std::vector<PlanUsage>& plans,
                        const CostVector& c) {
  COSTSENSE_CHECK(!plans.empty());
  size_t best = 0;
  double best_cost = TotalCost(plans[0].usage, c);
  for (size_t i = 1; i < plans.size(); ++i) {
    const double cost = TotalCost(plans[i].usage, c);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

double GlobalRelativeCost(const UsageVector& a,
                          const std::vector<PlanUsage>& plans,
                          const CostVector& c) {
  const size_t best = OptimalPlanIndex(plans, c);
  return RelativeTotalCost(a, plans[best].usage, c);
}

}  // namespace costsense::core
