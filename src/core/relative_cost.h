#ifndef COSTSENSE_CORE_RELATIVE_COST_H_
#define COSTSENSE_CORE_RELATIVE_COST_H_

#include <vector>

#include "core/vectors.h"

namespace costsense::core {

/// Relative total cost of plan a with respect to plan b under costs C
/// (paper Eq. 7): T_rel(a, b, C) = (A . C) / (B . C). Unitless; equals 1
/// exactly on the switchover plane. Requires B . C > 0 (CHECKed).
double RelativeTotalCost(const UsageVector& a, const UsageVector& b,
                         const CostVector& c);

/// Global relative total cost of plan a under costs C (paper Section 5.2):
/// the ratio of a's cost to the cost of the best plan in `plans` under C.
/// Intuitively: how many times faster the query would have run had the
/// optimizer picked the right plan. Returns >= 1 when a is in `plans`.
double GlobalRelativeCost(const UsageVector& a,
                          const std::vector<PlanUsage>& plans,
                          const CostVector& c);

/// Index into `plans` of the cheapest plan under C (first on ties).
size_t OptimalPlanIndex(const std::vector<PlanUsage>& plans,
                        const CostVector& c);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_RELATIVE_COST_H_
