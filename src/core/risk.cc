#include "core/risk.h"

#include <algorithm>

#include "core/plan_matrix.h"
#include "linalg/kernels.h"

namespace costsense::core {

Result<RiskProfile> ComputeRiskProfile(const UsageVector& initial_usage,
                                       const std::vector<PlanUsage>& plans,
                                       const Box& box, Rng& rng,
                                       size_t samples) {
  if (plans.empty()) {
    return Status::InvalidArgument("candidate plan set is empty");
  }
  if (initial_usage.size() != box.dims()) {
    return Status::InvalidArgument("usage dims do not match box");
  }
  if (samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }

  // Batched sampling loop: one flattened plan matrix, one scratch sample
  // vector, one scratch cost vector — no per-sample allocation. ArgMin
  // over the batched costs picks the same first-strict-minimum plan as
  // the per-plan dot scan did, and every reduction accumulates left to
  // right, so each sample's gtc is bit-identical to the scalar path.
  const PlanMatrix matrix(plans);
  std::vector<double> gtcs;
  gtcs.reserve(samples);
  CostVector c(box.dims());
  std::vector<double> costs(matrix.rows());
  double sum = 0.0;
  size_t suboptimal = 0;
  size_t degenerate = 0;
  for (size_t i = 0; i < samples; ++i) {
    box.SampleLogUniformInto(rng, c);
    matrix.BatchTotalCosts(c, costs);
    const double denom = costs[linalg::ArgMin(costs.data(), costs.size())];
    // A degenerate draw (non-positive optimal cost) is counted and
    // skipped; the profile covers the remaining draws. Aborting here would
    // let one pathological corner of the band kill a whole table run.
    if (denom <= 0.0) {
      ++degenerate;
      continue;
    }
    const double gtc = TotalCost(initial_usage, c) / denom;
    gtcs.push_back(gtc);
    sum += gtc;
    if (gtc > 1.0 + 1e-9) ++suboptimal;
  }
  if (gtcs.empty()) {
    return Status::FailedPrecondition(
        "every risk sample was degenerate (non-positive optimal cost)");
  }
  std::sort(gtcs.begin(), gtcs.end());

  auto quantile = [&gtcs](double q) {
    const size_t idx = static_cast<size_t>(q * (gtcs.size() - 1));
    return gtcs[idx];
  };
  RiskProfile out;
  out.samples = gtcs.size();
  out.degenerate_samples = degenerate;
  out.mean_gtc = sum / static_cast<double>(gtcs.size());
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  out.max_seen = gtcs.back();
  out.prob_suboptimal =
      static_cast<double>(suboptimal) / static_cast<double>(gtcs.size());
  return out;
}

}  // namespace costsense::core
