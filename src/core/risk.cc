#include "core/risk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/plan_matrix.h"
#include "linalg/kernels.h"
#include "linalg/simd_kernels.h"

namespace costsense::core {

Result<RiskProfile> ComputeRiskProfile(const UsageVector& initial_usage,
                                       const std::vector<PlanUsage>& plans,
                                       const Box& box, Rng& rng,
                                       size_t samples) {
  if (plans.empty()) {
    return Status::InvalidArgument("candidate plan set is empty");
  }
  if (initial_usage.size() != box.dims()) {
    return Status::InvalidArgument("usage dims do not match box");
  }
  if (samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }

  // Batched sampling loop: one flattened plan matrix, one scratch sample
  // vector, one scratch cost vector — no per-sample allocation. ArgMin
  // over the batched costs picks the same first-strict-minimum plan as
  // the per-plan dot scan did, and every reduction accumulates left to
  // right, so each sample's gtc is bit-identical to the scalar path.
  const PlanMatrix matrix(plans);
  std::vector<double> gtcs;
  gtcs.reserve(samples);
  CostVector c(box.dims());
  std::vector<double> costs(matrix.rows());
  std::vector<double> approx(matrix.rows());
  double sum = 0.0;
  size_t suboptimal = 0;
  size_t degenerate = 0;
  // SIMD screening (when available and the plan set is large enough to
  // pay for it): the vectorized mat-vec estimates every plan's cost, and
  // only plans whose estimate lands within a rigorous error band of the
  // estimated minimum are re-evaluated with the exact left-to-right dot.
  // A reassociated d-term dot is off by at most ~d*eps*|U_p|*|c|
  // (Cauchy-Schwarz over the term magnitudes); with tau an inflated bound
  // on that error, the true minimizer's estimate is always within
  // amin + 2*tau, so the exact minimum over the band equals the exact
  // minimum over all plans bit for bit — every sample's gtc, and the
  // whole profile, stays byte-identical to the unscreened path.
  const bool screen = linalg::SimdSweepAvailable() && matrix.rows() >= 8;
  const double tau_scale = 16.0 * static_cast<double>(box.dims()) *
                           std::numeric_limits<double>::epsilon() *
                           matrix.max_row_norm();
  for (size_t i = 0; i < samples; ++i) {
    box.SampleLogUniformInto(rng, c);
    double denom;
    if (screen) {
      matrix.BatchTotalCostsScreen(c, approx);
      const double amin = linalg::MinValueSimd(approx.data(), approx.size());
      const double* cd = c.data().data();
      const double band =
          amin + 2.0 * tau_scale *
                     std::sqrt(linalg::DotRaw(cd, cd, box.dims()));
      if (!std::isfinite(band)) {
        // Non-finite estimates void the band reasoning; evaluate exactly.
        matrix.BatchTotalCosts(c, costs);
        denom = costs[linalg::ArgMin(costs.data(), costs.size())];
      } else {
        denom = 0.0;
        bool have = false;
        for (size_t p = 0; p < matrix.rows(); ++p) {
          // A NaN estimate fails this comparison and is evaluated exactly
          // — estimates can only ever *widen* the candidate set.
          if (approx[p] > band) continue;
          const double exact = linalg::DotRaw(matrix.row(p), cd, box.dims());
          if (!have || exact < denom) {
            denom = exact;
            have = true;
          }
        }
        // A finite estimated minimum is achieved by some entry, which is
        // inside its own band, so at least one candidate was evaluated.
        COSTSENSE_CHECK(have);
      }
    } else {
      matrix.BatchTotalCosts(c, costs);
      denom = costs[linalg::ArgMin(costs.data(), costs.size())];
    }
    // A degenerate draw (non-positive optimal cost) is counted and
    // skipped; the profile covers the remaining draws. Aborting here would
    // let one pathological corner of the band kill a whole table run.
    if (denom <= 0.0) {
      ++degenerate;
      continue;
    }
    const double gtc = TotalCost(initial_usage, c) / denom;
    gtcs.push_back(gtc);
    sum += gtc;
    if (gtc > 1.0 + 1e-9) ++suboptimal;
  }
  if (gtcs.empty()) {
    return Status::FailedPrecondition(
        "every risk sample was degenerate (non-positive optimal cost)");
  }
  std::sort(gtcs.begin(), gtcs.end());

  auto quantile = [&gtcs](double q) {
    const size_t idx = static_cast<size_t>(q * (gtcs.size() - 1));
    return gtcs[idx];
  };
  RiskProfile out;
  out.samples = gtcs.size();
  out.degenerate_samples = degenerate;
  out.mean_gtc = sum / static_cast<double>(gtcs.size());
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  out.max_seen = gtcs.back();
  out.prob_suboptimal =
      static_cast<double>(suboptimal) / static_cast<double>(gtcs.size());
  return out;
}

}  // namespace costsense::core
