#ifndef COSTSENSE_CORE_RISK_H_
#define COSTSENSE_CORE_RISK_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/feasible_region.h"
#include "core/vectors.h"

namespace costsense::core {

/// Distributional complement to the paper's worst-case analysis: the
/// worst vertex tells you how bad things *can* get; operators also want to
/// know how bad they *typically* get. Samples cost vectors log-uniformly
/// from the feasible region (the multiplicative-error model) and profiles
/// the global relative cost of a fixed plan.
struct RiskProfile {
  double mean_gtc = 1.0;
  double p50 = 1.0;
  double p90 = 1.0;
  double p99 = 1.0;
  /// Largest GTC among the samples (a lower bound on the true worst case).
  double max_seen = 1.0;
  /// Fraction of sampled scenarios in which the plan is not optimal
  /// (GTC > 1 beyond rounding).
  double prob_suboptimal = 0.0;
  size_t samples = 0;
  /// Draws skipped because the optimal total cost there was non-positive
  /// (a zero-usage candidate at a degenerate corner of the band). The
  /// quantiles cover only the remaining samples; `samples` counts those.
  size_t degenerate_samples = 0;
};

/// Profiles plan `initial_usage` against the candidate set `plans` over
/// `box` with `samples` Monte Carlo draws. `plans` must be the complete
/// candidate set for GTC values to be exact per draw.
[[nodiscard]] Result<RiskProfile> ComputeRiskProfile(const UsageVector& initial_usage,
                                       const std::vector<PlanUsage>& plans,
                                       const Box& box, Rng& rng,
                                       size_t samples = 2000);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_RISK_H_
