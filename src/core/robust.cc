#include "core/robust.h"

#include "core/worst_case.h"

namespace costsense::core {

Result<RobustChoice> ChooseRobustPlan(const std::vector<PlanUsage>& plans,
                                      const Box& box) {
  if (plans.empty()) {
    return Status::InvalidArgument("no candidate plans to choose from");
  }
  RobustChoice out;
  out.per_plan_worst_gtc.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    Result<WorstCaseResult> wc =
        WorstCaseOverPlansByLp(plans[i].usage, plans, box);
    if (!wc.ok()) return wc.status();
    out.per_plan_worst_gtc.push_back(wc->gtc);
    if (i == 0 || wc->gtc < out.per_plan_worst_gtc[out.plan_index]) {
      out.plan_index = i;
    }
  }
  out.worst_case_gtc = out.per_plan_worst_gtc[out.plan_index];
  return out;
}

}  // namespace costsense::core
