#ifndef COSTSENSE_CORE_ROBUST_H_
#define COSTSENSE_CORE_ROBUST_H_

#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "core/vectors.h"

namespace costsense::core {

/// Result of robust plan selection.
struct RobustChoice {
  /// Index into the candidate set of the chosen plan.
  size_t plan_index = 0;
  /// Its worst-case global relative cost over the feasible region — the
  /// best achievable guarantee.
  double worst_case_gtc = 1.0;
  /// Worst-case GTC of every candidate, parallel to the input (the full
  /// minimax landscape).
  std::vector<double> per_plan_worst_gtc;
};

/// Minimax-regret plan selection — the constructive counterpart to the
/// paper's diagnosis. The paper shows the *estimate-optimal* plan can be
/// delta^2 from optimal when storage costs are uncertain (Theorem 1);
/// this picks instead the candidate plan whose worst-case global relative
/// cost over the feasible cost region is smallest:
///
///   argmin_a  max_{C in box}  A.C / min_b B.C
///
/// evaluated exactly with the linear-fractional maximizer per plan pair.
/// The returned guarantee is at most the estimate-optimal plan's worst
/// case, often far below it when complementary plans exist.
[[nodiscard]] Result<RobustChoice> ChooseRobustPlan(const std::vector<PlanUsage>& plans,
                                      const Box& box);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_ROBUST_H_
