#include "core/switchover.h"

#include <cmath>

namespace costsense::core {

SwitchoverPlane::SwitchoverPlane(const UsageVector& a, const UsageVector& b)
    : normal_(a - b), degenerate_(normal_.InfNorm() == 0.0) {}

double SwitchoverPlane::Evaluate(const CostVector& c) const {
  return linalg::Dot(normal_, c);
}

Side SwitchoverPlane::Classify(const CostVector& c, double tol) const {
  // Scale the tolerance by the magnitudes involved so classification is
  // invariant under rescaling of C (paper Observation 1).
  const double v = Evaluate(c);
  const double scale = normal_.InfNorm() * c.InfNorm();
  const double eff_tol = tol * (scale > 0.0 ? scale : 1.0);
  if (v > eff_tol) return Side::kADominated;
  if (v < -eff_tol) return Side::kBDominated;
  return Side::kOnPlane;
}

bool OnSameEquicostLine(const UsageVector& a, const UsageVector& b,
                        const CostVector& c, double rel_tol) {
  const double ta = TotalCost(a, c);
  const double tb = TotalCost(b, c);
  const double scale = std::max(std::fabs(ta), std::fabs(tb));
  return std::fabs(ta - tb) <= rel_tol * (scale > 0.0 ? scale : 1.0);
}

}  // namespace costsense::core
