#ifndef COSTSENSE_CORE_SWITCHOVER_H_
#define COSTSENSE_CORE_SWITCHOVER_H_

#include "core/vectors.h"

namespace costsense::core {

/// Which side of the switchover plane of plans a and b a cost vector C lies
/// on (paper Sections 4.2-4.3). On the A-dominated side plan a is the more
/// expensive one (A.C > B.C); on the B-dominated side plan b is.
enum class Side { kADominated, kBDominated, kOnPlane };

/// The switchover plane of two plans: the set of cost vectors under which
/// both plans have equal total cost,
///   Switchover_{A,B} = { C : (A - B) . C = 0 },
/// a hyperplane through the origin with normal A - B (paper Section 4.2).
class SwitchoverPlane {
 public:
  /// Builds the plane for plans with usage vectors `a` and `b`.
  SwitchoverPlane(const UsageVector& a, const UsageVector& b);

  /// The plane normal, A - B.
  const linalg::Vector& normal() const { return normal_; }

  /// Signed evaluation (A - B) . c; zero (within tol) means c is on the
  /// plane, positive means plan a costs more under c.
  double Evaluate(const CostVector& c) const;

  /// Classifies which half-space `c` falls in (paper Section 4.3).
  Side Classify(const CostVector& c, double tol = 1e-12) const;

  /// True if the two plans have identical usage vectors, in which case
  /// there is no plane (every C is "on" it).
  bool degenerate() const { return degenerate_; }

 private:
  linalg::Vector normal_;
  bool degenerate_;
};

/// Returns the cost-space distance scale-free test of equicost: whether two
/// usage vectors lie on the same equicost line for cost vector `c`
/// (paper Section 4.1): A.C == B.C within relative tolerance.
bool OnSameEquicostLine(const UsageVector& a, const UsageVector& b,
                        const CostVector& c, double rel_tol = 1e-9);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_SWITCHOVER_H_
