#include "core/usage_extraction.h"

#include <cmath>
#include <vector>

#include "common/strings.h"
#include "linalg/least_squares.h"
#include "linalg/matrix.h"

namespace costsense::core {

Result<ExtractedUsage> ExtractUsageVector(PlanOracle& oracle,
                                          const std::string& plan_id,
                                          const CostVector& seed,
                                          const Box& box, Rng& rng,
                                          const ExtractionOptions& options) {
  InfallibleOracleAdapter adapter(oracle);
  return ExtractUsageVector(adapter, plan_id, seed, box, rng, options,
                            /*telemetry=*/nullptr);
}

Result<ExtractedUsage> ExtractUsageVector(FalliblePlanOracle& oracle,
                                          const std::string& plan_id,
                                          const CostVector& seed,
                                          const Box& box, Rng& rng,
                                          const ExtractionOptions& options,
                                          ExtractionTelemetry* telemetry) {
  ExtractionTelemetry local;
  ExtractionTelemetry& tel = telemetry != nullptr ? *telemetry : local;
  tel = ExtractionTelemetry{};

  const size_t n = box.dims();
  if (seed.size() != n) {
    return Status::InvalidArgument("seed dimension does not match box");
  }
  const size_t fit_target =
      std::max<size_t>(options.oversample_factor * n, n + 1);
  const size_t want = fit_target + options.validation_samples;

  std::vector<CostVector> accepted;
  std::vector<double> observed;
  accepted.reserve(want);
  observed.reserve(want);

  // The seed itself must produce the plan; it anchors the sample cloud.
  {
    const Result<OracleResult> r = oracle.TryOptimize(seed);
    ++tel.oracle_calls;
    if (!r.ok()) {
      ++tel.failed_probes;
      return Status::FailedPrecondition(
          StrFormat("seed probe for plan %s failed: %s", plan_id.c_str(),
                    r.status().message().c_str()));
    }
    if (r->plan_id != plan_id) {
      return Status::FailedPrecondition(
          "seed point does not yield the requested plan");
    }
    accepted.push_back(seed);
    observed.push_back(r->total_cost);
  }

  // Adaptive jitter: widen on acceptance, shrink on rejection, so the cloud
  // fills the region of influence without leaving it too often. Convexity
  // of the region (paper Observation 3) guarantees that shrinking toward
  // the seed eventually re-enters it. A failed probe is neither: it says
  // nothing about region membership, so it is dropped without touching the
  // jitter width.
  double jitter = options.initial_jitter;
  constexpr double kMinJitter = 1e-5;
  while (accepted.size() < want && tel.oracle_calls < options.max_oracle_calls) {
    CostVector c(n);
    for (size_t i = 0; i < n; ++i) {
      const double f = std::exp(rng.Uniform(-1.0, 1.0) * std::log1p(jitter));
      double v = seed[i] * f;
      v = std::min(std::max(v, box.lower()[i]), box.upper()[i]);
      c[i] = v;
    }
    const Result<OracleResult> r = oracle.TryOptimize(c);
    ++tel.oracle_calls;
    if (!r.ok()) {
      ++tel.failed_probes;
      continue;
    }
    if (r->plan_id == plan_id) {
      accepted.push_back(std::move(c));
      observed.push_back(r->total_cost);
      jitter = std::min(jitter * 1.1, 4.0);
    } else {
      jitter = std::max(jitter * 0.8, kMinJitter);
    }
  }
  if (accepted.size() < want) {
    return Status::FailedPrecondition(StrFormat(
        "only %zu of %zu in-region samples found for plan %s after %zu "
        "oracle calls (%zu probes failed)",
        accepted.size(), want, plan_id.c_str(), tel.oracle_calls,
        tel.failed_probes));
  }

  // Split into fit and validation sets.
  std::vector<linalg::Vector> fit_rows(accepted.begin(),
                                       accepted.begin() + fit_target);
  linalg::Vector fit_rhs(fit_target);
  for (size_t i = 0; i < fit_target; ++i) fit_rhs[i] = observed[i];

  const linalg::Matrix c_matrix = linalg::Matrix::FromRows(fit_rows);
  Result<UsageVector> fit = linalg::NonNegativeLeastSquares(
      c_matrix, fit_rhs, /*clamp_tol=*/1e-6 * fit_rhs.InfNorm());
  if (!fit.ok()) {
    // Rank deficiency surfaces as a typed error with extraction context,
    // never as a garbage usage vector.
    return Status::FailedPrecondition(StrFormat(
        "usage extraction for plan %s: probe matrix unusable after %zu "
        "dropped probes: %s",
        plan_id.c_str(), tel.failed_probes, fit.status().message().c_str()));
  }

  ExtractedUsage out;
  out.usage = std::move(fit).value();
  out.samples_used = fit_target;
  out.oracle_calls = tel.oracle_calls;

  // Validate on held-out samples (the paper's <1% discrepancy check).
  const size_t n_val = accepted.size() - fit_target;
  if (n_val > 0) {
    std::vector<linalg::Vector> val_rows(accepted.begin() + fit_target,
                                         accepted.end());
    linalg::Vector val_rhs(n_val);
    for (size_t i = 0; i < n_val; ++i) val_rhs[i] = observed[fit_target + i];
    out.validation_error = linalg::RelativeResidual(
        linalg::Matrix::FromRows(val_rows), out.usage, val_rhs);
  }
  return out;
}

}  // namespace costsense::core
