#ifndef COSTSENSE_CORE_USAGE_EXTRACTION_H_
#define COSTSENSE_CORE_USAGE_EXTRACTION_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/feasible_region.h"
#include "core/oracle.h"
#include "core/vectors.h"

namespace costsense::core {

/// Tuning for least-squares usage-vector extraction.
struct ExtractionOptions {
  /// Collect oversample_factor * n accepted samples (paper Section 6.1.1
  /// always used m >= 2n to compensate for optimizer quantization error).
  size_t oversample_factor = 2;
  /// Additional held-out samples used to validate the fit.
  size_t validation_samples = 4;
  /// Initial per-dimension multiplicative jitter around the seed point
  /// (each coordinate is multiplied by a factor in [1/(1+j), 1+j]).
  double initial_jitter = 0.5;
  /// Give up after this many oracle calls.
  size_t max_oracle_calls = 2000;
};

/// Outcome of an extraction.
struct ExtractedUsage {
  UsageVector usage;
  /// RMS relative error of the fit on the held-out validation samples.
  /// The paper reports this discrepancy to be below one percent.
  double validation_error = 0.0;
  /// Accepted sample count used in the least-squares solve.
  size_t samples_used = 0;
  size_t oracle_calls = 0;
};

/// Oracle-traffic accounting for one extraction, filled even when the
/// extraction itself fails — graceful-degradation callers need the dropped
/// probe count of failed extractions to reconcile against the fault log.
struct ExtractionTelemetry {
  /// TryOptimize calls issued (successful or not).
  size_t oracle_calls = 0;
  /// Probes that returned an error and were dropped from the sample cloud.
  size_t failed_probes = 0;
};

/// Estimates the resource usage vector of the plan `plan_id` through a
/// narrow optimizer interface, by the paper's method (Section 6.1.1):
/// sample m >= 2n cost vectors C_i inside the plan's region of influence
/// (jittering around `seed`, a point where the oracle is known to return
/// this plan), record the reported total costs t_i, and solve the normal
/// equations U = (C^T C)^{-1} C^T t by Gaussian elimination. Slightly
/// negative components are clamped to zero.
///
/// Fails with FailedPrecondition if not enough in-region samples can be
/// found (region too thin) or the sample matrix is rank-deficient.
[[nodiscard]] Result<ExtractedUsage> ExtractUsageVector(PlanOracle& oracle,
                                          const std::string& plan_id,
                                          const CostVector& seed,
                                          const Box& box, Rng& rng,
                                          const ExtractionOptions& options);

/// Fallible-oracle overload: probes that return an error are dropped from
/// the sample cloud (they say nothing about region membership, so they
/// leave the jitter width untouched) and counted in `telemetry`, which is
/// filled even when the extraction fails. Against an oracle that never
/// errors this is call-for-call identical to the overload above. Fails
/// with a typed FailedPrecondition — never a garbage vector — when the
/// seed probe fails, too few in-region samples survive, or the probe
/// matrix is rank-deficient after dropped probes.
[[nodiscard]] Result<ExtractedUsage> ExtractUsageVector(FalliblePlanOracle& oracle,
                                          const std::string& plan_id,
                                          const CostVector& seed,
                                          const Box& box, Rng& rng,
                                          const ExtractionOptions& options,
                                          ExtractionTelemetry* telemetry =
                                              nullptr);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_USAGE_EXTRACTION_H_
