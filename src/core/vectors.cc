#include "core/vectors.h"

namespace costsense::core {

double TotalCost(const UsageVector& usage, const CostVector& costs) {
  return linalg::Dot(usage, costs);
}

const char* DimClassName(DimClass cls) {
  switch (cls) {
    case DimClass::kTable:
      return "table";
    case DimClass::kIndex:
      return "index";
    case DimClass::kTemp:
      return "temp";
    case DimClass::kCpu:
      return "cpu";
    case DimClass::kOther:
      return "other";
  }
  return "other";
}

}  // namespace costsense::core
