#ifndef COSTSENSE_CORE_VECTORS_H_
#define COSTSENSE_CORE_VECTORS_H_

#include <string>
#include <vector>

#include "linalg/vector.h"

namespace costsense::core {

/// A resource *usage* vector U: element i is the number of units of
/// resource i that a query plan consumes (paper Section 3.2).
using UsageVector = linalg::Vector;

/// A resource *cost* vector C: element i is the cost of one unit of
/// resource i (paper Section 3.2).
using CostVector = linalg::Vector;

/// True total cost of a plan under costs C: T = U . C (paper Eq. 1/3).
double TotalCost(const UsageVector& usage, const CostVector& costs);

/// A plan identified by its canonical id together with its usage vector.
/// This is the unit of analysis for the whole framework: the optimizer's
/// plan space is reduced to a set of labeled points in usage space.
struct PlanUsage {
  std::string plan_id;
  UsageVector usage;
};

/// Semantic class of a resource dimension. Complementarity classification
/// (paper Section 5.6) needs to know *what* a dimension measures: tuples
/// from a base table, pages of an index, temporary structures (sorted runs,
/// hash buckets), or CPU.
enum class DimClass { kTable, kIndex, kTemp, kCpu, kOther };

/// Metadata describing one dimension of the resource vector space.
struct DimInfo {
  DimClass cls = DimClass::kOther;
  /// For kTable/kIndex dims: which base table the dimension belongs to
  /// (index dims carry the table whose index they serve); -1 otherwise.
  int table_id = -1;
  /// Human-readable name, e.g. "lineitem.transfer" or "tempdev".
  std::string name;
};

/// Returns the name of a DimClass ("table", "index", ...).
const char* DimClassName(DimClass cls);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_VECTORS_H_
