#include "core/worst_case.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "common/macros.h"
#include "common/strings.h"
#include "linalg/kernels.h"
#include "linalg/simd_kernels.h"
#include "lp/fractional.h"
#include "runtime/resilience/checkpoint.h"
#include "runtime/thread_pool.h"

namespace costsense::core {
namespace {

/// Vertices between full recomputes in the incremental kernel. Each axpy
/// step adds one rounding error per plan cost; refreshing every 64 steps
/// keeps accumulated drift around 64 ulps — far inside the 1e-9 guard band
/// that triggers exact re-evaluation of record candidates.
constexpr uint64_t kRefreshPeriod = 64;

/// Relative slack on "challenges the record": any vertex whose estimated
/// gtc comes within this factor of the incumbent is re-evaluated exactly.
/// Incremental drift is ~1e-13 relative, so no true record can hide below
/// the band, and spurious re-evaluations stay vanishingly rare.
constexpr double kRecheckGuard = 1e-9;

/// Best-so-far slot for one chunk of a vertex sweep.
struct ChunkBest {
  double gtc = 1.0;
  uint64_t mask = 0;
  std::string rival;
  bool any = false;
  size_t degenerate = 0;
  /// Vertices skipped because the (fallible) oracle erred there.
  size_t failed = 0;
};

/// The serial sweep's selection rule, made order-free: a strictly larger
/// gtc wins, and exact ties resolve to the lowest vertex *mask* (not visit
/// order or Gray rank). An ascending-mask scan's first-strictly-greater
/// rule picks exactly this winner, so chunked, pooled, and Gray-ordered
/// sweeps all reproduce the serial result byte for byte.
bool BeatsIncumbent(const ChunkBest& b, double gtc, uint64_t mask) {
  if (!b.any) return true;
  if (gtc != b.gtc) return gtc > b.gtc;
  return mask < b.mask;
}

/// Splits [0, vertices) into contiguous chunks sized for the pool. With
/// the mask tie-break above the merge is order-free, but chunks are still
/// merged in ascending order for a deterministic degenerate-count sum.
std::vector<std::pair<uint64_t, uint64_t>> VertexChunks(
    uint64_t vertices, runtime::ThreadPool* pool) {
  const uint64_t want =
      pool == nullptr ? 1 : std::max<uint64_t>(1, 8 * pool->num_threads());
  const uint64_t chunks = std::min<uint64_t>(vertices, want);
  const uint64_t per = (vertices + chunks - 1) / chunks;
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t lo = 0; lo < vertices; lo += per) {
    out.emplace_back(lo, std::min(vertices, lo + per));
  }
  return out;
}

/// Warns the first time any sweep in this process skips degenerate
/// vertices; per-call counts are surfaced in WorstCaseResult.
void WarnDegenerateOnce(size_t skipped) {
  if (skipped == 0) return;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "costsense: worst-case vertex sweep skipped %zu degenerate "
                 "vertices (non-positive optimal cost); the reported maximum "
                 "covers the remaining vertices\n",
                 skipped);
  }
}

/// Merges per-chunk bests into the final result. Matches the serial rule:
/// the result only moves off its gtc=1.0 default for a strictly larger
/// value, and equal-gtc chunks resolve to the lowest vertex mask.
WorstCaseResult MergeChunks(const Box& box, const std::vector<ChunkBest>& best,
                            uint64_t total_vertices) {
  WorstCaseResult out;
  out.worst_costs = box.Center();
  out.total_vertices = total_vertices;
  bool have = false;
  uint64_t best_mask = 0;
  for (const ChunkBest& b : best) {
    out.degenerate_vertices += b.degenerate;
    out.failed_vertices += b.failed;
    if (!b.any) continue;
    const bool better =
        b.gtc > out.gtc || (have && b.gtc == out.gtc && b.mask < best_mask);
    if (better) {
      out.gtc = b.gtc;
      best_mask = b.mask;
      out.worst_rival = b.rival;
      have = true;
    }
  }
  if (have) box.VertexInto(best_mask, out.worst_costs);
  if (total_vertices > 0) {
    out.coverage = static_cast<double>(total_vertices - out.failed_vertices) /
                   static_cast<double>(total_vertices);
  }
  WarnDegenerateOnce(out.degenerate_vertices);
  return out;
}

/// Oracle sweep over one chunk in ascending mask order (scalar kernel).
/// The scratch vertex is rewritten in place — no per-vertex allocation.
ChunkBest OracleChunkScalar(PlanOracle& oracle, const UsageVector& initial,
                            const Box& box, uint64_t lo, uint64_t hi) {
  ChunkBest b;
  CostVector v(box.dims());
  for (uint64_t mask = lo; mask < hi; ++mask) {
    box.VertexInto(mask, v);
    const OracleResult r = oracle.Optimize(v);
    if (r.total_cost <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / r.total_cost;
    if (BeatsIncumbent(b, gtc, mask)) {
      b.gtc = gtc;
      b.mask = mask;
      b.rival = r.plan_id;
      b.any = true;
    }
  }
  return b;
}

/// Oracle sweep over one chunk in Gray-code order: the chunk seeds its own
/// walk at GrayCode(lo) and each step rewrites exactly one coordinate of
/// the scratch vertex. Coordinates are assigned (not accumulated), so the
/// vertex — and every oracle answer — is bit-identical to the scalar
/// kernel's; only the visit order differs, which the mask tie-break
/// absorbs.
ChunkBest OracleChunkGray(PlanOracle& oracle, const UsageVector& initial,
                          const Box& box, uint64_t lo, uint64_t hi) {
  ChunkBest b;
  CostVector v(box.dims());
  uint64_t g = GrayCode(lo);
  box.VertexInto(g, v);
  for (uint64_t rank = lo; rank < hi; ++rank) {
    if (rank != lo) {
      const int bit = GrayFlipBit(rank);
      g ^= uint64_t{1} << bit;
      v[bit] = (g >> bit) & 1 ? box.upper()[bit] : box.lower()[bit];
    }
    const OracleResult r = oracle.Optimize(v);
    if (r.total_cost <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / r.total_cost;
    if (BeatsIncumbent(b, gtc, g)) {
      b.gtc = gtc;
      b.mask = g;
      b.rival = r.plan_id;
      b.any = true;
    }
  }
  return b;
}

/// Fallible twin of OracleChunkScalar: an erring vertex is counted and
/// skipped; the clean vertices are evaluated exactly as the infallible
/// kernel does, so a zero-failure chunk is byte-identical to it.
ChunkBest FallibleOracleChunkScalar(FalliblePlanOracle& oracle,
                                    const UsageVector& initial, const Box& box,
                                    uint64_t lo, uint64_t hi) {
  ChunkBest b;
  CostVector v(box.dims());
  for (uint64_t mask = lo; mask < hi; ++mask) {
    box.VertexInto(mask, v);
    const Result<OracleResult> r = oracle.TryOptimize(v);
    if (!r.ok()) {
      ++b.failed;
      continue;
    }
    if (r->total_cost <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / r->total_cost;
    if (BeatsIncumbent(b, gtc, mask)) {
      b.gtc = gtc;
      b.mask = mask;
      b.rival = r->plan_id;
      b.any = true;
    }
  }
  return b;
}

/// Fallible twin of OracleChunkGray. Skipping a failed vertex is safe in
/// Gray order because coordinates are assigned (not accumulated), so the
/// walk's later vertices are unaffected.
ChunkBest FallibleOracleChunkGray(FalliblePlanOracle& oracle,
                                  const UsageVector& initial, const Box& box,
                                  uint64_t lo, uint64_t hi) {
  ChunkBest b;
  CostVector v(box.dims());
  uint64_t g = GrayCode(lo);
  box.VertexInto(g, v);
  for (uint64_t rank = lo; rank < hi; ++rank) {
    if (rank != lo) {
      const int bit = GrayFlipBit(rank);
      g ^= uint64_t{1} << bit;
      v[bit] = (g >> bit) & 1 ? box.upper()[bit] : box.lower()[bit];
    }
    const Result<OracleResult> r = oracle.TryOptimize(v);
    if (!r.ok()) {
      ++b.failed;
      continue;
    }
    if (r->total_cost <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / r->total_cost;
    if (BeatsIncumbent(b, gtc, g)) {
      b.gtc = gtc;
      b.mask = g;
      b.rival = r->plan_id;
      b.any = true;
    }
  }
  return b;
}

ChunkBest FallibleOracleChunk(FalliblePlanOracle& oracle,
                              const UsageVector& initial, const Box& box,
                              SweepKernel kernel, uint64_t lo, uint64_t hi) {
  return kernel == SweepKernel::kScalar
             ? FallibleOracleChunkScalar(oracle, initial, box, lo, hi)
             : FallibleOracleChunkGray(oracle, initial, box, lo, hi);
}

/// Plan-set sweep over one chunk in ascending mask order: batched
/// matrix-vector costs, scratch buffers mutated in place.
ChunkBest PlansChunkScalar(const UsageVector& initial, const PlanMatrix& m,
                           const Box& box, uint64_t lo, uint64_t hi) {
  ChunkBest b;
  CostVector v(box.dims());
  std::vector<double> costs(m.rows());
  for (uint64_t mask = lo; mask < hi; ++mask) {
    box.VertexInto(mask, v);
    m.BatchTotalCosts(v, costs);
    const size_t ci = linalg::ArgMin(costs.data(), costs.size());
    const double cheapest = costs[ci];
    if (cheapest <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / cheapest;
    if (BeatsIncumbent(b, gtc, mask)) {
      b.gtc = gtc;
      b.mask = mask;
      b.rival = m.plan_id(ci);
      b.any = true;
    }
  }
  return b;
}

/// Plan-set sweep over one chunk in Gray-code order. Each step flips one
/// box coordinate, so every plan's cost changes by usage[bit] * delta: one
/// axpy over the matrix column updates all n costs in O(n). The
/// incrementally-maintained costs carry rounding drift, so they are only
/// used to *screen* vertices; any vertex whose estimated gtc reaches the
/// incumbent's guard band is re-evaluated with the exact scalar kernel,
/// and records are accepted solely on exact values. A full recompute every
/// kRefreshPeriod vertices bounds the drift the screen must absorb.
ChunkBest PlansChunkGray(const UsageVector& initial, const PlanMatrix& m,
                         const Box& box, uint64_t lo, uint64_t hi) {
  ChunkBest b;
  const size_t n = m.rows();
  CostVector v(box.dims());
  std::vector<double> costs(n);
  std::vector<double> exact_costs(n);
  uint64_t g = GrayCode(lo);
  box.VertexInto(g, v);
  m.BatchTotalCosts(v, costs);
  double init_cost = TotalCost(initial, v);
  double cheapest = linalg::MinValue(costs.data(), n);
  for (uint64_t rank = lo; rank < hi; ++rank) {
    if (rank != lo) {
      const int bit = GrayFlipBit(rank);
      g ^= uint64_t{1} << bit;
      const bool up = (g >> bit) & 1;
      v[bit] = up ? box.upper()[bit] : box.lower()[bit];
      if (((rank - lo) % kRefreshPeriod) == 0) {
        m.BatchTotalCosts(v, costs);
        init_cost = TotalCost(initial, v);
        cheapest = linalg::MinValue(costs.data(), n);
      } else {
        const double delta = box.FlipDelta(bit, up);
        cheapest = linalg::AxpyMin(n, delta, m.col(bit), costs.data());
        init_cost += initial[bit] * delta;
      }
    }
    // Screen: only vertices whose estimate challenges the record (or that
    // look degenerate — drift can push a near-zero cost across zero) pay
    // for an exact re-evaluation.
    const bool challenger =
        cheapest <= 0.0 || !b.any ||
        init_cost / cheapest > b.gtc * (1.0 - kRecheckGuard);
    if (!challenger) continue;
    m.BatchTotalCosts(v, exact_costs);
    const size_t eci = linalg::ArgMin(exact_costs.data(), n);
    const double exact_cheapest = exact_costs[eci];
    if (exact_cheapest <= 0.0) {
      ++b.degenerate;
      continue;
    }
    const double gtc = TotalCost(initial, v) / exact_cheapest;
    if (BeatsIncumbent(b, gtc, g)) {
      b.gtc = gtc;
      b.mask = g;
      b.rival = m.plan_id(eci);
      b.any = true;
    }
  }
  return b;
}

/// SIMD twin of PlansChunkGray: the same exact re-evaluation of
/// challengers, but the screening math runs on the dispatched vector
/// kernels, and the walk prunes at *segment* granularity before falling
/// back to per-flip screening.
///
/// Within a kRefreshPeriod-aligned segment [s, s+64) the Gray walk flips
/// only bits 0..5 (ranks s+1..s+63 of an aligned s have at most five
/// trailing zeros), so the segment's vertices all lie in the sub-box that
/// fixes the high coordinates at the base vertex and lets the low six
/// range. Plan costs are non-decreasing in every cost coordinate when the
/// usage matrix is non-negative, so over that sub-box
///
///   cost_i(v) >= cost_i(corner with bits 0..5 low)   for every plan i
///   init(v)   <= init(corner with bits 0..5 high)
///
/// — both bounds are attained at real vertices, making them tight. One
/// batched mat-vec at the low corner gives floor = min_i cost_i(low), one
/// dot at the high corner gives initmax; if floor clears a rigorous
/// rounding band tau (Cauchy-Schwarz bound on the reassociated mat-vec,
/// the risk-profile band argument) and initmax <= threshold * (floor -
/// tau), every vertex in the segment has exact gtc <= b.gtc * (1 - 1e-9)
/// < b.gtc and a strictly positive cheapest cost: the scalar kernels
/// accept no record and count no degenerate vertex there, so the whole
/// segment is skipped unvisited. The 1e-9 guard margin exceeds the
/// ~dims*eps comparison rounding by four orders of magnitude — the same
/// argument that lets the incremental kernel screen on drifted costs.
/// Certificates are disabled entirely if any low-bit usage column or
/// low-bit initial entry is negative (monotonicity would fail).
///
/// Uncertified segments run the per-flip path: AxpyScreenSimd updates the
/// costs bit-identically to the scalar axpy and returns PlansChunkGray's
/// screen verdict with the ratio test cross-multiplied (division-free;
/// valid because the threshold is >= 0 and the comparison distributes
/// over the min lanes). Records are accepted solely on exact
/// re-evaluations, so the merged result is byte-identical to the other
/// kernels.
ChunkBest PlansChunkSimd(const UsageVector& initial, const PlanMatrix& m,
                         const Box& box, uint64_t lo, uint64_t hi) {
  ChunkBest b;
  const size_t n = m.rows();
  const size_t dims = box.dims();
  const uint64_t low_mask = kRefreshPeriod - 1;  // bits a segment can flip
  CostVector v(dims);
  std::vector<double> costs(n);
  std::vector<double> exact_costs(n);
  bool certs_ok = true;
  for (size_t bit = 0; bit < dims && (uint64_t{1} << bit) < kRefreshPeriod;
       ++bit) {
    if (initial[bit] < 0.0) certs_ok = false;
    const double* col = m.col(bit);
    for (size_t i = 0; i < n; ++i) {
      if (col[i] < 0.0) certs_ok = false;
    }
  }
  uint64_t rank = lo;
  while (rank < hi) {
    const uint64_t seg_end =
        std::min<uint64_t>(hi, (rank / kRefreshPeriod + 1) * kRefreshPeriod);
    uint64_t g = GrayCode(rank);
    if (certs_ok && rank % kRefreshPeriod == 0 && b.any && b.gtc > 0.0) {
      const double threshold = b.gtc * (1.0 - kRecheckGuard);
      box.VertexInto(g & ~low_mask, v);
      m.BatchTotalCostsScreen(v, costs);
      const double floor = linalg::MinValueSimd(costs.data(), n);
      // Rigorous bound on the screened mat-vec's reassociation error, so
      // floor - tau lower-bounds every exact segment cost (tau > 0 also
      // rules out degenerate vertices, which have no guard-band margin of
      // their own). NaN floors or init costs fail the comparisons and
      // fall through to the per-flip path, which owns the non-finite
      // semantics.
      const double eps = std::numeric_limits<double>::epsilon();
      const double tau =
          16.0 * static_cast<double>(dims) * eps * m.max_row_norm() *
          std::sqrt(linalg::DotRaw(v.data().data(), v.data().data(), dims));
      box.VertexInto(g | low_mask, v);
      const double initmax = TotalCost(initial, v);
      if (floor - tau > 0.0 && initmax <= threshold * (floor - tau)) {
        rank = seg_end;
        continue;
      }
    }
    box.VertexInto(g, v);
    m.BatchTotalCostsScreen(v, costs);
    double init_cost = TotalCost(initial, v);
    double threshold = b.any ? b.gtc * (1.0 - kRecheckGuard) : 0.0;
    double cheapest = linalg::MinValueSimd(costs.data(), n);
    bool challenger =
        cheapest <= 0.0 || !b.any || init_cost > threshold * cheapest;
    for (;;) {
      if (challenger) {
        m.BatchTotalCosts(v, exact_costs);
        const size_t eci = linalg::ArgMin(exact_costs.data(), n);
        const double exact_cheapest = exact_costs[eci];
        if (exact_cheapest <= 0.0) {
          ++b.degenerate;
        } else {
          const double gtc = TotalCost(initial, v) / exact_cheapest;
          if (BeatsIncumbent(b, gtc, g)) {
            b.gtc = gtc;
            b.mask = g;
            b.rival = m.plan_id(eci);
            b.any = true;
          }
        }
      }
      if (++rank == seg_end) break;
      const int bit = GrayFlipBit(rank);
      g ^= uint64_t{1} << bit;
      const bool up = (g >> bit) & 1;
      v[bit] = up ? box.upper()[bit] : box.lower()[bit];
      const double delta = box.FlipDelta(bit, up);
      init_cost += initial[bit] * delta;
      threshold = b.any ? b.gtc * (1.0 - kRecheckGuard) : 0.0;
      challenger = linalg::AxpyScreenSimd(n, delta, m.col(bit), costs.data(),
                                          init_cost, threshold) ||
                   !b.any;
    }
  }
  return b;
}

ChunkBest PlansChunk(const UsageVector& initial, const PlanMatrix& m,
                     const Box& box, SweepKernel kernel, uint64_t lo,
                     uint64_t hi) {
  switch (kernel) {
    case SweepKernel::kScalar:
      return PlansChunkScalar(initial, m, box, lo, hi);
    case SweepKernel::kIncremental:
      return PlansChunkGray(initial, m, box, lo, hi);
    case SweepKernel::kSimd:
      return PlansChunkSimd(initial, m, box, lo, hi);
  }
  COSTSENSE_CHECK(false);  // unreachable
  return ChunkBest{};
}

}  // namespace

namespace {
/// The process-default kernel; relaxed atomics suffice because the knob
/// is installed once at engine creation, before sweeps start.
std::atomic<SweepKernel> g_default_kernel{SweepKernel::kIncremental};
}  // namespace

SweepKernel EffectiveSweepKernel(SweepKernel requested) {
  if (requested == SweepKernel::kSimd && !linalg::SimdSweepAvailable()) {
    return SweepKernel::kIncremental;
  }
  return requested;
}

SweepKernel DefaultSweepKernel() {
  return g_default_kernel.load(std::memory_order_relaxed);
}

void SetDefaultSweepKernel(SweepKernel kernel) {
  g_default_kernel.store(kernel, std::memory_order_relaxed);
}

Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box, size_t max_dims,
                                               runtime::ThreadPool* pool) {
  return WorstCaseByVertexSweep(oracle, initial_usage, box,
                                DefaultSweepKernel(), max_dims, pool);
}

Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box,
                                               SweepKernel kernel,
                                               size_t max_dims,
                                               runtime::ThreadPool* pool) {
  if (box.dims() != initial_usage.size()) {
    return Status::InvalidArgument("usage vector dims do not match box");
  }
  if (box.dims() > max_dims) {
    return Status::FailedPrecondition(StrFormat(
        "vertex sweep over %zu dims needs 2^%zu oracle calls; use the LP "
        "method instead",
        box.dims(), box.dims()));
  }
  const uint64_t vertices = box.VertexCount();
  const auto chunks = VertexChunks(vertices, pool);
  std::vector<ChunkBest> best(chunks.size());
  const Status pool_status =
      runtime::ForEachIndex(pool, chunks.size(), [&](size_t k) {
    best[k] = kernel == SweepKernel::kScalar
                  ? OracleChunkScalar(oracle, initial_usage, box,
                                      chunks[k].first, chunks[k].second)
                  : OracleChunkGray(oracle, initial_usage, box,
                                    chunks[k].first, chunks[k].second);
    return Status::Ok();
  });
  COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
  return MergeChunks(box, best, vertices);
}

Result<WorstCaseResult> WorstCaseByVertexSweep(
    FalliblePlanOracle& oracle, const UsageVector& initial_usage,
    const Box& box, size_t max_dims, runtime::ThreadPool* pool,
    runtime::resilience::SweepCheckpoint* checkpoint) {
  return WorstCaseByVertexSweep(oracle, initial_usage, box,
                                DefaultSweepKernel(), max_dims, pool,
                                checkpoint);
}

Result<WorstCaseResult> WorstCaseByVertexSweep(
    FalliblePlanOracle& oracle, const UsageVector& initial_usage,
    const Box& box, SweepKernel kernel, size_t max_dims,
    runtime::ThreadPool* pool,
    runtime::resilience::SweepCheckpoint* checkpoint) {
  if (box.dims() != initial_usage.size()) {
    return Status::InvalidArgument("usage vector dims do not match box");
  }
  if (box.dims() > max_dims) {
    return Status::FailedPrecondition(StrFormat(
        "vertex sweep over %zu dims needs 2^%zu oracle calls; use the LP "
        "method instead",
        box.dims(), box.dims()));
  }
  const uint64_t vertices = box.VertexCount();

  if (checkpoint == nullptr) {
    const auto chunks = VertexChunks(vertices, pool);
    std::vector<ChunkBest> best(chunks.size());
    const Status pool_status =
        runtime::ForEachIndex(pool, chunks.size(), [&](size_t k) {
      best[k] = FallibleOracleChunk(oracle, initial_usage, box, kernel,
                                    chunks[k].first, chunks[k].second);
      return Status::Ok();
    });
    COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
    return MergeChunks(box, best, vertices);
  }

  // Checkpointed path: the sweep runs on the checkpoint's fixed block grid
  // rather than the pool-sized chunking, so stored blocks line up across
  // runs at any thread count. Each stored block replaces its oracle calls
  // with the recorded reduction; each freshly-clean block is recorded for
  // the next attempt.
  const uint64_t block_size = checkpoint->block_size();
  const uint64_t num_blocks = (vertices + block_size - 1) / block_size;
  std::vector<ChunkBest> best(num_blocks);
  const Status pool_status =
      runtime::ForEachIndex(pool, num_blocks, [&](size_t k) {
    const uint64_t lo = static_cast<uint64_t>(k) * block_size;
    const uint64_t hi = std::min(vertices, lo + block_size);
    runtime::resilience::SweepBlockResult stored;
    if (checkpoint->Lookup(k, &stored)) {
      ChunkBest& b = best[k];
      b.gtc = stored.gtc;
      b.mask = stored.mask;
      b.rival = stored.rival;
      b.any = stored.any;
      b.degenerate = stored.degenerate;
      return Status::Ok();
    }
    best[k] = FallibleOracleChunk(oracle, initial_usage, box, kernel, lo, hi);
    if (best[k].failed == 0) {
      runtime::resilience::SweepBlockResult r;
      r.gtc = best[k].gtc;
      r.mask = best[k].mask;
      r.rival = best[k].rival;
      r.any = best[k].any;
      r.degenerate = best[k].degenerate;
      checkpoint->Store(k, std::move(r));
    }
    return Status::Ok();
  });
  COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
  return MergeChunks(box, best, vertices);
}

WorstCaseResult WorstCaseOverPlansByVertices(const UsageVector& initial_usage,
                                             const std::vector<PlanUsage>& plans,
                                             const Box& box,
                                             runtime::ThreadPool* pool) {
  return WorstCaseOverPlansByVertices(initial_usage, plans, box,
                                      DefaultSweepKernel(), pool);
}

WorstCaseResult WorstCaseOverPlansByVertices(const UsageVector& initial_usage,
                                             const std::vector<PlanUsage>& plans,
                                             const Box& box, SweepKernel kernel,
                                             runtime::ThreadPool* pool) {
  const PlanMatrix matrix(plans);
  return WorstCaseOverPlanMatrix(initial_usage, matrix, box, kernel, pool);
}

WorstCaseResult WorstCaseOverPlanMatrix(const UsageVector& initial_usage,
                                        const PlanMatrix& plans,
                                        const Box& box, SweepKernel kernel,
                                        runtime::ThreadPool* pool) {
  if (plans.rows() == 0) {
    // An empty candidate set makes every vertex vacuous (the serial scan
    // skipped them all); keep the default result.
    WorstCaseResult out;
    out.worst_costs = box.Center();
    return out;
  }
  const uint64_t vertices = box.VertexCount();
  const auto chunks = VertexChunks(vertices, pool);
  // Resolve once per sweep: a kSimd request on a host without AVX2 runs
  // the incremental kernel (identical results by contract).
  const SweepKernel effective = EffectiveSweepKernel(kernel);
  std::vector<ChunkBest> best(chunks.size());
  const Status pool_status =
      runtime::ForEachIndex(pool, chunks.size(), [&](size_t k) {
    best[k] = PlansChunk(initial_usage, plans, box, effective,
                         chunks[k].first, chunks[k].second);
    return Status::Ok();
  });
  COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
  return MergeChunks(box, best, vertices);
}

// GCC 12 falsely reports free-nonheap-object when the Result<T> variant's
// string destructor is inlined through optional::emplace at -O2 (the
// PR104392 family of std::string false positives); suppress locally so the
// tree stays -Werror-clean without weakening the flag globally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
Result<WorstCaseResult> WorstCaseOverPlansByLp(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool) {
  // The per-rival fractional programs are independent: solve them all
  // (concurrently when pooled), then reduce in rival order so the winning
  // rival on ties matches the serial scan.
  std::vector<std::optional<Result<lp::FractionalSolution>>> sols(
      plans.size());
  const Status pool_status =
      runtime::ForEachIndex(pool, plans.size(), [&](size_t i) {
        Result<lp::FractionalSolution> sol = lp::MaximizeRatioOverBox(
            initial_usage, plans[i].usage, box.lower(), box.upper());
        sols[i].emplace(std::move(sol));
        return Status::Ok();
      });
  COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok

  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (size_t i = 0; i < plans.size(); ++i) {
    const Result<lp::FractionalSolution>& sol = *sols[i];
    if (!sol.ok()) return sol.status();
    if (sol->value > out.gtc) {
      // The ratio against one rival upper-bounds GTC only if that rival is
      // itself optimal at the maximizer; but the max over *all* rivals of
      // the max ratio equals the max over the box of cost/min-rival-cost,
      // so taking the overall maximum is exact.
      out.gtc = sol->value;
      out.worst_costs = sol->x;
      out.worst_rival = plans[i].plan_id;
    }
  }
  return out;
}
#pragma GCC diagnostic pop

}  // namespace costsense::core
