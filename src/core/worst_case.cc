#include "core/worst_case.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"
#include "lp/fractional.h"
#include "runtime/thread_pool.h"

namespace costsense::core {
namespace {

/// Best-so-far slot for one chunk of a vertex sweep.
struct ChunkBest {
  double gtc = 1.0;
  uint64_t mask = 0;
  std::string rival;
  bool any = false;
};

/// Splits [0, vertices) into contiguous chunks sized for the pool. Each
/// chunk keeps its own first-strictly-greater maximum; merging chunks in
/// ascending order then reproduces the serial sweep's tie-breaking (the
/// lowest vertex mask achieving the maximum wins) exactly.
std::vector<std::pair<uint64_t, uint64_t>> VertexChunks(
    uint64_t vertices, runtime::ThreadPool* pool) {
  const uint64_t want =
      pool == nullptr ? 1 : std::max<uint64_t>(1, 8 * pool->num_threads());
  const uint64_t chunks = std::min<uint64_t>(vertices, want);
  const uint64_t per = (vertices + chunks - 1) / chunks;
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t lo = 0; lo < vertices; lo += per) {
    out.emplace_back(lo, std::min(vertices, lo + per));
  }
  return out;
}

}  // namespace

Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box, size_t max_dims,
                                               runtime::ThreadPool* pool) {
  if (box.dims() != initial_usage.size()) {
    return Status::InvalidArgument("usage vector dims do not match box");
  }
  if (box.dims() > max_dims) {
    return Status::FailedPrecondition(StrFormat(
        "vertex sweep over %zu dims needs 2^%zu oracle calls; use the LP "
        "method instead",
        box.dims(), box.dims()));
  }
  const uint64_t vertices = box.VertexCount();
  const auto chunks = VertexChunks(vertices, pool);
  std::vector<ChunkBest> best(chunks.size());
  runtime::ForEachIndex(pool, chunks.size(), [&](size_t k) {
    ChunkBest b;
    for (uint64_t mask = chunks[k].first; mask < chunks[k].second; ++mask) {
      const CostVector v = box.Vertex(mask);
      const OracleResult r = oracle.Optimize(v);
      if (r.total_cost <= 0.0) continue;  // degenerate; skip
      const double gtc = TotalCost(initial_usage, v) / r.total_cost;
      if (!b.any || gtc > b.gtc) {
        b.gtc = gtc;
        b.mask = mask;
        b.rival = r.plan_id;
        b.any = true;
      }
    }
    best[k] = std::move(b);
    return Status::Ok();
  });

  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (const ChunkBest& b : best) {
    if (b.any && b.gtc > out.gtc) {
      out.gtc = b.gtc;
      out.worst_costs = box.Vertex(b.mask);
      out.worst_rival = b.rival;
    }
  }
  return out;
}

WorstCaseResult WorstCaseOverPlansByVertices(const UsageVector& initial_usage,
                                             const std::vector<PlanUsage>& plans,
                                             const Box& box,
                                             runtime::ThreadPool* pool) {
  const uint64_t vertices = box.VertexCount();
  const auto chunks = VertexChunks(vertices, pool);
  std::vector<ChunkBest> best(chunks.size());
  runtime::ForEachIndex(pool, chunks.size(), [&](size_t k) {
    ChunkBest b;
    for (uint64_t mask = chunks[k].first; mask < chunks[k].second; ++mask) {
      const CostVector v = box.Vertex(mask);
      double cheapest = 0.0;
      size_t cheapest_idx = 0;
      bool first = true;
      for (size_t i = 0; i < plans.size(); ++i) {
        const double cost = TotalCost(plans[i].usage, v);
        if (first || cost < cheapest) {
          cheapest = cost;
          cheapest_idx = i;
          first = false;
        }
      }
      if (first || cheapest <= 0.0) continue;
      const double gtc = TotalCost(initial_usage, v) / cheapest;
      if (!b.any || gtc > b.gtc) {
        b.gtc = gtc;
        b.mask = mask;
        b.rival = plans[cheapest_idx].plan_id;
        b.any = true;
      }
    }
    best[k] = std::move(b);
    return Status::Ok();
  });

  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (const ChunkBest& b : best) {
    if (b.any && b.gtc > out.gtc) {
      out.gtc = b.gtc;
      out.worst_costs = box.Vertex(b.mask);
      out.worst_rival = b.rival;
    }
  }
  return out;
}

Result<WorstCaseResult> WorstCaseOverPlansByLp(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool) {
  // The per-rival fractional programs are independent: solve them all
  // (concurrently when pooled), then reduce in rival order so the winning
  // rival on ties matches the serial scan.
  std::vector<std::optional<Result<lp::FractionalSolution>>> sols(
      plans.size());
  runtime::ForEachIndex(pool, plans.size(), [&](size_t i) {
    sols[i].emplace(lp::MaximizeRatioOverBox(initial_usage, plans[i].usage,
                                             box.lower(), box.upper()));
    return Status::Ok();
  });

  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (size_t i = 0; i < plans.size(); ++i) {
    const Result<lp::FractionalSolution>& sol = *sols[i];
    if (!sol.ok()) return sol.status();
    if (sol->value > out.gtc) {
      // The ratio against one rival upper-bounds GTC only if that rival is
      // itself optimal at the maximizer; but the max over *all* rivals of
      // the max ratio equals the max over the box of cost/min-rival-cost,
      // so taking the overall maximum is exact.
      out.gtc = sol->value;
      out.worst_costs = sol->x;
      out.worst_rival = plans[i].plan_id;
    }
  }
  return out;
}

}  // namespace costsense::core
