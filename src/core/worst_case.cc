#include "core/worst_case.h"

#include "common/strings.h"
#include "lp/fractional.h"

namespace costsense::core {

Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box,
                                               size_t max_dims) {
  if (box.dims() != initial_usage.size()) {
    return Status::InvalidArgument("usage vector dims do not match box");
  }
  if (box.dims() > max_dims) {
    return Status::FailedPrecondition(StrFormat(
        "vertex sweep over %zu dims needs 2^%zu oracle calls; use the LP "
        "method instead",
        box.dims(), box.dims()));
  }
  WorstCaseResult out;
  out.worst_costs = box.Center();
  const uint64_t vertices = box.VertexCount();
  for (uint64_t mask = 0; mask < vertices; ++mask) {
    const CostVector v = box.Vertex(mask);
    const OracleResult r = oracle.Optimize(v);
    if (r.total_cost <= 0.0) continue;  // degenerate; skip
    const double gtc = TotalCost(initial_usage, v) / r.total_cost;
    if (gtc > out.gtc) {
      out.gtc = gtc;
      out.worst_costs = v;
      out.worst_rival = r.plan_id;
    }
  }
  return out;
}

WorstCaseResult WorstCaseOverPlansByVertices(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box) {
  WorstCaseResult out;
  out.worst_costs = box.Center();
  const uint64_t vertices = box.VertexCount();
  for (uint64_t mask = 0; mask < vertices; ++mask) {
    const CostVector v = box.Vertex(mask);
    double best = 0.0;
    size_t best_idx = 0;
    bool first = true;
    for (size_t i = 0; i < plans.size(); ++i) {
      const double cost = TotalCost(plans[i].usage, v);
      if (first || cost < best) {
        best = cost;
        best_idx = i;
        first = false;
      }
    }
    if (first || best <= 0.0) continue;
    const double gtc = TotalCost(initial_usage, v) / best;
    if (gtc > out.gtc) {
      out.gtc = gtc;
      out.worst_costs = v;
      out.worst_rival = plans[best_idx].plan_id;
    }
  }
  return out;
}

Result<WorstCaseResult> WorstCaseOverPlansByLp(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box) {
  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (const PlanUsage& rival : plans) {
    Result<lp::FractionalSolution> sol = lp::MaximizeRatioOverBox(
        initial_usage, rival.usage, box.lower(), box.upper());
    if (!sol.ok()) return sol.status();
    if (sol->value > out.gtc) {
      // The ratio against one rival upper-bounds GTC only if that rival is
      // itself optimal at the maximizer; but the max over *all* rivals of
      // the max ratio equals the max over the box of cost/min-rival-cost,
      // so taking the overall maximum is exact.
      out.gtc = sol->value;
      out.worst_costs = sol->x;
      out.worst_rival = rival.plan_id;
    }
  }
  return out;
}

}  // namespace costsense::core
