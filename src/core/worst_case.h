#ifndef COSTSENSE_CORE_WORST_CASE_H_
#define COSTSENSE_CORE_WORST_CASE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "core/oracle.h"
#include "core/vectors.h"

namespace costsense::runtime {
class ThreadPool;
}  // namespace costsense::runtime

namespace costsense::core {

/// Result of a worst-case global-relative-cost analysis for one initial
/// plan over one feasible cost region (paper Section 6.1).
struct WorstCaseResult {
  /// Maximum global relative total cost: how many times more expensive the
  /// initial plan can get, relative to the true optimum, at the worst
  /// feasible cost vector.
  double gtc = 1.0;
  /// The cost vector achieving the maximum (a vertex of the box).
  CostVector worst_costs;
  /// Id (or index rendered as text) of the rival plan that is optimal at
  /// the worst point, when known.
  std::string worst_rival;
};

/// Paper-faithful worst-case analysis (Section 6.1): evaluates the global
/// relative cost of the plan with usage vector `initial_usage` at *every*
/// vertex of the feasible box, asking the oracle for the optimal plan's
/// total cost at each vertex. Correct by the paper's Observation 2 (the
/// linear-fractional objective is vertex-maximized). Costs 2^dims oracle
/// calls; refuses boxes with more than `max_dims` dimensions.
///
/// When `pool` is non-null the vertex sweep fans out over it (the oracle
/// must then be safe to call concurrently — runtime::CachingOracle over
/// blackbox::NarrowOptimizer qualifies) and the result is bit-identical to
/// the serial sweep: vertices are reduced in mask order.
Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box,
                                               size_t max_dims = 20,
                                               runtime::ThreadPool* pool =
                                                   nullptr);

/// Worst case over a *known* candidate plan set, by sweeping box vertices
/// and computing the optimum by dot products (no oracle calls). Exact when
/// `plans` contains every candidate optimal plan of the region. Fans out
/// over `pool` when non-null, with serial-identical results.
WorstCaseResult WorstCaseOverPlansByVertices(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool = nullptr);

/// Worst case over a known candidate plan set by exact linear-fractional
/// programming: for each rival plan b, maximize (U0 . C)/(B . C) over the
/// box with the exact fractional maximizer and take the largest. Equivalent to the
/// vertex sweep (max_C U0.C/min_b B.C == max_b max_C U0.C/B.C) but
/// polynomial in the dimension count, so it scales past 20 resources.
/// The per-rival maximizations are independent and fan out over `pool`
/// when non-null; rivals are reduced in input order, so results match the
/// serial run exactly.
Result<WorstCaseResult> WorstCaseOverPlansByLp(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool = nullptr);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_WORST_CASE_H_
