#ifndef COSTSENSE_CORE_WORST_CASE_H_
#define COSTSENSE_CORE_WORST_CASE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "core/oracle.h"
#include "core/plan_matrix.h"
#include "core/vectors.h"

namespace costsense::runtime {
class ThreadPool;
}  // namespace costsense::runtime

namespace costsense::runtime::resilience {
class SweepCheckpoint;
}  // namespace costsense::runtime::resilience

namespace costsense::core {

/// Result of a worst-case global-relative-cost analysis for one initial
/// plan over one feasible cost region (paper Section 6.1).
struct WorstCaseResult {
  /// Maximum global relative total cost: how many times more expensive the
  /// initial plan can get, relative to the true optimum, at the worst
  /// feasible cost vector.
  double gtc = 1.0;
  /// The cost vector achieving the maximum (a vertex of the box).
  CostVector worst_costs;
  /// Id (or index rendered as text) of the rival plan that is optimal at
  /// the worst point, when known.
  std::string worst_rival;
  /// Vertices skipped because the optimal total cost there was
  /// non-positive (degenerate: a zero-usage plan, or an oracle reporting a
  /// zero estimate). Nonzero counts are also warned once to stderr; the
  /// reported maximum covers only the remaining vertices.
  size_t degenerate_vertices = 0;
  /// Vertex coverage accounting. `total_vertices` is the sweep's intended
  /// vertex count; `failed_vertices` is how many the fallible overloads
  /// skipped because the oracle erred after its internal retries (always 0
  /// against an infallible oracle); `coverage` is their ratio evaluated /
  /// total. A coverage below 1.0 marks the result as an explicit partial
  /// view: the true maximum may hide among the failed vertices.
  uint64_t total_vertices = 0;
  uint64_t failed_vertices = 0;
  double coverage = 1.0;
};

/// Vertex-sweep evaluation strategy, selected process-wide via
/// SetDefaultSweepKernel (engine::Engine::Create installs the
/// COSTSENSE_KERNEL choice from its typed config; the default is
/// incremental) or per call via the explicit overloads. All kernels
/// return identical results — the incremental and simd kernels
/// re-evaluate candidate record vertices with the scalar kernel before
/// accepting them — so the knob is a fallback/ablation switch, not a
/// semantic one.
enum class SweepKernel {
  /// Full O(n * d) cost re-derivation at every vertex, in ascending mask
  /// order (the seed implementation, minus its allocation churn).
  kScalar,
  /// Gray-code vertex walk: consecutive vertices differ in one coordinate,
  /// so all n plan costs update in O(n) via one column axpy. Drift from
  /// incremental updates is bounded by a full recompute every 64 vertices
  /// and by exact re-evaluation of any vertex that challenges the record.
  kIncremental,
  /// The incremental walk with its screening math (column axpy + running
  /// minimum, and the periodic full recompute) on the explicit AVX2
  /// kernels of linalg/simd_kernels.h. Record candidates still go through
  /// the same exact scalar re-evaluation, so results stay byte-identical.
  /// On hosts without AVX2 (or builds with COSTSENSE_SIMD=OFF) this
  /// resolves to kIncremental — see EffectiveSweepKernel. Oracle-backed
  /// sweeps have no batched plan math to vectorize, so there kSimd and
  /// kIncremental are the same code path.
  kSimd,
};

/// The kernel that will actually run for `requested`: kSimd resolves to
/// kIncremental when linalg::SimdSweepAvailable() is false (no AVX2 at
/// runtime, or SIMD compiled out); everything else maps to itself. Benches
/// and tests use this to label measurements honestly.
SweepKernel EffectiveSweepKernel(SweepKernel requested);

/// The process-default kernel used by the kernel-less overloads below.
SweepKernel DefaultSweepKernel();

/// Installs the process-default kernel. Called by engine::Engine::Create;
/// sweeps already in flight keep the kernel they started with.
void SetDefaultSweepKernel(SweepKernel kernel);

/// Paper-faithful worst-case analysis (Section 6.1): evaluates the global
/// relative cost of the plan with usage vector `initial_usage` at *every*
/// vertex of the feasible box, asking the oracle for the optimal plan's
/// total cost at each vertex. Correct by the paper's Observation 2 (the
/// linear-fractional objective is vertex-maximized). Costs 2^dims oracle
/// calls; refuses boxes with more than `max_dims` dimensions.
///
/// When `pool` is non-null the vertex sweep fans out over it (the oracle
/// must then be safe to call concurrently — runtime::CachingOracle over
/// blackbox::NarrowOptimizer qualifies) and the result is bit-identical to
/// the serial sweep: ties between vertices resolve to the lowest mask no
/// matter how the sweep is chunked or ordered.
[[nodiscard]] Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box,
                                               size_t max_dims = 20,
                                               runtime::ThreadPool* pool =
                                                   nullptr);

/// As above with an explicit kernel (tests and ablations; normal callers
/// use the configured default).
[[nodiscard]] Result<WorstCaseResult> WorstCaseByVertexSweep(PlanOracle& oracle,
                                               const UsageVector& initial_usage,
                                               const Box& box,
                                               SweepKernel kernel,
                                               size_t max_dims = 20,
                                               runtime::ThreadPool* pool =
                                                   nullptr);

/// Fallible-oracle overloads with graceful degradation: a vertex whose
/// oracle call errs (after whatever retries the stack performs) is skipped
/// and counted in failed_vertices / coverage instead of aborting the
/// sweep. Against an oracle that never errors the result is byte-identical
/// to the infallible sweep.
///
/// When `checkpoint` is non-null the sweep runs on the checkpoint's fixed
/// block grid (independent of pool chunking, so a checkpoint taken at one
/// thread count resumes at any other): blocks already stored are reused
/// without re-probing, and blocks that complete with no failed vertex are
/// stored for the next attempt. A degraded run therefore re-pays only its
/// failed and unreached blocks on resume, with the oracle cache absorbing
/// the clean vertices inside re-run blocks.
[[nodiscard]] Result<WorstCaseResult> WorstCaseByVertexSweep(
    FalliblePlanOracle& oracle, const UsageVector& initial_usage,
    const Box& box, size_t max_dims = 20, runtime::ThreadPool* pool = nullptr,
    runtime::resilience::SweepCheckpoint* checkpoint = nullptr);

/// As above with an explicit kernel.
[[nodiscard]] Result<WorstCaseResult> WorstCaseByVertexSweep(
    FalliblePlanOracle& oracle, const UsageVector& initial_usage,
    const Box& box, SweepKernel kernel, size_t max_dims = 20,
    runtime::ThreadPool* pool = nullptr,
    runtime::resilience::SweepCheckpoint* checkpoint = nullptr);

/// Worst case over a *known* candidate plan set, by sweeping box vertices
/// and computing the optimum by dot products (no oracle calls). Exact when
/// `plans` contains every candidate optimal plan of the region. Fans out
/// over `pool` when non-null, with serial-identical results.
WorstCaseResult WorstCaseOverPlansByVertices(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool = nullptr);

/// As above with an explicit kernel.
WorstCaseResult WorstCaseOverPlansByVertices(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, SweepKernel kernel, runtime::ThreadPool* pool = nullptr);

/// The batched core of WorstCaseOverPlansByVertices: sweeps against a
/// prebuilt PlanMatrix so repeated sweeps over one plan set (delta sweeps,
/// benches) skip the flattening cost. The matrix's dims must match the
/// box.
WorstCaseResult WorstCaseOverPlanMatrix(const UsageVector& initial_usage,
                                        const PlanMatrix& plans,
                                        const Box& box, SweepKernel kernel,
                                        runtime::ThreadPool* pool = nullptr);

/// Worst case over a known candidate plan set by exact linear-fractional
/// programming: for each rival plan b, maximize (U0 . C)/(B . C) over the
/// box with the exact fractional maximizer and take the largest. Equivalent to the
/// vertex sweep (max_C U0.C/min_b B.C == max_b max_C U0.C/B.C) but
/// polynomial in the dimension count, so it scales past 20 resources.
/// The per-rival maximizations are independent and fan out over `pool`
/// when non-null; rivals are reduced in input order, so results match the
/// serial run exactly.
[[nodiscard]] Result<WorstCaseResult> WorstCaseOverPlansByLp(
    const UsageVector& initial_usage, const std::vector<PlanUsage>& plans,
    const Box& box, runtime::ThreadPool* pool = nullptr);

}  // namespace costsense::core

#endif  // COSTSENSE_CORE_WORST_CASE_H_
