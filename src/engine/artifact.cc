#include "engine/artifact.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "exp/report.h"

namespace costsense::engine {
namespace {

/// JSON has no literal for non-finite numbers; encode them as strings so
/// the sidecar stays parseable when Theorem 2's bound is infinite.
std::string JsonNumber(double v) {
  if (std::isfinite(v)) return StrFormat("%.17g", v);
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  return "\"nan\"";
}

}  // namespace

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TextRenderer
// ---------------------------------------------------------------------------

TextRenderer::TextRenderer(std::string bench_json_path)
    : bench_json_path_(std::move(bench_json_path)),
      out_(stdout),
      err_(stderr) {}

void TextRenderer::Note(Status st) {
  if (!st.ok() && deferred_.ok()) deferred_ = std::move(st);
}

void TextRenderer::WriteFigure(const std::string& title,
                               const std::vector<exp::FigureSeries>& series) {
  // Byte-for-byte the pre-engine driver output: table, blank line, CSV.
  Note(out_.Write(exp::RenderFigureTable(title, series)));
  Note(out_.Write("\nCSV:\n"));
  Note(out_.Write(exp::RenderFigureCsv(series)));
}

void TextRenderer::WriteTextBlock(const std::string& text) {
  Note(out_.Write(text));
}

void TextRenderer::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  Note(err_.Write(metrics.Render()));
  const std::string line = metrics.ToJsonLine(bench_name, extra);
  Note(err_.Write(line));
  if (bench_json_path_.empty()) return;
  if (bench_json_ == nullptr) {
    bench_json_ = std::make_unique<runtime::sink::FileSink>(
        bench_json_path_, runtime::sink::FileSink::Mode::kAppend);
  }
  // The perf line is best-effort, exactly as the historical fopen-append
  // was: an unwritable path never fails a figure run. The eager Flush
  // keeps each line on disk as soon as it is produced.
  Status st = bench_json_->Write(line);
  if (st.ok()) st = bench_json_->Flush();
  (void)st.ok();
}

Status TextRenderer::Flush() {
  Note(out_.Flush());
  Note(err_.Flush());
  return deferred_;
}

Status TextRenderer::Finish() {
  if (bench_json_ != nullptr) {
    const Status st = bench_json_->Close();
    (void)st.ok();  // best-effort, matching WriteRunMetrics
  }
  return Flush();
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter(std::string path, ArtifactChain chain)
    : path_(std::move(path)), chain_(chain) {}

void JsonWriter::WriteFigure(const std::string& title,
                             const std::vector<exp::FigureSeries>& series) {
  std::string line =
      "{\"artifact\":\"figure\",\"title\":\"" + EscapeJson(title) +
      "\",\"series\":[";
  for (size_t s = 0; s < series.size(); ++s) {
    const exp::FigureSeries& fs = series[s];
    if (s > 0) line += ",";
    line += "{\"query\":\"" + EscapeJson(fs.query_name) +
            "\",\"candidate_plans\":" + StrFormat("%zu", fs.num_candidate_plans) +
            ",\"constant_bound\":" + JsonNumber(fs.constant_bound) +
            ",\"complementary\":" +
            (fs.has_complementary_plans ? "true" : "false") + ",\"points\":[";
    for (size_t p = 0; p < fs.points.size(); ++p) {
      const exp::GtcPoint& pt = fs.points[p];
      if (p > 0) line += ",";
      line += "{\"delta\":" + JsonNumber(pt.delta) +
              ",\"gtc\":" + JsonNumber(pt.gtc) + ",\"worst_rival\":\"" +
              EscapeJson(pt.worst_rival) + "\"}";
    }
    line += "]}";
  }
  line += "]}\n";
  buffer_ += line;
}

void JsonWriter::WriteTextBlock(const std::string& text) {
  buffer_ += "{\"artifact\":\"text\",\"text\":\"" + EscapeJson(text) + "\"}\n";
}

void JsonWriter::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  // Same schema as the perf line on stderr, tagged as a metrics artifact.
  std::string line = metrics.ToJsonLine(bench_name, extra);
  line.insert(1, "\"artifact\":\"metrics\",");
  buffer_ += line;
}

void JsonWriter::EnsureChain() {
  if (top_ != nullptr) return;
  file_ = std::make_unique<runtime::sink::FileSink>(
      path_, runtime::sink::FileSink::Mode::kAppend);
  top_ = file_.get();
  switch (chain_) {
    case ArtifactChain::kPlain:
      break;
    case ArtifactChain::kBuffered:
      batch_ = std::make_unique<runtime::sink::BufferSink>(*top_,
                                                           size_t{4} * 1024);
      top_ = batch_.get();
      break;
    case ArtifactChain::kCompressed:
      compress_ = std::make_unique<runtime::sink::BlockCompressSink>(*top_);
      top_ = compress_.get();
      break;
  }
}

Status JsonWriter::Wrap(Status st) const {
  if (st.ok()) return st;
  return Status(st.code(), "artifact sidecar " + path_ + ": " + st.message());
}

Status JsonWriter::Flush() {
  if (buffer_.empty()) return Status::Ok();
  EnsureChain();
  Status st = top_->Write(buffer_);
  if (st.ok()) st = top_->Flush();
  if (!st.ok()) return Wrap(std::move(st));  // buffer kept for a retry
  buffer_.clear();
  return Status::Ok();
}

Status JsonWriter::Finish() {
  Status st = Flush();
  if (!st.ok()) return st;
  if (top_ == nullptr) return Status::Ok();  // nothing ever flushed
  st = top_->Close();
  // A later Flush rebuilds a fresh chain appending after these bytes, so
  // batch runs accumulate exactly as the historical fopen("a") did.
  top_ = nullptr;
  compress_.reset();
  batch_.reset();
  file_.reset();
  return Wrap(std::move(st));
}

// ---------------------------------------------------------------------------
// MultiWriter
// ---------------------------------------------------------------------------

MultiWriter::MultiWriter(std::vector<std::unique_ptr<ArtifactWriter>> sinks)
    : sinks_(std::move(sinks)) {}

void MultiWriter::WriteFigure(const std::string& title,
                              const std::vector<exp::FigureSeries>& series) {
  for (auto& sink : sinks_) sink->WriteFigure(title, series);
}

void MultiWriter::WriteTextBlock(const std::string& text) {
  for (auto& sink : sinks_) sink->WriteTextBlock(text);
}

void MultiWriter::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  for (auto& sink : sinks_) sink->WriteRunMetrics(bench_name, metrics, extra);
}

Status MultiWriter::Flush() {
  Status first;
  for (auto& sink : sinks_) {
    Status st = sink->Flush();
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

Status MultiWriter::Finish() {
  Status first;
  for (auto& sink : sinks_) {
    Status st = sink->Finish();
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

std::unique_ptr<ArtifactWriter> MakeArtifactWriter(const EngineConfig& config) {
  auto text = std::make_unique<TextRenderer>(config.bench_json_path);
  if (config.artifact_json_path.empty()) return text;
  std::vector<std::unique_ptr<ArtifactWriter>> sinks;
  sinks.push_back(std::move(text));
  sinks.push_back(std::make_unique<JsonWriter>(config.artifact_json_path,
                                               config.artifact_chain));
  return std::make_unique<MultiWriter>(std::move(sinks));
}

}  // namespace costsense::engine
