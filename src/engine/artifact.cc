#include "engine/artifact.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "exp/report.h"

namespace costsense::engine {
namespace {

/// JSON has no literal for non-finite numbers; encode them as strings so
/// the sidecar stays parseable when Theorem 2's bound is infinite.
std::string JsonNumber(double v) {
  if (std::isfinite(v)) return StrFormat("%.17g", v);
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  return "\"nan\"";
}

}  // namespace

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TextRenderer
// ---------------------------------------------------------------------------

TextRenderer::TextRenderer(std::string bench_json_path)
    : bench_json_path_(std::move(bench_json_path)) {}

void TextRenderer::WriteFigure(const std::string& title,
                               const std::vector<exp::FigureSeries>& series) {
  // Byte-for-byte the pre-engine driver output: table, blank line, CSV.
  std::fputs(exp::RenderFigureTable(title, series).c_str(), stdout);
  std::fputs("\nCSV:\n", stdout);
  std::fputs(exp::RenderFigureCsv(series).c_str(), stdout);
}

void TextRenderer::WriteTextBlock(const std::string& text) {
  std::fputs(text.c_str(), stdout);
}

void TextRenderer::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  std::fputs(metrics.Render().c_str(), stderr);
  const std::string line = metrics.ToJsonLine(bench_name, extra);
  std::fputs(line.c_str(), stderr);
  if (!bench_json_path_.empty()) {
    std::FILE* f = std::fopen(bench_json_path_.c_str(), "a");
    if (f != nullptr) {
      std::fputs(line.c_str(), f);
      std::fclose(f);
    }
  }
}

Status TextRenderer::Flush() {
  // stdout/stderr and the perf line are written eagerly; only the libc
  // buffers can hold data back.
  std::fflush(stdout);
  std::fflush(stderr);
  return Status::Ok();
}

Status TextRenderer::Finish() { return Status::Ok(); }

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter(std::string path) : path_(std::move(path)) {}

void JsonWriter::WriteFigure(const std::string& title,
                             const std::vector<exp::FigureSeries>& series) {
  std::string line =
      "{\"artifact\":\"figure\",\"title\":\"" + EscapeJson(title) +
      "\",\"series\":[";
  for (size_t s = 0; s < series.size(); ++s) {
    const exp::FigureSeries& fs = series[s];
    if (s > 0) line += ",";
    line += "{\"query\":\"" + EscapeJson(fs.query_name) +
            "\",\"candidate_plans\":" + StrFormat("%zu", fs.num_candidate_plans) +
            ",\"constant_bound\":" + JsonNumber(fs.constant_bound) +
            ",\"complementary\":" +
            (fs.has_complementary_plans ? "true" : "false") + ",\"points\":[";
    for (size_t p = 0; p < fs.points.size(); ++p) {
      const exp::GtcPoint& pt = fs.points[p];
      if (p > 0) line += ",";
      line += "{\"delta\":" + JsonNumber(pt.delta) +
              ",\"gtc\":" + JsonNumber(pt.gtc) + ",\"worst_rival\":\"" +
              EscapeJson(pt.worst_rival) + "\"}";
    }
    line += "]}";
  }
  line += "]}\n";
  buffer_ += line;
}

void JsonWriter::WriteTextBlock(const std::string& text) {
  buffer_ += "{\"artifact\":\"text\",\"text\":\"" + EscapeJson(text) + "\"}\n";
}

void JsonWriter::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  // Same schema as the perf line on stderr, tagged as a metrics artifact.
  std::string line = metrics.ToJsonLine(bench_name, extra);
  line.insert(1, "\"artifact\":\"metrics\",");
  buffer_ += line;
}

Status JsonWriter::Flush() {
  if (buffer_.empty()) return Status::Ok();
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    return Status::Internal("cannot open artifact sidecar " + path_);
  }
  const size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    return Status::Internal("short write to artifact sidecar " + path_);
  }
  buffer_.clear();
  return Status::Ok();
}

Status JsonWriter::Finish() { return Flush(); }

// ---------------------------------------------------------------------------
// MultiWriter
// ---------------------------------------------------------------------------

MultiWriter::MultiWriter(std::vector<std::unique_ptr<ArtifactWriter>> sinks)
    : sinks_(std::move(sinks)) {}

void MultiWriter::WriteFigure(const std::string& title,
                              const std::vector<exp::FigureSeries>& series) {
  for (auto& sink : sinks_) sink->WriteFigure(title, series);
}

void MultiWriter::WriteTextBlock(const std::string& text) {
  for (auto& sink : sinks_) sink->WriteTextBlock(text);
}

void MultiWriter::WriteRunMetrics(
    const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
    const std::vector<std::pair<std::string, double>>& extra) {
  for (auto& sink : sinks_) sink->WriteRunMetrics(bench_name, metrics, extra);
}

Status MultiWriter::Flush() {
  Status first;
  for (auto& sink : sinks_) {
    Status st = sink->Flush();
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

Status MultiWriter::Finish() {
  Status first;
  for (auto& sink : sinks_) {
    Status st = sink->Finish();
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

std::unique_ptr<ArtifactWriter> MakeArtifactWriter(const EngineConfig& config) {
  auto text = std::make_unique<TextRenderer>(config.bench_json_path);
  if (config.artifact_json_path.empty()) return text;
  std::vector<std::unique_ptr<ArtifactWriter>> sinks;
  sinks.push_back(std::move(text));
  sinks.push_back(std::make_unique<JsonWriter>(config.artifact_json_path));
  return std::make_unique<MultiWriter>(std::move(sinks));
}

}  // namespace costsense::engine
