#ifndef COSTSENSE_ENGINE_ARTIFACT_H_
#define COSTSENSE_ENGINE_ARTIFACT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/config.h"
#include "exp/figure_runner.h"
#include "runtime/metrics.h"
#include "runtime/sink/compress.h"
#include "runtime/sink/stages.h"

namespace costsense::engine {

/// Where figure/table results go, decoupled from how they were computed.
///
/// Drivers emit three artifact kinds: a figure (title + per-query GTC
/// series), a pre-rendered text block (the census/bounds tables), and a
/// run's RuntimeMetrics (which carry the resilience telemetry). Sinks
/// decide the representation: TextRenderer reproduces today's stdout
/// byte-for-byte, JsonWriter captures the same data structured.
class ArtifactWriter {
 public:
  virtual ~ArtifactWriter() = default;

  /// One worst-case figure: the table/CSV pair on the text sink, one
  /// structured series record on the JSON sink.
  virtual void WriteFigure(const std::string& title,
                           const std::vector<exp::FigureSeries>& series) = 0;

  /// A pre-rendered block (tables that are not GTC series). The text sink
  /// forwards it verbatim.
  virtual void WriteTextBlock(const std::string& text) = 0;

  /// Per-run counters and resilience telemetry. `extra` appends numeric
  /// fields to the machine-readable form.
  virtual void WriteRunMetrics(
      const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
      const std::vector<std::pair<std::string, double>>& extra = {}) = 0;

  /// Persists everything buffered so far without ending the run — the
  /// checkpoint entry point. A long-lived producer (the analysis server,
  /// the load generator) calls this at checkpoints and on shutdown so an
  /// aborted run keeps every artifact written up to the last Flush.
  /// Idempotent; a Flush with nothing buffered is a no-op.
  [[nodiscard]] virtual Status Flush() = 0;

  /// Flushes sink state (e.g. the JSON sidecar file). Idempotent.
  [[nodiscard]] virtual Status Finish() = 0;
};

/// The classic rendering: figures/tables to stdout (byte-identical to the
/// pre-engine drivers, proven by the golden harness), metrics to stderr as
/// the human-readable block plus one perf-JSON line, the latter also
/// appended to `bench_json_path` when non-empty.
///
/// Internally every byte now travels through a sink chain — stdout/stderr
/// through borrowed StdioSinks, the perf line through an append FileSink.
/// The Write* entry points are void, so a failed write is remembered and
/// surfaced as the first error from Flush()/Finish().
class TextRenderer final : public ArtifactWriter {
 public:
  explicit TextRenderer(std::string bench_json_path = "");

  void WriteFigure(const std::string& title,
                   const std::vector<exp::FigureSeries>& series) override;
  void WriteTextBlock(const std::string& text) override;
  void WriteRunMetrics(
      const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
      const std::vector<std::pair<std::string, double>>& extra) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Finish() override;

 private:
  /// Remembers the first failed write until Flush/Finish reports it.
  void Note(Status st);

  const std::string bench_json_path_;
  runtime::sink::StdioSink out_;
  runtime::sink::StdioSink err_;
  std::unique_ptr<runtime::sink::FileSink> bench_json_;
  Status deferred_;
};

/// Structured sidecar: every artifact as one JSON object per line,
/// buffered and written to `path` on Finish (append mode, so batch runs
/// accumulate). Figure series keep full fidelity — per-point delta, gtc
/// and worst rival, plus the per-series Theorem 2 bound — making runs
/// machine-diffable without scraping stdout.
class JsonWriter final : public ArtifactWriter {
 public:
  /// `chain` selects the stages the sidecar bytes travel through on
  /// Flush: kPlain writes straight to the append file, kBuffered batches
  /// through a coalescing stage (byte-identical output), kCompressed
  /// writes the deterministic block-stream form (decode with
  /// runtime::sink::DecompressBlocks to recover identical bytes).
  explicit JsonWriter(std::string path,
                      ArtifactChain chain = ArtifactChain::kPlain);

  void WriteFigure(const std::string& title,
                   const std::vector<exp::FigureSeries>& series) override;
  void WriteTextBlock(const std::string& text) override;
  void WriteRunMetrics(
      const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
      const std::vector<std::pair<std::string, double>>& extra) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Finish() override;

  /// The buffered JSON lines (tests inspect without touching the disk).
  const std::string& buffered() const { return buffer_; }

 private:
  /// Builds the configured stage stack (bottom-up over unique_ptrs so the
  /// stages have stable addresses); top_ is the chain entry. No-op when
  /// already built.
  void EnsureChain();
  /// Tags a chain error with the sidecar path for the caller.
  [[nodiscard]] Status Wrap(Status st) const;

  const std::string path_;
  const ArtifactChain chain_;
  std::string buffer_;
  std::unique_ptr<runtime::sink::FileSink> file_;
  std::unique_ptr<runtime::sink::BufferSink> batch_;
  std::unique_ptr<runtime::sink::BlockCompressSink> compress_;
  runtime::sink::Sink* top_ = nullptr;
};

/// Fans every artifact out to several sinks in order.
class MultiWriter final : public ArtifactWriter {
 public:
  explicit MultiWriter(std::vector<std::unique_ptr<ArtifactWriter>> sinks);

  void WriteFigure(const std::string& title,
                   const std::vector<exp::FigureSeries>& series) override;
  void WriteTextBlock(const std::string& text) override;
  void WriteRunMetrics(
      const std::string& bench_name, const runtime::RuntimeMetrics& metrics,
      const std::vector<std::pair<std::string, double>>& extra) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Finish() override;

 private:
  std::vector<std::unique_ptr<ArtifactWriter>> sinks_;
};

/// The configured sink set: always a TextRenderer (stdout contract), plus
/// a JsonWriter sidecar when config.artifact_json_path is set.
std::unique_ptr<ArtifactWriter> MakeArtifactWriter(const EngineConfig& config);

/// Escapes `text` for embedding in a JSON string literal.
std::string EscapeJson(std::string_view text);

}  // namespace costsense::engine

#endif  // COSTSENSE_ENGINE_ARTIFACT_H_
