#include "engine/config.h"

#include <cstdlib>
#include <string>

#include "common/strings.h"

namespace costsense::engine {
namespace {

/// The knob table: one row per documented setting. Env names and override
/// keys are two spellings of the same knob and share one parser each, so
/// FromEnv and ApplyOverride cannot drift apart.
struct Knob {
  const char* key;       // override spelling ("threads=3")
  const char* env_name;  // environment spelling (COSTSENSE_THREADS)
};

constexpr Knob kKnobs[] = {
    {"threads", "COSTSENSE_THREADS"},
    {"kernel", "COSTSENSE_KERNEL"},
    {"quick", "COSTSENSE_QUICK"},
    {"bench_json", "COSTSENSE_BENCH_JSON"},
    {"artifact_json", "COSTSENSE_ARTIFACT_JSON"},
    {"artifact_chain", "COSTSENSE_ARTIFACT_CHAIN"},
    {"cache_entries", "COSTSENSE_CACHE_ENTRIES"},
    {"cache_shards", "COSTSENSE_CACHE_SHARDS"},
    {"fault_rate", "COSTSENSE_FAULT_RATE"},
    {"max_retries", "COSTSENSE_MAX_RETRIES"},
    {"serve_inflight", "COSTSENSE_SERVE_INFLIGHT"},
    {"serve_queue", "COSTSENSE_SERVE_QUEUE"},
    {"serve_deadline_ms", "COSTSENSE_SERVE_DEADLINE_MS"},
    {"serve_socket", "COSTSENSE_SERVE_SOCKET"},
    {"cache_path", "COSTSENSE_CACHE_PATH"},
    {"serve_stats_interval_ms", "COSTSENSE_SERVE_STATS_INTERVAL_MS"},
    {"serve_drain_timeout_ms", "COSTSENSE_SERVE_DRAIN_TIMEOUT_MS"},
    {"serve_idle_timeout_ms", "COSTSENSE_SERVE_IDLE_TIMEOUT_MS"},
};

[[nodiscard]] Status BadValue(std::string_view source, std::string_view value,
                              std::string_view expected) {
  return Status::InvalidArgument(StrFormat(
      "%.*s=\"%.*s\": expected %.*s", static_cast<int>(source.size()),
      source.data(), static_cast<int>(value.size()), value.data(),
      static_cast<int>(expected.size()), expected.data()));
}

[[nodiscard]] Status ParseSize(std::string_view source, std::string_view value,
                               size_t min_value, size_t* out) {
  const std::string text(value);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' ||
      text.front() == '-' || parsed < min_value) {
    return BadValue(source, value,
                    StrFormat("an integer >= %zu", min_value));
  }
  *out = static_cast<size_t>(parsed);
  return Status::Ok();
}

[[nodiscard]] Status ParseUnitDouble(std::string_view source,
                                     std::string_view value, double* out) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || !(parsed >= 0.0) ||
      !(parsed <= 1.0)) {
    return BadValue(source, value, "a number in [0, 1]");
  }
  *out = parsed;
  return Status::Ok();
}

[[nodiscard]] Status ParseKernel(std::string_view source,
                                 std::string_view value,
                                 core::SweepKernel* out) {
  if (value == "scalar") {
    *out = core::SweepKernel::kScalar;
    return Status::Ok();
  }
  if (value == "incremental") {
    *out = core::SweepKernel::kIncremental;
    return Status::Ok();
  }
  if (value == "simd") {
    // Accepted on every host: the sweep resolves kSimd to the incremental
    // kernel at run time when AVX2 is unavailable (identical results by
    // contract), so the knob never needs host-specific validation.
    *out = core::SweepKernel::kSimd;
    return Status::Ok();
  }
  return BadValue(source, value, "\"scalar\", \"incremental\" or \"simd\"");
}

[[nodiscard]] Status ParseChain(std::string_view source,
                                std::string_view value, ArtifactChain* out) {
  if (value == "plain") {
    *out = ArtifactChain::kPlain;
    return Status::Ok();
  }
  if (value == "buffered") {
    *out = ArtifactChain::kBuffered;
    return Status::Ok();
  }
  if (value == "compressed") {
    *out = ArtifactChain::kCompressed;
    return Status::Ok();
  }
  return BadValue(source, value, "\"plain\", \"buffered\" or \"compressed\"");
}

const char* ChainName(ArtifactChain chain) {
  switch (chain) {
    case ArtifactChain::kPlain:
      return "plain";
    case ArtifactChain::kBuffered:
      return "buffered";
    case ArtifactChain::kCompressed:
      return "compressed";
  }
  return "plain";  // unreachable
}

const char* KernelName(core::SweepKernel kernel) {
  switch (kernel) {
    case core::SweepKernel::kScalar:
      return "scalar";
    case core::SweepKernel::kIncremental:
      return "incremental";
    case core::SweepKernel::kSimd:
      return "simd";
  }
  return "incremental";  // unreachable
}

/// Quick mode keeps its documented env semantics: any set, non-empty value
/// other than "0" turns it on ("COSTSENSE_QUICK=1 ./fig5..." and
/// "COSTSENSE_QUICK=yes" both work; "0" and "" mean off). Never an error.
bool ParseQuick(std::string_view value) {
  return !value.empty() && value != "0";
}

/// Applies one knob value to `config`. `source` names the spelling that
/// supplied the value (env var or override key) for error messages.
[[nodiscard]] Status ApplyKnob(EngineConfig* config, std::string_view key,
                               std::string_view source,
                               std::string_view value) {
  if (key == "threads") {
    // 0 keeps the documented meaning "hardware concurrency"; anything
    // non-numeric is a typed error, not a silent fallback.
    return ParseSize(source, value, 0, &config->threads);
  }
  if (key == "kernel") return ParseKernel(source, value, &config->kernel);
  if (key == "quick") {
    config->quick = ParseQuick(value);
    return Status::Ok();
  }
  if (key == "bench_json") {
    config->bench_json_path = std::string(value);
    return Status::Ok();
  }
  if (key == "artifact_json") {
    config->artifact_json_path = std::string(value);
    return Status::Ok();
  }
  if (key == "artifact_chain") {
    return ParseChain(source, value, &config->artifact_chain);
  }
  if (key == "cache_entries") {
    return ParseSize(source, value, 1, &config->cache.max_entries);
  }
  if (key == "cache_shards") {
    return ParseSize(source, value, 1, &config->cache.shards);
  }
  if (key == "fault_rate") {
    return ParseUnitDouble(source, value, &config->fault_rate);
  }
  if (key == "max_retries") {
    return ParseSize(source, value, 0, &config->max_retries);
  }
  if (key == "serve_inflight") {
    return ParseSize(source, value, 1, &config->serve_inflight);
  }
  if (key == "serve_queue") {
    return ParseSize(source, value, 0, &config->serve_queue);
  }
  if (key == "serve_deadline_ms") {
    return ParseSize(source, value, 0, &config->serve_deadline_ms);
  }
  if (key == "serve_socket") {
    config->serve_socket = std::string(value);
    return Status::Ok();
  }
  if (key == "cache_path") {
    config->cache_path = std::string(value);
    return Status::Ok();
  }
  if (key == "serve_stats_interval_ms") {
    return ParseSize(source, value, 0, &config->serve_stats_interval_ms);
  }
  if (key == "serve_drain_timeout_ms") {
    return ParseSize(source, value, 0, &config->serve_drain_timeout_ms);
  }
  if (key == "serve_idle_timeout_ms") {
    return ParseSize(source, value, 0, &config->serve_idle_timeout_ms);
  }
  return Status::InvalidArgument(
      StrFormat("unknown engine config key \"%.*s\"",
                static_cast<int>(key.size()), key.data()));
}

}  // namespace

Result<EngineConfig> EngineConfig::FromEnv() {
  // The single sanctioned environment read (lint rule R5).
  return FromEnv([](const char* name) { return std::getenv(name); });
}

Result<EngineConfig> EngineConfig::FromEnv(const EnvLookup& lookup) {
  EngineConfig config;
  for (const Knob& knob : kKnobs) {
    const char* value = lookup(knob.env_name);
    if (value == nullptr) continue;
    const Status st = ApplyKnob(&config, knob.key, knob.env_name, value);
    if (!st.ok()) return st;
  }
  return config;
}

Status EngineConfig::ApplyOverride(std::string_view assignment) {
  const size_t eq = assignment.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument(
        StrFormat("override \"%.*s\" is not of the form key=value",
                  static_cast<int>(assignment.size()), assignment.data()));
  }
  const std::string_view key = assignment.substr(0, eq);
  return ApplyKnob(this, key, key, assignment.substr(eq + 1));
}

bool EngineConfig::IsOverride(std::string_view arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return false;
  const std::string_view key = arg.substr(0, eq);
  for (const Knob& knob : kKnobs) {
    if (key == knob.key) return true;
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> EngineConfig::KnobTable()
    const {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("threads", StrFormat("%zu", threads));
  rows.emplace_back("kernel", KernelName(kernel));
  rows.emplace_back("quick", quick ? "1" : "0");
  rows.emplace_back("bench_json", bench_json_path);
  rows.emplace_back("artifact_json", artifact_json_path);
  rows.emplace_back("artifact_chain", ChainName(artifact_chain));
  rows.emplace_back("cache_entries", StrFormat("%zu", cache.max_entries));
  rows.emplace_back("cache_shards", StrFormat("%zu", cache.shards));
  rows.emplace_back("fault_rate", StrFormat("%g", fault_rate));
  rows.emplace_back("max_retries", StrFormat("%zu", max_retries));
  rows.emplace_back("serve_inflight", StrFormat("%zu", serve_inflight));
  rows.emplace_back("serve_queue", StrFormat("%zu", serve_queue));
  rows.emplace_back("serve_deadline_ms", StrFormat("%zu", serve_deadline_ms));
  rows.emplace_back("serve_socket", serve_socket);
  rows.emplace_back("cache_path", cache_path);
  rows.emplace_back("serve_stats_interval_ms",
                    StrFormat("%zu", serve_stats_interval_ms));
  rows.emplace_back("serve_drain_timeout_ms",
                    StrFormat("%zu", serve_drain_timeout_ms));
  rows.emplace_back("serve_idle_timeout_ms",
                    StrFormat("%zu", serve_idle_timeout_ms));
  return rows;
}

runtime::OracleStackBuilder MakeOracleStackBuilder(const EngineConfig& config) {
  runtime::OracleStackBuilder builder;
  builder.WithCache(config.cache);
  if (config.fault_rate > 0.0) {
    runtime::resilience::FaultInjectionOptions faults;
    faults.fault_rate = config.fault_rate;
    runtime::resilience::ResilientOracleOptions retry;
    retry.max_retries = config.max_retries;
    builder.WithResilience(faults, retry);
  }
  return builder;
}

}  // namespace costsense::engine
