#ifndef COSTSENSE_ENGINE_CONFIG_H_
#define COSTSENSE_ENGINE_CONFIG_H_

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/worst_case.h"
#include "runtime/oracle_cache.h"
#include "runtime/oracle_stack.h"

namespace costsense::engine {

/// How artifact sidecar bytes travel to disk. Every choice produces the
/// same logical content; "buffered" batches small writes through a
/// coalescing stage and "compressed" adds the deterministic block
/// compressor, so the sidecar is a block stream instead of raw JSON
/// lines (decode with runtime::sink::DecompressBlocks).
enum class ArtifactChain { kPlain, kBuffered, kCompressed };

/// The one typed run configuration for every costsense entry point.
///
/// This is the only place the COSTSENSE_* environment variables are read
/// (lint rule R5 bans std::getenv elsewhere). Malformed values are typed
/// kInvalidArgument errors, not silent fallbacks: a bench run with
/// COSTSENSE_THREADS=banana refuses to start instead of quietly running at
/// hardware concurrency. Bench CLIs additionally accept key=value
/// overrides (ApplyOverride), which win over the environment.
///
/// Knobs and their environment/override spellings:
///
///   threads        COSTSENSE_THREADS        integer; 0/unset = hardware
///                                           concurrency
///   kernel         COSTSENSE_KERNEL         "scalar" | "incremental" |
///                                           "simd" (falls back to
///                                           incremental without AVX2)
///   quick          COSTSENSE_QUICK          unset/""/"0" off, else on
///   bench_json     COSTSENSE_BENCH_JSON     perf-JSON append path
///   artifact_json  COSTSENSE_ARTIFACT_JSON  structured-artifact sidecar
///                                           path (JSON lines)
///   artifact_chain COSTSENSE_ARTIFACT_CHAIN sidecar sink chain: "plain" |
///                                           "buffered" | "compressed"
///   cache_entries  COSTSENSE_CACHE_ENTRIES  oracle-cache entry bound >= 1
///   cache_shards   COSTSENSE_CACHE_SHARDS   oracle-cache shard count >= 1
///   fault_rate     COSTSENSE_FAULT_RATE     injected fault rate in [0, 1]
///   max_retries    COSTSENSE_MAX_RETRIES    resilient-oracle retry budget
///   serve_inflight COSTSENSE_SERVE_INFLIGHT server: concurrent requests
///                                           >= 1
///   serve_queue    COSTSENSE_SERVE_QUEUE    server: admission wait-queue
///                                           bound >= 0
///   serve_deadline_ms COSTSENSE_SERVE_DEADLINE_MS
///                                           server: default per-request
///                                           deadline, 0 = unlimited
///   serve_socket   COSTSENSE_SERVE_SOCKET   server: Unix socket path
///   cache_path     COSTSENSE_CACHE_PATH     oracle-cache snapshot file;
///                                           empty = no persistence
///   serve_stats_interval_ms COSTSENSE_SERVE_STATS_INTERVAL_MS
///                                           server: periodic stats-snapshot
///                                           interval, 0 = only at shutdown
///   serve_drain_timeout_ms COSTSENSE_SERVE_DRAIN_TIMEOUT_MS
///                                           server: Shutdown() bound before
///                                           wedged sessions are force-closed,
///                                           0 = wait forever
///   serve_idle_timeout_ms COSTSENSE_SERVE_IDLE_TIMEOUT_MS
///                                           server: idle-session watchdog
///                                           reclaim threshold, 0 = off
struct EngineConfig {
  /// Concurrency level; 0 means hardware concurrency at pool build time.
  size_t threads = 0;
  /// Vertex-sweep kernel installed as the process default.
  core::SweepKernel kernel = core::SweepKernel::kIncremental;
  /// Quick mode: representative query subset + light discovery sampling.
  bool quick = false;
  /// Appended with one perf-JSON line per bench run when non-empty.
  std::string bench_json_path;
  /// Structured artifact sidecar (series/tables/metrics as JSON lines)
  /// written when non-empty; figure stdout is unaffected.
  std::string artifact_json_path;
  /// Sink chain the sidecar bytes travel through (stdout always goes
  /// straight to the stream — its bytes are golden-compared).
  ArtifactChain artifact_chain = ArtifactChain::kPlain;
  /// Memoizing oracle-cache sizing for the per-query stacks.
  runtime::OracleCacheOptions cache;
  /// Resilience budgets for stacks built with the fault tier enabled.
  double fault_rate = 0.0;
  size_t max_retries = 5;
  /// costsense-serve admission bounds: concurrent requests and the wait
  /// queue behind them (see serve::AdmissionController).
  size_t serve_inflight = 4;
  size_t serve_queue = 16;
  /// Default per-request deadline in milliseconds; 0 = unlimited.
  size_t serve_deadline_ms = 0;
  /// Unix-domain socket path costsense-serve listens on.
  std::string serve_socket = "/tmp/costsense-serve.sock";
  /// Oracle-cache snapshot path (runtime::CacheStore); empty disables
  /// persistence. Drivers load it at startup (warm start) and save on
  /// clean shutdown; a corrupt or mismatched snapshot degrades to a cold
  /// cache with typed telemetry, never an error.
  std::string cache_path;
  /// Interval between server-side stats snapshots through the artifact
  /// sinks while serving; 0 = snapshot only at shutdown.
  size_t serve_stats_interval_ms = 0;
  /// Upper bound on Server::Shutdown() waiting for in-flight sessions
  /// before force-closing their transports; 0 = wait forever.
  size_t serve_drain_timeout_ms = 0;
  /// Idle threshold after which the session watchdog reclaims a
  /// connection that has stopped sending requests; 0 = never.
  size_t serve_idle_timeout_ms = 0;

  /// Environment accessor, injectable for tests (maps a variable name to
  /// its value or nullptr). The default reads the process environment.
  using EnvLookup = std::function<const char*(const char* name)>;

  /// Parses the process environment. kInvalidArgument on any malformed
  /// COSTSENSE_* value, naming the variable and the offending text.
  [[nodiscard]] static Result<EngineConfig> FromEnv();
  [[nodiscard]] static Result<EngineConfig> FromEnv(const EnvLookup& lookup);

  /// Applies one "key=value" override (e.g. "threads=3", "kernel=scalar").
  /// Overrides use the same parsers as FromEnv and win over it; unknown
  /// keys and malformed values are kInvalidArgument.
  [[nodiscard]] Status ApplyOverride(std::string_view assignment);

  /// True when `arg` looks like a recognized "key=value" override — the
  /// bench main uses this to split its argv from pass-through arguments
  /// (e.g. google-benchmark's --benchmark_filter=...).
  static bool IsOverride(std::string_view arg);

  /// Every documented knob as (override key, current value) rows, in the
  /// order listed above. Feeding each row back through ApplyOverride
  /// reproduces the config (the round-trip property config_test proves).
  std::vector<std::pair<std::string, std::string>> KnobTable() const;
};

/// An oracle-stack builder seeded from config: cache sizing always, and
/// the resilience tiers when config.fault_rate > 0 (with
/// config.max_retries as the retry budget). Lives here rather than on
/// runtime::OracleStackBuilder so the runtime module never depends on
/// EngineConfig (layer rule R7: runtime sits below engine).
runtime::OracleStackBuilder MakeOracleStackBuilder(const EngineConfig& config);

}  // namespace costsense::engine

#endif  // COSTSENSE_ENGINE_CONFIG_H_
