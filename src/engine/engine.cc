#include "engine/engine.h"

#include <utility>

#include "core/worst_case.h"

namespace costsense::engine {

Result<Engine> Engine::Create(EngineConfig config) {
  Status st = runtime::ConfigureGlobalThreadCount(config.threads);
  if (!st.ok()) return st;
  core::SetDefaultSweepKernel(config.kernel);
  return Engine(std::move(config));
}

}  // namespace costsense::engine
