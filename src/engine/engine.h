#ifndef COSTSENSE_ENGINE_ENGINE_H_
#define COSTSENSE_ENGINE_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "engine/artifact.h"
#include "engine/config.h"
#include "runtime/oracle_stack.h"
#include "runtime/thread_pool.h"

namespace costsense::engine {

/// The unified analysis engine: one configured entry point that every
/// driver builds its pipeline from. Creating an Engine applies the
/// config's process-wide settings (global thread-pool size, default sweep
/// kernel) and hands out the composable pieces — oracle-stack builders
/// and artifact sinks — so no entry point assembles them ad hoc.
class Engine {
 public:
  /// Applies `config` to the process: sizes the global thread pool and
  /// installs the default sweep kernel. kFailedPrecondition when the
  /// global pool was already built at a different size (the config can no
  /// longer take effect — fail loudly instead of running mis-sized).
  [[nodiscard]] static Result<Engine> Create(EngineConfig config);

  const EngineConfig& config() const { return config_; }

  /// The process-global pool, sized per config().threads.
  runtime::ThreadPool& pool() const { return runtime::ThreadPool::Global(); }

  /// An oracle-stack builder seeded from this config (cache sizing and,
  /// when fault_rate > 0, the resilience tiers).
  runtime::OracleStackBuilder MakeOracleStackBuilder() const {
    return engine::MakeOracleStackBuilder(config_);
  }

  /// The configured artifact sink set (TextRenderer, plus the JSON
  /// sidecar when artifact_json_path is set).
  std::unique_ptr<ArtifactWriter> MakeArtifactWriter() const {
    return engine::MakeArtifactWriter(config_);
  }

 private:
  explicit Engine(EngineConfig config) : config_(std::move(config)) {}

  EngineConfig config_;
};

}  // namespace costsense::engine

#endif  // COSTSENSE_ENGINE_ENGINE_H_
