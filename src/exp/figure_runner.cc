#include "exp/figure_runner.h"

#include <cmath>
#include <optional>
#include <utility>

#include "blackbox/narrow_optimizer.h"
#include "common/macros.h"
#include "core/bounds.h"
#include "core/worst_case.h"
#include "opt/optimizer.h"

namespace costsense::exp {

FigureRunner::FigureRunner(const catalog::Catalog& catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {}

runtime::ThreadPool& FigureRunner::pool() const {
  return options_.pool != nullptr ? *options_.pool
                                  : runtime::ThreadPool::Global();
}

Result<QueryAnalysis> FigureRunner::Analyze(
    const query::Query& query, storage::LayoutPolicy policy) const {
  const storage::StorageLayout layout(policy, catalog_,
                                      query::ReferencedTables(query));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(catalog_, layout, space);
  blackbox::NarrowOptimizer narrow(optimizer, query, options_.white_box);
  // The per-query decorator chain, assembled by the engine's stack
  // builder: the memoizing tier collapses discovery's revisited cost
  // points (the box center, shared segment midpoints) into one optimizer
  // invocation each — concurrently safe, since misses compute outside the
  // shard locks against the stateless optimizer — and the resilience
  // tiers are stacked above it only when the fault option is on.
  runtime::OracleStackBuilder builder;
  builder.WithCache(options_.cache);
  builder.WithStore(options_.store);
  if (options_.resilience.enabled) {
    builder.WithResilience(options_.resilience.faults,
                           options_.resilience.retry,
                           options_.resilience.clock);
  }
  // The persistence scope: one snapshot bucket per (query, layout) pair,
  // matching the per-pair stacks this runner stamps out.
  const std::string scope =
      query.name + "/" + storage::LayoutPolicyName(policy);
  runtime::OracleStack stack = builder.Build(narrow, scope);

  QueryAnalysis out;
  out.query_name = query.name;
  out.policy = policy;
  out.dims = space.dims();
  out.baseline = space.BaselineCosts();
  out.dim_info = space.dim_info();
  out.cache_imported = stack.cache().stats().imported;

  if (options_.resilience.enabled) {
    Result<QueryAnalysis> r =
        AnalyzeResilient(query, optimizer, stack, narrow, std::move(out));
    if (r.ok()) stack.PublishToStore();
    return r;
  }
  runtime::CachingOracle& oracle = stack.cache();

  // The initial plan: optimal at the (estimated) baseline costs, i.e. the
  // plan a DBA gets by leaving DB2's defaults in place (Section 8.1). The
  // baseline probe goes through the caching oracle, which also warms the
  // cache for discovery's center probe (the box center *is* the baseline
  // for multiplicative bands).
  if (options_.white_box) {
    const core::OracleResult initial = oracle.Optimize(out.baseline);
    if (!initial.usage.has_value()) {
      return Status::Internal("white-box oracle did not reveal usage");
    }
    out.initial_plan_id = initial.plan_id;
    out.initial_usage = *initial.usage;
  } else {
    // Narrow mode hides usage vectors; take the initial plan's directly
    // from the optimizer (the DBA can always EXPLAIN the current plan),
    // and still warm the cache at the baseline point.
    const Result<opt::Optimized> initial =
        optimizer.Optimize(query, out.baseline);
    if (!initial.ok()) return initial.status();
    out.initial_plan_id = initial->plan->id;
    out.initial_usage = initial->plan->usage;
    oracle.Optimize(out.baseline);
  }

  // Discover candidate optimal plans over the widest error band; plan
  // sets for narrower bands are subsets, so one discovery serves every
  // delta (usage vectors are box-independent).
  const double delta_max = options_.deltas.back();
  const core::Box box = core::Box::MultiplicativeBand(out.baseline, delta_max);
  Rng rng(options_.seed);
  core::DiscoveryOptions discovery = options_.discovery;
  discovery.pool = &pool();
  Result<core::DiscoveryResult> d =
      core::DiscoverCandidatePlans(oracle, box, rng, discovery);
  if (!d.ok()) return d.status();
  for (core::DiscoveredPlan& dp : d->plans) {
    out.candidate_plans.push_back(std::move(dp.plan));
  }
  out.oracle_calls = narrow.calls();
  out.discovery_complete = d->complete;
  const runtime::OracleCacheStats cache = oracle.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  stack.PublishToStore();
  return out;
}

Result<QueryAnalysis> FigureRunner::AnalyzeResilient(
    const query::Query& query, const opt::Optimizer& optimizer,
    runtime::OracleStack& stack, blackbox::NarrowOptimizer& narrow,
    QueryAnalysis out) const {
  // The builder put the fault tier above the cache (see oracle_stack.h),
  // so retries cost no optimizer invocations and the cache only ever
  // holds clean replies.
  core::FalliblePlanOracle& resilient = *stack.resilient();

  // Degraded probe points this driver skipped or routed to a fallback;
  // reconciled against the oracle- and injector-side counts below.
  size_t degraded_points = 0;

  // The initial plan. If the resilient probe fails even after retries, the
  // analysis still proceeds: the in-process optimizer answers directly
  // (the DBA can always EXPLAIN the current plan) and the point is
  // accounted as degraded rather than fatal.
  if (options_.white_box) {
    Result<core::OracleResult> initial = resilient.TryOptimize(out.baseline);
    if (initial.ok()) {
      if (!initial->usage.has_value()) {
        return Status::Internal("white-box oracle did not reveal usage");
      }
      out.initial_plan_id = initial->plan_id;
      out.initial_usage = *initial->usage;
    } else {
      ++degraded_points;
      const Result<opt::Optimized> direct =
          optimizer.Optimize(query, out.baseline);
      if (!direct.ok()) return direct.status();
      out.initial_plan_id = direct->plan->id;
      out.initial_usage = direct->plan->usage;
    }
  } else {
    const Result<opt::Optimized> initial =
        optimizer.Optimize(query, out.baseline);
    if (!initial.ok()) return initial.status();
    out.initial_plan_id = initial->plan->id;
    out.initial_usage = initial->plan->usage;
    // Warm the cache at the baseline point as the fault-free path does; a
    // failure here just forfeits the warm-up.
    if (!resilient.TryOptimize(out.baseline).ok()) ++degraded_points;
  }

  const double delta_max = options_.deltas.back();
  const core::Box box = core::Box::MultiplicativeBand(out.baseline, delta_max);
  Rng rng(options_.seed);
  core::DiscoveryOptions discovery = options_.discovery;
  discovery.pool = &pool();
  Result<core::DiscoveryResult> d =
      core::DiscoverCandidatePlans(resilient, box, rng, discovery);
  if (!d.ok()) return d.status();
  for (core::DiscoveredPlan& dp : d->plans) {
    out.candidate_plans.push_back(std::move(dp.plan));
  }
  out.oracle_calls = narrow.calls();
  out.discovery_complete = d->complete;
  degraded_points += d->failed_probes;

  const runtime::StackTelemetry telemetry = stack.telemetry();
  out.cache_hits = telemetry.cache.hits;
  out.cache_misses = telemetry.cache.misses;
  out.oracle_probe_calls = telemetry.resilience.calls;
  out.oracle_attempts = telemetry.resilience.attempts;
  out.oracle_retries = telemetry.resilience.retries;
  out.oracle_failures = telemetry.resilience.failures;
  out.faults_injected = telemetry.faults.faults;
  out.degraded_points = degraded_points;
  out.probe_coverage =
      telemetry.resilience.calls == 0
          ? 1.0
          : static_cast<double>(telemetry.resilience.calls -
                                telemetry.resilience.failures) /
                static_cast<double>(telemetry.resilience.calls);
  return out;
}

std::vector<Result<QueryAnalysis>> FigureRunner::AnalyzeMany(
    const std::vector<query::Query>& queries,
    storage::LayoutPolicy policy) const {
  return pool().ParallelMap(
      queries, [&](size_t, const query::Query& q) -> Result<QueryAnalysis> {
        return Analyze(q, policy);
      });
}

Result<FigureSeries> FigureRunner::GtcSeries(
    const QueryAnalysis& analysis) const {
  FigureSeries series;
  series.query_name = analysis.query_name;
  series.num_candidate_plans = analysis.candidate_plans.size();
  series.constant_bound =
      core::WorstCaseConstantBound(analysis.candidate_plans);
  series.has_complementary_plans = std::isinf(series.constant_bound);

  // The per-delta analyses are independent, so fan them out across the
  // pool (each one's per-rival LPs nest onto the same pool) and reduce in
  // delta order afterwards — the emitted series is byte-identical to the
  // serial loop at any thread count.
  const std::vector<double>& deltas = options_.deltas;
  std::vector<std::optional<Result<core::WorstCaseResult>>> slots(
      deltas.size());
  const Status pool_status =
      runtime::ForEachIndex(&pool(), deltas.size(), [&](size_t i) {
        const core::Box box =
            core::Box::MultiplicativeBand(analysis.baseline, deltas[i]);
        Result<core::WorstCaseResult> wc = core::WorstCaseOverPlansByLp(
            analysis.initial_usage, analysis.candidate_plans, box, &pool());
        slots[i].emplace(std::move(wc));
        return Status::Ok();
      });
  COSTSENSE_CHECK(pool_status.ok());  // bodies always return Ok
  for (size_t i = 0; i < deltas.size(); ++i) {
    const Result<core::WorstCaseResult>& wc = *slots[i];
    if (!wc.ok()) return wc.status();
    GtcPoint p;
    p.delta = deltas[i];
    p.gtc = wc->gtc;
    p.worst_rival = wc->worst_rival;
    series.points.push_back(std::move(p));
  }
  return series;
}

core::ComplementarityReport FigureRunner::Complementarity(
    const QueryAnalysis& analysis) const {
  return core::AnalyzePlanSet(analysis.candidate_plans, analysis.dim_info);
}

}  // namespace costsense::exp
