#include "exp/figure_runner.h"

#include <cmath>

#include "blackbox/narrow_optimizer.h"
#include "core/bounds.h"
#include "core/worst_case.h"
#include "opt/optimizer.h"

namespace costsense::exp {

FigureRunner::FigureRunner(const catalog::Catalog& catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {}

Result<QueryAnalysis> FigureRunner::Analyze(
    const query::Query& query, storage::LayoutPolicy policy) const {
  const storage::StorageLayout layout(policy, catalog_,
                                      query::ReferencedTables(query));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(catalog_, layout, space);
  blackbox::NarrowOptimizer oracle(optimizer, query, options_.white_box);

  QueryAnalysis out;
  out.query_name = query.name;
  out.policy = policy;
  out.dims = space.dims();
  out.baseline = space.BaselineCosts();
  out.dim_info = space.dim_info();

  // The initial plan: optimal at the (estimated) baseline costs, i.e. the
  // plan a DBA gets by leaving DB2's defaults in place (Section 8.1).
  const Result<opt::Optimized> initial =
      optimizer.Optimize(query, out.baseline);
  if (!initial.ok()) return initial.status();
  out.initial_plan_id = initial->plan->id;
  out.initial_usage = initial->plan->usage;

  // Discover candidate optimal plans over the widest error band; plan
  // sets for narrower bands are subsets, so one discovery serves every
  // delta (usage vectors are box-independent).
  const double delta_max = options_.deltas.back();
  const core::Box box = core::Box::MultiplicativeBand(out.baseline, delta_max);
  Rng rng(options_.seed);
  Result<core::DiscoveryResult> d =
      core::DiscoverCandidatePlans(oracle, box, rng, options_.discovery);
  if (!d.ok()) return d.status();
  for (core::DiscoveredPlan& dp : d->plans) {
    out.candidate_plans.push_back(std::move(dp.plan));
  }
  out.oracle_calls = oracle.calls();
  out.discovery_complete = d->complete;
  return out;
}

Result<FigureSeries> FigureRunner::GtcSeries(
    const QueryAnalysis& analysis) const {
  FigureSeries series;
  series.query_name = analysis.query_name;
  series.num_candidate_plans = analysis.candidate_plans.size();
  series.constant_bound =
      core::WorstCaseConstantBound(analysis.candidate_plans);
  series.has_complementary_plans = std::isinf(series.constant_bound);

  for (double delta : options_.deltas) {
    const core::Box box =
        core::Box::MultiplicativeBand(analysis.baseline, delta);
    Result<core::WorstCaseResult> wc = core::WorstCaseOverPlansByLp(
        analysis.initial_usage, analysis.candidate_plans, box);
    if (!wc.ok()) return wc.status();
    GtcPoint p;
    p.delta = delta;
    p.gtc = wc->gtc;
    p.worst_rival = wc->worst_rival;
    series.points.push_back(std::move(p));
  }
  return series;
}

core::ComplementarityReport FigureRunner::Complementarity(
    const QueryAnalysis& analysis) const {
  return core::AnalyzePlanSet(analysis.candidate_plans, analysis.dim_info);
}

}  // namespace costsense::exp
