#ifndef COSTSENSE_EXP_FIGURE_RUNNER_H_
#define COSTSENSE_EXP_FIGURE_RUNNER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/complementarity.h"
#include "core/discovery.h"
#include "core/vectors.h"
#include "runtime/oracle_stack.h"
#include "query/query.h"
#include "runtime/cache_store.h"
#include "runtime/oracle_cache.h"
#include "runtime/resilience/fault_injector.h"
#include "runtime/resilience/resilient_oracle.h"
#include "runtime/thread_pool.h"
#include "storage/layout.h"

namespace costsense::opt {
class Optimizer;
}  // namespace costsense::opt

namespace costsense::blackbox {
class NarrowOptimizer;
}  // namespace costsense::blackbox

namespace costsense::exp {

/// Everything learned about one (query, storage layout) pair: the initial
/// plan chosen at the DB2-default baseline costs and the candidate optimal
/// plan set over the widest feasible region — sufficient to evaluate the
/// worst-case curve at every delta by pure geometry afterwards.
struct QueryAnalysis {
  std::string query_name;
  storage::LayoutPolicy policy = storage::LayoutPolicy::kSharedDevice;
  size_t dims = 0;
  core::CostVector baseline;
  std::vector<core::DimInfo> dim_info;
  /// The paper's "initial query plan": optimal at the baseline costs.
  std::string initial_plan_id;
  core::UsageVector initial_usage;
  /// Candidate optimal plans discovered over the delta_max band.
  std::vector<core::PlanUsage> candidate_plans;
  /// Distinct optimizer invocations (cache misses reach the optimizer;
  /// hits do not).
  size_t oracle_calls = 0;
  bool discovery_complete = false;
  /// Memoizing-oracle effectiveness during this analysis.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Entries seeded from a persisted snapshot before the first probe (0
  /// on a cold start or when no store is attached).
  size_t cache_imported = 0;
  /// Resilience accounting (all zero when the resilience tier is off).
  /// Oracle-side view, from ResilientOracle: probe_calls are TryOptimize
  /// invocations, attempts includes retries; failures are calls that erred
  /// after the whole retry budget.
  size_t oracle_probe_calls = 0;
  size_t oracle_attempts = 0;
  size_t oracle_retries = 0;
  size_t oracle_failures = 0;
  /// Fault events the injector actually delivered (its own log).
  size_t faults_injected = 0;
  /// Driver-side view: probe points this analysis skipped or routed to a
  /// fallback because their oracle call failed. With a zero retry budget
  /// each injected fault surfaces as exactly one degraded point, so
  /// degraded_points == oracle_failures == faults_injected.
  size_t degraded_points = 0;
  /// Fraction of resilient oracle calls that produced a usable reply; 1.0
  /// marks a full-coverage (non-degraded) analysis.
  double probe_coverage = 1.0;
};

/// One point of a worst-case curve (paper Figures 5-7): at error level
/// `delta`, the initial plan can be `gtc` times costlier than optimal.
struct GtcPoint {
  double delta = 1.0;
  double gtc = 1.0;
  std::string worst_rival;
};

/// A full curve for one query.
struct FigureSeries {
  std::string query_name;
  std::vector<GtcPoint> points;
  /// Theorem 2's constant bound over the candidate set (infinity when
  /// complementary plans exist and only the delta^2 law applies).
  double constant_bound = 0.0;
  size_t num_candidate_plans = 0;
  bool has_complementary_plans = false;
};

/// Drives the paper's worst-case experiments (Section 6.1 / Section 8.1):
/// per query and storage layout, find the initial plan at the DB2-default
/// baseline, discover the candidate optimal plans over the widest
/// multiplicative error band, and evaluate worst-case global relative cost
/// at each delta via the exact linear-fractional program.
///
/// Analyses fan out over a runtime::ThreadPool at two granularities —
/// across queries (AnalyzeMany) and within a query (discovery probes,
/// extraction, per-rival LPs) — and every optimizer call goes through a
/// sharded memoizing runtime::CachingOracle. Results are bit-identical
/// for any thread count, including 1 (the serial path).
class FigureRunner {
 public:
  struct Options {
    /// Error levels reported on the x-axis.
    std::vector<double> deltas = {2, 5, 10, 100, 1000, 10000};
    /// Plans are discovered once over the widest band (deltas.back()).
    bool white_box = true;
    uint64_t seed = 0x5eed;
    core::DiscoveryOptions discovery;
    /// Pool for per-query and per-probe fan-out; null uses the
    /// process-global pool (sized by runtime::GlobalThreadCount(), which
    /// engine::Engine::Create configures; 1 = serial).
    runtime::ThreadPool* pool = nullptr;
    /// Memoizing oracle cache applied around each per-query optimizer.
    runtime::OracleCacheOptions cache;
    /// Optional snapshot store (not owned; null = no persistence). Each
    /// per-query stack imports the scope "<query>/<layout>" before its
    /// first probe and publishes its cache back after a successful
    /// analysis; the owner decides when to CacheStore::Save(). Thread-safe
    /// for AnalyzeMany's fan-out. Warm analyses produce byte-identical
    /// content (imported results were computed at the same canonical
    /// points); only the hit/miss split moves.
    runtime::CacheStore* store = nullptr;
    /// Optional fault-injection + retry tier. When enabled the per-query
    /// runtime::OracleStack is built with its resilience tiers (see
    /// runtime/oracle_stack.h for the decorator order and why faults sit
    /// above the cache) and Analyze degrades gracefully instead of
    /// failing: probes the stack cannot answer are skipped and accounted
    /// in the QueryAnalysis counters. With fault_rate 0, or any fault rate
    /// whose bursts the retry budget absorbs (max_retries > max_burst),
    /// analysis content is byte-identical to the tier being off.
    struct Resilience {
      bool enabled = false;
      runtime::resilience::FaultInjectionOptions faults;
      runtime::resilience::ResilientOracleOptions retry;
      /// Clock for latency faults, backoff and deadlines; null = real
      /// steady clock (tests inject a ManualClock).
      runtime::resilience::Clock* clock = nullptr;
    };
    Resilience resilience;
  };

  FigureRunner(const catalog::Catalog& catalog, Options options);

  /// Discovers plans and the initial plan for one query under `policy`.
  [[nodiscard]] Result<QueryAnalysis> Analyze(const query::Query& query,
                                storage::LayoutPolicy policy) const;

  /// Analyzes every query concurrently (one task per query, each of which
  /// fans out further). Results arrive in input order; a failed analysis
  /// occupies its slot as an error Result so callers can report and skip.
  std::vector<Result<QueryAnalysis>> AnalyzeMany(
      const std::vector<query::Query>& queries,
      storage::LayoutPolicy policy) const;

  /// Evaluates the worst-case curve from an analysis (pure geometry; no
  /// further optimizer calls). Per-rival fractional programs fan out over
  /// the pool.
  [[nodiscard]] Result<FigureSeries> GtcSeries(const QueryAnalysis& analysis) const;

  /// Section 8.2's census of the candidate plan set.
  core::ComplementarityReport Complementarity(
      const QueryAnalysis& analysis) const;

  const Options& options() const { return options_; }

 private:
  runtime::ThreadPool& pool() const;

  /// The fault-tolerant variant of Analyze's probing phase, used when
  /// options_.resilience.enabled: probes through the stack's resilient
  /// tier, degrades per-point instead of failing, and fills the
  /// resilience counters from the stack telemetry. `out` arrives with the
  /// layout fields populated.
  [[nodiscard]] Result<QueryAnalysis> AnalyzeResilient(const query::Query& query,
                                         const opt::Optimizer& optimizer,
                                         runtime::OracleStack& stack,
                                         blackbox::NarrowOptimizer& narrow,
                                         QueryAnalysis out) const;

  const catalog::Catalog& catalog_;
  Options options_;
};

}  // namespace costsense::exp

#endif  // COSTSENSE_EXP_FIGURE_RUNNER_H_
