#include "exp/plan_map.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace costsense::exp {

namespace {

std::vector<double> LogSpace(double lo, double hi, size_t n) {
  std::vector<double> out(n);
  if (n == 1 || lo == hi) {
    out.assign(n, lo);
    return out;
  }
  const double step = (std::log(hi) - std::log(lo)) /
                      static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::exp(std::log(lo) + step * static_cast<double>(i));
  }
  return out;
}

}  // namespace

Result<PlanMap> ComputePlanMap(core::PlanOracle& oracle, const core::Box& box,
                               size_t dim_x, size_t dim_y,
                               size_t resolution) {
  if (dim_x >= box.dims() || dim_y >= box.dims() || dim_x == dim_y) {
    return Status::InvalidArgument("invalid plan-map dimensions");
  }
  if (resolution < 2) {
    return Status::InvalidArgument("resolution must be at least 2");
  }
  if (oracle.dims() != box.dims()) {
    return Status::InvalidArgument("oracle and box dimensions differ");
  }

  PlanMap map;
  map.dim_x = dim_x;
  map.dim_y = dim_y;
  map.resolution = resolution;
  map.x_values = LogSpace(box.lower()[dim_x], box.upper()[dim_x], resolution);
  map.y_values = LogSpace(box.lower()[dim_y], box.upper()[dim_y], resolution);
  map.cells.resize(resolution * resolution, -1);

  core::CostVector c = box.Center();
  for (size_t iy = 0; iy < resolution; ++iy) {
    c[dim_y] = map.y_values[iy];
    for (size_t ix = 0; ix < resolution; ++ix) {
      c[dim_x] = map.x_values[ix];
      const core::OracleResult r = oracle.Optimize(c);
      auto it =
          std::find(map.plan_ids.begin(), map.plan_ids.end(), r.plan_id);
      int idx;
      if (it == map.plan_ids.end()) {
        idx = static_cast<int>(map.plan_ids.size());
        map.plan_ids.push_back(r.plan_id);
      } else {
        idx = static_cast<int>(it - map.plan_ids.begin());
      }
      map.cells[iy * resolution + ix] = idx;
    }
  }
  return map;
}

std::string RenderPlanMap(const PlanMap& map, const std::string& x_label,
                          const std::string& y_label) {
  static const char kGlyphs[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  const size_t n_glyphs = sizeof(kGlyphs) - 1;

  std::string out =
      StrFormat("plan map: x = %s, y = %s (log-log, y grows upward)\n",
                x_label.c_str(), y_label.c_str());
  for (size_t row = map.resolution; row-- > 0;) {
    out += "  ";
    for (size_t ix = 0; ix < map.resolution; ++ix) {
      const int idx = map.cell(ix, row);
      out += idx < 0 ? '?' : kGlyphs[static_cast<size_t>(idx) % n_glyphs];
    }
    out += "\n";
  }
  out += "legend:\n";
  for (size_t i = 0; i < map.plan_ids.size(); ++i) {
    out += StrFormat("  %c = %.90s\n", kGlyphs[i % n_glyphs],
                     map.plan_ids[i].c_str());
  }
  return out;
}

}  // namespace costsense::exp
