#ifndef COSTSENSE_EXP_PLAN_MAP_H_
#define COSTSENSE_EXP_PLAN_MAP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "core/oracle.h"

namespace costsense::exp {

/// A 2-D raster of the optimizer's regions of influence: a plan diagram in
/// the parametric-query-optimization tradition, and a direct visualization
/// of the paper's Figure 4 (cone-shaped regions separated by switchover
/// planes). Two resource dimensions sweep log-uniformly across the
/// feasible box; all other dimensions stay at the box center.
struct PlanMap {
  size_t dim_x = 0;
  size_t dim_y = 0;
  size_t resolution = 0;
  /// cell(ix, iy) = index into `plan_ids` of the optimal plan there; x is
  /// the fast axis.
  std::vector<int> cells;
  std::vector<std::string> plan_ids;
  /// Axis sample values (log-spaced), size `resolution` each.
  std::vector<double> x_values;
  std::vector<double> y_values;

  int cell(size_t ix, size_t iy) const { return cells[iy * resolution + ix]; }
};

/// Rasterizes the plan map by querying `oracle` at resolution^2 points.
[[nodiscard]] Result<PlanMap> ComputePlanMap(core::PlanOracle& oracle, const core::Box& box,
                               size_t dim_x, size_t dim_y,
                               size_t resolution = 24);

/// Renders the map as ASCII art: one letter per distinct plan, plus a
/// legend mapping letters to plan ids.
std::string RenderPlanMap(const PlanMap& map, const std::string& x_label,
                          const std::string& y_label);

}  // namespace costsense::exp

#endif  // COSTSENSE_EXP_PLAN_MAP_H_
