#include "exp/report.h"

#include <cmath>

#include "common/strings.h"

namespace costsense::exp {

std::string RenderFigureTable(const std::string& title,
                              const std::vector<FigureSeries>& series) {
  std::string out = title + "\n";
  if (series.empty()) return out;
  out += StrFormat("%-6s %6s %5s %6s |", "query", "plans", "compl", "bound");
  for (const GtcPoint& p : series[0].points) {
    out += StrFormat(" d=%-8s", FormatDouble(p.delta).c_str());
  }
  out += "\n";
  for (const FigureSeries& s : series) {
    out += StrFormat(
        "%-6s %6zu %5s %6s |", s.query_name.c_str(), s.num_candidate_plans,
        s.has_complementary_plans ? "yes" : "no",
        std::isinf(s.constant_bound) ? "inf"
                                     : FormatDouble(s.constant_bound).c_str());
    for (const GtcPoint& p : s.points) {
      out += StrFormat(" %-10s", FormatDouble(p.gtc).c_str());
    }
    out += "\n";
  }
  return out;
}

std::string RenderFigureCsv(const std::vector<FigureSeries>& series) {
  std::string out = "query,delta,worst_case_gtc,worst_rival\n";
  for (const FigureSeries& s : series) {
    for (const GtcPoint& p : s.points) {
      out += StrFormat("%s,%s,%s,\"%s\"\n", s.query_name.c_str(),
                       FormatDouble(p.delta).c_str(),
                       FormatDouble(p.gtc).c_str(), p.worst_rival.c_str());
    }
  }
  return out;
}

std::string RenderComplementarityTable(
    const std::string& title,
    const std::vector<std::pair<std::string, core::ComplementarityReport>>&
        rows) {
  std::string out = title + "\n";
  out += StrFormat("%-6s %6s %6s %6s %6s %6s %6s\n", "query", "pairs",
                   "compl", "table", "path", "temp", "near");
  for (const auto& [name, r] : rows) {
    out += StrFormat("%-6s %6zu %6zu %6zu %6zu %6zu %6zu\n", name.c_str(),
                     r.num_pairs, r.num_complementary, r.num_table,
                     r.num_access_path, r.num_temp, r.num_near_complementary);
  }
  return out;
}

std::vector<int> QuickQueryNumbers() { return {1, 8, 11, 16, 19, 20}; }

}  // namespace costsense::exp
