#ifndef COSTSENSE_EXP_REPORT_H_
#define COSTSENSE_EXP_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/complementarity.h"
#include "exp/figure_runner.h"

namespace costsense::exp {

/// Renders a figure's series as a fixed-width table: one row per query,
/// one column per delta, values are worst-case global relative cost —
/// the data behind the paper's Figures 5-7 (each line of those log-scale
/// plots is one row here).
std::string RenderFigureTable(const std::string& title,
                              const std::vector<FigureSeries>& series);

/// Renders the same data as CSV (query, delta, gtc, worst_rival).
std::string RenderFigureCsv(const std::vector<FigureSeries>& series);

/// Renders the Section 8.2 complementarity census for one layout.
std::string RenderComplementarityTable(
    const std::string& title,
    const std::vector<std::pair<std::string, core::ComplementarityReport>>&
        rows);

/// The query numbers exercised in quick mode (the paper's highlighted
/// queries: 1, 8, 11, 16, 19, 20). Quick mode itself is an engine
/// setting — EngineConfig::quick, from COSTSENSE_QUICK — threaded to
/// benches as a parameter; report stays env-free.
std::vector<int> QuickQueryNumbers();

}  // namespace costsense::exp

#endif  // COSTSENSE_EXP_REPORT_H_
