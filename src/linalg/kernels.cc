#include "linalg/kernels.h"

#include "common/macros.h"

namespace costsense::linalg {

double DotRaw(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void Axpy(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void MatVecRowMajor(const double* a, size_t rows, size_t cols,
                    const double* x, double* out) {
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* a0 = a + (r + 0) * cols;
    const double* a1 = a + (r + 1) * cols;
    const double* a2 = a + (r + 2) * cols;
    const double* a3 = a + (r + 3) * cols;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      const double xj = x[j];
      s0 += a0[j] * xj;
      s1 += a1[j] * xj;
      s2 += a2[j] * xj;
      s3 += a3[j] * xj;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows; ++r) {
    out[r] = DotRaw(a + r * cols, x, cols);
  }
}

namespace {

inline double Min4(double m0, double m1, double m2, double m3) {
  const double a = m0 < m1 ? m0 : m1;
  const double b = m2 < m3 ? m2 : m3;
  return a < b ? a : b;
}

}  // namespace

double AxpyMin(size_t n, double alpha, const double* x, double* y) {
  COSTSENSE_CHECK(n > 0);
  double m0 = y[0] + alpha * x[0];
  y[0] = m0;
  double m1 = m0, m2 = m0, m3 = m0;
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const double v0 = y[i + 0] + alpha * x[i + 0];
    const double v1 = y[i + 1] + alpha * x[i + 1];
    const double v2 = y[i + 2] + alpha * x[i + 2];
    const double v3 = y[i + 3] + alpha * x[i + 3];
    y[i + 0] = v0;
    y[i + 1] = v1;
    y[i + 2] = v2;
    y[i + 3] = v3;
    m0 = v0 < m0 ? v0 : m0;
    m1 = v1 < m1 ? v1 : m1;
    m2 = v2 < m2 ? v2 : m2;
    m3 = v3 < m3 ? v3 : m3;
  }
  for (; i < n; ++i) {
    const double v = y[i] + alpha * x[i];
    y[i] = v;
    m0 = v < m0 ? v : m0;
  }
  return Min4(m0, m1, m2, m3);
}

double MinValue(const double* x, size_t n) {
  COSTSENSE_CHECK(n > 0);
  double m0 = x[0], m1 = x[0], m2 = x[0], m3 = x[0];
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    m0 = x[i + 0] < m0 ? x[i + 0] : m0;
    m1 = x[i + 1] < m1 ? x[i + 1] : m1;
    m2 = x[i + 2] < m2 ? x[i + 2] : m2;
    m3 = x[i + 3] < m3 ? x[i + 3] : m3;
  }
  for (; i < n; ++i) {
    m0 = x[i] < m0 ? x[i] : m0;
  }
  return Min4(m0, m1, m2, m3);
}

size_t ArgMin(const double* x, size_t n) {
  COSTSENSE_CHECK(n > 0);
  size_t best = 0;
  double best_value = x[0];
  for (size_t i = 1; i < n; ++i) {
    if (x[i] < best_value) {
      best_value = x[i];
      best = i;
    }
  }
  return best;
}

}  // namespace costsense::linalg
