#ifndef COSTSENSE_LINALG_KERNELS_H_
#define COSTSENSE_LINALG_KERNELS_H_

#include <cstddef>

namespace costsense::linalg {

/// Low-level dense kernels over raw double buffers, used by the batched
/// plan-cost layer (core::PlanMatrix) and the Gray-code vertex sweeps.
///
/// Bit-compatibility contract: every kernel that reduces along a vector
/// accumulates strictly left to right, the same order as Dot(). Batched
/// results are therefore bit-identical to the one-vector-at-a-time code
/// they replace; the speedup comes from contiguous storage, shared loads
/// and the removal of per-call allocation, not from reassociation.

/// Dot product over raw buffers; identical rounding to Dot(Vector, Vector).
double DotRaw(const double* a, const double* b, size_t n);

/// y[i] += alpha * x[i] for i in [0, n). Element-wise (no reduction), so it
/// vectorizes freely without changing any result bit.
void Axpy(size_t n, double alpha, const double* x, double* y);

/// out[r] = A[r] . x for a row-major matrix A of shape rows x cols. Rows
/// are processed in blocks of four that share each x[j] load; each row's
/// accumulation stays left-to-right (bit-identical to DotRaw per row).
void MatVecRowMajor(const double* a, size_t rows, size_t cols,
                    const double* x, double* out);

/// Axpy and a min-reduction fused into one pass: updates y and returns its
/// new smallest element. The updated values are bit-identical to Axpy's;
/// the minimum is reduced over four independent lanes, which is still the
/// exact min (min is associative and commutative) but breaks the
/// loop-carried compare dependency that an index-tracking scan would pin
/// to one element per cycle. n must be positive.
double AxpyMin(size_t n, double alpha, const double* x, double* y);

/// Smallest element of x, same four-lane reduction as AxpyMin. n must be
/// positive.
double MinValue(const double* x, size_t n);

/// Index of the smallest element, lowest index on ties — the same winner a
/// serial first-strictly-less scan selects. n must be positive.
size_t ArgMin(const double* x, size_t n);

}  // namespace costsense::linalg

#endif  // COSTSENSE_LINALG_KERNELS_H_
