#include "linalg/least_squares.h"

#include <cmath>

namespace costsense::linalg {

Result<Vector> LeastSquares(const Matrix& c, const Vector& t) {
  if (c.rows() < c.cols()) {
    return Status::FailedPrecondition(
        "least squares needs at least as many samples as unknowns");
  }
  if (c.rows() != t.size()) {
    return Status::InvalidArgument("row count of C must match size of t");
  }
  const Matrix ct = c.Transposed();
  const Matrix normal = ct.Multiply(c);      // C^T C  (n x n)
  const Vector rhs = ct.Multiply(t);         // C^T t  (n)
  Result<Matrix> inv = Invert(normal);
  if (!inv.ok()) {
    return Status::FailedPrecondition(
        "C^T C is singular; cost-vector samples are not independent");
  }
  return inv.value().Multiply(rhs);
}

Result<Vector> NonNegativeLeastSquares(const Matrix& c, const Vector& t,
                                       double clamp_tol) {
  Result<Vector> fit = LeastSquares(c, t);
  if (!fit.ok()) return fit;
  Vector x = std::move(fit).value();
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0.0 && x[i] > -clamp_tol) x[i] = 0.0;
  }
  return x;
}

double RelativeResidual(const Matrix& c, const Vector& x, const Vector& t) {
  double sum_sq = 0.0;
  size_t count = 0;
  for (size_t r = 0; r < c.rows(); ++r) {
    if (t[r] == 0.0) continue;
    double pred = 0.0;
    for (size_t j = 0; j < c.cols(); ++j) pred += c(r, j) * x[j];
    const double rel = (pred - t[r]) / t[r];
    sum_sq += rel * rel;
    ++count;
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum_sq / static_cast<double>(count));
}

}  // namespace costsense::linalg
