#ifndef COSTSENSE_LINALG_LEAST_SQUARES_H_
#define COSTSENSE_LINALG_LEAST_SQUARES_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace costsense::linalg {

/// Solves the overdetermined system C x ~= t in the least-squares sense via
/// the normal equations  x = (C^T C)^{-1} C^T t, using Gaussian elimination
/// for the inverse — exactly the estimator of paper Section 6.1.1, where C's
/// rows are resource cost vectors and t holds the optimizer-reported total
/// costs of one plan, so that x recovers the plan's resource usage vector.
///
/// Requires rows(C) >= cols(C) and C of full column rank; otherwise returns
/// FailedPrecondition.
[[nodiscard]] Result<Vector> LeastSquares(const Matrix& c, const Vector& t);

/// Like LeastSquares, but additionally clamps slightly-negative components
/// of the solution to zero. Resource usage is physically non-negative; small
/// negative values arise from quantization noise in the observed costs
/// (paper Section 6.1.1 compensates by oversampling, m >= 2n).
[[nodiscard]] Result<Vector> NonNegativeLeastSquares(const Matrix& c, const Vector& t,
                                       double clamp_tol);

/// Root-mean-square relative residual of a least-squares fit:
/// sqrt(mean_i ((C_i . x - t_i) / t_i)^2) over rows with t_i != 0. Used to
/// reproduce the paper's validation that extraction error is below 1%.
double RelativeResidual(const Matrix& c, const Vector& x, const Vector& t);

}  // namespace costsense::linalg

#endif  // COSTSENSE_LINALG_LEAST_SQUARES_H_
