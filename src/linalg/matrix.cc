#include "linalg/matrix.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace costsense::linalg {

namespace {
constexpr double kSingularTol = 1e-12;
}  // namespace

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    COSTSENSE_CHECK(rows[r].size() == m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  COSTSENSE_CHECK(r < rows_);
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::Multiply(const Vector& x) const {
  COSTSENSE_CHECK(x.size() == cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    out[r] = s;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  COSTSENSE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += Row(r).ToString();
    out += "\n";
  }
  return out;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem requires a square A");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch between A and b");
  }
  const size_t n = a.rows();
  Matrix work = a;
  Vector rhs = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: move the largest-magnitude entry to the diagonal.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(work(r, col)) > std::fabs(work(pivot, col))) pivot = r;
    }
    if (std::fabs(work(pivot, col)) < kSingularTol) {
      return Status::FailedPrecondition("matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(work(pivot, c), work(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    const double inv = 1.0 / work(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double f = work(r, col) * inv;
      if (f == 0.0) continue;
      work(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) work(r, c) -= f * work(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  // Back substitution.
  Vector x(n);
  for (size_t ri = n; ri-- > 0;) {
    double s = rhs[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= work(ri, c) * x[c];
    x[ri] = s / work(ri, ri);
  }
  return x;
}

Result<Matrix> Invert(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Invert requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix work = a;
  Matrix inv = Matrix::Identity(n);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(work(r, col)) > std::fabs(work(pivot, col))) pivot = r;
    }
    if (std::fabs(work(pivot, col)) < kSingularTol) {
      return Status::FailedPrecondition("matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(work(pivot, c), work(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = 1.0 / work(col, col);
    for (size_t c = 0; c < n; ++c) {
      work(col, c) *= d;
      inv(col, c) *= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = work(r, col);
      if (f == 0.0) continue;
      for (size_t c = 0; c < n; ++c) {
        work(r, c) -= f * work(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

}  // namespace costsense::linalg
