#ifndef COSTSENSE_LINALG_MATRIX_H_
#define COSTSENSE_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/vector.h"

namespace costsense::linalg {

/// A dense row-major matrix of doubles.
///
/// Sized for the small systems this library solves: normal equations for
/// least-squares usage-vector estimation (paper Section 6.1.1, n <= a few
/// dozen resources) and simplex tableaus.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a `rows` x `cols` zero matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds a matrix whose rows are the given vectors (all equal length).
  static Matrix FromRows(const std::vector<Vector>& rows);
  /// Returns the `n` x `n` identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Returns row `r` as a Vector.
  Vector Row(size_t r) const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix-vector product (dimensions CHECKed).
  Vector Multiply(const Vector& x) const;

  /// Matrix-matrix product (dimensions CHECKed).
  Matrix Multiply(const Matrix& other) const;

  /// Renders rows one per line, for debugging.
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting (the method the paper cites for its least-squares solve).
/// Fails with InvalidArgument on shape mismatch and FailedPrecondition if A
/// is singular to working precision.
[[nodiscard]] Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Computes A^{-1} via Gauss-Jordan elimination. Fails if A is singular.
[[nodiscard]] Result<Matrix> Invert(const Matrix& a);

}  // namespace costsense::linalg

#endif  // COSTSENSE_LINALG_MATRIX_H_
