#include "linalg/simd_kernels.h"

#include "common/macros.h"
#include "linalg/kernels.h"

// Backend selection. COSTSENSE_SIMD (CMake option, default ON) compiles
// the explicit vector paths at all; within them, the AVX2 implementations
// are emitted with a per-function target attribute (no special compile
// flags, so the rest of the translation unit — and the portable fallback —
// still runs on any x86-64) and chosen at runtime via CPUID. The portable
// fallback uses std::experimental::simd where libstdc++ provides it, and
// degrades to the exact scalar kernels otherwise.
//
// This file is the one place raw intrinsics are permitted (lint rule R6).
#if defined(COSTSENSE_SIMD)
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define COSTSENSE_SIMD_X86 1
#endif
#if __has_include(<experimental/simd>)
#include <experimental/simd>
#define COSTSENSE_SIMD_STDX 1
#endif
#endif

namespace costsense::linalg {
namespace {

/// Cross-lane reduction in the exact comparison order of the scalar
/// kernels' Min4 (kernels.cc): the lane values here equal the scalar
/// code's four accumulators bit for bit, so reducing them in the same
/// order reproduces the scalar return value exactly, NaNs included.
inline double Min4(double m0, double m1, double m2, double m3) {
  const double a = m0 < m1 ? m0 : m1;
  const double b = m2 < m3 ? m2 : m3;
  return a < b ? a : b;
}

#if defined(COSTSENSE_SIMD_X86)

bool CpuHasAvx2() {
  // The screen-only dot/mat-vec paths use FMA, so the "avx2" backend
  // demands both features. Every AVX2-era x86 core ships FMA; a
  // hypothetical avx2-without-fma host just takes the portable path.
  static const bool has = __builtin_cpu_supports("avx2") != 0 &&
                          __builtin_cpu_supports("fma") != 0;
  return has;
}

// The bit-identical kernels (AxpyMin / AxpyScreen / MinValue) deliberately
// use separate multiply and add intrinsics: their target attribute enables
// only "avx2", so the compiler cannot contract them, and every lane
// computes y[i] + alpha * x[i] with exactly the scalar code's two
// roundings. The screen-only reductions (DotRaw / MatVecRowMajor) are
// estimates by contract — they reassociate anyway — so they DO fuse with
// FMA: a single rounding per term (error no worse than mul+add) and half
// the FP uops, which matters because the refresh mat-vec dominates
// certified segments. Loads are unaligned on purpose — PlanMatrix columns
// are arbitrary offsets into one heap buffer, and loadu on aligned data
// costs nothing on AVX2 hardware.

__attribute__((target("avx2,fma"))) double DotRawAvx2(const double* a,
                                                      const double* b,
                                                      size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

__attribute__((target("avx2,fma"))) void MatVecRowMajorAvx2(const double* a,
                                                            size_t rows,
                                                            size_t cols,
                                                            const double* x,
                                                            double* out) {
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* a0 = a + (r + 0) * cols;
    const double* a1 = a + (r + 1) * cols;
    const double* a2 = a + (r + 2) * cols;
    const double* a3 = a + (r + 3) * cols;
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const __m256d xv = _mm256_loadu_pd(x + j);
      s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + j), xv, s0);
      s1 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + j), xv, s1);
      s2 = _mm256_fmadd_pd(_mm256_loadu_pd(a2 + j), xv, s2);
      s3 = _mm256_fmadd_pd(_mm256_loadu_pd(a3 + j), xv, s3);
    }
    double l0[4], l1[4], l2[4], l3[4];
    _mm256_storeu_pd(l0, s0);
    _mm256_storeu_pd(l1, s1);
    _mm256_storeu_pd(l2, s2);
    _mm256_storeu_pd(l3, s3);
    double t0 = (l0[0] + l0[1]) + (l0[2] + l0[3]);
    double t1 = (l1[0] + l1[1]) + (l1[2] + l1[3]);
    double t2 = (l2[0] + l2[1]) + (l2[2] + l2[3]);
    double t3 = (l3[0] + l3[1]) + (l3[2] + l3[3]);
    for (; j < cols; ++j) {
      const double xj = x[j];
      t0 += a0[j] * xj;
      t1 += a1[j] * xj;
      t2 += a2[j] * xj;
      t3 += a3[j] * xj;
    }
    out[r + 0] = t0;
    out[r + 1] = t1;
    out[r + 2] = t2;
    out[r + 3] = t3;
  }
  for (; r < rows; ++r) {
    out[r] = DotRawAvx2(a + r * cols, x, cols);
  }
}

// Why widening the accumulator set preserves the scalar result: with the
// `v < m ? v : m` blend, a NaN candidate never displaces an accumulator,
// and an accumulator can only BE NaN if its seed was. Seed every
// accumulator lane with the same first element and the result is
// exactly "NaN if the first element is NaN, else the minimum of the
// first element and every non-NaN element" — independent of how the
// elements are partitioned across lanes, because min over the surviving
// candidates is associative and commutative. The scalar kernel's
// four-accumulator result is that same value, so any lane count and any
// reduction order of same-seeded accumulators reproduces it bit for bit,
// with one caveat: a minimum of zero has two encodings (+0.0 == -0.0
// compare equal, so which one survives a tie is partition-dependent) and
// may come back with the other sign. Every caller treats the returned
// minimum as a value (and a non-positive one as "go re-evaluate
// exactly"), so the sign of zero is unobservable — see the header.
// Four accumulator vectors (16 elements per iteration) break the
// loop-carried min_pd latency chain that a single vector would serialize
// on — that chain, not ALU width, is what bounds the scalar kernel too.

__attribute__((target("avx2"))) double AxpyMinAvx2(size_t n, double alpha,
                                                   const double* x,
                                                   double* y) {
  const double first = y[0] + alpha * x[0];
  y[0] = first;
  __m256d m0v = _mm256_set1_pd(first);
  __m256d m1v = m0v;
  __m256d m2v = m0v;
  __m256d m3v = m0v;
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 1;
  for (; i + 16 <= n; i += 16) {
    const __m256d v0 = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    const __m256d v1 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4)));
    const __m256d v2 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 8),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 8)));
    const __m256d v3 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 12),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 12)));
    _mm256_storeu_pd(y + i, v0);
    _mm256_storeu_pd(y + i + 4, v1);
    _mm256_storeu_pd(y + i + 8, v2);
    _mm256_storeu_pd(y + i + 12, v3);
    m0v = _mm256_min_pd(v0, m0v);
    m1v = _mm256_min_pd(v1, m1v);
    m2v = _mm256_min_pd(v2, m2v);
    m3v = _mm256_min_pd(v3, m3v);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_add_pd(_mm256_loadu_pd(y + i),
                                    _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, v);
    m0v = _mm256_min_pd(v, m0v);
  }
  const __m256d m =
      _mm256_min_pd(_mm256_min_pd(m0v, m1v), _mm256_min_pd(m2v, m3v));
  double lanes[4];
  _mm256_storeu_pd(lanes, m);
  double m0 = lanes[0];
  for (; i < n; ++i) {
    const double v = y[i] + alpha * x[i];
    y[i] = v;
    m0 = v < m0 ? v : m0;
  }
  return Min4(m0, lanes[1], lanes[2], lanes[3]);
}

__attribute__((target("avx2"))) bool AxpyScreenAvx2(size_t n, double alpha,
                                                    const double* x, double* y,
                                                    double init_cost,
                                                    double threshold) {
  // Same axpy body, accumulator discipline and reduction as AxpyMinAvx2 —
  // the minimum must be the scalar chain's exact value (a first-element
  // NaN masks every later candidate) or the verdict would diverge from
  // the formula on AxpyMin's return. Only the final screen comparison is
  // fused in; the one horizontal reduce per call is noise next to the
  // n-element axpy.
  const double first = y[0] + alpha * x[0];
  y[0] = first;
  __m256d m0v = _mm256_set1_pd(first);
  __m256d m1v = m0v;
  __m256d m2v = m0v;
  __m256d m3v = m0v;
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 1;
  for (; i + 16 <= n; i += 16) {
    const __m256d v0 = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    const __m256d v1 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4)));
    const __m256d v2 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 8),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 8)));
    const __m256d v3 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 12),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 12)));
    _mm256_storeu_pd(y + i, v0);
    _mm256_storeu_pd(y + i + 4, v1);
    _mm256_storeu_pd(y + i + 8, v2);
    _mm256_storeu_pd(y + i + 12, v3);
    m0v = _mm256_min_pd(v0, m0v);
    m1v = _mm256_min_pd(v1, m1v);
    m2v = _mm256_min_pd(v2, m2v);
    m3v = _mm256_min_pd(v3, m3v);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_add_pd(_mm256_loadu_pd(y + i),
                                    _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, v);
    m0v = _mm256_min_pd(v, m0v);
  }
  const __m256d m =
      _mm256_min_pd(_mm256_min_pd(m0v, m1v), _mm256_min_pd(m2v, m3v));
  double lanes[4];
  _mm256_storeu_pd(lanes, m);
  double m0 = lanes[0];
  for (; i < n; ++i) {
    const double v = y[i] + alpha * x[i];
    y[i] = v;
    m0 = v < m0 ? v : m0;
  }
  const double cheapest = Min4(m0, lanes[1], lanes[2], lanes[3]);
  return cheapest <= 0.0 || init_cost > threshold * cheapest;
}

__attribute__((target("avx2"))) double MinValueAvx2(const double* x,
                                                    size_t n) {
  __m256d m0v = _mm256_set1_pd(x[0]);
  __m256d m1v = m0v;
  __m256d m2v = m0v;
  __m256d m3v = m0v;
  size_t i = 1;
  for (; i + 16 <= n; i += 16) {
    m0v = _mm256_min_pd(_mm256_loadu_pd(x + i), m0v);
    m1v = _mm256_min_pd(_mm256_loadu_pd(x + i + 4), m1v);
    m2v = _mm256_min_pd(_mm256_loadu_pd(x + i + 8), m2v);
    m3v = _mm256_min_pd(_mm256_loadu_pd(x + i + 12), m3v);
  }
  for (; i + 4 <= n; i += 4) {
    m0v = _mm256_min_pd(_mm256_loadu_pd(x + i), m0v);
  }
  const __m256d m =
      _mm256_min_pd(_mm256_min_pd(m0v, m1v), _mm256_min_pd(m2v, m3v));
  double lanes[4];
  _mm256_storeu_pd(lanes, m);
  double m0 = lanes[0];
  for (; i < n; ++i) {
    m0 = x[i] < m0 ? x[i] : m0;
  }
  return Min4(m0, lanes[1], lanes[2], lanes[3]);
}

#else   // !COSTSENSE_SIMD_X86

bool CpuHasAvx2() { return false; }

#endif  // COSTSENSE_SIMD_X86

#if defined(COSTSENSE_SIMD_STDX)

namespace stdx = std::experimental;
using DoubleV = stdx::fixed_size_simd<double, 4>;

double DotRawStdx(const double* a, const double* b, size_t n) {
  DoubleV acc(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    DoubleV av(a + i, stdx::element_aligned);
    DoubleV bv(b + i, stdx::element_aligned);
    acc += av * bv;
  }
  double s = ((acc[0] + acc[1]) + (acc[2] + acc[3]));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void MatVecRowMajorStdx(const double* a, size_t rows, size_t cols,
                        const double* x, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = DotRawStdx(a + r * cols, x, cols);
  }
}

double AxpyMinStdx(size_t n, double alpha, const double* x, double* y) {
  // Same lane partition as the scalar kernel (see AxpyMinAvx2): the
  // element-wise multiply and add round exactly like the scalar
  // expression (this file is compiled with fp-contract off, so no FMA
  // fusion), and the where() blend is the scalar `v < m ? v : m`.
  const double first = y[0] + alpha * x[0];
  y[0] = first;
  DoubleV m(first);
  const DoubleV av(alpha);
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    DoubleV yv(y + i, stdx::element_aligned);
    DoubleV xv(x + i, stdx::element_aligned);
    const DoubleV t = av * xv;
    const DoubleV v = yv + t;
    v.copy_to(y + i, stdx::element_aligned);
    stdx::where(v < m, m) = v;
  }
  double m0 = m[0];
  for (; i < n; ++i) {
    const double v = y[i] + alpha * x[i];
    y[i] = v;
    m0 = v < m0 ? v : m0;
  }
  return Min4(m0, m[1], m[2], m[3]);
}

bool AxpyScreenStdx(size_t n, double alpha, const double* x, double* y,
                    double init_cost, double threshold) {
  const double first = y[0] + alpha * x[0];
  y[0] = first;
  DoubleV m(first);
  const DoubleV av(alpha);
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    DoubleV yv(y + i, stdx::element_aligned);
    DoubleV xv(x + i, stdx::element_aligned);
    const DoubleV t = av * xv;
    const DoubleV v = yv + t;
    v.copy_to(y + i, stdx::element_aligned);
    stdx::where(v < m, m) = v;
  }
  double m0 = m[0];
  for (; i < n; ++i) {
    const double v = y[i] + alpha * x[i];
    y[i] = v;
    m0 = v < m0 ? v : m0;
  }
  const double cheapest = Min4(m0, m[1], m[2], m[3]);
  return cheapest <= 0.0 || init_cost > threshold * cheapest;
}

double MinValueStdx(const double* x, size_t n) {
  DoubleV m(x[0]);
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    DoubleV xv(x + i, stdx::element_aligned);
    stdx::where(xv < m, m) = xv;
  }
  double m0 = m[0];
  for (; i < n; ++i) {
    m0 = x[i] < m0 ? x[i] : m0;
  }
  return Min4(m0, m[1], m[2], m[3]);
}

#endif  // COSTSENSE_SIMD_STDX

}  // namespace

bool SimdCompiledIn() {
#if defined(COSTSENSE_SIMD)
  return true;
#else
  return false;
#endif
}

bool SimdSweepAvailable() { return SimdCompiledIn() && CpuHasAvx2(); }

const char* SimdBackendName() {
  if (!SimdCompiledIn()) return "scalar";
  if (CpuHasAvx2()) return "avx2";
  return "portable";
}

double DotRawSimd(const double* a, const double* b, size_t n) {
#if defined(COSTSENSE_SIMD_X86)
  if (CpuHasAvx2()) return DotRawAvx2(a, b, n);
#endif
#if defined(COSTSENSE_SIMD_STDX)
  return DotRawStdx(a, b, n);
#else
  return DotRaw(a, b, n);
#endif
}

void MatVecRowMajorSimd(const double* a, size_t rows, size_t cols,
                        const double* x, double* out) {
#if defined(COSTSENSE_SIMD_X86)
  if (CpuHasAvx2()) {
    MatVecRowMajorAvx2(a, rows, cols, x, out);
    return;
  }
#endif
#if defined(COSTSENSE_SIMD_STDX)
  MatVecRowMajorStdx(a, rows, cols, x, out);
#else
  MatVecRowMajor(a, rows, cols, x, out);
#endif
}

double AxpyMinSimd(size_t n, double alpha, const double* x, double* y) {
  COSTSENSE_CHECK(n > 0);
#if defined(COSTSENSE_SIMD_X86)
  if (CpuHasAvx2()) return AxpyMinAvx2(n, alpha, x, y);
#endif
#if defined(COSTSENSE_SIMD_STDX)
  return AxpyMinStdx(n, alpha, x, y);
#else
  return AxpyMin(n, alpha, x, y);
#endif
}

bool AxpyScreenSimd(size_t n, double alpha, const double* x, double* y,
                    double init_cost, double threshold) {
  COSTSENSE_CHECK(n > 0);
#if defined(COSTSENSE_SIMD_X86)
  if (CpuHasAvx2()) {
    return AxpyScreenAvx2(n, alpha, x, y, init_cost, threshold);
  }
#endif
#if defined(COSTSENSE_SIMD_STDX)
  return AxpyScreenStdx(n, alpha, x, y, init_cost, threshold);
#else
  const double cheapest = AxpyMin(n, alpha, x, y);
  return cheapest <= 0.0 || init_cost > threshold * cheapest;
#endif
}

double MinValueSimd(const double* x, size_t n) {
  COSTSENSE_CHECK(n > 0);
#if defined(COSTSENSE_SIMD_X86)
  if (CpuHasAvx2()) return MinValueAvx2(x, n);
#endif
#if defined(COSTSENSE_SIMD_STDX)
  return MinValueStdx(x, n);
#else
  return MinValue(x, n);
#endif
}

}  // namespace costsense::linalg
