#ifndef COSTSENSE_LINALG_SIMD_KERNELS_H_
#define COSTSENSE_LINALG_SIMD_KERNELS_H_

#include <cstddef>

namespace costsense::linalg {

/// Explicitly vectorized twins of the kernels in linalg/kernels.h, behind
/// one runtime dispatch point. Raw intrinsics are confined to
/// src/linalg/simd* by lint rule R6; everything else calls through this
/// header.
///
/// Two result contracts coexist here, and each function names its own:
///
///  * AxpyMinSimd / MinValueSimd return the scalar twins' exact minimum
///    for every input, including NaN and infinities (element-wise
///    mul+add with no FMA contraction, `v < m ? v : m` lane blends with
///    the scalar NaN semantics; AxpyMinSimd's updated y[] values are
///    always bit-identical to AxpyMin's). The one representational
///    freedom: a minimum equal to zero may come back as the other
///    signed zero (+0.0 vs -0.0 compare equal, so tie survival is
///    partition-dependent). Callers compare the minimum as a value —
///    and both sweeps route any non-positive minimum to an exact
///    re-evaluation — so the two encodings are indistinguishable.
///  * DotRawSimd / MatVecRowMajorSimd reassociate the reduction across
///    lanes, so they are **estimates** (relative error ~n·eps for
///    same-signed terms). They may only feed *screening* decisions whose
///    winners are re-evaluated with the exact left-to-right scalar
///    kernels before any result is emitted — the established
///    exact-recheck pattern of the incremental sweep (DESIGN.md §5b/§5g).
///
/// Backend selection: when the library is compiled with COSTSENSE_SIMD
/// (the default) and the host CPU reports AVX2, the AVX2 paths run;
/// otherwise a portable std::experimental::simd implementation (or a
/// plain unrolled loop where that header is unavailable) serves the same
/// contracts. The sweep-kernel dispatcher additionally demands real AVX2
/// before it claims the `simd` backend — see SimdSweepAvailable().

/// True when the library was built with the COSTSENSE_SIMD CMake option
/// (explicit vector paths compiled in at all).
bool SimdCompiledIn();

/// True when SimdCompiledIn() and the host CPU supports AVX2 (runtime
/// CPUID check, cached). This is the gate `SweepKernel::kSimd` uses: on
/// hosts where it is false the sweep falls back to the incremental
/// kernel, because the portable path has no throughput edge over the
/// 4-way-unrolled scalar kernels.
bool SimdSweepAvailable();

/// Human-readable backend the dispatched calls will take: "avx2",
/// "portable", or "scalar" (COSTSENSE_SIMD off). Bench sidecars record it
/// so throughput numbers are comparable across machines.
const char* SimdBackendName();

/// Reassociated dot product (screen-only contract; see header comment).
double DotRawSimd(const double* a, const double* b, size_t n);

/// Reassociated row-major mat-vec, out[r] = A[r] . x (screen-only
/// contract). Same shape conventions as MatVecRowMajor.
void MatVecRowMajorSimd(const double* a, size_t rows, size_t cols,
                        const double* x, double* out);

/// Fused axpy + min: updated y[] values bit-identical to AxpyMin's, and
/// the same returned minimum for every input (up to the sign of a zero
/// minimum; see the header comment). n must be positive.
double AxpyMinSimd(size_t n, double alpha, const double* x, double* y);

/// One fused Gray-sweep screening step: updates y[i] += alpha * x[i]
/// (bit-identical to Axpy/AxpyMin) and returns the sweep's screen verdict
///
///   min(y') <= 0.0  ||  init_cost > threshold * min(y')
///
/// where min(y') is AxpyMin's exact return value — the minimum never
/// touches memory, but it is the full scalar-chain reduction, so the
/// decision equals evaluating the formula on AxpyMin's result for every
/// input: a NaN minimum never fires (both comparisons are false), and a
/// zero minimum fires through the <= 0 arm whatever its sign, so the
/// zero-sign freedom above is unobservable here too. n must be positive.
bool AxpyScreenSimd(size_t n, double alpha, const double* x, double* y,
                    double init_cost, double threshold);

/// Smallest element of x, same value as MinValue for every input (up to
/// the sign of a zero minimum). n must be positive.
double MinValueSimd(const double* x, size_t n);

}  // namespace costsense::linalg

#endif  // COSTSENSE_LINALG_SIMD_KERNELS_H_
