#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace costsense::linalg {

Vector& Vector::operator+=(const Vector& other) {
  COSTSENSE_CHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  COSTSENSE_CHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

Vector Vector::Hadamard(const Vector& other) const {
  COSTSENSE_CHECK(size() == other.size());
  Vector out(size());
  for (size_t i = 0; i < size(); ++i) out[i] = data_[i] * other.data_[i];
  return out;
}

double Vector::Norm() const { return std::sqrt(Dot(*this, *this)); }

double Vector::InfNorm() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Vector::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Vector::Max() const {
  COSTSENSE_CHECK(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::Min() const {
  COSTSENSE_CHECK(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

bool Vector::AllLessEqual(const Vector& other, double tol) const {
  COSTSENSE_CHECK(size() == other.size());
  for (size_t i = 0; i < size(); ++i) {
    if (data_[i] > other.data_[i] + tol) return false;
  }
  return true;
}

std::string Vector::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(size());
  for (double v : data_) parts.push_back(FormatDouble(v));
  return "[" + Join(parts, ", ") + "]";
}

double Dot(const Vector& a, const Vector& b) {
  COSTSENSE_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

bool ApproxEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace costsense::linalg
