#ifndef COSTSENSE_LINALG_VECTOR_H_
#define COSTSENSE_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace costsense::linalg {

/// A dense real vector. This is the representation of both resource *usage*
/// vectors U and resource *cost* vectors C in the paper's framework; the
/// plan-cost functional is the dot product T = U . C (paper Eq. 3).
class Vector {
 public:
  Vector() = default;
  /// Creates a zero vector of dimension `n`.
  explicit Vector(size_t n) : data_(n, 0.0) {}
  /// Creates a vector of dimension `n` filled with `value`.
  Vector(size_t n, double value) : data_(n, value) {}
  /// Creates a vector from a brace list: Vector v{1.0, 2.0}.
  Vector(std::initializer_list<double> values) : data_(values) {}
  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const std::vector<double>& data() const { return data_; }

  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Element-wise arithmetic. Dimensions must match (CHECKed).
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double k);

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(Vector a, double k) { return a *= k; }
  friend Vector operator*(double k, Vector a) { return a *= k; }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

  /// Returns the element-wise (Hadamard) product; used to apply a vector of
  /// multiplicative cost errors to a baseline cost vector.
  Vector Hadamard(const Vector& other) const;

  /// Euclidean norm.
  double Norm() const;
  /// Max-absolute-value norm.
  double InfNorm() const;
  /// Sum of elements.
  double Sum() const;
  /// Largest element value (requires non-empty).
  double Max() const;
  /// Smallest element value (requires non-empty).
  double Min() const;

  /// True if every element of this vector is <= the matching element of
  /// `other` plus `tol`.
  bool AllLessEqual(const Vector& other, double tol = 0.0) const;

  /// Renders "[a, b, c]" with compact doubles.
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

/// Dot product a . b; dimensions must match (CHECKed). This is the plan
/// total-cost functional of the paper (Eq. 3).
double Dot(const Vector& a, const Vector& b);

/// Returns true if |a_i - b_i| <= tol for all i (and sizes match).
bool ApproxEqual(const Vector& a, const Vector& b, double tol);

}  // namespace costsense::linalg

#endif  // COSTSENSE_LINALG_VECTOR_H_
