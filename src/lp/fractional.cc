#include "lp/fractional.h"

#include <cmath>

#include "linalg/vector.h"

namespace costsense::lp {

Result<FractionalSolution> MaximizeRatioOverBox(const linalg::Vector& a,
                                                const linalg::Vector& b,
                                                const linalg::Vector& lower,
                                                const linalg::Vector& upper) {
  const size_t n = a.size();
  if (b.size() != n || lower.size() != n || upper.size() != n) {
    return Status::InvalidArgument("dimension mismatch");
  }
  bool b_nonzero = false;
  for (size_t i = 0; i < n; ++i) {
    if (lower[i] <= 0.0) {
      return Status::InvalidArgument("box lower bounds must be positive");
    }
    if (upper[i] < lower[i]) {
      return Status::InvalidArgument("box upper bound below lower bound");
    }
    if (a[i] < 0.0 || b[i] < 0.0) {
      return Status::InvalidArgument("usage vectors must be non-negative");
    }
    if (b[i] > 0.0) b_nonzero = true;
  }
  if (!b_nonzero) {
    return Status::InvalidArgument("denominator vector is identically zero");
  }

  // Dinkelbach's algorithm, which is exact here: for a fixed ratio guess
  // lambda, the parametric problem max_x (a - lambda*b) . x over the box
  // separates per coordinate (x_i = upper_i where a_i > lambda*b_i, else
  // lower_i). Iterating lambda <- ratio(x) increases lambda monotonically
  // and terminates at the optimum in at most n+1 distinct vertices — and,
  // unlike a simplex tableau, it is immune to the 15-orders-of-magnitude
  // coefficient spread of real usage/cost vectors.
  linalg::Vector x = lower;
  double lambda = linalg::Dot(a, x) / linalg::Dot(b, x);
  for (int iter = 0; iter < 200; ++iter) {
    linalg::Vector next(n);
    for (size_t i = 0; i < n; ++i) {
      next[i] = (a[i] - lambda * b[i] > 0.0) ? upper[i] : lower[i];
    }
    const double denom = linalg::Dot(b, next);
    if (denom <= 0.0) break;  // numerator-only dims; lambda is unbounded
    const double next_lambda = linalg::Dot(a, next) / denom;
    if (next_lambda <= lambda * (1.0 + 1e-14)) break;
    lambda = next_lambda;
    x = std::move(next);
  }
  FractionalSolution out;
  out.value = lambda;
  out.x = std::move(x);
  return out;
}

}  // namespace costsense::lp
