#ifndef COSTSENSE_LP_FRACTIONAL_H_
#define COSTSENSE_LP_FRACTIONAL_H_

#include "common/status.h"
#include "linalg/vector.h"

namespace costsense::lp {

/// Result of a linear-fractional maximization.
struct FractionalSolution {
  /// Maximum value of (a.x)/(b.x) over the box.
  double value = 0.0;
  /// Arg max point (always a vertex of the box).
  linalg::Vector x;
};

/// Maximizes the ratio (a.x)/(b.x) over the axis-aligned box
/// lower <= x <= upper, exactly, via Dinkelbach's parametric algorithm
/// (each iteration solves max (a - lambda*b).x, which separates per
/// coordinate on a box; lambda increases monotonically to the optimum).
///
/// In the paper's terms: a and b are resource usage vectors of two plans
/// and the box is the feasible cost region, so the optimum is the exact
/// worst-case relative total cost T_rel(a, b, C) over all feasible C (the
/// quantity the paper maximizes by sweeping the 2^n box vertices, justified
/// by its Observation 2 — linear-fractional objectives attain their maximum
/// at a vertex). This route is polynomial in n, where the sweep stops
/// scaling around 20 resources.
///
/// Requirements: sizes match; lower > 0 element-wise (cost bounds are
/// positive); a, b >= 0 element-wise with b not identically zero.
[[nodiscard]] Result<FractionalSolution> MaximizeRatioOverBox(const linalg::Vector& a,
                                                const linalg::Vector& b,
                                                const linalg::Vector& lower,
                                                const linalg::Vector& upper);

}  // namespace costsense::lp

#endif  // COSTSENSE_LP_FRACTIONAL_H_
