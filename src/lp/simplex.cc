#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace costsense::lp {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau over the standard-form problem
///   maximize c.x  s.t.  A x = b,  x >= 0,  b >= 0,
/// with an explicit basis. Phase 1 uses artificial variables.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0), b_(rows, 0.0),
        basis_(rows, 0) {}

  double& At(size_t r, size_t c) { return a_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return a_[r * cols_ + c]; }
  double& Rhs(size_t r) { return b_[r]; }
  double Rhs(size_t r) const { return b_[r]; }
  size_t& Basis(size_t r) { return basis_[r]; }
  size_t Basis(size_t r) const { return basis_[r]; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pr, size_t pc) {
    const double inv = 1.0 / At(pr, pc);
    for (size_t c = 0; c < cols_; ++c) At(pr, c) *= inv;
    Rhs(pr) *= inv;
    At(pr, pc) = 1.0;  // kill roundoff on the pivot itself
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = At(r, pc);
      if (std::fabs(f) < kEps) {
        At(r, pc) = 0.0;
        continue;
      }
      for (size_t c = 0; c < cols_; ++c) At(r, c) -= f * At(pr, c);
      Rhs(r) -= f * Rhs(pr);
      At(r, pc) = 0.0;
    }
    Basis(pr) = pc;
  }

  /// Runs primal simplex on the objective `obj` (maximization), restricted
  /// to columns [0, usable_cols). Returns false if unbounded.
  bool Optimize(const std::vector<double>& obj, size_t usable_cols) {
    // Dantzig pricing (steepest reduced cost) for speed; after a generous
    // iteration budget switch to Bland's rule, which cannot cycle.
    const size_t bland_after = 4 * (rows_ + usable_cols) + 64;
    size_t iterations = 0;
    while (true) {
      const bool bland = ++iterations > bland_after;
      // Compute multipliers y implicitly: reduced cost of column j is
      // obj[j] - sum_r obj[basis_r] * a(r, j).
      size_t enter = usable_cols;
      double best_red = kEps;
      for (size_t j = 0; j < usable_cols; ++j) {
        double red = obj[j];
        for (size_t r = 0; r < rows_; ++r) {
          const double arj = At(r, j);
          if (arj != 0.0) red -= obj[basis_[r]] * arj;
        }
        if (red > best_red) {
          enter = j;
          if (bland) break;  // first improving column
          best_red = red;
        }
      }
      if (enter == usable_cols) return true;  // optimal

      // Ratio test; Bland tie-break on smallest basis index.
      size_t leave = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < rows_; ++r) {
        const double arj = At(r, enter);
        if (arj > kEps) {
          const double ratio = Rhs(r) / arj;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == rows_ || basis_[r] < basis_[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == rows_) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<size_t> basis_;
};

}  // namespace

Solution Solve(const Problem& problem) {
  const size_t n = problem.num_vars;
  COSTSENSE_CHECK(problem.objective.size() == n);
  const size_t m = problem.constraints.size();

  // Count extra columns: one slack/surplus per inequality, one artificial
  // per >= or = row (and per <= row with negative rhs after normalization).
  size_t num_slack = 0;
  for (const auto& con : problem.constraints) {
    COSTSENSE_CHECK(con.coeffs.size() == n);
    if (con.rel != Relation::kEqual) ++num_slack;
  }
  // Lay out columns as [x (n) | slack/surplus (num_slack) | artificial (m)].
  // Not every row needs an artificial, but reserving one per row keeps the
  // layout simple; unused ones just never enter the basis.
  const size_t art_base = n + num_slack;
  const size_t total_cols = art_base + m;

  Tableau t(m, total_cols);
  size_t slack_next = n;
  std::vector<bool> art_used(m, false);

  for (size_t r = 0; r < m; ++r) {
    const Constraint& con = problem.constraints[r];
    double sign = 1.0;
    double rhs = con.rhs;
    Relation rel = con.rel;
    if (rhs < 0.0) {
      // Normalize to non-negative rhs; flips the relation.
      sign = -1.0;
      rhs = -rhs;
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    for (size_t j = 0; j < n; ++j) t.At(r, j) = sign * con.coeffs[j];
    t.Rhs(r) = rhs;

    if (con.rel != Relation::kEqual) {
      const size_t sc = slack_next++;
      if (rel == Relation::kLessEqual) {
        t.At(r, sc) = 1.0;
        t.Basis(r) = sc;  // slack starts basic
        continue;
      }
      t.At(r, sc) = -1.0;  // surplus
    }
    // >= or = row: needs an artificial to form the initial basis.
    const size_t ac = art_base + r;
    t.At(r, ac) = 1.0;
    t.Basis(r) = ac;
    art_used[r] = true;
  }

  // Phase 1: maximize -(sum of artificials).
  bool any_artificial = false;
  for (bool u : art_used) any_artificial |= u;
  if (any_artificial) {
    std::vector<double> phase1(total_cols, 0.0);
    for (size_t r = 0; r < m; ++r) {
      if (art_used[r]) phase1[art_base + r] = -1.0;
    }
    const bool bounded = t.Optimize(phase1, total_cols);
    COSTSENSE_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    double infeas = 0.0;
    for (size_t r = 0; r < m; ++r) {
      if (t.Basis(r) >= art_base) infeas += t.Rhs(r);
    }
    if (infeas > 1e-7) {
      Solution s;
      s.status = SolveStatus::kInfeasible;
      return s;
    }
    // Pivot any degenerate artificials out of the basis where possible.
    for (size_t r = 0; r < m; ++r) {
      if (t.Basis(r) < art_base) continue;
      size_t pc = art_base;
      for (size_t j = 0; j < art_base; ++j) {
        if (std::fabs(t.At(r, j)) > kEps) {
          pc = j;
          break;
        }
      }
      if (pc < art_base) t.Pivot(r, pc);
      // Otherwise the row is all-zero (redundant constraint); harmless.
    }
  }

  // Phase 2 on the real objective (restricted to non-artificial columns).
  std::vector<double> obj(total_cols, 0.0);
  const double flip = problem.maximize ? 1.0 : -1.0;
  for (size_t j = 0; j < n; ++j) obj[j] = flip * problem.objective[j];
  if (!t.Optimize(obj, art_base)) {
    Solution s;
    s.status = SolveStatus::kUnbounded;
    return s;
  }

  Solution s;
  s.status = SolveStatus::kOptimal;
  s.x = linalg::Vector(n);
  for (size_t r = 0; r < m; ++r) {
    if (t.Basis(r) < n) s.x[t.Basis(r)] = t.Rhs(r);
  }
  s.objective_value = linalg::Dot(s.x, problem.objective);
  return s;
}

}  // namespace costsense::lp
