#ifndef COSTSENSE_LP_SIMPLEX_H_
#define COSTSENSE_LP_SIMPLEX_H_

#include <vector>

#include "linalg/vector.h"

namespace costsense::lp {

/// Relation of a linear constraint's left side to its right side.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x  <relation>  rhs.
struct Constraint {
  linalg::Vector coeffs;
  Relation rel = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program over non-negative variables x >= 0:
///   maximize (or minimize) objective . x  subject to the constraints.
///
/// costsense uses LPs for two jobs in the paper's algorithms:
///  * deciding candidate optimality of a plan (does a feasible cost vector
///    exist under which the plan beats all others — paper Section 4.4), and
///  * exact worst-case relative-cost maximization over the feasible cost
///    region (the companion fractional maximizer in fractional.h replaces
///    the 2^n vertex sweep when the resource count is large).
struct Problem {
  size_t num_vars = 0;
  linalg::Vector objective;
  std::vector<Constraint> constraints;
  bool maximize = true;
};

/// Outcome of a solve.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded };

/// Optimal point and value (valid when status == kOptimal).
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective_value = 0.0;
  linalg::Vector x;
};

/// Solves `problem` with a dense two-phase primal simplex using Bland's
/// rule (no cycling). Suitable for the small instances this library
/// generates (tens of variables and constraints).
Solution Solve(const Problem& problem);

}  // namespace costsense::lp

#endif  // COSTSENSE_LP_SIMPLEX_H_
