#include "opt/access_paths.h"

#include <algorithm>

namespace costsense::opt {

std::vector<PlanNodePtr> EnumerateAccessPaths(const CostModel& model,
                                              const catalog::Catalog& catalog,
                                              size_t ref,
                                              const OptimizerOptions& options) {
  const query::Query& q = model.query();
  const query::TableRef& tref = q.refs[ref];

  std::vector<PlanNodePtr> paths;
  paths.push_back(model.SeqScan(ref));

  const std::vector<size_t> used = model.UsedColumns(ref);
  for (int index_id : catalog.IndexesOn(tref.table_id)) {
    const catalog::Index& idx = catalog.index(index_id);
    const size_t lead = idx.key_columns.front();

    bool sargable = false;
    for (const query::ColumnRestriction& r : tref.restrictions) {
      if (r.column == lead && r.sargable) sargable = true;
    }
    // The index order is useful if its leading column participates in a
    // join, grouping, or ordering for this reference.
    const bool order_useful =
        std::find(used.begin(), used.end(), lead) != used.end();
    const bool covering =
        options.enable_index_only && model.IndexCoversRef(ref, index_id);

    if (!sargable && !order_useful && !covering) continue;
    paths.push_back(model.IndexScan(ref, index_id, /*index_only=*/false));
    if (covering) {
      paths.push_back(model.IndexScan(ref, index_id, /*index_only=*/true));
    }
  }
  return paths;
}

}  // namespace costsense::opt
