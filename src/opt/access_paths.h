#ifndef COSTSENSE_OPT_ACCESS_PATHS_H_
#define COSTSENSE_OPT_ACCESS_PATHS_H_

#include <vector>

#include "catalog/catalog.h"
#include "opt/cost_model.h"
#include "opt/plan.h"

namespace costsense::opt {

/// Optimizer feature switches. Defaults correspond to the paper's DB2
/// configuration (optimization level 7: full plan space, bushy trees, hash
/// joins enabled). Individual toggles exist for ablation benchmarks.
struct OptimizerOptions {
  bool bushy_joins = true;
  bool enable_index_only = true;
  bool enable_hash_join = true;
  bool enable_sort_merge_join = true;
  bool enable_index_nl_join = true;
  bool enable_block_nl_join = true;
  /// Cross products are only generated when the join graph is
  /// disconnected (or when forced here).
  bool allow_cross_products = false;
  /// Pareto entries retained per table subset (cost/order frontier cap).
  size_t max_entries_per_subset = 6;
};

/// Enumerates the leaf access paths for query reference `ref`: the
/// sequential scan, plus an index scan for every index that is useful —
/// sargable restriction on its leading column, an order the query can
/// exploit, or full coverage (index-only). This mirrors Selinger-style
/// single-relation access path selection.
std::vector<PlanNodePtr> EnumerateAccessPaths(const CostModel& model,
                                              const catalog::Catalog& catalog,
                                              size_t ref,
                                              const OptimizerOptions& options);

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_ACCESS_PATHS_H_
