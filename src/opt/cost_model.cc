#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

#include "catalog/selectivity.h"
#include "common/macros.h"
#include "common/strings.h"

namespace costsense::opt {

namespace {

/// Restriction selectivity on `column` of `ref` if a sargable one exists;
/// 1.0 otherwise.
double SargableSelectivityOn(const query::TableRef& ref, size_t column) {
  for (const query::ColumnRestriction& r : ref.restrictions) {
    if (r.column == column && r.sargable) return r.selectivity;
  }
  return 1.0;
}

}  // namespace

CostModel::CostModel(const catalog::Catalog& catalog,
                     const storage::StorageLayout& layout,
                     const storage::ResourceSpace& space,
                     const query::Query& query)
    : catalog_(catalog),
      layout_(layout),
      space_(space),
      query_(query),
      config_(catalog.config()) {}

double CostModel::PagesFor(double rows, double width_bytes) const {
  if (rows <= 0.0) return 0.0;
  return std::max(1.0, std::ceil(rows * width_bytes /
                                 (config_.page_size_bytes * 0.9)));
}

std::vector<size_t> CostModel::UsedColumns(size_t ref) const {
  std::vector<size_t> used;
  auto add = [&used](size_t col) {
    if (std::find(used.begin(), used.end(), col) == used.end()) {
      used.push_back(col);
    }
  };
  for (const query::ColumnRestriction& r : query_.refs[ref].restrictions) {
    add(r.column);
  }
  for (const query::JoinEdge& e : query_.joins) {
    if (e.left_ref == ref) add(e.left_column);
    if (e.right_ref == ref) add(e.right_column);
  }
  for (const query::SortKey& k : query_.aggregation.group_keys) {
    if (k.ref == ref) add(k.column);
  }
  for (const query::SortKey& k : query_.order_by) {
    if (k.ref == ref) add(k.column);
  }
  return used;
}

bool CostModel::IndexCoversRef(size_t ref, int index_id) const {
  const catalog::Index& idx = catalog_.index(index_id);
  for (size_t col : UsedColumns(ref)) {
    if (std::find(idx.key_columns.begin(), idx.key_columns.end(), col) ==
        idx.key_columns.end()) {
      return false;
    }
  }
  // The index must also supply the columns the query *outputs* from this
  // reference, approximated by the projected width. Semi/anti probe sides
  // project nothing, so only the key columns matter for them.
  for (const query::JoinEdge& e : query_.joins) {
    if (e.kind != query::JoinKind::kInner && e.right_ref == ref) return true;
  }
  const query::TableRef& tref = query_.refs[ref];
  const double needed = catalog_.table(tref.table_id).row_width_bytes() *
                        tref.projected_width_fraction;
  return needed <= idx.key_width_bytes + 16.0;
}

PlanNodePtr CostModel::SeqScan(size_t ref) const {
  const query::TableRef& tref = query_.refs[ref];
  const catalog::Table& table = catalog_.table(tref.table_id);

  auto node = std::make_shared<PlanNode>();
  node->op = OpType::kSeqScan;
  node->ref = static_cast<int>(ref);
  node->tables = uint32_t{1} << ref;
  node->output_rows = table.row_count() * tref.local_selectivity;
  node->output_width_bytes =
      table.row_width_bytes() * tref.projected_width_fraction;
  node->output_pages = PagesFor(node->output_rows, node->output_width_bytes);

  node->usage = space_.ZeroUsage();
  const double pages = table.pages();
  const double seeks = std::max(1.0, pages / config_.prefetch_pages);
  space_.ChargeIo(node->usage, layout_.DataDevice(tref.table_id), seeks,
                  pages);
  const double preds = static_cast<double>(tref.restrictions.size());
  space_.ChargeCpu(node->usage,
                   table.row_count() *
                       (config_.cpu_tuple_instructions +
                        std::max(1.0, preds) *
                            config_.cpu_predicate_instructions));
  node->id = StrFormat("SCAN(%s)", tref.alias.c_str());
  return node;
}

PlanNodePtr CostModel::IndexScan(size_t ref, int index_id,
                                 bool index_only) const {
  const query::TableRef& tref = query_.refs[ref];
  const catalog::Table& table = catalog_.table(tref.table_id);
  const catalog::Index& idx = catalog_.index(index_id);
  COSTSENSE_CHECK(idx.table_id == tref.table_id);

  const size_t lead_col = idx.key_columns.front();
  const double index_sel = SargableSelectivityOn(tref, lead_col);
  const double matches = table.row_count() * index_sel;

  auto node = std::make_shared<PlanNode>();
  node->op = OpType::kIndexScan;
  node->ref = static_cast<int>(ref);
  node->index_id = index_id;
  node->index_only = index_only;
  node->tables = uint32_t{1} << ref;
  node->output_rows = table.row_count() * tref.local_selectivity;
  node->output_width_bytes =
      index_only ? idx.key_width_bytes
                 : table.row_width_bytes() * tref.projected_width_fraction;
  node->output_pages = PagesFor(node->output_rows, node->output_width_bytes);
  // The stream leaves in index-key order.
  for (size_t col : idx.key_columns) node->order.push_back({ref, col});

  node->usage = space_.ZeroUsage();
  const int index_device = layout_.IndexDevice(tref.table_id);
  // Descend the tree once, then walk qualifying leaves sequentially.
  const double leaf_pages = std::max(1.0, idx.leaf_pages * index_sel);
  const double leaf_seeks =
      idx.levels + std::max(1.0, leaf_pages / config_.prefetch_pages);
  space_.ChargeIo(node->usage, index_device, leaf_seeks, leaf_pages);

  if (!index_only) {
    const int data_device = layout_.DataDevice(tref.table_id);
    if (idx.clustered) {
      const double pages = std::max(1.0, table.pages() * index_sel);
      space_.ChargeIo(node->usage, data_device,
                      std::max(1.0, pages / config_.prefetch_pages), pages);
    } else {
      const double pages = catalog::ExpectedPagesFetched(
          matches, table.row_count(), table.pages());
      // Unclustered fetches are random: one positioning per page touched.
      space_.ChargeIo(node->usage, data_device, pages, pages);
    }
  }
  const double preds = static_cast<double>(tref.restrictions.size());
  space_.ChargeCpu(node->usage,
                   config_.cpu_probe_instructions * idx.levels +
                       matches * (config_.cpu_tuple_instructions +
                                  std::max(1.0, preds) *
                                      config_.cpu_predicate_instructions));
  node->id = StrFormat("IXS(%s.%s%s)", tref.alias.c_str(), idx.name.c_str(),
                       index_only ? ":io" : "");
  return node;
}

int CostModel::ChargeSort(core::UsageVector& usage, double rows,
                          double pages) const {
  if (rows <= 1.0) return 0;
  const double compares = rows * std::log2(std::max(2.0, rows));
  space_.ChargeCpu(usage, compares * config_.cpu_sort_compare_instructions);
  if (pages <= config_.sort_heap_pages) return 0;  // in-memory sort

  // External sort: run generation writes all pages to temp and each merge
  // pass reads and rewrites them.
  const double runs = std::ceil(pages / config_.sort_heap_pages);
  const int passes = static_cast<int>(std::max(
      1.0, std::ceil(std::log(runs) / std::log(config_.merge_fan_in))));
  const double total_pages = 2.0 * pages * passes;  // write + read per pass
  space_.ChargeIo(usage, layout_.TempDevice(),
                  std::max(1.0, total_pages / config_.prefetch_pages),
                  total_pages);
  return passes;
}

PlanNodePtr CostModel::Sort(PlanNodePtr child,
                            std::vector<query::SortKey> keys) const {
  if (keys.empty() || OrderSatisfies(child->order, keys)) return child;
  auto node = std::make_shared<PlanNode>();
  node->op = OpType::kSort;
  node->keys = keys;
  node->tables = child->tables;
  node->output_rows = child->output_rows;
  node->output_width_bytes = child->output_width_bytes;
  node->output_pages = child->output_pages;
  node->order = std::move(keys);
  node->usage = child->usage;
  ChargeSort(node->usage, child->output_rows, child->output_pages);
  node->id = StrFormat("SORT[%s](%s)", KeysToString(node->order).c_str(),
                       child->id.c_str());
  node->left = std::move(child);
  return node;
}

PlanNodePtr CostModel::FinishJoin(OpType op, PlanNodePtr left,
                                  PlanNodePtr right, const JoinProps& props,
                                  core::UsageVector usage,
                                  std::vector<query::SortKey> order,
                                  std::string id) const {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  node->join_edge = props.edge;
  node->join_kind = props.edge >= 0 ? query_.joins[props.edge].kind
                                    : query::JoinKind::kInner;
  node->tables = left->tables | (right ? right->tables : 0u);
  node->output_rows = props.output_rows;
  node->output_width_bytes = props.output_width_bytes;
  node->output_pages = PagesFor(props.output_rows, props.output_width_bytes);
  node->order = std::move(order);
  node->usage = std::move(usage);
  node->id = std::move(id);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

PlanNodePtr CostModel::HashJoin(PlanNodePtr left, PlanNodePtr right,
                                const JoinProps& props) const {
  core::UsageVector usage = left->usage + right->usage;
  const double build_pages = right->output_pages;
  const double memory =
      config_.buffer_pool_pages * config_.hash_build_memory_fraction;
  if (build_pages > memory) {
    // Hybrid hash: partition both inputs to temp and read them back.
    const double spill = 2.0 * (left->output_pages + right->output_pages);
    space_.ChargeIo(usage, layout_.TempDevice(),
                    std::max(1.0, spill / config_.prefetch_pages), spill);
    space_.ChargeCpu(usage, (left->output_rows + right->output_rows) *
                                config_.cpu_tuple_instructions);
  }
  space_.ChargeCpu(usage,
                   right->output_rows * config_.cpu_hash_build_instructions +
                       left->output_rows * config_.cpu_hash_probe_instructions +
                       props.output_rows *
                           (config_.cpu_join_output_instructions +
                            props.residual_edges *
                                config_.cpu_predicate_instructions));
  std::string id = StrFormat("HSJ[e%d](%s,%s)", props.edge,
                             left->id.c_str(), right->id.c_str());
  // Hash join output follows the probe (left) order only when nothing
  // spilled; stay conservative and declare it unordered.
  return FinishJoin(OpType::kHashJoin, std::move(left), std::move(right),
                    props, std::move(usage), {}, std::move(id));
}

PlanNodePtr CostModel::SortMergeJoin(PlanNodePtr left, PlanNodePtr right,
                                     const JoinProps& props) const {
  COSTSENSE_CHECK(props.edge >= 0);
  const query::JoinEdge& edge = query_.joins[props.edge];
  core::UsageVector usage = left->usage + right->usage;
  space_.ChargeCpu(usage,
                   (left->output_rows + right->output_rows) *
                           config_.cpu_sort_compare_instructions +
                       props.output_rows *
                           (config_.cpu_join_output_instructions +
                            props.residual_edges *
                                config_.cpu_predicate_instructions));
  // Output keeps the merge order, expressed on whichever edge endpoint
  // lives in the left subtree.
  const bool left_holds_edge_left =
      (left->tables >> edge.left_ref) & 1u;
  std::vector<query::SortKey> order = {
      left_holds_edge_left
          ? query::SortKey{edge.left_ref, edge.left_column}
          : query::SortKey{edge.right_ref, edge.right_column}};
  std::string id = StrFormat("SMJ[e%d](%s,%s)", props.edge,
                             left->id.c_str(), right->id.c_str());
  return FinishJoin(OpType::kSortMergeJoin, std::move(left), std::move(right),
                    props, std::move(usage), std::move(order), std::move(id));
}

PlanNodePtr CostModel::IndexNLJoin(PlanNodePtr left, size_t right_ref,
                                   int index_id, bool index_only,
                                   const JoinProps& props) const {
  COSTSENSE_CHECK(props.edge >= 0);
  const query::TableRef& tref = query_.refs[right_ref];
  const catalog::Table& table = catalog_.table(tref.table_id);
  const catalog::Index& idx = catalog_.index(index_id);
  const query::JoinEdge& edge = query_.joins[props.edge];

  // The edge may be written in either orientation; the probed (inner)
  // side is right_ref.
  const bool inner_is_edge_right = edge.right_ref == right_ref;
  const size_t inner_col =
      inner_is_edge_right ? edge.right_column : edge.left_column;
  const size_t outer_ref =
      inner_is_edge_right ? edge.left_ref : edge.right_ref;
  const size_t outer_col =
      inner_is_edge_right ? edge.left_column : edge.right_column;
  COSTSENSE_CHECK(inner_col == idx.key_columns.front());

  // Join selectivity for matches fetched per probe (before the inner's
  // residual local predicates).
  double join_sel = edge.selectivity_override;
  if (join_sel < 0.0) {
    const catalog::Table& outer_table =
        catalog_.table(query_.refs[outer_ref].table_id);
    join_sel =
        catalog::JoinSelectivity(outer_table.column(outer_col).stats,
                                 table.column(inner_col).stats);
  }
  const double probes = left->output_rows;
  const double fetched_rows = probes * table.row_count() * join_sel;

  core::UsageVector usage = left->usage;
  const int index_device = layout_.IndexDevice(tref.table_id);
  // Each probe descends to one leaf; upper levels are assumed cached after
  // the first probe, leaving one random leaf access per probe.
  space_.ChargeIo(usage, index_device, probes, probes);
  if (!index_only) {
    const int data_device = layout_.DataDevice(tref.table_id);
    const double pages = catalog::ExpectedPagesFetched(
        fetched_rows, table.row_count(), table.pages());
    space_.ChargeIo(usage, data_device, pages, pages);
  }
  const double preds = static_cast<double>(tref.restrictions.size());
  space_.ChargeCpu(
      usage, probes * config_.cpu_probe_instructions +
                 fetched_rows * (config_.cpu_tuple_instructions +
                                 std::max(1.0, preds) *
                                     config_.cpu_predicate_instructions) +
                 props.output_rows * (config_.cpu_join_output_instructions +
                                      props.residual_edges *
                                          config_.cpu_predicate_instructions));

  auto inner = std::make_shared<PlanNode>();
  inner->op = OpType::kIndexScan;
  inner->ref = static_cast<int>(right_ref);
  inner->index_id = index_id;
  inner->index_only = index_only;
  inner->tables = uint32_t{1} << right_ref;
  inner->output_rows = table.row_count() * tref.local_selectivity;
  inner->output_width_bytes =
      index_only ? idx.key_width_bytes
                 : table.row_width_bytes() * tref.projected_width_fraction;
  inner->output_pages =
      PagesFor(inner->output_rows, inner->output_width_bytes);
  inner->usage = space_.ZeroUsage();
  inner->id = StrFormat("PROBE(%s.%s%s)", tref.alias.c_str(),
                        idx.name.c_str(), index_only ? ":io" : "");

  // Nested loops preserves the outer order.
  std::vector<query::SortKey> order = left->order;
  std::string id = StrFormat("INL[e%d](%s,%s)", props.edge,
                             left->id.c_str(), inner->id.c_str());
  return FinishJoin(OpType::kIndexNLJoin, std::move(left), std::move(inner),
                    props, std::move(usage), std::move(order), std::move(id));
}

PlanNodePtr CostModel::BlockNLJoin(PlanNodePtr left, PlanNodePtr right,
                                   const JoinProps& props) const {
  core::UsageVector usage = left->usage + right->usage;
  const double block_pages = std::max(1.0, config_.sort_heap_pages);
  const double blocks =
      std::max(1.0, std::ceil(left->output_pages / block_pages));

  if (right->op == OpType::kSeqScan || right->op == OpType::kIndexScan) {
    // Rescan the base access path (blocks - 1) extra times.
    usage += right->usage * (blocks - 1.0);
  } else {
    // Materialize the inner once to temp, then scan it per block.
    const double mat = right->output_pages;
    const double total = mat + blocks * mat;
    space_.ChargeIo(usage, layout_.TempDevice(),
                    std::max(1.0, total / config_.prefetch_pages), total);
  }
  space_.ChargeCpu(usage,
                   left->output_rows * right->output_rows *
                           config_.cpu_predicate_instructions +
                       props.output_rows *
                           (config_.cpu_join_output_instructions +
                            props.residual_edges *
                                config_.cpu_predicate_instructions));
  std::string id = StrFormat("BNL[e%d](%s,%s)", props.edge,
                             left->id.c_str(), right->id.c_str());
  return FinishJoin(OpType::kBlockNLJoin, std::move(left), std::move(right),
                    props, std::move(usage), {}, std::move(id));
}

PlanNodePtr CostModel::Aggregate(PlanNodePtr child, bool sort_based) const {
  const query::Aggregation& agg = query_.aggregation;
  COSTSENSE_CHECK(agg.present);
  auto node = std::make_shared<PlanNode>();
  node->op = OpType::kAggregate;
  node->keys = agg.group_keys;
  node->tables = child->tables;
  node->output_rows = std::min(agg.output_groups, child->output_rows);
  node->output_width_bytes = child->output_width_bytes;
  node->output_pages = PagesFor(node->output_rows, node->output_width_bytes);
  node->usage = child->usage;
  space_.ChargeCpu(node->usage,
                   child->output_rows * config_.cpu_agg_instructions);
  if (sort_based) {
    COSTSENSE_CHECK(OrderSatisfies(child->order, agg.group_keys));
    node->order = child->order;  // grouping preserves the input order
  } else {
    // Hash aggregation: spill partitions to temp if the group table
    // exceeds the sort heap.
    const double group_pages =
        PagesFor(agg.output_groups, child->output_width_bytes);
    if (group_pages > config_.sort_heap_pages) {
      const double spill = 2.0 * child->output_pages;
      space_.ChargeIo(node->usage, layout_.TempDevice(),
                      std::max(1.0, spill / config_.prefetch_pages), spill);
    }
  }
  node->id = StrFormat("AGG[%s](%s)", sort_based ? "sort" : "hash",
                       child->id.c_str());
  node->left = std::move(child);
  return node;
}

}  // namespace costsense::opt
