#ifndef COSTSENSE_OPT_COST_MODEL_H_
#define COSTSENSE_OPT_COST_MODEL_H_

#include <vector>

#include "catalog/catalog.h"
#include "opt/plan.h"
#include "query/query.h"
#include "storage/layout.h"
#include "storage/resource_space.h"

namespace costsense::opt {

/// Produces fully-annotated physical plan nodes, charging every operator's
/// I/O to the right storage device and its CPU work to the CPU resource.
/// This is where the paper's additive cost model (Section 3.1) is
/// realized: each constructor accumulates a resource usage vector; total
/// cost is later priced as U . C for any cost vector C.
///
/// Cardinalities of join results are supplied by the enumerator (they are
/// a function of the covered table set only, mirroring the paper's
/// assumption that selectivity estimates are accurate and shared by all
/// plans, Section 3.3).
class CostModel {
 public:
  CostModel(const catalog::Catalog& catalog,
            const storage::StorageLayout& layout,
            const storage::ResourceSpace& space, const query::Query& query);

  /// Shared cardinality/width properties of a join result, computed by the
  /// enumerator once per table subset.
  struct JoinProps {
    double output_rows = 0.0;
    double output_width_bytes = 0.0;
    /// The join edge the physical method keys on.
    int edge = -1;
    /// Number of additional connecting edges applied as residual filters
    /// (extra CPU per examined pair).
    int residual_edges = 0;
  };

  /// Full sequential scan of `ref`, applying its local predicates.
  PlanNodePtr SeqScan(size_t ref) const;

  /// B-tree access to `ref` through `index_id`; uses the reference's
  /// sargable restriction on the index's leading column if present (else a
  /// full index sweep, useful for its order or to avoid the table).
  /// `index_only` skips the data-page fetch (only legal if the index
  /// covers the columns the query uses — see IndexCoversRef).
  PlanNodePtr IndexScan(size_t ref, int index_id, bool index_only) const;

  /// Hybrid hash join; builds on `right`. Spills both sides to the temp
  /// device when the build side exceeds memory.
  PlanNodePtr HashJoin(PlanNodePtr left, PlanNodePtr right,
                       const JoinProps& props) const;

  /// Sort-merge join; both inputs must already satisfy the edge's key
  /// order (the enumerator wraps them in Sort nodes as needed).
  PlanNodePtr SortMergeJoin(PlanNodePtr left, PlanNodePtr right,
                            const JoinProps& props) const;

  /// Index nested-loops join: for each outer (left) row, probe
  /// `index_id` on base reference `right_ref` and fetch matches.
  /// `index_only` skips data-page fetches when the index covers the
  /// reference. Preserves the outer order.
  PlanNodePtr IndexNLJoin(PlanNodePtr left, size_t right_ref, int index_id,
                          bool index_only, const JoinProps& props) const;

  /// Block nested-loops join: rescan the inner per outer block. A non-leaf
  /// inner is first materialized to the temp device and rescanned from
  /// there.
  PlanNodePtr BlockNLJoin(PlanNodePtr left, PlanNodePtr right,
                          const JoinProps& props) const;

  /// Sorts `child` on `keys`. Returns `child` unchanged if its order
  /// already satisfies them; external sorts charge the temp device.
  PlanNodePtr Sort(PlanNodePtr child, std::vector<query::SortKey> keys) const;

  /// Aggregation per the query's Aggregation spec. `sort_based` consumes a
  /// child already ordered on the group keys (enumerator adds the Sort);
  /// hash aggregation spills to temp when the group table exceeds memory.
  PlanNodePtr Aggregate(PlanNodePtr child, bool sort_based) const;

  /// Columns of `ref` that the query touches (restrictions, join keys,
  /// grouping and ordering keys) — the covering test for index-only access.
  std::vector<size_t> UsedColumns(size_t ref) const;

  /// True if `index_id` covers every used column of `ref`.
  bool IndexCoversRef(size_t ref, int index_id) const;

  /// Output pages for a (rows, width) pair under the configured page size.
  double PagesFor(double rows, double width_bytes) const;

  const query::Query& query() const { return query_; }

 private:
  const catalog::Catalog& catalog_;
  const storage::StorageLayout& layout_;
  const storage::ResourceSpace& space_;
  const query::Query& query_;
  const catalog::SystemConfig& config_;

  /// Charges an external sort of (rows, pages) into `usage`, returns the
  /// number of merge passes used (0 for in-memory).
  int ChargeSort(core::UsageVector& usage, double rows, double pages) const;

  PlanNodePtr FinishJoin(OpType op, PlanNodePtr left, PlanNodePtr right,
                         const JoinProps& props, core::UsageVector usage,
                         std::vector<query::SortKey> order,
                         std::string id) const;
};

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_COST_MODEL_H_
