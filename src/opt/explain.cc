#include "opt/explain.h"

#include "common/strings.h"

namespace costsense::opt {
namespace {

void ExplainNode(const PlanNode& node, const query::Query& query,
                 const std::string& indent, bool last, std::string& out) {
  out += indent;
  if (!indent.empty()) out += last ? "`- " : "+- ";
  out += OpTypeName(node.op);
  if (node.ref >= 0) {
    out += StrFormat("(%s)", query.refs[static_cast<size_t>(node.ref)]
                                 .alias.c_str());
  }
  if (node.index_only) out += " index-only";
  if (!node.keys.empty()) {
    out += StrFormat(" keys=[%s]", KeysToString(node.keys).c_str());
  }
  out += StrFormat("  rows=%s width=%s", FormatDouble(node.output_rows).c_str(),
                   FormatDouble(node.output_width_bytes).c_str());
  if (!node.order.empty()) {
    out += StrFormat(" order=[%s]", KeysToString(node.order).c_str());
  }
  out += "\n";
  const std::string child_indent =
      indent.empty() ? "  " : indent + (last ? "   " : "|  ");
  if (node.left && node.right) {
    ExplainNode(*node.left, query, child_indent, false, out);
    ExplainNode(*node.right, query, child_indent, true, out);
  } else if (node.left) {
    ExplainNode(*node.left, query, child_indent, true, out);
  }
}

}  // namespace

std::string Explain(const PlanNode& plan, const query::Query& query) {
  std::string out;
  ExplainNode(plan, query, "", true, out);
  return out;
}

std::string ExplainSummary(const PlanNode& plan,
                           const storage::ResourceSpace& space,
                           const core::CostVector& costs) {
  std::string out = plan.id;
  out += StrFormat("\n  total cost: %s\n  usage:",
                   FormatDouble(core::TotalCost(plan.usage, costs)).c_str());
  const auto& dims = space.dim_info();
  for (size_t i = 0; i < dims.size(); ++i) {
    if (plan.usage[i] == 0.0) continue;
    out += StrFormat(" %s=%s", dims[i].name.c_str(),
                     FormatDouble(plan.usage[i]).c_str());
  }
  out += "\n";
  return out;
}

}  // namespace costsense::opt
