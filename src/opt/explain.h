#ifndef COSTSENSE_OPT_EXPLAIN_H_
#define COSTSENSE_OPT_EXPLAIN_H_

#include <string>

#include "core/vectors.h"
#include "opt/plan.h"
#include "query/query.h"
#include "storage/resource_space.h"

namespace costsense::opt {

/// Renders a plan tree as an indented EXPLAIN listing with per-node
/// cardinalities and the subtree resource usage, e.g.
///
///   HSJ  rows=2.4e+05 width=120
///   ├─ SORT[r0.c0]  rows=6e+06 ...
///   ...
///
/// The paper used DB2's EXPLAIN facility the same way to examine why
/// particular queries switched plans (Section 8.1.1).
std::string Explain(const PlanNode& plan, const query::Query& query);

/// One-line summary: canonical id, total cost under `costs`, and the
/// usage vector rendered against the resource space's dimension names.
std::string ExplainSummary(const PlanNode& plan,
                           const storage::ResourceSpace& space,
                           const core::CostVector& costs);

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_EXPLAIN_H_
