#include "opt/join_enum.h"

#include <algorithm>
#include <bit>

#include "catalog/selectivity.h"
#include "common/macros.h"

namespace costsense::opt {

namespace {
constexpr double kMinRows = 0.01;
}  // namespace

JoinEnumerator::JoinEnumerator(const CostModel& model,
                               const catalog::Catalog& catalog,
                               const OptimizerOptions& options)
    : model_(model),
      catalog_(catalog),
      query_(model.query()),
      options_(options) {
  // If the join graph is disconnected, cross products are unavoidable.
  const size_t n = query_.refs.size();
  if (n > 1) {
    std::vector<uint32_t> comp(n);
    for (size_t i = 0; i < n; ++i) comp[i] = static_cast<uint32_t>(i);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const query::JoinEdge& e : query_.joins) {
        const uint32_t m = std::min(comp[e.left_ref], comp[e.right_ref]);
        if (comp[e.left_ref] != m || comp[e.right_ref] != m) {
          comp[e.left_ref] = comp[e.right_ref] = m;
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (comp[i] != 0) cross_products_needed_ = true;
    }
  }
}

double JoinEnumerator::BaseRows(size_t ref) const {
  const query::TableRef& tref = query_.refs[ref];
  return std::max(kMinRows, catalog_.table(tref.table_id).row_count() *
                                tref.local_selectivity);
}

double JoinEnumerator::BaseWidth(size_t ref) const {
  const query::TableRef& tref = query_.refs[ref];
  return catalog_.table(tref.table_id).row_width_bytes() *
         tref.projected_width_fraction;
}

double JoinEnumerator::EdgeSelectivity(const query::JoinEdge& edge) const {
  if (edge.selectivity_override >= 0.0) return edge.selectivity_override;
  const catalog::Table& lt =
      catalog_.table(query_.refs[edge.left_ref].table_id);
  const catalog::Table& rt =
      catalog_.table(query_.refs[edge.right_ref].table_id);
  return catalog::JoinSelectivity(lt.column(edge.left_column).stats,
                                  rt.column(edge.right_column).stats);
}

double JoinEnumerator::SubsetRows(uint32_t mask) const {
  double rows = 1.0;
  for (size_t r = 0; r < query_.refs.size(); ++r) {
    if ((mask >> r) & 1u) rows *= BaseRows(r);
  }
  for (const query::JoinEdge& e : query_.joins) {
    if (!(((mask >> e.left_ref) & 1u) && ((mask >> e.right_ref) & 1u))) {
      continue;
    }
    const double sel = EdgeSelectivity(e);
    switch (e.kind) {
      case query::JoinKind::kInner:
        rows *= sel;
        break;
      case query::JoinKind::kSemi: {
        // The subquery side's cardinality does not multiply into the
        // output; each outer row survives with the match probability.
        const double rr = BaseRows(e.right_ref);
        rows *= std::min(1.0, sel * rr) / rr;
        break;
      }
      case query::JoinKind::kAnti: {
        const double rr = BaseRows(e.right_ref);
        rows *= std::clamp(1.0 - sel * rr, 1e-9, 1.0) / rr;
        break;
      }
    }
  }
  return std::max(kMinRows, rows);
}

std::vector<int> JoinEnumerator::ConnectingEdges(uint32_t left_mask,
                                                 uint32_t right_mask) const {
  std::vector<int> out;
  for (size_t i = 0; i < query_.joins.size(); ++i) {
    const query::JoinEdge& e = query_.joins[i];
    const bool l_in_left = (left_mask >> e.left_ref) & 1u;
    const bool l_in_right = (right_mask >> e.left_ref) & 1u;
    const bool r_in_left = (left_mask >> e.right_ref) & 1u;
    const bool r_in_right = (right_mask >> e.right_ref) & 1u;
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

void JoinEnumerator::AddEntry(std::vector<Entry>& entries,
                              Entry entry) const {
  for (const Entry& e : entries) {
    // Dominated: an existing entry is no costlier and its order is at
    // least as useful.
    if (e.cost <= entry.cost &&
        OrderSatisfies(e.plan->order, entry.plan->order)) {
      return;
    }
  }
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&entry](const Entry& e) {
                                 return entry.cost <= e.cost &&
                                        OrderSatisfies(entry.plan->order,
                                                       e.plan->order);
                               }),
                entries.end());
  entries.push_back(std::move(entry));
  if (entries.size() > options_.max_entries_per_subset) {
    // Evict the most expensive entry.
    size_t worst = 0;
    for (size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].cost > entries[worst].cost) worst = i;
    }
    entries.erase(entries.begin() + static_cast<long>(worst));
  }
}

void JoinEnumerator::EmitJoins(const core::CostVector& costs,
                               uint32_t left_mask, uint32_t right_mask,
                               const std::vector<Entry>& left_entries,
                               const std::vector<Entry>& right_entries,
                               std::vector<Entry>& out) {
  const uint32_t mask = left_mask | right_mask;
  const std::vector<int> edges = ConnectingEdges(left_mask, right_mask);

  // Semi/anti joins are only valid with the subquery side alone on the
  // right; skip partitions that would put an anti/semi inner elsewhere.
  for (int ei : edges) {
    const query::JoinEdge& e = query_.joins[ei];
    if (e.kind != query::JoinKind::kInner &&
        right_mask != (uint32_t{1} << e.right_ref)) {
      return;
    }
  }

  CostModel::JoinProps props;
  props.output_rows = SubsetRows(mask);
  // Width: semi/anti right sides are projected away.
  double width = 0.0;
  for (size_t r = 0; r < query_.refs.size(); ++r) {
    if (!((mask >> r) & 1u)) continue;
    bool projected_away = false;
    for (const query::JoinEdge& e : query_.joins) {
      if (e.kind != query::JoinKind::kInner && e.right_ref == r &&
          ((mask >> e.left_ref) & 1u)) {
        projected_away = true;
      }
    }
    if (!projected_away) width += BaseWidth(r);
  }
  props.output_width_bytes = std::max(8.0, width);
  props.residual_edges = std::max(0, static_cast<int>(edges.size()) - 1);

  auto add = [&](PlanNodePtr plan) {
    Entry e;
    e.cost = core::TotalCost(plan->usage, costs);
    e.plan = std::move(plan);
    AddEntry(out, std::move(e));
  };

  // Index nested loops: right side must be a lone base ref probed through
  // an index on the join column.
  if (options_.enable_index_nl_join && std::has_single_bit(right_mask)) {
    const size_t r2 = static_cast<size_t>(std::countr_zero(right_mask));
    for (int ei : edges) {
      const query::JoinEdge& e = query_.joins[ei];
      const size_t inner_col =
          e.right_ref == r2 ? e.right_column : e.left_column;
      const int table_id = query_.refs[r2].table_id;
      for (int index_id : catalog_.IndexesOn(table_id)) {
        if (catalog_.index(index_id).key_columns.front() != inner_col) {
          continue;
        }
        CostModel::JoinProps p = props;
        p.edge = ei;
        for (const Entry& l : left_entries) {
          add(model_.IndexNLJoin(l.plan, r2, index_id, /*index_only=*/false,
                                 p));
          if (options_.enable_index_only &&
              model_.IndexCoversRef(r2, index_id)) {
            add(model_.IndexNLJoin(l.plan, r2, index_id, /*index_only=*/true,
                                   p));
          }
        }
      }
    }
  }

  for (const Entry& l : left_entries) {
    for (const Entry& r : right_entries) {
      if (!edges.empty()) {
        if (options_.enable_hash_join) {
          CostModel::JoinProps p = props;
          p.edge = edges[0];
          add(model_.HashJoin(l.plan, r.plan, p));
        }
        if (options_.enable_sort_merge_join) {
          for (int ei : edges) {
            const query::JoinEdge& e = query_.joins[ei];
            const bool left_holds = (left_mask >> e.left_ref) & 1u;
            const query::SortKey lkey =
                left_holds ? query::SortKey{e.left_ref, e.left_column}
                           : query::SortKey{e.right_ref, e.right_column};
            const query::SortKey rkey =
                left_holds ? query::SortKey{e.right_ref, e.right_column}
                           : query::SortKey{e.left_ref, e.left_column};
            CostModel::JoinProps p = props;
            p.edge = ei;
            add(model_.SortMergeJoin(model_.Sort(l.plan, {lkey}),
                                     model_.Sort(r.plan, {rkey}), p));
          }
        }
      }
      if (options_.enable_block_nl_join &&
          (!edges.empty() || options_.allow_cross_products ||
           cross_products_needed_)) {
        CostModel::JoinProps p = props;
        p.edge = edges.empty() ? -1 : edges[0];
        add(model_.BlockNLJoin(l.plan, r.plan, p));
      }
    }
  }
}

Result<PlanNodePtr> JoinEnumerator::BestPlan(const core::CostVector& costs) {
  const size_t n = query_.refs.size();
  if (n == 0) return Status::InvalidArgument("query has no table refs");
  if (n > 20) return Status::InvalidArgument("too many tables (max 20)");

  std::vector<std::vector<Entry>> dp(uint32_t{1} << n);

  // Base access paths.
  for (size_t r = 0; r < n; ++r) {
    for (PlanNodePtr& path :
         EnumerateAccessPaths(model_, catalog_, r, options_)) {
      Entry e;
      e.cost = core::TotalCost(path->usage, costs);
      e.plan = std::move(path);
      AddEntry(dp[uint32_t{1} << r], std::move(e));
    }
  }

  // Subsets by increasing population count.
  std::vector<uint32_t> masks;
  masks.reserve(dp.size() - 1);
  for (uint32_t m = 1; m < dp.size(); ++m) masks.push_back(m);
  std::stable_sort(masks.begin(), masks.end(),
                   [](uint32_t a, uint32_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });

  for (uint32_t mask : masks) {
    if (std::popcount(mask) < 2) continue;
    // Enumerate ordered partitions (s1 = left/outer, s2 = right/inner).
    for (uint32_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
      const uint32_t s2 = mask ^ s1;
      if (!options_.bushy_joins && !std::has_single_bit(s2)) continue;
      if (dp[s1].empty() || dp[s2].empty()) continue;
      const std::vector<int> edges = ConnectingEdges(s1, s2);
      if (edges.empty() && !options_.allow_cross_products &&
          !cross_products_needed_) {
        continue;
      }
      EmitJoins(costs, s1, s2, dp[s1], dp[s2], dp[mask]);
    }
  }

  const uint32_t full = static_cast<uint32_t>(dp.size()) - 1;
  if (dp[full].empty()) {
    return Status::Internal("join enumeration produced no complete plan");
  }

  // Aggregation, then the final presentation sort.
  std::vector<Entry> finals;
  for (const Entry& e : dp[full]) {
    PlanNodePtr plan = e.plan;
    std::vector<PlanNodePtr> variants;
    if (query_.aggregation.present) {
      variants.push_back(model_.Aggregate(plan, /*sort_based=*/false));
      if (!query_.aggregation.group_keys.empty()) {
        variants.push_back(model_.Aggregate(
            model_.Sort(plan, query_.aggregation.group_keys),
            /*sort_based=*/true));
      }
    } else {
      variants.push_back(plan);
    }
    for (PlanNodePtr& v : variants) {
      PlanNodePtr finished = model_.Sort(std::move(v), query_.order_by);
      Entry fe;
      fe.cost = core::TotalCost(finished->usage, costs);
      fe.plan = std::move(finished);
      AddEntry(finals, std::move(fe));
    }
  }

  // Cheapest, with a deterministic tie-break on the canonical id.
  size_t best = 0;
  for (size_t i = 1; i < finals.size(); ++i) {
    if (finals[i].cost < finals[best].cost ||
        (finals[i].cost == finals[best].cost &&
         finals[i].plan->id < finals[best].plan->id)) {
      best = i;
    }
  }
  return finals[best].plan;
}

}  // namespace costsense::opt
