#ifndef COSTSENSE_OPT_JOIN_ENUM_H_
#define COSTSENSE_OPT_JOIN_ENUM_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/vectors.h"
#include "opt/access_paths.h"
#include "opt/cost_model.h"
#include "opt/plan.h"

namespace costsense::opt {

/// System-R-style dynamic-programming join enumerator over table subsets,
/// with interesting orders and (optionally) bushy trees — the plan space
/// the paper attributes to the DB2 optimizer (Section 7.1). Pruning is by
/// estimated total cost U . C under the cost vector supplied to BestPlan,
/// so re-running with different cost vectors reproduces the paper's
/// methodology of re-invoking the optimizer per cost setting.
class JoinEnumerator {
 public:
  JoinEnumerator(const CostModel& model, const catalog::Catalog& catalog,
                 const OptimizerOptions& options);

  /// Returns the estimated optimal plan under `costs` (fully annotated,
  /// including its resource usage vector). Fails on malformed queries
  /// (too many tables, missing refs).
  [[nodiscard]] Result<PlanNodePtr> BestPlan(const core::CostVector& costs);

  /// Cardinality shared by every plan covering subset `mask` (exposed for
  /// tests).
  double SubsetRows(uint32_t mask) const;

 private:
  struct Entry {
    PlanNodePtr plan;
    double cost = 0.0;
  };

  /// Keeps `entry` if not dominated (cheaper entry with an order at least
  /// as useful); evicts entries it dominates; caps the frontier size.
  void AddEntry(std::vector<Entry>& entries, Entry entry) const;

  double EdgeSelectivity(const query::JoinEdge& edge) const;
  double BaseRows(size_t ref) const;
  double BaseWidth(size_t ref) const;

  /// Join edges connecting `left_mask` and `right_mask` (either
  /// orientation).
  std::vector<int> ConnectingEdges(uint32_t left_mask,
                                   uint32_t right_mask) const;

  /// Builds all physical joins of (left entry, right subset) and adds them
  /// to `out`.
  void EmitJoins(const core::CostVector& costs, uint32_t left_mask,
                 uint32_t right_mask, const std::vector<Entry>& left_entries,
                 const std::vector<Entry>& right_entries,
                 std::vector<Entry>& out);

  const CostModel& model_;
  const catalog::Catalog& catalog_;
  const query::Query& query_;
  const OptimizerOptions& options_;
  bool cross_products_needed_ = false;
};

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_JOIN_ENUM_H_
