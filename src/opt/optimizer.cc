#include "opt/optimizer.h"

#include "opt/cost_model.h"
#include "opt/join_enum.h"

namespace costsense::opt {

Optimizer::Optimizer(const catalog::Catalog& catalog,
                     const storage::StorageLayout& layout,
                     const storage::ResourceSpace& space,
                     OptimizerOptions options)
    : catalog_(catalog), layout_(layout), space_(space), options_(options) {
  // DB2 only considers bushy shapes at higher optimization levels; mirror
  // that coupling unless the caller overrode it explicitly.
  if (catalog_.config().optimization_level < 5) {
    options_.bushy_joins = false;
  }
}

Result<Optimized> Optimizer::Optimize(const query::Query& query,
                                      const core::CostVector& costs) const {
  if (costs.size() != space_.dims()) {
    return Status::InvalidArgument(
        "cost vector dimension does not match the resource space");
  }
  const CostModel model(catalog_, layout_, space_, query);
  JoinEnumerator enumerator(model, catalog_, options_);
  Result<PlanNodePtr> best = enumerator.BestPlan(costs);
  if (!best.ok()) return best.status();
  Optimized out;
  out.plan = std::move(best).value();
  out.total_cost = core::TotalCost(out.plan->usage, costs);
  return out;
}

Result<Optimized> Optimizer::OptimizeAtBaseline(
    const query::Query& query) const {
  return Optimize(query, space_.BaselineCosts());
}

}  // namespace costsense::opt
