#ifndef COSTSENSE_OPT_OPTIMIZER_H_
#define COSTSENSE_OPT_OPTIMIZER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/vectors.h"
#include "opt/access_paths.h"
#include "opt/plan.h"
#include "query/query.h"
#include "storage/layout.h"
#include "storage/resource_space.h"

namespace costsense::opt {

/// What one optimization call produces: the estimated optimal plan and its
/// estimated total cost — the same information a commercial optimizer
/// reports (paper Section 7.1) plus, because this optimizer is ours, the
/// plan's full resource usage vector inside the plan tree.
struct Optimized {
  PlanNodePtr plan;
  double total_cost = 0.0;
};

/// The cost-based query optimizer: a fresh dynamic-programming enumeration
/// per (query, resource cost vector) pair. This is the stand-in for the
/// DB2 8.1 optimizer in the paper's experiments; it satisfies the three
/// requirements of Section 7.1 — linear cost model, settable resource
/// costs, and reported plan identity + estimated total cost.
class Optimizer {
 public:
  Optimizer(const catalog::Catalog& catalog,
            const storage::StorageLayout& layout,
            const storage::ResourceSpace& space, OptimizerOptions options = {});

  /// Optimizes `query` under resource costs `costs` (dimension must match
  /// the resource space).
  [[nodiscard]] Result<Optimized> Optimize(const query::Query& query,
                             const core::CostVector& costs) const;

  /// Optimizes under the layout's baseline (estimated) costs.
  [[nodiscard]] Result<Optimized> OptimizeAtBaseline(const query::Query& query) const;

  const storage::ResourceSpace& space() const { return space_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  const catalog::Catalog& catalog_;
  const storage::StorageLayout& layout_;
  const storage::ResourceSpace& space_;
  OptimizerOptions options_;
};

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_OPTIMIZER_H_
