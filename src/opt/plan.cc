#include "opt/plan.h"

#include "common/strings.h"

namespace costsense::opt {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return "SCAN";
    case OpType::kIndexScan:
      return "IXS";
    case OpType::kIndexNLJoin:
      return "INL";
    case OpType::kBlockNLJoin:
      return "BNL";
    case OpType::kSortMergeJoin:
      return "SMJ";
    case OpType::kHashJoin:
      return "HSJ";
    case OpType::kSort:
      return "SORT";
    case OpType::kAggregate:
      return "AGG";
  }
  return "?";
}

bool OrderSatisfies(const std::vector<query::SortKey>& produced,
                    const std::vector<query::SortKey>& required) {
  if (required.size() > produced.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (produced[i].ref != required[i].ref ||
        produced[i].column != required[i].column) {
      return false;
    }
  }
  return true;
}

std::string KeysToString(const std::vector<query::SortKey>& keys) {
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (const query::SortKey& k : keys) {
    parts.push_back(StrFormat("r%zu.c%zu", k.ref, k.column));
  }
  return Join(parts, ",");
}

}  // namespace costsense::opt
