#ifndef COSTSENSE_OPT_PLAN_H_
#define COSTSENSE_OPT_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/vectors.h"
#include "query/query.h"

namespace costsense::opt {

/// Physical operator types. The set mirrors what the paper credits the DB2
/// optimizer with considering (Section 7.1): multiple scan paths, nested
/// loops / sort-merge / hash joins, sorts, aggregation.
enum class OpType {
  kSeqScan,
  kIndexScan,
  kIndexNLJoin,
  kBlockNLJoin,
  kSortMergeJoin,
  kHashJoin,
  kSort,
  kAggregate,
};

/// Returns a short mnemonic ("SCAN", "IXS", "INL", "BNL", "SMJ", "HSJ",
/// "SORT", "AGG") used in canonical plan ids and EXPLAIN output.
const char* OpTypeName(OpType op);

struct PlanNode;
/// Plans are immutable DAG nodes shared across the dynamic-programming
/// table; cheap to copy.
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// A node of a physical query plan, annotated with the estimates the cost
/// model derived: output cardinality/width, produced sort order, the
/// cumulative resource usage vector of the subtree, and a canonical id.
struct PlanNode {
  OpType op = OpType::kSeqScan;

  // Scan fields.
  /// Query ref index this leaf scans; -1 for non-leaves.
  int ref = -1;
  /// Catalog index id for kIndexScan / the inner of kIndexNLJoin.
  int index_id = -1;
  /// True when the index alone answers the reference (no data-page fetch).
  bool index_only = false;

  // Children (null for leaves; right null for unary operators).
  PlanNodePtr left;
  PlanNodePtr right;

  /// For joins: which query join edge drives the method.
  int join_edge = -1;
  query::JoinKind join_kind = query::JoinKind::kInner;

  /// For kSort / kAggregate: the keys sorted/grouped on.
  std::vector<query::SortKey> keys;

  // Annotations.
  /// Bitmask of query refs covered by this subtree.
  uint32_t tables = 0;
  double output_rows = 0.0;
  double output_width_bytes = 0.0;
  /// Pages the output would occupy if materialized.
  double output_pages = 0.0;
  /// Sort order of the emitted stream (empty if unordered).
  std::vector<query::SortKey> order;
  /// Cumulative resource usage of the subtree (paper Section 3.2).
  core::UsageVector usage;
  /// Canonical id: equal strings identify equal plans. Computed once at
  /// construction by the cost model.
  std::string id;
};

/// True if stream order `produced` satisfies requirement `required`
/// (i.e. `required` is a prefix of `produced`).
bool OrderSatisfies(const std::vector<query::SortKey>& produced,
                    const std::vector<query::SortKey>& required);

/// Renders keys as "r0.c3,r1.c2" for ids and EXPLAIN.
std::string KeysToString(const std::vector<query::SortKey>& keys);

}  // namespace costsense::opt

#endif  // COSTSENSE_OPT_PLAN_H_
