#include "query/builder.h"

#include "common/macros.h"

namespace costsense::query {

QueryBuilder::QueryBuilder(const catalog::Catalog& catalog, std::string name)
    : catalog_(catalog) {
  query_.name = std::move(name);
}

size_t QueryBuilder::RefIndex(const std::string& alias) const {
  for (size_t i = 0; i < query_.refs.size(); ++i) {
    if (query_.refs[i].alias == alias) return i;
  }
  COSTSENSE_CHECK_MSG(false, ("unknown alias: " + alias).c_str());
  return 0;
}

size_t QueryBuilder::ColumnIndex(size_t ref, const std::string& column) const {
  const auto& table = catalog_.table(query_.refs[ref].table_id);
  const Result<size_t> idx = table.ColumnIndex(column);
  COSTSENSE_CHECK_MSG(idx.ok(), ("unknown column: " + column).c_str());
  return idx.value();
}

QueryBuilder& QueryBuilder::Table(const std::string& table_name,
                                  const std::string& alias) {
  const Result<int> id = catalog_.TableId(table_name);
  COSTSENSE_CHECK_MSG(id.ok(), ("unknown table: " + table_name).c_str());
  for (const TableRef& ref : query_.refs) {
    COSTSENSE_CHECK_MSG(ref.alias != alias, "duplicate alias");
  }
  TableRef ref;
  ref.table_id = id.value();
  ref.alias = alias;
  query_.refs.push_back(std::move(ref));
  return *this;
}

QueryBuilder& QueryBuilder::LocalSelectivity(const std::string& alias,
                                             double selectivity) {
  COSTSENSE_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  query_.refs[RefIndex(alias)].local_selectivity = selectivity;
  return *this;
}

QueryBuilder& QueryBuilder::Restrict(const std::string& alias,
                                     const std::string& column,
                                     double selectivity, bool sargable,
                                     bool fold) {
  COSTSENSE_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  const size_t ref = RefIndex(alias);
  ColumnRestriction r;
  r.column = ColumnIndex(ref, column);
  r.selectivity = selectivity;
  r.sargable = sargable;
  query_.refs[ref].restrictions.push_back(r);
  if (fold) query_.refs[ref].local_selectivity *= selectivity;
  return *this;
}

QueryBuilder& QueryBuilder::Project(const std::string& alias,
                                    double width_fraction) {
  COSTSENSE_CHECK(width_fraction > 0.0 && width_fraction <= 1.0);
  query_.refs[RefIndex(alias)].projected_width_fraction = width_fraction;
  return *this;
}

QueryBuilder& QueryBuilder::Join(const std::string& left_alias,
                                 const std::string& left_column,
                                 const std::string& right_alias,
                                 const std::string& right_column,
                                 JoinKind kind, double selectivity_override) {
  JoinEdge e;
  e.left_ref = RefIndex(left_alias);
  e.right_ref = RefIndex(right_alias);
  COSTSENSE_CHECK_MSG(e.left_ref != e.right_ref, "self-join edge");
  e.left_column = ColumnIndex(e.left_ref, left_column);
  e.right_column = ColumnIndex(e.right_ref, right_column);
  e.kind = kind;
  e.selectivity_override = selectivity_override;
  query_.joins.push_back(e);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(double output_groups,
                                    const std::vector<std::string>& keys) {
  query_.aggregation.present = true;
  query_.aggregation.output_groups = output_groups;
  for (const std::string& key : keys) {
    const size_t dot = key.find('.');
    COSTSENSE_CHECK_MSG(dot != std::string::npos, "key must be alias.column");
    const size_t ref = RefIndex(key.substr(0, dot));
    query_.aggregation.group_keys.push_back(
        {ref, ColumnIndex(ref, key.substr(dot + 1))});
  }
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& alias,
                                    const std::string& column) {
  const size_t ref = RefIndex(alias);
  query_.order_by.push_back({ref, ColumnIndex(ref, column)});
  return *this;
}

Query QueryBuilder::Build() { return std::move(query_); }

}  // namespace costsense::query
