#ifndef COSTSENSE_QUERY_BUILDER_H_
#define COSTSENSE_QUERY_BUILDER_H_

#include <string>

#include "catalog/catalog.h"
#include "query/query.h"

namespace costsense::query {

/// Fluent construction of Query objects against a catalog, resolving table
/// and column names and validating references. Aborts (CHECK) on unknown
/// names — queries are authored by programmers, not end users.
class QueryBuilder {
 public:
  QueryBuilder(const catalog::Catalog& catalog, std::string name);

  /// Adds a table reference; returns *this for chaining. `alias` must be
  /// unique within the query.
  QueryBuilder& Table(const std::string& table_name, const std::string& alias);

  /// Sets the combined local-predicate selectivity of `alias`.
  QueryBuilder& LocalSelectivity(const std::string& alias, double selectivity);

  /// Adds an indexable restriction on `alias.column` with the given
  /// selectivity. Also folds the selectivity into the combined local
  /// selectivity unless `fold` is false.
  QueryBuilder& Restrict(const std::string& alias, const std::string& column,
                         double selectivity, bool sargable = true,
                         bool fold = true);

  /// Sets the projected width fraction of `alias`.
  QueryBuilder& Project(const std::string& alias, double width_fraction);

  /// Adds an equi-join edge between alias.column pairs.
  QueryBuilder& Join(const std::string& left_alias,
                     const std::string& left_column,
                     const std::string& right_alias,
                     const std::string& right_column,
                     JoinKind kind = JoinKind::kInner,
                     double selectivity_override = -1.0);

  /// Declares aggregation with an estimated group count and optional
  /// grouping keys ("alias.column" strings).
  QueryBuilder& GroupBy(double output_groups,
                        const std::vector<std::string>& keys = {});

  /// Appends an ORDER BY key "alias.column".
  QueryBuilder& OrderBy(const std::string& alias, const std::string& column);

  /// Finalizes and returns the query.
  Query Build();

 private:
  size_t RefIndex(const std::string& alias) const;
  size_t ColumnIndex(size_t ref, const std::string& column) const;

  const catalog::Catalog& catalog_;
  Query query_;
};

}  // namespace costsense::query

#endif  // COSTSENSE_QUERY_BUILDER_H_
