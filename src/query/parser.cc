#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "catalog/selectivity.h"
#include "common/macros.h"
#include "common/strings.h"

namespace costsense::query {

namespace {

// Default selectivities where statistics cannot decide (Selinger-style
// magic numbers).
constexpr double kPrefixLikeSelectivity = 0.02;
constexpr double kInfixLikeSelectivity = 0.10;
constexpr double kStringRangeSelectivity = 1.0 / 3.0;

enum class TokenKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (upper-cased for keywords), symbol, or
                      // string body
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(Ident());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        out.push_back(Number());
        continue;
      }
      if (c == '\'') {
        Result<Token> s = QuotedString();
        if (!s.ok()) return s.status();
        out.push_back(std::move(s).value());
        continue;
      }
      // Multi-char comparison symbols.
      for (const char* sym : {"<=", ">=", "<>", "!="}) {
        if (sql_.substr(pos_, 2) == sym) {
          out.push_back({TokenKind::kSymbol, sym == std::string("!=")
                                                 ? "<>"
                                                 : std::string(sym)});
          pos_ += 2;
          goto next;
        }
      }
      if (std::string("(),.=<>*+-/").find(c) != std::string::npos) {
        out.push_back({TokenKind::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, pos_));
    next:;
    }
    out.push_back({TokenKind::kEnd, ""});
    return out;
  }

 private:
  Token Ident() {
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      ++pos_;
    }
    Token t{TokenKind::kIdent, std::string(sql_.substr(start, pos_ - start))};
    return t;
  }

  Token Number() {
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
            ((sql_[pos_] == '+' || sql_[pos_] == '-') &&
             (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    Token t{TokenKind::kNumber, std::string(sql_.substr(start, pos_ - start))};
    t.number = std::strtod(t.text.c_str(), nullptr);
    return t;
  }

  Result<Token> QuotedString() {
    ++pos_;  // opening quote
    const size_t start = pos_;
    while (pos_ < sql_.size() && sql_[pos_] != '\'') ++pos_;
    if (pos_ >= sql_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    Token t{TokenKind::kString,
            std::string(sql_.substr(start, pos_ - start))};
    ++pos_;  // closing quote
    return t;
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

/// A parsed literal: either numeric (possibly a converted date) or a
/// string whose exact value the statistics cannot place.
struct Literal {
  bool numeric = false;
  double value = 0.0;
};

class Parser {
 public:
  Parser(const catalog::Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    COSTSENSE_RETURN_IF_ERROR(ParseSelect());
    COSTSENSE_RETURN_IF_ERROR(ParseFrom());
    if (AcceptKeyword("WHERE")) {
      COSTSENSE_RETURN_IF_ERROR(ParseConjunct());
      while (AcceptKeyword("AND")) {
        COSTSENSE_RETURN_IF_ERROR(ParseConjunct());
      }
    }
    if (AcceptKeyword("GROUP")) {
      if (!AcceptKeyword("BY")) return Expected("BY after GROUP");
      COSTSENSE_RETURN_IF_ERROR(ParseKeyList(&group_keys_));
    }
    if (AcceptKeyword("ORDER")) {
      if (!AcceptKeyword("BY")) return Expected("BY after ORDER");
      COSTSENSE_RETURN_IF_ERROR(ParseKeyList(&order_keys_));
    }
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing tokens after query: " +
                                     Peek().text);
    }
    return Finish();
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  void Advance() { ++pos_; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kIdent && Upper(Peek().text) == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expected(const std::string& what) const {
    return Status::InvalidArgument("expected " + what + " near '" +
                                   Peek().text + "'");
  }

  // --- clause parsing ----------------------------------------------------
  Status ParseSelect() {
    if (!AcceptKeyword("SELECT")) return Expected("SELECT");
    // Scan (without interpreting) up to FROM, noting aggregate functions.
    while (!AtEnd() && !(Peek().kind == TokenKind::kIdent &&
                         Upper(Peek().text) == "FROM")) {
      if (Peek().kind == TokenKind::kIdent) {
        const std::string kw = Upper(Peek().text);
        if (kw == "SUM" || kw == "AVG" || kw == "COUNT" || kw == "MIN" ||
            kw == "MAX") {
          has_aggregate_ = true;
        }
      }
      Advance();
    }
    return Status::Ok();
  }

  Status ParseFrom() {
    if (!AcceptKeyword("FROM")) return Expected("FROM");
    COSTSENSE_RETURN_IF_ERROR(ParseTableItem(JoinKind::kInner, false));
    while (true) {
      if (AcceptSymbol(",")) {
        COSTSENSE_RETURN_IF_ERROR(ParseTableItem(JoinKind::kInner, false));
        continue;
      }
      JoinKind kind = JoinKind::kInner;
      bool explicit_join = false;
      if (AcceptKeyword("SEMI")) {
        kind = JoinKind::kSemi;
        explicit_join = true;
        if (!AcceptKeyword("JOIN")) return Expected("JOIN after SEMI");
      } else if (AcceptKeyword("ANTI")) {
        kind = JoinKind::kAnti;
        explicit_join = true;
        if (!AcceptKeyword("JOIN")) return Expected("JOIN after ANTI");
      } else if (AcceptKeyword("INNER")) {
        explicit_join = true;
        if (!AcceptKeyword("JOIN")) return Expected("JOIN after INNER");
      } else if (AcceptKeyword("JOIN")) {
        explicit_join = true;
      }
      if (!explicit_join) break;
      COSTSENSE_RETURN_IF_ERROR(ParseTableItem(kind, true));
    }
    return Status::Ok();
  }

  Status ParseTableItem(JoinKind kind, bool with_on) {
    if (Peek().kind != TokenKind::kIdent) return Expected("table name");
    const std::string table = Peek().text;
    Advance();
    std::string alias = table;
    AcceptKeyword("AS");
    if (Peek().kind == TokenKind::kIdent &&
        !IsClauseKeyword(Upper(Peek().text))) {
      alias = Peek().text;
      Advance();
    }
    const Result<int> table_id = catalog_.TableId(table);
    if (!table_id.ok()) return table_id.status();
    for (const Ref& r : refs_) {
      if (r.alias == alias) {
        return Status::InvalidArgument("duplicate alias: " + alias);
      }
    }
    refs_.push_back({alias, table_id.value()});

    if (with_on) {
      if (!AcceptKeyword("ON")) return Expected("ON");
      // The ON condition must be an equi-join; remember the join kind so
      // the edge gets tagged semi/anti.
      pending_join_kind_ = kind;
      COSTSENSE_RETURN_IF_ERROR(ParseConjunct());
      pending_join_kind_ = JoinKind::kInner;
    }
    return Status::Ok();
  }

  static bool IsClauseKeyword(const std::string& kw) {
    return kw == "WHERE" || kw == "GROUP" || kw == "ORDER" || kw == "JOIN" ||
           kw == "SEMI" || kw == "ANTI" || kw == "INNER" || kw == "ON" ||
           kw == "AND";
  }

  struct ColumnRef {
    size_t ref = 0;
    size_t column = 0;
  };

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdent) return Expected("column reference");
    const std::string first = Peek().text;
    Advance();
    std::string alias;
    std::string column;
    if (AcceptSymbol(".")) {
      if (Peek().kind != TokenKind::kIdent) return Expected("column name");
      alias = first;
      column = Peek().text;
      Advance();
    } else {
      column = first;  // unqualified: search all refs
    }
    for (size_t r = 0; r < refs_.size(); ++r) {
      if (!alias.empty() && refs_[r].alias != alias) continue;
      const Result<size_t> col =
          catalog_.table(refs_[r].table_id).ColumnIndex(column);
      if (col.ok()) return ColumnRef{r, col.value()};
      if (!alias.empty()) return col.status();
    }
    return Status::NotFound("cannot resolve column '" + column + "'");
  }

  Result<Literal> ParseLiteral() {
    if (AcceptKeyword("DATE")) {
      if (Peek().kind != TokenKind::kString) return Expected("date string");
      const Result<double> days = ParseDateLiteral(Peek().text);
      if (!days.ok()) return days.status();
      Advance();
      return Literal{true, days.value()};
    }
    if (Peek().kind == TokenKind::kNumber) {
      Literal lit{true, Peek().number};
      Advance();
      return lit;
    }
    if (Peek().kind == TokenKind::kString) {
      // A plain string that looks like a date gets the date encoding.
      const Result<double> days = ParseDateLiteral(Peek().text);
      Advance();
      if (days.ok()) return Literal{true, days.value()};
      return Literal{false, 0.0};
    }
    return Expected("literal");
  }

  Status ParseConjunct() {
    const Result<ColumnRef> left = ParseColumnRef();
    if (!left.ok()) return left.status();
    const catalog::ColumnStats& stats =
        catalog_.table(refs_[left->ref].table_id).column(left->column).stats;

    if (AcceptKeyword("BETWEEN")) {
      const Result<Literal> lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      if (!AcceptKeyword("AND")) return Expected("AND in BETWEEN");
      const Result<Literal> hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      const double sel =
          lo->numeric && hi->numeric
              ? catalog::RangeSelectivity(stats, lo->value, hi->value)
              : kStringRangeSelectivity;
      restrictions_.push_back({left->ref, left->column, sel, true});
      return Status::Ok();
    }
    if (AcceptKeyword("IN")) {
      if (!AcceptSymbol("(")) return Expected("( after IN");
      size_t count = 0;
      do {
        const Result<Literal> lit = ParseLiteral();
        if (!lit.ok()) return lit.status();
        ++count;
      } while (AcceptSymbol(","));
      if (!AcceptSymbol(")")) return Expected(") after IN list");
      const double sel = std::min(
          1.0, static_cast<double>(count) * catalog::EqualitySelectivity(stats));
      restrictions_.push_back({left->ref, left->column, sel, true});
      return Status::Ok();
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().kind != TokenKind::kString) return Expected("LIKE pattern");
      const std::string pattern = Peek().text;
      Advance();
      const bool prefix = !pattern.empty() && pattern.front() != '%';
      restrictions_.push_back({left->ref, left->column,
                               prefix ? kPrefixLikeSelectivity
                                      : kInfixLikeSelectivity,
                               prefix});
      return Status::Ok();
    }

    std::string op;
    for (const char* candidate : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptSymbol(candidate)) {
        op = candidate;
        break;
      }
    }
    if (op.empty()) return Expected("comparison operator");

    // Column-to-column with '=' is a join edge.
    const size_t save = pos_;
    if (op == "=" && Peek().kind == TokenKind::kIdent &&
        !IsClauseKeyword(Upper(Peek().text))) {
      const Result<ColumnRef> right = ParseColumnRef();
      if (right.ok()) {
        if (right->ref == left->ref) {
          return Status::InvalidArgument(
              "same-table column equality is not supported");
        }
        joins_.push_back(
            {left->ref, right->ref, left->column, right->column,
             pending_join_kind_, -1.0});
        return Status::Ok();
      }
      pos_ = save;  // fall through to literal comparison
    }

    const Result<Literal> lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    double sel = 1.0;
    bool sargable = true;
    if (op == "=") {
      sel = catalog::EqualitySelectivity(stats);
    } else if (op == "<>") {
      sel = 1.0 - catalog::EqualitySelectivity(stats);
      sargable = false;
    } else if (!lit->numeric) {
      sel = kStringRangeSelectivity;
    } else if (op == "<" || op == "<=") {
      sel = catalog::RangeSelectivity(stats, stats.min_value, lit->value);
    } else {  // > or >=
      sel = catalog::RangeSelectivity(stats, lit->value, stats.max_value);
    }
    restrictions_.push_back({left->ref, left->column, sel, sargable});
    return Status::Ok();
  }

  Status ParseKeyList(std::vector<ColumnRef>* out) {
    do {
      const Result<ColumnRef> col = ParseColumnRef();
      if (!col.ok()) return col.status();
      out->push_back(*col);
    } while (AcceptSymbol(","));
    return Status::Ok();
  }

  // --- assembly ----------------------------------------------------------
  Result<Query> Finish() {
    Query q;
    q.name = "sql";
    for (const Ref& r : refs_) {
      TableRef ref;
      ref.table_id = r.table_id;
      ref.alias = r.alias;
      q.refs.push_back(std::move(ref));
    }
    for (const PendingRestriction& r : restrictions_) {
      query::ColumnRestriction cr;
      cr.column = r.column;
      cr.selectivity = r.selectivity;
      cr.sargable = r.sargable;
      q.refs[r.ref].restrictions.push_back(cr);
      q.refs[r.ref].local_selectivity *= r.selectivity;
    }
    q.joins = joins_;

    if (!group_keys_.empty() || has_aggregate_) {
      q.aggregation.present = true;
      double groups = 1.0;
      for (const ColumnRef& k : group_keys_) {
        const auto& table = catalog_.table(q.refs[k.ref].table_id);
        groups *= table.column(k.column).stats.n_distinct;
        q.aggregation.group_keys.push_back({k.ref, k.column});
      }
      // Cap the group estimate by the filtered input cardinality of the
      // referenced tables (a grouping cannot out-multiply its input).
      double cap = 1.0;
      for (const ColumnRef& k : group_keys_) {
        const auto& table = catalog_.table(q.refs[k.ref].table_id);
        cap = std::max(cap, table.row_count() *
                                q.refs[k.ref].local_selectivity);
      }
      q.aggregation.output_groups =
          group_keys_.empty() ? 1.0 : std::min(groups, cap);
    }
    for (const ColumnRef& k : order_keys_) {
      q.order_by.push_back({k.ref, k.column});
    }
    return q;
  }

  struct Ref {
    std::string alias;
    int table_id;
  };
  struct PendingRestriction {
    size_t ref;
    size_t column;
    double selectivity;
    bool sargable;
  };

  const catalog::Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;

  std::vector<Ref> refs_;
  std::vector<PendingRestriction> restrictions_;
  std::vector<JoinEdge> joins_;
  std::vector<ColumnRef> group_keys_;
  std::vector<ColumnRef> order_keys_;
  bool has_aggregate_ = false;
  JoinKind pending_join_kind_ = JoinKind::kInner;
};

}  // namespace

Result<double> ParseDateLiteral(std::string_view date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') {
    return Status::InvalidArgument("dates must be YYYY-MM-DD");
  }
  int y = 0, m = 0, d = 0;
  if (std::sscanf(std::string(date).c_str(), "%d-%d-%d", &y, &m, &d) != 3 ||
      m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("dates must be YYYY-MM-DD");
  }
  // Howard Hinnant's days-from-civil algorithm.
  auto days_from_civil = [](int yy, int mm, int dd) -> long {
    yy -= mm <= 2;
    const long era = (yy >= 0 ? yy : yy - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(yy - era * 400);
    const unsigned doy =
        (153u * static_cast<unsigned>(mm + (mm > 2 ? -3 : 9)) + 2u) / 5u +
        static_cast<unsigned>(dd) - 1u;
    const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
    return era * 146097 + static_cast<long>(doe) - 719468;
  };
  return static_cast<double>(days_from_civil(y, m, d) -
                             days_from_civil(1992, 1, 1));
}

Result<Query> ParseSql(const catalog::Catalog& catalog,
                       std::string_view sql) {
  Lexer lexer(sql);
  Result<std::vector<Token>> tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, std::move(tokens).value());
  return parser.Run();
}

}  // namespace costsense::query
