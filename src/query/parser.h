#ifndef COSTSENSE_QUERY_PARSER_H_
#define COSTSENSE_QUERY_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace costsense::query {

/// Parses a SQL subset into the join-graph IR, deriving predicate
/// selectivities from catalog statistics (Selinger defaults over the
/// column min/max/distinct metadata). Supported grammar:
///
///   SELECT <exprs>                       -- aggregates detected, rest ignored
///   FROM t1 [AS] a1, t2 [AS] a2, ...
///        [ [SEMI | ANTI] JOIN t [AS] a ON a.x = b.y ]...
///   [WHERE <cond> [AND <cond>]...]
///   [GROUP BY a.col, ...]
///   [ORDER BY a.col, ...]
///
/// with conditions:
///
///   a.col = b.col                        -- equi-join edge
///   a.col <op> <literal>                 -- op in = <> < <= > >=
///   a.col BETWEEN <lit> AND <lit>
///   a.col IN (<lit>, ...)
///   a.col LIKE 'pattern'                 -- prefix patterns are sargable
///
/// Literals: numbers, 'strings' (selectivity from distinct counts; the
/// value itself is not needed), and DATE 'YYYY-MM-DD' (encoded as days
/// since 1992-01-01, matching the TPC-H catalog's date encoding).
///
/// This is an optimizer-study front end, not a full SQL implementation:
/// expressions in SELECT are only scanned for aggregate functions, OR is
/// not supported (rewrite as IN where possible), and subqueries must be
/// pre-flattened to SEMI/ANTI JOIN.
[[nodiscard]] Result<Query> ParseSql(const catalog::Catalog& catalog, std::string_view sql);

/// Converts a 'YYYY-MM-DD' date to days since 1992-01-01 (the encoding
/// used by the TPC-H catalog columns). Returns InvalidArgument for
/// malformed dates.
[[nodiscard]] Result<double> ParseDateLiteral(std::string_view date);

}  // namespace costsense::query

#endif  // COSTSENSE_QUERY_PARSER_H_
