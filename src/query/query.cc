#include "query/query.h"

#include <algorithm>

namespace costsense::query {

std::vector<int> ReferencedTables(const Query& q) {
  std::vector<int> out;
  for (const TableRef& ref : q.refs) {
    if (std::find(out.begin(), out.end(), ref.table_id) == out.end()) {
      out.push_back(ref.table_id);
    }
  }
  return out;
}

}  // namespace costsense::query
