#ifndef COSTSENSE_QUERY_QUERY_H_
#define COSTSENSE_QUERY_QUERY_H_

#include <string>
#include <vector>

namespace costsense::query {

/// A single-column restriction on a base table, with the information the
/// optimizer needs for access-path selection: which column, how selective,
/// and whether an index on that column can evaluate it (sargable).
struct ColumnRestriction {
  size_t column = 0;
  double selectivity = 1.0;
  /// True for predicates a B-tree can evaluate (equality / range on the
  /// leading key); false e.g. for LIKE '%x%' patterns.
  bool sargable = true;
};

/// One occurrence of a base table in a query.
struct TableRef {
  int table_id = -1;
  std::string alias;
  /// Combined selectivity of all local predicates on this reference.
  double local_selectivity = 1.0;
  /// The individually indexable restrictions (subset of the local
  /// predicates).
  std::vector<ColumnRestriction> restrictions;
  /// Fraction of the row width this query actually needs from the table
  /// (projection narrowing; affects intermediate sizes and temp usage).
  double projected_width_fraction = 1.0;
};

/// Join flavor. Correlated EXISTS / NOT EXISTS / IN subqueries of TPC-H
/// are flattened to semi / anti joins (the paper's DB2 setup enables
/// DB2_ANTIJOIN for the same reason).
enum class JoinKind { kInner, kSemi, kAnti };

/// An equi-join edge between two table references.
struct JoinEdge {
  size_t left_ref = 0;
  size_t right_ref = 0;
  size_t left_column = 0;
  size_t right_column = 0;
  JoinKind kind = JoinKind::kInner;
  /// When >= 0 overrides the catalog-derived join selectivity (used when
  /// the benchmark spec implies a different value).
  double selectivity_override = -1.0;
};

/// A sort key: column of one table reference.
struct SortKey {
  size_t ref = 0;
  size_t column = 0;

  friend bool operator==(const SortKey& a, const SortKey& b) {
    return a.ref == b.ref && a.column == b.column;
  }
};

/// Grouping/aggregation properties that drive sort/hash-aggregate and temp
/// usage decisions.
struct Aggregation {
  bool present = false;
  /// Estimated number of groups (1.0 for a scalar aggregate).
  double output_groups = 1.0;
  /// Keys the grouping needs (sort-based aggregation can reuse matching
  /// input orders).
  std::vector<SortKey> group_keys;
};

/// A query in join-graph form: everything the optimizer needs, with the
/// selectivity estimates fixed up front. The paper assumes the optimizer's
/// selectivity and intermediate-size estimates are accurate (Section 3.3),
/// so they are inputs here, not things the optimizer re-derives per plan.
struct Query {
  std::string name;
  std::vector<TableRef> refs;
  std::vector<JoinEdge> joins;
  Aggregation aggregation;
  std::vector<SortKey> order_by;

  size_t num_tables() const { return refs.size(); }
};

/// Returns the distinct catalog table ids referenced by `q`, in first-use
/// order (input to StorageLayout construction).
std::vector<int> ReferencedTables(const Query& q);

}  // namespace costsense::query

#endif  // COSTSENSE_QUERY_QUERY_H_
