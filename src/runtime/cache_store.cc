#include "runtime/cache_store.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#include "runtime/sink/stages.h"

namespace costsense::runtime {
namespace {

constexpr char kMagic[4] = {'C', 'S', 'O', 'C'};
constexpr uint32_t kFormatVersion = 1;
/// Upper bound on a single record body; anything larger is a corrupt or
/// adversarial length field, not a real entry (the largest legitimate body
/// is a few KiB: scope + plan id + ~64 coordinates + usage vector).
constexpr uint32_t kMaxRecordBytes = 1 << 20;

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

/// Bounds-checked big-endian reader over a loaded snapshot. Any read past
/// the end sets `ok` false and stays false; callers check once per record.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  bool Remaining(size_t n) const { return ok && data.size() - pos >= n; }

  uint64_t TakeBits(int bytes) {
    if (!Remaining(static_cast<size_t>(bytes))) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v = (v << 8) | static_cast<uint8_t>(data[pos++]);
    }
    return v;
  }

  uint16_t TakeU16() { return static_cast<uint16_t>(TakeBits(2)); }
  uint32_t TakeU32() { return static_cast<uint32_t>(TakeBits(4)); }
  uint64_t TakeU64() { return TakeBits(8); }

  std::string_view TakeBytes(size_t n) {
    if (!Remaining(n)) {
      ok = false;
      return {};
    }
    std::string_view v = data.substr(pos, n);
    pos += n;
    return v;
  }
};

std::string EncodeRecordBody(std::string_view scope,
                             const OracleCacheEntry& entry) {
  std::string body;
  PutU16(body, static_cast<uint16_t>(scope.size()));
  body.append(scope);
  PutU16(body, static_cast<uint16_t>(entry.key.size()));
  for (uint64_t q : entry.key) PutU64(body, q);
  PutU16(body, static_cast<uint16_t>(entry.result.plan_id.size()));
  body.append(entry.result.plan_id);
  PutU64(body, std::bit_cast<uint64_t>(entry.result.total_cost));
  if (entry.result.usage.has_value()) {
    body.push_back(1);
    PutU16(body, static_cast<uint16_t>(entry.result.usage->size()));
    for (double u : *entry.result.usage) {
      PutU64(body, std::bit_cast<uint64_t>(u));
    }
  } else {
    body.push_back(0);
  }
  return body;
}

/// Decodes one record body into (scope, entry). Returns false when the
/// body is malformed (short fields or trailing bytes).
bool DecodeRecordBody(std::string_view body, std::string& scope,
                      OracleCacheEntry& entry) {
  Reader r{body};
  scope = std::string(r.TakeBytes(r.TakeU16()));
  const uint16_t dims = r.TakeU16();
  entry.key.clear();
  entry.key.reserve(dims);
  for (uint16_t i = 0; i < dims && r.ok; ++i) entry.key.push_back(r.TakeU64());
  entry.result.plan_id = std::string(r.TakeBytes(r.TakeU16()));
  entry.result.total_cost = std::bit_cast<double>(r.TakeU64());
  entry.result.usage.reset();
  const uint64_t has_usage = r.TakeBits(1);
  if (r.ok && has_usage != 0) {
    const uint16_t n = r.TakeU16();
    std::vector<double> usage;
    usage.reserve(n);
    for (uint16_t i = 0; i < n && r.ok; ++i) {
      usage.push_back(std::bit_cast<double>(r.TakeU64()));
    }
    if (r.ok) entry.result.usage = core::UsageVector(std::move(usage));
  }
  return r.ok && r.pos == body.size();
}

}  // namespace

CacheStore::CacheStore(CacheStoreOptions options)
    : options_(std::move(options)) {
  std::lock_guard<std::mutex> lock(mu_);
  LoadLocked();
}

void CacheStore::LoadLocked() {
  if (options_.path.empty()) return;
  std::ifstream in(options_.path, std::ios::binary);
  if (!in) return;  // No snapshot yet: a silent cold start.
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  if (bytes.empty()) {
    // A zero-byte file is the classic torn-write artifact (created, then
    // the writer died before any bytes landed) — truncation, not a
    // foreign format.
    telemetry_.rejected_truncated = 1;
    return;
  }

  Reader r{bytes};
  // Header. Magic/version problems are reported as rejected_version even
  // when the file is too short to hold the magic: a 2-byte file is not a
  // truncated snapshot, it is not a snapshot.
  std::string_view magic = r.TakeBytes(sizeof(kMagic));
  const uint32_t version = r.TakeU32();
  if (!r.ok || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0 ||
      version != kFormatVersion) {
    telemetry_.rejected_version = 1;
    return;
  }
  const uint64_t catalog_hash = r.TakeU64();
  const uint32_t mantissa_bits = r.TakeU32();
  const uint64_t record_count = r.TakeU64();
  if (!r.ok) {
    telemetry_.rejected_truncated = 1;
    return;
  }
  if (catalog_hash != options_.catalog_hash) {
    telemetry_.rejected_catalog = 1;
    return;
  }
  if (mantissa_bits != static_cast<uint32_t>(options_.mantissa_bits)) {
    telemetry_.rejected_quantization = 1;
    return;
  }

  // Records: validate every length and CRC before publishing anything, so
  // a snapshot is only ever adopted whole.
  std::map<std::string, std::vector<OracleCacheEntry>, std::less<>> staged;
  for (uint64_t i = 0; i < record_count; ++i) {
    const uint32_t body_len = r.TakeU32();
    const uint32_t crc = r.TakeU32();
    if (!r.ok || body_len > kMaxRecordBytes || !r.Remaining(body_len)) {
      telemetry_.rejected_truncated = 1;
      return;
    }
    std::string_view body = r.TakeBytes(body_len);
    if (Crc32(body) != crc) {
      telemetry_.rejected_crc = 1;
      return;
    }
    std::string scope;
    OracleCacheEntry entry;
    if (!DecodeRecordBody(body, scope, entry)) {
      telemetry_.rejected_truncated = 1;
      return;
    }
    staged[std::move(scope)].push_back(std::move(entry));
  }
  if (r.pos != bytes.size()) {
    // Trailing garbage after the declared records: refuse it too.
    telemetry_.rejected_truncated = 1;
    return;
  }

  scopes_ = std::move(staged);
  telemetry_.loaded = record_count;
}

std::vector<OracleCacheEntry> CacheStore::EntriesFor(
    std::string_view scope) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return {};
  return it->second;
}

void CacheStore::Publish(std::string_view scope,
                         std::vector<OracleCacheEntry> entries) {
  std::lock_guard<std::mutex> lock(mu_);
  scopes_.insert_or_assign(std::string(scope), std::move(entries));
}

Status CacheStore::Save() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.path.empty()) {
    return Status::FailedPrecondition("cache store has no path configured");
  }

  // The snapshot streams through a sink chain: raw header bytes, then the
  // CRC framing stage (one Write per record body), all into a crash-safe
  // atomic file (tmp + fsync + rename on Close). A failure at any stage
  // aborts the staging file and the previous snapshot survives.
  sink::AtomicFileSink file(options_.path);
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(header, kFormatVersion);
  PutU64(header, options_.catalog_hash);
  PutU32(header, static_cast<uint32_t>(options_.mantissa_bits));
  uint64_t record_count = 0;
  for (const auto& [scope, entries] : scopes_) {
    record_count += entries.size();
  }
  PutU64(header, record_count);
  Status st = file.Write(header);
  if (!st.ok()) return st;

  sink::CrcFrameSink framed(file);
  for (const auto& [scope, entries] : scopes_) {
    for (const OracleCacheEntry& entry : entries) {
      st = framed.Write(EncodeRecordBody(scope, entry));
      if (!st.ok()) {
        file.Abort();
        return st;
      }
    }
  }
  st = framed.Close();
  if (!st.ok()) return st;
  telemetry_.saved = record_count;
  return Status::Ok();
}

CacheStoreTelemetry CacheStore::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  return telemetry_;
}

}  // namespace costsense::runtime
