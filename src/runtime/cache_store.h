#ifndef COSTSENSE_RUNTIME_CACHE_STORE_H_
#define COSTSENSE_RUNTIME_CACHE_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "runtime/oracle_cache.h"
#include "runtime/sink/crc32.h"

namespace costsense::runtime {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. Every snapshot
/// record carries its body's checksum so a torn write or flipped bit is
/// detected before a single stale result can reach an analysis. The
/// implementation lives in the sink module (the framing stage shares it);
/// this forwarder keeps the historical call sites compiling.
inline uint32_t Crc32(std::string_view data) { return sink::Crc32(data); }

/// Why a snapshot load ended up cold (or didn't). A load either accepts
/// the whole file or rejects the whole file: a snapshot any of whose
/// records fails validation contributes nothing, so a warm start can never
/// mix clean and corrupt state ("never partially load a corrupt shard").
struct CacheStoreTelemetry {
  /// Records made available to importers by a successful load.
  size_t loaded = 0;
  /// Whole-file rejections, by cause. At most one of these is nonzero
  /// after a load; all zero with loaded == 0 means no snapshot existed.
  size_t rejected_crc = 0;           // a record's CRC32 disagreed
  size_t rejected_truncated = 0;     // file/record shorter than declared
  size_t rejected_version = 0;       // bad magic or format version
  size_t rejected_catalog = 0;       // snapshot built over another catalog
  size_t rejected_quantization = 0;  // mantissa-bits mismatch
  /// Records written by the last successful Save().
  size_t saved = 0;

  /// True when the load rejected an existing snapshot for any reason.
  bool rejected() const {
    return rejected_crc + rejected_truncated + rejected_version +
               rejected_catalog + rejected_quantization >
           0;
  }
};

/// Identity of a snapshot: where it lives and which world it belongs to.
struct CacheStoreOptions {
  /// Snapshot file path (COSTSENSE_CACHE_PATH).
  std::string path;
  /// Fingerprint of the catalog the cached results were computed against
  /// (catalog::Catalog::Fingerprint()). A snapshot whose hash disagrees is
  /// refused wholesale: cached plan choices for a different catalog — or a
  /// q-error-perturbed variant of this one — are wrong answers, not warm
  /// ones.
  uint64_t catalog_hash = 0;
  /// Quantization of the cost keys (OracleCacheOptions::mantissa_bits).
  /// Keys quantized differently do not address the same buckets, so a
  /// mismatch also refuses the snapshot.
  int mantissa_bits = 40;
};

/// A crash-safe on-disk snapshot of one or more CachingOracles.
///
/// File format (all integers big-endian, matching the wire protocol):
///
///   header   "CSOC" | u32 format version | u64 catalog hash |
///            u32 mantissa bits | u64 record count
///   record   u32 body length | u32 CRC32(body) | body
///   body     u16 scope length, scope bytes (the query id, e.g. "Q6/shared")
///            u16 dims, dims x u64 quantized cost key
///            u16 plan id length, plan id bytes
///            u64 total_cost (IEEE-754 bits)
///            u8 has_usage [u16 usage length, usage x u64 IEEE-754 bits]
///
/// Loading validates the header and every record's length and CRC before
/// exposing anything; any failure yields a cold cache plus one typed
/// telemetry counter — never a crash, never a partial load. Saving writes
/// the whole snapshot to `<path>.tmp`, fsyncs, and renames over `path`, so
/// a crash mid-save leaves the previous snapshot intact.
///
/// Thread-safe: figure sweeps publish per-query scopes from pool workers.
class CacheStore {
 public:
  /// Construction performs the load: the store is immediately queryable
  /// via EntriesFor()/telemetry(). A missing file is a silent cold start.
  explicit CacheStore(CacheStoreOptions options);

  const CacheStoreOptions& options() const { return options_; }

  /// Loaded entries for `scope` (empty when cold or unknown scope).
  std::vector<OracleCacheEntry> EntriesFor(std::string_view scope) const;

  /// Replaces the entries recorded for `scope` with `entries`. Scopes not
  /// republished keep their loaded entries, so a run that only touched a
  /// few queries still saves the others' warmth forward.
  void Publish(std::string_view scope, std::vector<OracleCacheEntry> entries);

  /// Atomically persists every scope (loaded and published) to
  /// options().path via tmp file + fsync + rename. Typed error on I/O
  /// failure; the previous snapshot survives any failed save.
  [[nodiscard]] Status Save();

  CacheStoreTelemetry telemetry() const;

 private:
  void LoadLocked();

  const CacheStoreOptions options_;
  mutable std::mutex mu_;
  /// scope -> entries; std::map keeps Save() output deterministic.
  std::map<std::string, std::vector<OracleCacheEntry>, std::less<>> scopes_;
  CacheStoreTelemetry telemetry_;
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_RUNTIME_CACHE_STORE_H_
