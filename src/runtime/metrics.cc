#include "runtime/metrics.h"

#include "common/strings.h"

namespace costsense::runtime {

void RuntimeMetrics::AddCacheStats(const OracleCacheStats& stats) {
  cache_hits += stats.hits;
  cache_misses += stats.misses;
  cache_evictions += stats.evictions;
  cache_entries += stats.entries;
}

double RuntimeMetrics::CacheHitRate() const {
  const size_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
}

double RuntimeMetrics::TotalWallMs() const {
  double total = 0.0;
  for (const auto& [name, ms] : phase_wall_ms) total += ms;
  return total;
}

std::string RuntimeMetrics::Render() const {
  std::string out = StrFormat(
      "runtime: threads=%zu tasks=%zu queue_high_water=%zu "
      "cache: hits=%zu misses=%zu evictions=%zu entries=%zu hit_rate=%.3f "
      "degenerate_vertices=%zu\n",
      threads, tasks_run, queue_high_water, cache_hits, cache_misses,
      cache_evictions, cache_entries, CacheHitRate(), degenerate_vertices);
  if (oracle_attempts > 0 || faults_injected > 0 || degraded_points > 0) {
    out += StrFormat(
        "resilience: attempts=%zu retries=%zu failures=%zu "
        "faults_injected=%zu degraded_points=%zu coverage=%.4f\n",
        oracle_attempts, oracle_retries, oracle_failures, faults_injected,
        degraded_points, coverage);
  }
  for (const auto& [name, ms] : phase_wall_ms) {
    out += StrFormat("  phase %-12s %10.1f ms\n", name.c_str(), ms);
  }
  out += StrFormat("  total        %12.1f ms\n", TotalWallMs());
  return out;
}

std::string RuntimeMetrics::ToJsonLine(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& extra) const {
  std::string out = StrFormat(
      "{\"bench\":\"%s\",\"threads\":%zu,\"wall_ms\":%.1f,"
      "\"tasks_run\":%zu,\"queue_high_water\":%zu,"
      "\"cache_hits\":%zu,\"cache_misses\":%zu,\"cache_evictions\":%zu,"
      "\"cache_entries\":%zu,\"cache_hit_rate\":%.4f,"
      "\"degenerate_vertices\":%zu,"
      "\"oracle_attempts\":%zu,\"oracle_retries\":%zu,"
      "\"oracle_failures\":%zu,\"faults_injected\":%zu,"
      "\"degraded_points\":%zu,\"coverage\":%.6f",
      bench_name.c_str(), threads, TotalWallMs(), tasks_run, queue_high_water,
      cache_hits, cache_misses, cache_evictions, cache_entries,
      CacheHitRate(),
      degenerate_vertices, oracle_attempts, oracle_retries, oracle_failures,
      faults_injected, degraded_points, coverage);
  for (const auto& [name, ms] : phase_wall_ms) {
    out += StrFormat(",\"%s_ms\":%.1f", name.c_str(), ms);
  }
  for (const auto& [name, value] : extra) {
    out += StrFormat(",\"%s\":%g", name.c_str(), value);
  }
  out += "}\n";
  return out;
}

}  // namespace costsense::runtime
