#ifndef COSTSENSE_RUNTIME_METRICS_H_
#define COSTSENSE_RUNTIME_METRICS_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "runtime/oracle_cache.h"

namespace costsense::runtime {

/// Wall-clock stopwatch for phase timing in drivers and benches.
class WallTimer {
 public:
  // costsense-lint: allow(R1, "phase timing for stderr/JSON perf lines; never reaches figure stdout")
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               // costsense-lint: allow(R1, "stopwatch read; stderr/JSON metrics only")
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // costsense-lint: allow(R1, "stopwatch reset; stderr/JSON metrics only")
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  // costsense-lint: allow(R1, "stopwatch state; stderr/JSON metrics only")
  std::chrono::steady_clock::time_point start_;
};

/// Aggregated runtime counters for one driver run: thread-pool activity,
/// oracle-cache effectiveness, and wall time per phase. Printed by the
/// figure/table binaries (stderr, to keep figure stdout byte-stable) and
/// serialized as one JSON line for perf-trajectory tracking.
struct RuntimeMetrics {
  size_t threads = 1;
  size_t tasks_run = 0;
  size_t queue_high_water = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;
  /// Entries resident in the oracle cache(s) at snapshot time. For a
  /// long-lived server this is the cross-request warm-cache footprint.
  size_t cache_entries = 0;
  /// Degenerate vertices (non-positive optimal cost) skipped by worst-case
  /// vertex sweeps during the run; summed from WorstCaseResult counters.
  size_t degenerate_vertices = 0;
  /// Resilience-tier accounting (all zero when the tier is off): oracle
  /// attempts including retries, retry attempts, calls that failed after
  /// the whole retry budget, fault events the injector delivered, probe
  /// points the drivers degraded (skipped or routed to a fallback), and
  /// the fraction of oracle calls that produced a usable reply (1.0 =
  /// full coverage, nothing degraded).
  size_t oracle_attempts = 0;
  size_t oracle_retries = 0;
  size_t oracle_failures = 0;
  size_t faults_injected = 0;
  size_t degraded_points = 0;
  double coverage = 1.0;
  /// (phase name, wall milliseconds), in execution order.
  std::vector<std::pair<std::string, double>> phase_wall_ms;

  /// Accumulates one CachingOracle's counters into the cache_* fields
  /// (call once per cache; a server aggregates across its shared caches).
  void AddCacheStats(const OracleCacheStats& stats);

  double CacheHitRate() const;
  double TotalWallMs() const;

  /// Human-readable multi-line block.
  std::string Render() const;

  /// One machine-readable JSON object per line, e.g.
  ///   {"bench":"fig6_separate_devices","threads":8,"wall_ms":912.4,...}
  /// `extra` appends numeric fields (name, value) after the fixed ones.
  std::string ToJsonLine(
      const std::string& bench_name,
      const std::vector<std::pair<std::string, double>>& extra = {}) const;
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_RUNTIME_METRICS_H_
