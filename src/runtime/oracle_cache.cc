#include "runtime/oracle_cache.h"

#include <algorithm>
#include <bit>
#include <list>
#include <mutex>
// costsense-lint: allow(R2, "cache shards use point lookup/insert/erase only; see Shard::map below")
#include <unordered_map>
#include <utility>

#include "common/macros.h"

namespace costsense::runtime {
namespace {

using Key = std::vector<uint64_t>;

/// FNV-1a over the quantized coordinates, finished with a splitmix-style
/// avalanche so the low bits used for shard selection are well mixed.
uint64_t HashKey(const Key& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t q : key) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (q >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

struct KeyHash {
  size_t operator()(const Key& key) const { return HashKey(key); }
};

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint64_t QuantizeCost(double value, int mantissa_bits) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  const int drop = 52 - mantissa_bits;
  if (drop <= 0) return bits;
  const uint64_t half = uint64_t{1} << (drop - 1);
  return (bits + half) >> drop;
}

double DequantizeCost(uint64_t quantized, int mantissa_bits) {
  const int drop = 52 - mantissa_bits;
  if (drop <= 0) return std::bit_cast<double>(quantized);
  return std::bit_cast<double>(quantized << drop);
}

struct CachingOracle::Shard {
  std::mutex mu;
  /// Recency list, most recent at the front; map entries point into it.
  std::list<Key> lru;
  struct Entry {
    core::OracleResult result;
    std::list<Key>::iterator lru_it;
  };
  // costsense-lint: allow(R2, "never iterated: stats() reads size() and Clear() clears; eviction order comes from the lru list, so iteration order cannot reach output")
  std::unordered_map<Key, Entry, KeyHash> map;
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t imported = 0;
};

CachingOracle::CachingOracle(core::PlanOracle& base,
                             const OracleCacheOptions& options)
    : base_(base),
      options_(options),
      shard_mask_(RoundUpToPowerOfTwo(options.shards == 0 ? 1 : options.shards) -
                  1),
      per_shard_capacity_(
          std::max<size_t>(1, options.max_entries / (shard_mask_ + 1))) {
  COSTSENSE_CHECK(options_.mantissa_bits > 0 && options_.mantissa_bits <= 52);
  shards_.reserve(shard_mask_ + 1);
  for (size_t i = 0; i <= shard_mask_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachingOracle::~CachingOracle() = default;

core::OracleResult CachingOracle::Optimize(const core::CostVector& c) {
  Key key;
  key.reserve(c.size());
  for (double v : c) key.push_back(QuantizeCost(v, options_.mantissa_bits));
  Shard& shard = *shards_[HashKey(key) & shard_mask_];

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      // LRU-ish: refresh recency on hit.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return it->second.result;
    }
    ++shard.misses;
  }

  // Compute outside the lock, at the key's canonical point so every thread
  // that misses on this key produces the identical result.
  core::CostVector canonical(c.size());
  for (size_t i = 0; i < key.size(); ++i) {
    canonical[i] = DequantizeCost(key[i], options_.mantissa_bits);
  }
  core::OracleResult result = base_.Optimize(canonical);

  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(std::move(key));
  if (inserted) {
    shard.lru.push_front(it->first);
    it->second.result = result;
    it->second.lru_it = shard.lru.begin();
    if (shard.map.size() > per_shard_capacity_) {
      const Key& victim = shard.lru.back();
      shard.map.erase(victim);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }
  // A racing thread may have inserted the same key first; its value is
  // identical (same canonical point), so the duplicate compute is dropped.
  return result;
}

OracleCacheStats CachingOracle::stats() const {
  OracleCacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->map.size();
    s.imported += shard->imported;
  }
  return s;
}

std::vector<OracleCacheEntry> CachingOracle::Export() const {
  std::vector<OracleCacheEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      out.push_back(OracleCacheEntry{key, entry.result});
    }
  }
  // Sort by key: shard iteration order is a function of hash layout, and
  // the snapshot bytes must be a pure function of the cache contents.
  std::sort(out.begin(), out.end(),
            [](const OracleCacheEntry& a, const OracleCacheEntry& b) {
              return a.key < b.key;
            });
  return out;
}

size_t CachingOracle::Import(const std::vector<OracleCacheEntry>& entries) {
  size_t inserted = 0;
  for (const OracleCacheEntry& entry : entries) {
    Shard& shard = *shards_[HashKey(entry.key) & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, fresh] = shard.map.try_emplace(entry.key);
    if (!fresh) continue;
    shard.lru.push_front(it->first);
    it->second.result = entry.result;
    it->second.lru_it = shard.lru.begin();
    ++shard.imported;
    ++inserted;
    if (shard.map.size() > per_shard_capacity_) {
      const Key& victim = shard.lru.back();
      shard.map.erase(victim);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }
  return inserted;
}

void CachingOracle::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
}

}  // namespace costsense::runtime
