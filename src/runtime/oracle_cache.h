#ifndef COSTSENSE_RUNTIME_ORACLE_CACHE_H_
#define COSTSENSE_RUNTIME_ORACLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/oracle.h"

namespace costsense::runtime {

/// Tuning for CachingOracle.
struct OracleCacheOptions {
  /// Number of independently locked shards (rounded up to a power of two).
  /// Probes hash-distribute across shards, so concurrent sweeps rarely
  /// contend on the same mutex.
  size_t shards = 16;
  /// Total entry bound across all shards; each shard evicts its least
  /// recently used entry once it exceeds max_entries / shards.
  size_t max_entries = 1 << 16;
  /// Mantissa bits retained when quantizing each cost coordinate for the
  /// cache key (52 = exact doubles). The default 40 bits (~12 significant
  /// decimal digits) merges probe points that differ only by float round-off
  /// — e.g. a box center recomputed as sqrt((c/d)*(c*d)) versus the
  /// baseline c itself.
  int mantissa_bits = 40;
};

/// Hit/miss/eviction counters for a CachingOracle.
struct OracleCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  /// Entries currently resident across all shards.
  size_t entries = 0;
  /// Entries seeded by Import() (a warm start from a snapshot).
  size_t imported = 0;
  double hit_rate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// One memoized result in snapshot form: the quantized cost key and the
/// oracle's reply at that key's canonical point. This is the unit the
/// persistence layer (runtime/cache_store.h) checksums and stores.
struct OracleCacheEntry {
  std::vector<uint64_t> key;
  core::OracleResult result;
};

/// Quantizes a cost coordinate to `mantissa_bits` of mantissa, rounding to
/// nearest (the carry into the exponent field is exactly binade rounding
/// for finite IEEE doubles). Exposed for tests.
uint64_t QuantizeCost(double value, int mantissa_bits);

/// The canonical representative of QuantizeCost's bucket (the unique
/// member whose dropped mantissa bits are zero). The cache evaluates the
/// base oracle at this point, so all vectors sharing a key share one
/// result — which is what makes concurrent misses benign: whichever
/// thread computes first stores the same value any loser would.
double DequantizeCost(uint64_t quantized, int mantissa_bits);

/// A sharded, memoizing, thread-safe PlanOracle decorator.
///
/// Wraps any PlanOracle behind the same narrow interface and memoizes
/// Optimize() by a hash of the quantized cost vector, so vertex sweeps,
/// segment bisection and completeness probing never pay for the same
/// optimizer invocation twice — serially or across threads. The base
/// oracle is invoked outside the shard lock (optimizer calls are the
/// expensive part) and must itself be safe to call concurrently when the
/// cache is shared across threads (blackbox::NarrowOptimizer qualifies).
///
/// Lookups are exact on the quantized key: colliding hashes compare full
/// keys, so two genuinely different cost vectors never alias. Results are
/// computed at the key's canonical (dequantized) point, which keeps runs
/// bit-identical regardless of thread count and probe order.
class CachingOracle : public core::PlanOracle {
 public:
  /// `base` is not owned and must outlive this.
  explicit CachingOracle(core::PlanOracle& base,
                         const OracleCacheOptions& options = {});
  ~CachingOracle() override;

  core::OracleResult Optimize(const core::CostVector& c) override;
  size_t dims() const override { return base_.dims(); }

  OracleCacheStats stats() const;

  /// Drops every entry (counters are preserved).
  void Clear();

  /// Snapshot of every resident entry, sorted by key so the serialized
  /// form is deterministic regardless of shard layout or probe order.
  std::vector<OracleCacheEntry> Export() const;

  /// Seeds entries into the cache (the warm-start path). Existing keys
  /// are left untouched, capacity bounds still evict, and hit/miss
  /// counters are unaffected — a warm run's first probe of an imported
  /// key counts as an ordinary hit. Returns the number inserted.
  size_t Import(const std::vector<OracleCacheEntry>& entries);

  /// Mantissa bits the cache quantizes keys with (snapshot compatibility).
  int mantissa_bits() const { return options_.mantissa_bits; }

 private:
  struct Shard;

  core::PlanOracle& base_;
  const OracleCacheOptions options_;
  const size_t shard_mask_;
  const size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_RUNTIME_ORACLE_CACHE_H_
