#include "runtime/oracle_stack.h"

namespace costsense::runtime {

StackTelemetry OracleStack::telemetry() const {
  StackTelemetry t;
  t.cache = cache_->stats();
  if (injector_ != nullptr) t.faults = injector_->log();
  if (resilient_ != nullptr) {
    t.resilience = resilient_->stats();
    t.resilient = true;
  }
  return t;
}

void OracleStack::PublishToStore() {
  if (store_ == nullptr || scope_.empty()) return;
  store_->Publish(scope_, cache_->Export());
}

OracleStackBuilder& OracleStackBuilder::WithCache(
    const OracleCacheOptions& options) {
  cache_ = options;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::WithResilience(
    const resilience::FaultInjectionOptions& faults,
    const resilience::ResilientOracleOptions& retry,
    resilience::Clock* clock) {
  resilience_ = true;
  faults_ = faults;
  retry_ = retry;
  clock_ = clock;
  return *this;
}

OracleStackBuilder& OracleStackBuilder::WithStore(CacheStore* store) {
  store_ = store;
  return *this;
}

OracleStack OracleStackBuilder::Build(core::PlanOracle& base) const {
  return Build(base, std::string_view());
}

OracleStack OracleStackBuilder::Build(core::PlanOracle& base,
                                      std::string_view scope) const {
  OracleStack stack;
  stack.cache_ = std::make_unique<CachingOracle>(base, cache_);
  if (store_ != nullptr && !scope.empty()) {
    stack.store_ = store_;
    stack.scope_ = std::string(scope);
    // The warm start. Imported entries were computed at their keys'
    // canonical points, so a warm sweep returns bit-identical results —
    // it just skips the optimizer invocations.
    (void)stack.cache_->Import(store_->EntriesFor(scope));
  }
  if (resilience_) {
    stack.injector_ = std::make_unique<resilience::FaultInjectingOracle>(
        *stack.cache_, faults_, clock_);
    stack.resilient_ = std::make_unique<resilience::ResilientOracle>(
        *stack.injector_, retry_, clock_);
  }
  return stack;
}

}  // namespace costsense::runtime
