#ifndef COSTSENSE_RUNTIME_ORACLE_STACK_H_
#define COSTSENSE_RUNTIME_ORACLE_STACK_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/oracle.h"
#include "runtime/cache_store.h"
#include "runtime/oracle_cache.h"
#include "runtime/resilience/clock.h"
#include "runtime/resilience/fault_injector.h"
#include "runtime/resilience/resilient_oracle.h"

namespace costsense::runtime {

/// One snapshot of every decorator's counters — the metrics-recorder tier
/// of the stack. Fields for tiers that were not built stay zero.
struct StackTelemetry {
  OracleCacheStats cache;
  resilience::FaultLog faults;
  resilience::ResilienceStats resilience;
  /// True when the fault/retry tiers exist (resilient() is non-null).
  bool resilient = false;
};

/// An assembled PlanOracle decorator chain over a base optimizer oracle:
///
///   drivers -> ResilientOracle -> FaultInjectingOracle -> CachingOracle
///           -> base (e.g. blackbox::NarrowOptimizer)
///
/// Faults are injected *above* the cache: a retried probe re-enters the
/// injector (consuming its burst) and then lands on the warm cache, so
/// retries cost no optimizer invocations and the cache only ever holds
/// clean replies. This order is what makes figure output byte-identical
/// under absorbed faults, and OracleStack is the one place it is encoded.
///
/// The base oracle is not owned and must outlive the stack. Every layer
/// also remains individually constructible (CachingOracle,
/// FaultInjectingOracle, ResilientOracle) for targeted tests.
///
/// The stack composes runtime decorators over the pure core::PlanOracle
/// interface, so it lives in runtime/; seeding a builder from an
/// EngineConfig is the engine module's job (engine::MakeOracleStackBuilder)
/// so that runtime stays below engine in the layer order.
class OracleStack {
 public:
  OracleStack(OracleStack&&) = default;
  OracleStack& operator=(OracleStack&&) = default;

  /// The memoizing tier; always present. Drivers on the infallible path
  /// probe this directly.
  CachingOracle& cache() { return *cache_; }
  const CachingOracle& cache() const { return *cache_; }

  /// Top of the fallible chain, or nullptr when the stack was built
  /// without the resilience tier.
  core::FalliblePlanOracle* resilient() { return resilient_.get(); }

  /// The fault tier, or nullptr without resilience (tests reach in to
  /// read the fault log).
  resilience::FaultInjectingOracle* injector() { return injector_.get(); }

  /// Snapshot of all per-tier counters.
  StackTelemetry telemetry() const;

  /// Publishes the cache's current contents back to the persistence scope
  /// this stack was built with (no-op for stacks built without a store).
  /// The store batches scopes in memory; CacheStore::Save() writes disk.
  void PublishToStore();

 private:
  friend class OracleStackBuilder;
  OracleStack() = default;

  std::unique_ptr<CachingOracle> cache_;
  std::unique_ptr<resilience::FaultInjectingOracle> injector_;
  std::unique_ptr<resilience::ResilientOracle> resilient_;
  CacheStore* store_ = nullptr;  // not owned
  std::string scope_;
};

/// Assembles OracleStacks from explicit options. One builder can stamp out
/// many per-query stacks (Build is const).
class OracleStackBuilder {
 public:
  OracleStackBuilder() = default;

  /// Sizing for the memoizing tier (always built).
  OracleStackBuilder& WithCache(const OracleCacheOptions& options);

  /// Enables the fault-injection + retry tiers. `clock` drives latency
  /// faults, backoff and deadlines; null = real steady clock.
  OracleStackBuilder& WithResilience(
      const resilience::FaultInjectionOptions& faults,
      const resilience::ResilientOracleOptions& retry,
      resilience::Clock* clock = nullptr);

  /// Attaches a snapshot store (not owned; may be null to detach).
  /// Stacks built with a non-empty scope import the store's entries for
  /// that scope at Build time (the warm start) and can publish back via
  /// OracleStack::PublishToStore().
  OracleStackBuilder& WithStore(CacheStore* store);

  OracleStack Build(core::PlanOracle& base) const;

  /// Builds a stack bound to persistence scope `scope` (e.g. "Q6/shared").
  /// Identical to Build(base) when no store is attached.
  OracleStack Build(core::PlanOracle& base, std::string_view scope) const;

 private:
  OracleCacheOptions cache_;
  bool resilience_ = false;
  resilience::FaultInjectionOptions faults_;
  resilience::ResilientOracleOptions retry_;
  resilience::Clock* clock_ = nullptr;
  CacheStore* store_ = nullptr;  // not owned
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_RUNTIME_ORACLE_STACK_H_
