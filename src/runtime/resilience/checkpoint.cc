#include "runtime/resilience/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"

namespace costsense::runtime::resilience {
namespace {

constexpr const char* kHeaderTag = "costsense-sweep-checkpoint";
constexpr int kVersion = 1;

}  // namespace

SweepCheckpoint::SweepCheckpoint(uint64_t block_size)
    : block_size_(block_size) {
  COSTSENSE_CHECK_MSG(block_size_ > 0, "checkpoint block size must be > 0");
}

SweepCheckpoint::SweepCheckpoint(SweepCheckpoint&& other) noexcept
    : block_size_(other.block_size_) {
  std::lock_guard<std::mutex> lock(other.mu_);
  blocks_ = std::move(other.blocks_);
}

SweepCheckpoint& SweepCheckpoint::operator=(SweepCheckpoint&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    block_size_ = other.block_size_;
    blocks_ = std::move(other.blocks_);
  }
  return *this;
}

void SweepCheckpoint::Store(uint64_t block, SweepBlockResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[block] = std::move(result);
}

bool SweepCheckpoint::Lookup(uint64_t block, SweepBlockResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  *out = it->second;
  return true;
}

size_t SweepCheckpoint::blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

std::string SweepCheckpoint::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat("%s v%d block_size=%llu\n", kHeaderTag, kVersion,
                              static_cast<unsigned long long>(block_size_));
  for (const auto& [block, r] : blocks_) {
    // %a renders the exact bit pattern of the double, so gtc survives a
    // serialize/load round trip without rounding.
    out += StrFormat("block=%llu gtc=%a mask=%llu any=%d degenerate=%llu "
                     "rival=%s\n",
                     static_cast<unsigned long long>(block), r.gtc,
                     static_cast<unsigned long long>(r.mask),
                     r.any ? 1 : 0,
                     static_cast<unsigned long long>(r.degenerate),
                     r.rival.c_str());
  }
  return out;
}

Result<SweepCheckpoint> SweepCheckpoint::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("checkpoint snapshot is empty");
  }
  char tag[64];
  int version = 0;
  unsigned long long block_size = 0;
  if (std::sscanf(line.c_str(), "%63s v%d block_size=%llu", tag, &version,
                  &block_size) != 3 ||
      std::string(tag) != kHeaderTag) {
    return Status::InvalidArgument("checkpoint snapshot has a bad header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("checkpoint snapshot version %d unsupported", version));
  }
  if (block_size == 0) {
    return Status::InvalidArgument("checkpoint block size must be > 0");
  }

  SweepCheckpoint ckpt(block_size);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    unsigned long long block = 0;
    double gtc = 0.0;
    unsigned long long mask = 0;
    int any = 0;
    unsigned long long degenerate = 0;
    int rival_at = -1;
    // rival= is last on the line and may contain spaces; capture its
    // starting offset and slice manually.
    if (std::sscanf(line.c_str(),
                    "block=%llu gtc=%la mask=%llu any=%d degenerate=%llu "
                    "rival=%n",
                    &block, &gtc, &mask, &any, &degenerate, &rival_at) != 5 ||
        rival_at < 0) {
      return Status::InvalidArgument(
          StrFormat("checkpoint snapshot line %zu is malformed", line_no));
    }
    SweepBlockResult r;
    r.gtc = gtc;
    r.mask = mask;
    r.any = any != 0;
    r.degenerate = degenerate;
    r.rival = line.substr(static_cast<size_t>(rival_at));
    ckpt.blocks_[block] = std::move(r);
  }
  return ckpt;
}

}  // namespace costsense::runtime::resilience
