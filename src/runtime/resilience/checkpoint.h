#ifndef COSTSENSE_RUNTIME_RESILIENCE_CHECKPOINT_H_
#define COSTSENSE_RUNTIME_RESILIENCE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace costsense::runtime::resilience {

/// The reduced outcome of one fixed-size block of vertex ranks — the same
/// information a sweep chunk carries, in a serializable shape. A block is
/// only ever recorded when every vertex in it was evaluated cleanly, so a
/// stored block never needs re-probing on resume.
struct SweepBlockResult {
  /// Best global relative cost seen in the block (1.0 when `any` is false).
  double gtc = 1.0;
  /// Vertex mask achieving it (the order-free tie-break key).
  uint64_t mask = 0;
  /// Rival plan id at that vertex.
  std::string rival;
  /// Whether any non-degenerate vertex was evaluated.
  bool any = false;
  /// Vertices skipped for a non-positive optimal cost.
  uint64_t degenerate = 0;
};

/// A resumable record of a long vertex sweep, keyed by fixed-size blocks of
/// vertex ranks.
///
/// The block grid is a property of the sweep (`block_size` ranks per
/// block), deliberately independent of how a thread pool chunks the work:
/// a checkpoint taken at 1 thread resumes correctly at any thread count
/// and vice versa. Only fully-clean blocks are stored — a block any of
/// whose vertices failed (oracle error after retries) is left absent so a
/// resume re-evaluates exactly the failed and never-reached blocks,
/// reusing the oracle cache for the vertices that did answer.
///
/// Store/Lookup are safe to call concurrently from pool workers.
class SweepCheckpoint {
 public:
  explicit SweepCheckpoint(uint64_t block_size = 256);

  /// Movable (the mutex is not moved; the target gets a fresh one) so it
  /// can travel in a Result. Not copyable.
  SweepCheckpoint(SweepCheckpoint&& other) noexcept;
  SweepCheckpoint& operator=(SweepCheckpoint&& other) noexcept;
  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  uint64_t block_size() const { return block_size_; }

  /// Records `result` for block index `block` (overwrites a prior entry).
  /// Only call for blocks whose every vertex evaluated cleanly.
  void Store(uint64_t block, SweepBlockResult result);

  /// Copies block `block` into `*out` when present; returns whether it was.
  bool Lookup(uint64_t block, SweepBlockResult* out) const;

  /// Number of stored blocks.
  size_t blocks() const;

  /// Plain-text snapshot: a version header carrying the block size, then
  /// one line per block. Doubles are rendered as hex floats so a load
  /// restores them bit for bit.
  std::string Serialize() const;

  /// Parses a Serialize() snapshot. The checkpoint's block size is taken
  /// from the header; malformed input yields a typed error, never a
  /// partially-loaded checkpoint.
  [[nodiscard]] static Result<SweepCheckpoint> Deserialize(const std::string& text);

 private:
  uint64_t block_size_;
  mutable std::mutex mu_;
  std::map<uint64_t, SweepBlockResult> blocks_;
};

}  // namespace costsense::runtime::resilience

#endif  // COSTSENSE_RUNTIME_RESILIENCE_CHECKPOINT_H_
