#include "runtime/resilience/clock.h"

#include <chrono>
#include <thread>

namespace costsense::runtime::resilience {
namespace {

class SteadyClock final : public Clock {
 public:
  uint64_t NowNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepFor(uint64_t nanos) override {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
};

}  // namespace

Clock& Clock::Real() {
  static SteadyClock* clock = new SteadyClock();
  return *clock;
}

}  // namespace costsense::runtime::resilience
