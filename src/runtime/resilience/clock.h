#ifndef COSTSENSE_RUNTIME_RESILIENCE_CLOCK_H_
#define COSTSENSE_RUNTIME_RESILIENCE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace costsense::runtime::resilience {

/// Injectable time source for the resilience layer. Deadline budgets,
/// backoff sleeps and circuit-breaker cooldowns all read and advance time
/// through this interface, so tests and the deterministic fault-sweep
/// harness can substitute a manual clock and replay the exact same
/// timeout/backoff decisions at any thread count and machine speed.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() = 0;

  /// Blocks (or simulates blocking) for `nanos`.
  virtual void SleepFor(uint64_t nanos) = 0;

  /// Process-wide steady-clock instance.
  static Clock& Real();
};

/// A virtual clock: NowNanos() returns a counter that only moves when
/// SleepFor() or Advance() is called. Sleeping advances the shared counter
/// immediately, so retry backoff costs zero wall time under test while
/// still being visible to deadline checks. The counter is shared by every
/// thread using this instance — one thread's sleep ages every thread's
/// budget, which is exactly the worst case a deadline test wants.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 0) : now_(start_nanos) {}

  uint64_t NowNanos() override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepFor(uint64_t nanos) override { Advance(nanos); }

  void Advance(uint64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace costsense::runtime::resilience

#endif  // COSTSENSE_RUNTIME_RESILIENCE_CLOCK_H_
