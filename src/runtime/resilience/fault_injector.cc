#include "runtime/resilience/fault_injector.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
// costsense-lint: allow(R2, "per-key fault state; the only iteration sums integer counters, see Shard::keys below")
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"
#include "common/strings.h"
#include "runtime/oracle_cache.h"

namespace costsense::runtime::resilience {
namespace {

using Key = std::vector<uint64_t>;

/// Same construction as the oracle cache's key hash: FNV-1a over the
/// quantized coordinates plus an avalanche finish. Keeping the hash local
/// (rather than sharing the cache's internal one) decouples the fault
/// stream from cache implementation changes.
uint64_t HashKey(const Key& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t q : key) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (q >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

struct KeyHash {
  size_t operator()(const Key& key) const { return HashKey(key); }
};

constexpr size_t kNumShards = 16;  // power of two

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransientError:
      return "transient";
    case FaultKind::kLatencyOverrun:
      return "latency";
    case FaultKind::kGarbageCost:
      return "garbage-cost";
    case FaultKind::kInvalidPlanId:
      return "invalid-plan";
  }
  return "unknown";
}

/// Everything the injector decided about one cost-vector key, fixed at
/// first touch from the key's forked RNG stream and immutable afterwards.
/// `attempts` is the only mutable field; fetch_add distributes attempt
/// indices across concurrent callers.
struct FaultInjectingOracle::KeyState {
  std::vector<FaultKind> burst;  // kinds of the first burst.size() attempts
  double perturb_factor = 1.0;   // multiplicative, 1.0 = clean
  std::atomic<uint64_t> attempts{0};
};

struct FaultInjectingOracle::Shard {
  std::mutex mu;
  // costsense-lint: allow(R2, "audited: log() is the only iteration and it accumulates uint64 counters with +=, which is exactly commutative, so iteration order cannot change the FaultLog; all other access is point lookup")
  std::unordered_map<Key, std::unique_ptr<KeyState>, KeyHash> keys;
};

FaultInjectingOracle::FaultInjectingOracle(core::PlanOracle& base,
                                           const FaultInjectionOptions& options,
                                           Clock* clock)
    : base_(base),
      options_(options),
      clock_(clock != nullptr ? *clock : Clock::Real()) {
  COSTSENSE_CHECK_MSG(
      options_.fault_rate >= 0.0 && options_.fault_rate <= 1.0,
      "fault_rate must be a probability");
  COSTSENSE_CHECK_MSG(
      options_.perturb_rate >= 0.0 && options_.perturb_rate <= 1.0,
      "perturb_rate must be a probability");
  COSTSENSE_CHECK_MSG(options_.key_mantissa_bits > 0 &&
                          options_.key_mantissa_bits <= 52,
                      "key_mantissa_bits out of range");
  shards_.reserve(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FaultInjectingOracle::~FaultInjectingOracle() = default;

Result<core::OracleResult> FaultInjectingOracle::TryOptimize(
    const core::CostVector& c) {
  Key key;
  key.reserve(c.size());
  for (double v : c) {
    key.push_back(QuantizeCost(v, options_.key_mantissa_bits));
  }
  const uint64_t key_hash = HashKey(key);
  Shard& shard = *shards_[key_hash & (kNumShards - 1)];

  KeyState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.keys.try_emplace(std::move(key));
    if (inserted) {
      // First touch: derive this key's whole fault script from a stream
      // that depends only on (seed, key), never on arrival order.
      it->second = std::make_unique<KeyState>();
      Rng stream = Rng(options_.seed).Fork(key_hash);
      double wt = options_.weight_transient;
      double wl = options_.weight_latency;
      double wg = options_.weight_garbage_cost;
      double wi = options_.weight_invalid_plan;
      if (wt + wl + wg + wi <= 0.0) wt = 1.0;
      const double wsum = wt + wl + wg + wi;
      // Burst length is geometric in the fault rate, capped at max_burst:
      // the first draw doubles as the "does this key fault at all"
      // decision, each further draw extends the burst.
      size_t burst = 0;
      while (burst < options_.max_burst &&
             stream.Uniform() < options_.fault_rate) {
        ++burst;
      }
      for (size_t a = 0; a < burst; ++a) {
        const double pick = stream.Uniform() * wsum;
        FaultKind kind;
        if (pick < wt) {
          kind = FaultKind::kTransientError;
        } else if (pick < wt + wl) {
          kind = FaultKind::kLatencyOverrun;
        } else if (pick < wt + wl + wg) {
          kind = FaultKind::kGarbageCost;
        } else {
          kind = FaultKind::kInvalidPlanId;
        }
        it->second->burst.push_back(kind);
      }
      if (options_.perturb_rate > 0.0 &&
          stream.Uniform() < options_.perturb_rate) {
        it->second->perturb_factor =
            1.0 + stream.Uniform(-1.0, 1.0) * options_.perturb_rel_error;
      }
    }
    state = it->second.get();
  }

  const uint64_t attempt =
      state->attempts.fetch_add(1, std::memory_order_relaxed);
  const FaultKind kind = attempt < state->burst.size()
                             ? state->burst[attempt]
                             : FaultKind::kNone;

  switch (kind) {
    case FaultKind::kTransientError:
      return Status::Unavailable(
          StrFormat("injected transient fault (attempt %llu)",
                    static_cast<unsigned long long>(attempt)));
    case FaultKind::kLatencyOverrun: {
      // The reply itself is clean; it just takes too long. Callers without
      // a per-call deadline will happily accept it.
      clock_.SleepFor(options_.latency_nanos);
      core::OracleResult r = base_.Optimize(c);
      r.total_cost *= state->perturb_factor;
      return r;
    }
    case FaultKind::kGarbageCost: {
      core::OracleResult r = base_.Optimize(c);
      r.total_cost = std::numeric_limits<double>::quiet_NaN();
      return r;
    }
    case FaultKind::kInvalidPlanId: {
      core::OracleResult r = base_.Optimize(c);
      r.plan_id.clear();
      return r;
    }
    case FaultKind::kNone:
      break;
  }
  core::OracleResult r = base_.Optimize(c);
  r.total_cost *= state->perturb_factor;
  return r;
}

FaultLog FaultInjectingOracle::log() const {
  // The log is reconstructed from per-key state rather than kept as global
  // counters: min(burst, attempts) per key is interleaving-independent, so
  // two runs that made the same probes report byte-identical logs even if
  // their threads raced differently.
  FaultLog log;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, state] : shard->keys) {
      const uint64_t attempts =
          state->attempts.load(std::memory_order_relaxed);
      log.calls += attempts;
      const uint64_t faulted =
          std::min<uint64_t>(attempts, state->burst.size());
      log.faults += faulted;
      if (!state->burst.empty()) ++log.faulty_keys;
      for (uint64_t a = 0; a < faulted; ++a) {
        switch (state->burst[a]) {
          case FaultKind::kTransientError:
            ++log.transient;
            break;
          case FaultKind::kLatencyOverrun:
            ++log.latency;
            break;
          case FaultKind::kGarbageCost:
            ++log.garbage_cost;
            break;
          case FaultKind::kInvalidPlanId:
            ++log.invalid_plan;
            break;
          case FaultKind::kNone:
            break;
        }
      }
      const uint64_t clean = attempts - faulted;
      log.clean_calls += clean;
      if (state->perturb_factor != 1.0) {
        // Latency replies are also perturbed when the key carries a
        // factor; only hard faults (transient/garbage/invalid) are not
        // counted as perturbed replies.
        uint64_t latency_replies = 0;
        for (uint64_t a = 0; a < faulted; ++a) {
          if (state->burst[a] == FaultKind::kLatencyOverrun) {
            ++latency_replies;
          }
        }
        log.perturbed_calls += clean + latency_replies;
      }
    }
  }
  return log;
}

void FaultInjectingOracle::Reset() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->keys.clear();
  }
}

}  // namespace costsense::runtime::resilience
