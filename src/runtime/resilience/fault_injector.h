#ifndef COSTSENSE_RUNTIME_RESILIENCE_FAULT_INJECTOR_H_
#define COSTSENSE_RUNTIME_RESILIENCE_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/oracle.h"
#include "runtime/resilience/clock.h"

namespace costsense::runtime::resilience {

/// The fault taxonomy the injector draws from — the failure modes a real
/// narrow optimizer interface exhibits under production load.
enum class FaultKind {
  kNone = 0,
  /// The interface transiently refuses to answer (typed kUnavailable).
  kTransientError,
  /// The reply arrives, but only after the simulated latency has been
  /// charged to the injected clock — a caller with a per-call deadline
  /// will classify it as a timeout.
  kLatencyOverrun,
  /// The reply carries a non-finite total cost.
  kGarbageCost,
  /// The reply carries an empty (stale/invalid) plan id.
  kInvalidPlanId,
};

/// Returns a human-readable name for `kind` (e.g. "transient").
const char* FaultKindName(FaultKind kind);

/// Tuning for FaultInjectingOracle. Fault decisions are a pure function of
/// (seed, quantized cost vector, attempt index at that vector), so a run is
/// reproducible at any thread count and any probe interleaving.
struct FaultInjectionOptions {
  /// Probability that a given cost-vector key starts a fault burst: its
  /// first `burst` attempts fail, every later attempt returns the clean
  /// base reply. 0 disables injection entirely.
  double fault_rate = 0.0;
  /// Cap on consecutive faulting attempts per key. A retry budget larger
  /// than this cap is guaranteed to reach the clean reply, which is what
  /// makes the fault-sweep equivalence invariant provable rather than
  /// merely probable.
  size_t max_burst = 3;
  /// Relative weights for the fault kinds drawn within a burst; a zero
  /// weight disables that kind. All zero falls back to transient errors.
  double weight_transient = 1.0;
  double weight_latency = 0.0;
  double weight_garbage_cost = 0.0;
  double weight_invalid_plan = 0.0;
  /// Simulated service time of a kLatencyOverrun reply, charged to the
  /// injected clock before the (otherwise clean) reply is returned.
  uint64_t latency_nanos = 10'000'000;
  /// Probability that a key's replies carry a *persistent* multiplicative
  /// total-cost perturbation (every call at that key, forever). This
  /// models bounded optimizer cost noise; it is undetectable per call by
  /// design and therefore kept separate from the burst machinery — enable
  /// it for the noisy-extraction property tests, never for byte-equality
  /// sweeps.
  double perturb_rate = 0.0;
  /// Relative amplitude of the persistent perturbation: the factor is
  /// drawn uniformly from [1 - e, 1 + e].
  double perturb_rel_error = 0.01;
  /// Mantissa bits kept when quantizing cost coordinates into fault keys.
  /// Matches OracleCacheOptions::mantissa_bits so a fault key corresponds
  /// to exactly one cache entry.
  int key_mantissa_bits = 40;
  uint64_t seed = 0xFA17FA17;
};

/// Running totals of injected faults. `faults` counts individual fault
/// events (one per faulting attempt), which is the quantity the
/// graceful-degradation accounting must reproduce: with a zero retry
/// budget every event surfaces as exactly one failed driver probe.
struct FaultLog {
  size_t calls = 0;
  size_t clean_calls = 0;
  size_t faults = 0;
  size_t transient = 0;
  size_t latency = 0;
  size_t garbage_cost = 0;
  size_t invalid_plan = 0;
  /// Calls whose (clean) reply was perturbed.
  size_t perturbed_calls = 0;
  /// Distinct keys that carry a fault burst.
  size_t faulty_keys = 0;
};

/// A deterministic, seeded fault-injecting PlanOracle decorator.
///
/// Wraps an infallible oracle (typically a runtime::CachingOracle) behind
/// the fallible interface and injects the taxonomy above at configurable
/// rates. Determinism contract: each quantized cost vector derives, via an
/// Rng::Fork stream keyed by its hash, a fixed fault burst (length and
/// per-attempt kinds). Attempt indices are claimed from a per-key atomic
/// counter, so the *total* fault events at a key equal
/// min(burst, attempts made there) no matter how concurrent callers
/// interleave — fault logs are reproducible at any thread count.
class FaultInjectingOracle final : public core::FalliblePlanOracle {
 public:
  /// `base` is not owned and must outlive this. `clock` defaults to the
  /// real steady clock; pass a ManualClock to make latency faults free.
  FaultInjectingOracle(core::PlanOracle& base,
                       const FaultInjectionOptions& options,
                       Clock* clock = nullptr);
  ~FaultInjectingOracle() override;

  [[nodiscard]] Result<core::OracleResult> TryOptimize(const core::CostVector& c) override;
  size_t dims() const override { return base_.dims(); }

  FaultLog log() const;

  /// Forgets every key's attempt counter and zeroes the log, so the next
  /// run replays the identical fault sequence from scratch.
  void Reset();

 private:
  struct Shard;
  struct KeyState;

  core::PlanOracle& base_;
  const FaultInjectionOptions options_;
  Clock& clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace costsense::runtime::resilience

#endif  // COSTSENSE_RUNTIME_RESILIENCE_FAULT_INJECTOR_H_
