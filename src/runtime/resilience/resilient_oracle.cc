#include "runtime/resilience/resilient_oracle.h"

#include <cmath>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "runtime/oracle_cache.h"

namespace costsense::runtime::resilience {
namespace {

uint64_t HashQuantized(const core::CostVector& c, int mantissa_bits,
                       uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (double v : c) {
    const uint64_t q = QuantizeCost(v, mantissa_bits);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (q >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

ResilientOracle::ResilientOracle(core::FalliblePlanOracle& base,
                                 const ResilientOracleOptions& options,
                                 Clock* clock)
    : base_(base),
      options_(options),
      clock_(clock != nullptr ? *clock : Clock::Real()) {
  run_start_ns_ = clock_.NowNanos();
}

Status ResilientOracle::ValidateReply(const core::OracleResult& r) const {
  if (!std::isfinite(r.total_cost)) {
    return Status::Internal("oracle reply has non-finite total cost");
  }
  if (options_.require_positive_cost && r.total_cost <= 0.0) {
    return Status::Internal(
        StrFormat("oracle reply has non-positive total cost %g",
                  r.total_cost));
  }
  if (r.plan_id.empty()) {
    return Status::Internal("oracle reply has an empty plan id");
  }
  if (options_.validate) {
    Status st = options_.validate(r);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Result<core::OracleResult> ResilientOracle::TryOptimize(
    const core::CostVector& c) {
  // Admission: breaker and run budget are checked before any attempt.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
    if (breaker_open_) {
      const uint64_t now = clock_.NowNanos();
      if (now < breaker_open_until_ns_) {
        ++stats_.breaker_short_circuits;
        ++stats_.failures;
        return Status::Unavailable(
            "circuit breaker open: consecutive oracle failures");
      }
      // Cooldown elapsed: half-open, let this call probe the oracle.
      breaker_open_ = false;
    }
  }

  auto run_budget_spent = [&]() -> bool {
    if (options_.run_deadline_ns == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return clock_.NowNanos() - run_start_ns_ >= options_.run_deadline_ns;
  };

  if (run_budget_spent()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
    ++stats_.deadline_exceeded;
    return Status::DeadlineExceeded("oracle run deadline budget spent");
  }

  // Jitter stream: a pure function of (seed, quantized cost vector), so
  // backoff schedules replay identically run to run.
  Rng jitter = Rng(options_.seed)
                   .Fork(HashQuantized(c, options_.key_mantissa_bits,
                                       options_.seed));

  Status last_error;
  for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    const uint64_t t0 = clock_.NowNanos();
    Result<core::OracleResult> reply = base_.TryOptimize(c);
    const uint64_t elapsed = clock_.NowNanos() - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.attempts;
      if (attempt > 0) ++stats_.retries;
    }

    if (options_.per_call_deadline_ns != 0 &&
        elapsed > options_.per_call_deadline_ns) {
      last_error = Status::DeadlineExceeded(
          StrFormat("oracle reply took %llu ns (per-call deadline %llu ns)",
                    static_cast<unsigned long long>(elapsed),
                    static_cast<unsigned long long>(
                        options_.per_call_deadline_ns)));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_exceeded;
    } else if (!reply.ok()) {
      last_error = reply.status();
    } else {
      Status valid = ValidateReply(*reply);
      if (valid.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        if (attempt > 0) ++stats_.recovered;
        consecutive_failures_ = 0;
        return reply;
      }
      last_error = std::move(valid);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.invalid_replies;
    }

    if (attempt == options_.max_retries || run_budget_spent()) break;

    // Exponential backoff with deterministic jitter before the retry.
    double backoff = static_cast<double>(options_.backoff_base_ns);
    for (size_t k = 0; k < attempt; ++k) backoff *= options_.backoff_multiplier;
    backoff *= 1.0 + options_.backoff_jitter * jitter.Uniform();
    const uint64_t wait = static_cast<uint64_t>(backoff);
    clock_.SleepFor(wait);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.backoff_waited_ns += wait;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  ++consecutive_failures_;
  if (options_.breaker_threshold != 0 && !breaker_open_ &&
      consecutive_failures_ >= options_.breaker_threshold) {
    breaker_open_ = true;
    breaker_open_until_ns_ = clock_.NowNanos() + options_.breaker_cooldown_ns;
    ++stats_.breaker_trips;
  }
  return last_error.ok()
             ? Status::Unavailable("oracle call failed without a status")
             : last_error;
}

ResilienceStats ResilientOracle::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResilientOracle::ResetBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  run_start_ns_ = clock_.NowNanos();
  consecutive_failures_ = 0;
  breaker_open_ = false;
  breaker_open_until_ns_ = 0;
}

}  // namespace costsense::runtime::resilience
