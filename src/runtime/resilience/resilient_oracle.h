#ifndef COSTSENSE_RUNTIME_RESILIENCE_RESILIENT_ORACLE_H_
#define COSTSENSE_RUNTIME_RESILIENCE_RESILIENT_ORACLE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "core/oracle.h"
#include "runtime/resilience/clock.h"

namespace costsense::runtime::resilience {

/// Tuning for ResilientOracle — the retry/hedging tier of the oracle
/// decorator stack.
struct ResilientOracleOptions {
  /// Retries after the first attempt (total attempts = max_retries + 1).
  /// 0 disables retrying: every fault surfaces to the caller.
  size_t max_retries = 5;
  /// Per-attempt deadline on the injected clock; an attempt whose reply
  /// arrives later is discarded as kDeadlineExceeded (and retried while
  /// budget remains). 0 = unlimited.
  uint64_t per_call_deadline_ns = 0;
  /// Cumulative budget for the oracle's whole lifetime (one sweep/run).
  /// Once spent, calls fail fast with kDeadlineExceeded instead of
  /// retrying — a long sweep degrades its tail rather than hanging.
  /// 0 = unlimited. ResetBudget() restarts the window.
  uint64_t run_deadline_ns = 0;
  /// Exponential backoff between retries: attempt k sleeps
  /// backoff_base_ns * backoff_multiplier^k, scaled by a deterministic
  /// jitter factor in [1, 1 + backoff_jitter] drawn from a stream keyed by
  /// (seed, quantized cost vector, attempt).
  uint64_t backoff_base_ns = 1000;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;
  /// Consecutive *exhausted* calls (all retries failed) that open the
  /// circuit breaker; while open, calls fail fast with kUnavailable until
  /// breaker_cooldown_ns passes, then one probe call is let through
  /// (half-open). 0 disables the breaker.
  size_t breaker_threshold = 0;
  uint64_t breaker_cooldown_ns = 1'000'000;
  /// Reply validation: a reply with a non-finite total cost or an empty
  /// plan id is always rejected (converted to kInternal and retried).
  /// Optionally also reject non-positive costs — off by default because
  /// the vertex sweeps legitimately see non-positive optima at degenerate
  /// vertices and account for them separately.
  bool require_positive_cost = false;
  /// Extra validation hook (e.g. membership in a known plan-id set);
  /// return a non-OK status to reject the reply. Null = none.
  std::function<Status(const core::OracleResult&)> validate;
  /// Seed of the jitter streams.
  uint64_t seed = 0x0e51113e;
  /// Mantissa bits for the per-key jitter stream quantization (matches the
  /// oracle cache / fault injector keying).
  int key_mantissa_bits = 40;
};

/// Counters exported by a ResilientOracle. Snapshots are consistent per
/// field; `failures` is the count the graceful-degradation layer must
/// account for point by point.
struct ResilienceStats {
  /// TryOptimize invocations.
  size_t calls = 0;
  /// Base-oracle attempts, including retries.
  size_t attempts = 0;
  /// Attempts beyond the first of their call.
  size_t retries = 0;
  /// Calls that failed at least once and then succeeded within budget.
  size_t recovered = 0;
  /// Calls that returned an error to the caller (retry budget exhausted,
  /// run deadline spent, or breaker open).
  size_t failures = 0;
  /// Replies rejected by validation (non-finite cost, empty id, hook).
  size_t invalid_replies = 0;
  /// Deadline rejections: attempts discarded for blowing the per-call
  /// deadline, plus calls failed fast because the run budget was spent.
  /// Lets callers classify a failed sweep as deadline-driven.
  size_t deadline_exceeded = 0;
  /// Times the breaker transitioned closed -> open.
  size_t breaker_trips = 0;
  /// Calls rejected without touching the base oracle while open.
  size_t breaker_short_circuits = 0;
  /// Virtual/real nanoseconds spent in backoff sleeps.
  uint64_t backoff_waited_ns = 0;
};

/// Bounded-retry decorator over a fallible oracle: exponential backoff
/// with deterministic jitter, per-call and per-run deadline budgets on an
/// injectable Clock, a consecutive-failure circuit breaker, and reply
/// validation that converts garbage replies into typed Status codes.
///
/// Determinism: whether a call ultimately succeeds depends only on the
/// wrapped oracle's (deterministic) fault script and the retry budget —
/// backoff jitter affects time, never results. Under an injected fault
/// burst shorter than the retry budget, callers observe exactly the
/// fault-free reply stream, which is what makes figure output byte-stable
/// under faults.
class ResilientOracle final : public core::FalliblePlanOracle {
 public:
  /// `base` is not owned and must outlive this. `clock` defaults to the
  /// real steady clock.
  ResilientOracle(core::FalliblePlanOracle& base,
                  const ResilientOracleOptions& options,
                  Clock* clock = nullptr);

  [[nodiscard]] Result<core::OracleResult> TryOptimize(const core::CostVector& c) override;
  size_t dims() const override { return base_.dims(); }

  ResilienceStats stats() const;

  /// Restarts the run-deadline window and closes the breaker (counters are
  /// preserved). Call between sweeps that share one oracle.
  void ResetBudget();

 private:
  [[nodiscard]] Status ValidateReply(const core::OracleResult& r) const;

  core::FalliblePlanOracle& base_;
  const ResilientOracleOptions options_;
  Clock& clock_;

  mutable std::mutex mu_;  // guards everything below
  ResilienceStats stats_;
  uint64_t run_start_ns_ = 0;
  size_t consecutive_failures_ = 0;
  bool breaker_open_ = false;
  uint64_t breaker_open_until_ns_ = 0;
};

}  // namespace costsense::runtime::resilience

#endif  // COSTSENSE_RUNTIME_RESILIENCE_RESILIENT_ORACLE_H_
