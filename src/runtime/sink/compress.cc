#include "runtime/sink/compress.h"

#include <array>
#include <cstdint>
#include <cstring>

#include "runtime/sink/crc32.h"

namespace costsense::runtime::sink {
namespace {

constexpr char kBlockMagic[4] = {'C', 'S', 'K', 'B'};
constexpr size_t kHashBits = 13;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;

/// Worst case for incompressible input: every byte a literal, plus one
/// token and one 255-run extension byte per 255 literals, plus slack for
/// the final short sequence. Anything claiming more is a corrupt header.
constexpr size_t MaxCompressedSize(size_t raw) {
  return raw + raw / 255 + 16;
}

uint32_t Load32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t HashOf(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutU32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutRunLength(std::string& out, size_t extra) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

/// Appends one sequence: `literals`, then a match of `match_len` bytes at
/// `offset` back (match_len == 0 for the block-final literals-only
/// sequence, which carries no offset).
void EmitSequence(std::string& out, std::string_view literals,
                  size_t match_len, size_t offset) {
  const size_t lit = literals.size();
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const uint8_t token =
      static_cast<uint8_t>((lit < 15 ? lit : 15) << 4 |
                           (match_code < 15 ? match_code : 15));
  out.push_back(static_cast<char>(token));
  if (lit >= 15) PutRunLength(out, lit - 15);
  out.append(literals);
  if (match_len == 0) return;
  out.push_back(static_cast<char>((offset >> 8) & 0xff));
  out.push_back(static_cast<char>(offset & 0xff));
  if (match_code >= 15) PutRunLength(out, match_code - 15);
}

/// Greedy single-pass encoder over one block. Fixed hash table, fixed
/// probe policy: deterministic by construction.
std::string CompressBlock(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 32);
  std::array<int32_t, size_t{1} << kHashBits> table;
  table.fill(-1);

  const size_t n = in.size();
  size_t pos = 0;
  size_t anchor = 0;
  while (pos + kMinMatch <= n) {
    const uint32_t h = HashOf(Load32(in.data() + pos));
    const int32_t cand = table[h];
    table[h] = static_cast<int32_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(in.data() + cand) == Load32(in.data() + pos)) {
      size_t len = kMinMatch;
      while (pos + len < n &&
             in[static_cast<size_t>(cand) + len] == in[pos + len]) {
        ++len;
      }
      EmitSequence(out, in.substr(anchor, pos - anchor), len,
                   pos - static_cast<size_t>(cand));
      pos += len;
      anchor = pos;
    } else {
      ++pos;
    }
  }
  EmitSequence(out, in.substr(anchor), 0, 0);
  return out;
}

[[nodiscard]] Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("compressed block stream: " + what);
}

/// Reads a 15-extension length run. `base` is the token nibble.
[[nodiscard]] Status TakeRunLength(std::string_view comp, size_t* pos,
                                   size_t base, size_t* out) {
  size_t len = base;
  if (base == 15) {
    for (;;) {
      if (*pos >= comp.size()) return Corrupt("truncated length run");
      const uint8_t b = static_cast<uint8_t>(comp[(*pos)++]);
      len += b;
      if (b < 255) break;
    }
  }
  *out = len;
  return Status::Ok();
}

[[nodiscard]] Status DecompressBlock(std::string_view comp, size_t raw_len,
                                     std::string* out) {
  const size_t start = out->size();
  size_t pos = 0;
  while (pos < comp.size()) {
    const uint8_t token = static_cast<uint8_t>(comp[pos++]);
    size_t lit = 0;
    Status st = TakeRunLength(comp, &pos, token >> 4, &lit);
    if (!st.ok()) return st;
    if (lit > comp.size() - pos) return Corrupt("literal run past block end");
    if (out->size() - start + lit > raw_len) {
      return Corrupt("literals overflow the declared raw length");
    }
    out->append(comp.substr(pos, lit));
    pos += lit;
    if (pos == comp.size()) break;  // final literals-only sequence

    if (comp.size() - pos < 2) return Corrupt("truncated match offset");
    const size_t offset = static_cast<size_t>(
        (static_cast<uint8_t>(comp[pos]) << 8) |
        static_cast<uint8_t>(comp[pos + 1]));
    pos += 2;
    if (offset == 0 || offset > out->size() - start) {
      return Corrupt("match offset outside the produced output");
    }
    size_t match_code = 0;
    st = TakeRunLength(comp, &pos, token & 0xf, &match_code);
    if (!st.ok()) return st;
    const size_t match_len = match_code + kMinMatch;
    if (out->size() - start + match_len > raw_len) {
      return Corrupt("match overflows the declared raw length");
    }
    // Byte-by-byte: matches may overlap their own output (RLE-style).
    size_t from = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[from + i]);
    }
  }
  if (out->size() - start != raw_len) {
    return Corrupt("block decoded to a different length than declared");
  }
  return Status::Ok();
}

/// One block in container form: header + compressed bytes.
std::string EncodeBlock(std::string_view raw) {
  const std::string comp = CompressBlock(raw);
  std::string out;
  out.reserve(16 + comp.size());
  out.append(kBlockMagic, sizeof(kBlockMagic));
  PutU32(out, static_cast<uint32_t>(raw.size()));
  PutU32(out, static_cast<uint32_t>(comp.size()));
  PutU32(out, Crc32(raw));
  out.append(comp);
  return out;
}

}  // namespace

Status BlockCompressSink::EmitBlock(size_t take) {
  const Status st =
      down_.Write(EncodeBlock(std::string_view(pending_).substr(0, take)));
  pending_.erase(0, take);
  return st;
}

Status BlockCompressSink::Write(std::string_view span) {
  if (closed_) {
    return Status::FailedPrecondition("compress sink used after Close");
  }
  pending_.append(span);
  while (pending_.size() >= kCompressBlockBytes) {
    const Status st = EmitBlock(kCompressBlockBytes);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status BlockCompressSink::Flush() {
  if (closed_) {
    return Status::FailedPrecondition("compress sink used after Close");
  }
  if (!pending_.empty()) {
    const Status st = EmitBlock(pending_.size());
    if (!st.ok()) return st;
  }
  return down_.Flush();
}

Status BlockCompressSink::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  if (!pending_.empty()) {
    const Status st = EmitBlock(pending_.size());
    if (!st.ok()) {
      const Status ignored = down_.Close();
      (void)ignored;  // the emit failure is the primary error
      return st;
    }
  }
  return down_.Close();
}

std::string CompressToBlocks(std::string_view raw) {
  std::string out;
  while (raw.size() > kCompressBlockBytes) {
    out += EncodeBlock(raw.substr(0, kCompressBlockBytes));
    raw.remove_prefix(kCompressBlockBytes);
  }
  if (!raw.empty()) out += EncodeBlock(raw);
  return out;
}

Result<std::string> DecompressBlocks(std::string_view data) {
  std::string out;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 16) return Corrupt("truncated block header");
    if (std::memcmp(data.data() + pos, kBlockMagic, sizeof(kBlockMagic)) !=
        0) {
      return Corrupt("bad block magic");
    }
    pos += sizeof(kBlockMagic);
    uint32_t raw_len = 0;
    uint32_t comp_len = 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      raw_len = (raw_len << 8) | static_cast<uint8_t>(data[pos + i]);
      comp_len = (comp_len << 8) | static_cast<uint8_t>(data[pos + 4 + i]);
      crc = (crc << 8) | static_cast<uint8_t>(data[pos + 8 + i]);
    }
    pos += 12;
    if (raw_len > kCompressBlockBytes) {
      return Corrupt("declared raw length exceeds the block bound");
    }
    if (comp_len > MaxCompressedSize(raw_len)) {
      return Corrupt("declared compressed length exceeds the expansion bound");
    }
    if (comp_len > data.size() - pos) return Corrupt("truncated block body");
    const size_t before = out.size();
    const Status st =
        DecompressBlock(data.substr(pos, comp_len), raw_len, &out);
    if (!st.ok()) return st;
    pos += comp_len;
    if (Crc32(std::string_view(out).substr(before)) != crc) {
      return Corrupt("block CRC mismatch");
    }
  }
  return out;
}

}  // namespace costsense::runtime::sink
