#ifndef COSTSENSE_RUNTIME_SINK_COMPRESS_H_
#define COSTSENSE_RUNTIME_SINK_COMPRESS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "runtime/sink/sink.h"

namespace costsense::runtime::sink {

/// Zero-dependency deterministic block compression for artifact streams.
///
/// The stream is a sequence of self-contained blocks:
///
///   block   "CSKB" | u32 raw length | u32 compressed length |
///           u32 CRC32(raw bytes) | compressed bytes
///
/// (all integers big-endian, matching the snapshot and wire formats).
/// Inside a block the encoding is a byte-oriented LZ77 with fixed
/// parameters, in the LZ4 token format:
///
///   sequence   u8 token (literal count in the high nibble, match length
///              minus 4 in the low nibble; 15 extends with 255-run bytes)
///              | literal bytes | u16 big-endian match offset (1..65535)
///              | match-length extension bytes
///
/// The final sequence of a block is literals-only (no offset follows; the
/// decoder stops when the block's compressed bytes run out). Matching is
/// greedy over a fixed 8192-entry hash table of 4-byte prefixes, blocks
/// are cut at exactly kCompressBlockBytes of input, and nothing about the
/// search depends on the host — so the compressed bytes are a pure
/// function of the input byte sequence plus the Flush/Close points,
/// byte-identical across threads and hosts.
inline constexpr size_t kCompressBlockBytes = 64 * 1024;

/// Compression stage: buffers input into fixed-size blocks and writes
/// each compressed block downstream. Flush compresses the buffered
/// partial block (so checkpoints land on disk) and flushes downstream;
/// Close drains the tail and closes downstream. Output bytes depend only
/// on the input byte sequence and the Flush/Close points, never on how
/// Write calls were chunked.
class BlockCompressSink final : public Sink {
 public:
  explicit BlockCompressSink(Sink& down) : down_(down) {}

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Close() override;

 private:
  /// Compresses pending_[0, take) into one block downstream.
  [[nodiscard]] Status EmitBlock(size_t take);

  Sink& down_;
  std::string pending_;
  bool closed_ = false;
};

/// Compresses `raw` into the block-stream form BlockCompressSink emits
/// for a single-shot input (one Close-terminated chain). Exposed for
/// tests and tools.
std::string CompressToBlocks(std::string_view raw);

/// Decodes a whole block stream back to the original bytes. Every
/// failure mode is a typed kInvalidArgument: bad magic, truncated
/// header or body, length fields that disagree with the payload, CRC
/// mismatch, or match references outside the produced output. Never
/// trusts a length field to allocate unbounded memory.
[[nodiscard]] Result<std::string> DecompressBlocks(std::string_view data);

}  // namespace costsense::runtime::sink

#endif  // COSTSENSE_RUNTIME_SINK_COMPRESS_H_
