#include "runtime/sink/crc32.h"

#include <array>

namespace costsense::runtime::sink {
namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static constexpr std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace costsense::runtime::sink
