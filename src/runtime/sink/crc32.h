#ifndef COSTSENSE_RUNTIME_SINK_CRC32_H_
#define COSTSENSE_RUNTIME_SINK_CRC32_H_

#include <cstdint>
#include <string_view>

namespace costsense::runtime::sink {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. The checksum
/// behind every framed record in the repo: cache-store snapshot records
/// and compressed sidecar blocks both carry it so a torn write or flipped
/// bit is detected before a single stale byte can reach an analysis.
uint32_t Crc32(std::string_view data);

}  // namespace costsense::runtime::sink

#endif  // COSTSENSE_RUNTIME_SINK_CRC32_H_
