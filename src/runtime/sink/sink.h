#ifndef COSTSENSE_RUNTIME_SINK_SINK_H_
#define COSTSENSE_RUNTIME_SINK_SINK_H_

#include <string_view>

#include "common/status.h"

namespace costsense::runtime::sink {

/// One stage of a composable result-output chain (modeled on xtrabackup's
/// ds_* datasinks): every producer in the repo — figure stdout, the JSON
/// sidecar, cache-store snapshots, serve's streamed response records —
/// writes through a stack of these stages instead of bespoke I/O code.
///
/// Contract:
///
///   Write(span)  Appends `span` to the stream. Byte-oriented stages
///                (buffer, compressor, file) treat the stream as one byte
///                sequence and MUST produce output that depends only on
///                the concatenated bytes plus the Flush/Close points,
///                never on how writes were chunked. Record-oriented
///                stages (CRC framing, transport frames) treat each Write
///                as exactly one record.
///   Flush()      Pushes everything buffered in this stage downstream and
///                flushes downstream — the checkpoint entry point. An
///                aborted producer keeps every byte written up to the
///                last successful Flush. Idempotent when nothing is
///                buffered.
///   Close()      Finalizes this stage (draining any buffered tail) and
///                closes the downstream stage. After Close, Write and
///                Flush are kFailedPrecondition; a second Close is a
///                no-op success.
///
/// Chains compose by reference: a stage holds `Sink&` to its downstream
/// neighbour and owns nothing, so a chain is built bottom-up on the stack
/// (file, then compressor over it, then buffer over that) and torn down
/// by a single Close on the top stage. Stages are not thread-safe; a
/// chain belongs to one producer, which is also what keeps the emitted
/// bytes deterministic.
class Sink {
 public:
  virtual ~Sink() = default;

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  [[nodiscard]] virtual Status Write(std::string_view span) = 0;
  [[nodiscard]] virtual Status Flush() = 0;
  [[nodiscard]] virtual Status Close() = 0;

 protected:
  Sink() = default;
};

}  // namespace costsense::runtime::sink

#endif  // COSTSENSE_RUNTIME_SINK_SINK_H_
