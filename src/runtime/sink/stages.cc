#include "runtime/sink/stages.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "runtime/sink/crc32.h"

namespace costsense::runtime::sink {
namespace {

[[nodiscard]] Status ClosedError(const char* stage) {
  return Status::FailedPrecondition(std::string(stage) +
                                    " sink used after Close");
}

void PutU32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// StringSink
// ---------------------------------------------------------------------------

Status StringSink::Write(std::string_view span) {
  if (closed_) return ClosedError("string");
  out_->append(span);
  return Status::Ok();
}

Status StringSink::Close() {
  closed_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// StdioSink
// ---------------------------------------------------------------------------

Status StdioSink::Write(std::string_view span) {
  if (span.empty()) return Status::Ok();
  const size_t written = std::fwrite(span.data(), 1, span.size(), stream_);
  if (written != span.size()) {
    return Status::Internal("short write to stdio stream");
  }
  return Status::Ok();
}

Status StdioSink::Flush() {
  if (std::fflush(stream_) != 0) {
    return Status::Internal(std::string("fflush failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BufferSink
// ---------------------------------------------------------------------------

BufferSink::BufferSink(Sink& down, size_t capacity)
    : down_(down), capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(capacity_);
}

Status BufferSink::Drain() {
  if (buffer_.empty()) return Status::Ok();
  const Status st = down_.Write(buffer_);
  buffer_.clear();
  return st;
}

Status BufferSink::Write(std::string_view span) {
  if (closed_) return ClosedError("buffer");
  // A span that alone exceeds the capacity bypasses the buffer (after
  // draining, to keep byte order): copying it in only to flush it back
  // out would double the memory traffic for no batching gain.
  if (span.size() >= capacity_) {
    Status st = Drain();
    if (!st.ok()) return st;
    return down_.Write(span);
  }
  if (buffer_.size() + span.size() > capacity_) {
    const Status st = Drain();
    if (!st.ok()) return st;
  }
  buffer_.append(span);
  return Status::Ok();
}

Status BufferSink::Flush() {
  if (closed_) return ClosedError("buffer");
  const Status st = Drain();
  if (!st.ok()) return st;
  return down_.Flush();
}

Status BufferSink::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  const Status st = Drain();
  if (!st.ok()) {
    const Status ignored = down_.Close();
    (void)ignored;  // the drain failure is the primary error
    return st;
  }
  return down_.Close();
}

// ---------------------------------------------------------------------------
// CrcFrameSink
// ---------------------------------------------------------------------------

Status CrcFrameSink::Write(std::string_view record) {
  std::string frame;
  frame.reserve(8 + record.size());
  PutU32(frame, static_cast<uint32_t>(record.size()));
  PutU32(frame, Crc32(record));
  frame.append(record);
  return down_.Write(frame);
}

// ---------------------------------------------------------------------------
// FileSink
// ---------------------------------------------------------------------------

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::EnsureOpen() {
  if (file_ != nullptr) return Status::Ok();
  file_ = std::fopen(path_.c_str(), mode_ == Mode::kAppend ? "ab" : "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status FileSink::Write(std::string_view span) {
  if (closed_) return ClosedError("file");
  Status st = EnsureOpen();
  if (!st.ok()) return st;
  if (span.empty()) return Status::Ok();
  const size_t written = std::fwrite(span.data(), 1, span.size(), file_);
  if (written != span.size()) {
    return Status::Internal("short write to " + path_);
  }
  return Status::Ok();
}

Status FileSink::Flush() {
  if (closed_) return ClosedError("file");
  if (file_ == nullptr) return Status::Ok();  // nothing ever written
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush(" + path_ + ") failed: " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status FileSink::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  if (file_ == nullptr) return Status::Ok();
  std::FILE* file = std::exchange(file_, nullptr);
  if (std::fclose(file) != 0) {
    return Status::Internal("fclose(" + path_ + ") failed: " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// AtomicFileSink
// ---------------------------------------------------------------------------

AtomicFileSink::~AtomicFileSink() { Abort(); }

Status AtomicFileSink::FailAndClean(const std::string& what, int err) {
  failed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(tmp_.c_str());
  return Status::Internal(what + " failed: " + std::strerror(err));
}

Status AtomicFileSink::EnsureOpen() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return FailAndClean("open(" + tmp_ + ")", errno);
  return Status::Ok();
}

Status AtomicFileSink::Write(std::string_view span) {
  if (closed_ || failed_) return ClosedError("atomic file");
  Status st = EnsureOpen();
  if (!st.ok()) return st;
  size_t written = 0;
  while (written < span.size()) {
    const ssize_t n =
        ::write(fd_, span.data() + written, span.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return FailAndClean("write(" + tmp_ + ")", errno);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status AtomicFileSink::Flush() {
  // Durability is Close's job (fsync before rename). Flushing the staging
  // file early would not change what a crash leaves behind: until the
  // rename, readers only ever see the previous file.
  if (closed_ || failed_) return ClosedError("atomic file");
  return Status::Ok();
}

Status AtomicFileSink::Close() {
  if (closed_) return Status::Ok();
  if (failed_) return ClosedError("atomic file");
  Status st = EnsureOpen();  // an empty close still publishes an empty file
  if (!st.ok()) return st;
  closed_ = true;
  if (::fsync(fd_) != 0) return FailAndClean("fsync(" + tmp_ + ")", errno);
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) {
    failed_ = true;
    ::unlink(tmp_.c_str());
    return Status::Internal("close(" + tmp_ + ") failed: " +
                            std::strerror(errno));
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    failed_ = true;
    ::unlink(tmp_.c_str());
    return Status::Internal("rename to " + path_ + " failed: " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void AtomicFileSink::Abort() {
  if (closed_) return;
  closed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_.c_str());
  }
}

// ---------------------------------------------------------------------------
// FdSink
// ---------------------------------------------------------------------------

Status FdSink::Write(std::string_view span) {
  size_t written = 0;
  while (written < span.size()) {
    const ssize_t n =
        ::write(fd_, span.data() + written, span.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("descriptor write failed: ") +
                                 std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace costsense::runtime::sink
