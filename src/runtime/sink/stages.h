#ifndef COSTSENSE_RUNTIME_SINK_STAGES_H_
#define COSTSENSE_RUNTIME_SINK_STAGES_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "runtime/sink/sink.h"

namespace costsense::runtime::sink {

/// Terminal stage: appends every span to a caller-owned string. The
/// in-memory leaf the tests and the serve v1 path use — a chain ending in
/// a StringSink proves byte-identity against any other chain ending in a
/// file or socket.
class StringSink final : public Sink {
 public:
  /// `out` must outlive the sink.
  explicit StringSink(std::string* out) : out_(out) {}

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override { return Status::Ok(); }
  [[nodiscard]] Status Close() override;

 private:
  std::string* out_;
  bool closed_ = false;
};

/// Terminal stage over an existing stdio stream (stdout, stderr). The
/// stream is borrowed, never fclosed: Close only flushes, so the figure
/// drivers can route their byte-compared stdout through a chain without
/// surrendering the process's stream.
class StdioSink final : public Sink {
 public:
  explicit StdioSink(std::FILE* stream) : stream_(stream) {}

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Close() override { return Flush(); }

 private:
  std::FILE* stream_;
};

/// Bounded coalescing buffer: gathers small writes into `capacity`-byte
/// batches before forwarding, so a chain that ends in a file or socket
/// pays one downstream call per batch instead of one per artifact line.
/// Byte-transparent — the downstream sees the same byte sequence, just
/// chunked differently, which byte-oriented stages must not care about.
class BufferSink final : public Sink {
 public:
  BufferSink(Sink& down, size_t capacity);

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Close() override;

 private:
  [[nodiscard]] Status Drain();

  Sink& down_;
  const size_t capacity_;
  std::string buffer_;
  bool closed_ = false;
};

/// Record framing: each Write() becomes one downstream record
///
///   u32 body length (big-endian) | u32 CRC32(body) | body bytes
///
/// — exactly the cache-store snapshot record layout, so the snapshot
/// writer is this stage over an atomic file instead of bespoke code.
class CrcFrameSink final : public Sink {
 public:
  explicit CrcFrameSink(Sink& down) : down_(down) {}

  [[nodiscard]] Status Write(std::string_view record) override;
  [[nodiscard]] Status Flush() override { return down_.Flush(); }
  [[nodiscard]] Status Close() override { return down_.Close(); }

 private:
  Sink& down_;
};

/// Terminal file stage. The file opens lazily on the first Write (a chain
/// that never writes never touches the disk) and closes on Close. Append
/// mode is what the sidecar writers use so batch runs accumulate.
class FileSink final : public Sink {
 public:
  enum class Mode { kAppend, kTruncate };

  explicit FileSink(std::string path, Mode mode = Mode::kAppend)
      : path_(std::move(path)), mode_(mode) {}
  ~FileSink() override;

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Close() override;

 private:
  [[nodiscard]] Status EnsureOpen();

  const std::string path_;
  const Mode mode_;
  std::FILE* file_ = nullptr;
  bool closed_ = false;
};

/// Crash-safe terminal file stage: writes stream into `<path>.tmp`; Close
/// fsyncs, closes and renames over `path`. A crash (or Abort) at any
/// point leaves either the previous file or a complete new one at
/// `path`, never a torn write — the cache-store durability contract as a
/// reusable stage. Any I/O failure unlinks the staging file and reports a
/// typed error; the sink is then unusable.
class AtomicFileSink final : public Sink {
 public:
  explicit AtomicFileSink(std::string path)
      : path_(std::move(path)), tmp_(path_ + ".tmp") {}
  ~AtomicFileSink() override;

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override;
  /// Publishes the staged bytes: fsync + close + rename onto path().
  [[nodiscard]] Status Close() override;

  /// Discards the staged bytes (unlinks the tmp file); the previous file
  /// at path() survives untouched. Idempotent; also runs from the
  /// destructor when the sink was never Closed.
  void Abort();

  const std::string& path() const { return path_; }

 private:
  [[nodiscard]] Status EnsureOpen();
  [[nodiscard]] Status FailAndClean(const std::string& what, int err);

  const std::string path_;
  const std::string tmp_;
  int fd_ = -1;
  bool closed_ = false;
  bool failed_ = false;
};

/// Terminal stage over a connected stream descriptor (the "socket"
/// stage). Bytes go out with a retrying ::write loop; the descriptor is
/// borrowed — Close is a flush-level no-op so transport ownership (and
/// its cross-thread shutdown discipline) stays wherever it already lives.
class FdSink final : public Sink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}

  [[nodiscard]] Status Write(std::string_view span) override;
  [[nodiscard]] Status Flush() override { return Status::Ok(); }
  [[nodiscard]] Status Close() override { return Status::Ok(); }

 private:
  const int fd_;
};

}  // namespace costsense::runtime::sink

#endif  // COSTSENSE_RUNTIME_SINK_STAGES_H_
