#include "runtime/thread_pool.h"

#include <memory>

#include "common/macros.h"
#include "common/strings.h"

namespace costsense::runtime {
namespace {

/// The engine-configured size for the global pool (0 = unset) and the
/// size the global pool was actually built with (0 = not built yet).
std::atomic<size_t> g_configured_threads{0};
std::atomic<size_t> g_global_built_threads{0};

}  // namespace

size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t GlobalThreadCount() {
  const size_t configured =
      g_configured_threads.load(std::memory_order_relaxed);
  return configured != 0 ? configured : DefaultThreadCount();
}

Status ConfigureGlobalThreadCount(size_t count) {
  if (count == 0) count = DefaultThreadCount();
  const size_t built = g_global_built_threads.load(std::memory_order_acquire);
  if (built != 0 && built != count) {
    return Status::FailedPrecondition(StrFormat(
        "global thread pool already built with %zu threads; cannot "
        "reconfigure to %zu — apply the engine config before first use",
        built, count));
  }
  g_configured_threads.store(count, std::memory_order_relaxed);
  return Status::Ok();
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? GlobalThreadCount() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.threads = num_threads_;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
    s.queue_high_water = queue_high_water_;
  }
  return s;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    COSTSENSE_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) drained_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::Ok();
  if (num_threads_ <= 1 || n == 1) {
    Status first;
    for (size_t i = 0; i < n; ++i) {
      Status st = body(i);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  // Shared loop state. Workers and the caller race on `next` to claim
  // iterations; `done` counts completed ones. The state is heap-held so a
  // helper task that starts after the loop has finished (every iteration
  // already claimed) can still read `next`, see it exhausted, and exit
  // without touching the caller's dead stack frame.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t error_index;
    Status error;
    size_t n;
    const std::function<Status(size_t)>* body;
  };
  auto state = std::make_shared<LoopState>();
  state->error_index = n;
  state->n = n;
  state->body = &body;

  auto drive = [](const std::shared_ptr<LoopState>& s) {
    for (;;) {
      const size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      Status st = (*s->body)(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (i < s->error_index) {
          s->error_index = i;
          s->error = std::move(st);
        }
      }
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        // Lock before notifying so the caller cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(num_threads_ - 1, n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drive] { drive(state); });
  }
  drive(state);  // the caller is a full participant: nested-safe

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= n;
  });
  return state->error_index == n ? Status::Ok() : std::move(state->error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(GlobalThreadCount());
    g_global_built_threads.store(p->num_threads(),
                                 std::memory_order_release);
    return p;
  }();
  return *pool;
}

Status ForEachIndex(ThreadPool* pool, size_t n,
                    const std::function<Status(size_t)>& body) {
  if (pool != nullptr) return pool->ParallelFor(n, body);
  Status first;
  for (size_t i = 0; i < n; ++i) {
    Status st = body(i);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

}  // namespace costsense::runtime
