#ifndef COSTSENSE_RUNTIME_THREAD_POOL_H_
#define COSTSENSE_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace costsense::runtime {

/// Hardware concurrency (>= 1) — the global pool's size when nothing has
/// been configured.
size_t DefaultThreadCount();

/// The concurrency level the global pool will be (or was) built with: the
/// engine-configured count, or DefaultThreadCount() when unset. A value
/// of 1 recovers the fully serial execution path.
size_t GlobalThreadCount();

/// Installs `count` (0 = DefaultThreadCount()) as the global pool's size.
/// engine::Engine::Create is the only caller that translates
/// COSTSENSE_THREADS into a pool size — the pool itself never reads the
/// environment. kFailedPrecondition when the global pool was already
/// constructed at a different size (the setting could no longer take
/// effect; fail loudly instead of running mis-sized).
[[nodiscard]] Status ConfigureGlobalThreadCount(size_t count);

/// Counters exported by a ThreadPool (see RuntimeMetrics for the rendered
/// form). Snapshots are consistent but not atomic across fields.
struct PoolStats {
  /// Concurrency level (worker threads + the participating caller).
  size_t threads = 1;
  /// Tasks executed by worker threads since construction.
  size_t tasks_run = 0;
  /// Tasks waiting in the queue right now (instantaneous depth — the
  /// quantity admission control and load monitoring watch).
  size_t queue_depth = 0;
  /// High-water mark of the pending-task queue depth.
  size_t queue_high_water = 0;
};

/// A fixed-size thread pool with a work queue and fork-join helpers.
///
/// ParallelFor/ParallelMap use a caller-participates design: the calling
/// thread claims and executes loop iterations alongside the workers, so a
/// nested ParallelFor issued from inside a task always makes progress even
/// when every worker is busy — saturation degrades to inline execution
/// instead of deadlocking.
///
/// Loop bodies must not throw (the repo-wide no-exceptions convention);
/// fallible bodies report through the returned Status.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the remaining lane).
  /// 0 means GlobalThreadCount(); 1 spawns no workers and runs all
  /// helpers inline, byte-identical to the pre-pool serial code path.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }
  PoolStats stats() const;

  /// Enqueues a task for a worker. With num_threads() == 1 there are no
  /// workers and the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Quiesces the pool: blocks until the queue is empty and no worker is
  /// executing a task. The pool stays fully usable afterwards — unlike
  /// the destructor this is a rendezvous, not a teardown — which is what
  /// a graceful server shutdown needs before releasing shared state that
  /// queued tasks may reference. Tasks submitted after Drain returns are
  /// unaffected; callers are responsible for stopping producers first.
  void Drain();

  /// Runs body(i) for every i in [0, n), fanning out over the pool. All
  /// iterations execute even if some fail; the returned Status is OK or
  /// the failure with the smallest index (deterministic regardless of
  /// thread count or scheduling).
  [[nodiscard]] Status ParallelFor(
      size_t n, const std::function<Status(size_t)>& body);

  /// Maps fn(i, items[i]) over `items` concurrently and returns the
  /// results in input order. fn must be copyable and is invoked exactly
  /// once per item.
  template <typename T, typename Fn>
  auto ParallelMap(const std::vector<T>& items, Fn fn)
      -> std::vector<std::decay_t<decltype(fn(size_t{0}, items[0]))>> {
    using R = std::decay_t<decltype(fn(size_t{0}, items[0]))>;
    std::vector<std::optional<R>> slots(items.size());
    const Status status = ParallelFor(items.size(), [&](size_t i) {
      slots[i].emplace(fn(i, items[i]));
      return Status::Ok();
    });
    COSTSENSE_CHECK(status.ok());  // bodies always return Ok
    std::vector<R> out;
    out.reserve(items.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Process-wide pool sized by GlobalThreadCount(); constructed on
  /// first use and intentionally leaked (workers outlive static teardown).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  const size_t num_threads_;
  mutable std::mutex mu_;  // guards queue_/stop_/active_/queue_high_water_
  std::condition_variable cv_;
  /// Signals Drain waiters whenever the queue empties or a worker
  /// finishes its task.
  std::condition_variable drained_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  /// Worker tasks currently executing (claimed from the queue but not yet
  /// finished).
  size_t active_ = 0;
  size_t queue_high_water_ = 0;
  std::atomic<size_t> tasks_run_{0};
  std::vector<std::thread> workers_;
};

/// Runs body(i) for i in [0, n) on `pool` when non-null, inline otherwise.
/// The serial path keeps ParallelFor's all-iterations/lowest-index-error
/// semantics, so callers behave identically with and without a pool.
[[nodiscard]] Status ForEachIndex(ThreadPool* pool, size_t n,
                    const std::function<Status(size_t)>& body);

}  // namespace costsense::runtime

#endif  // COSTSENSE_RUNTIME_THREAD_POOL_H_
