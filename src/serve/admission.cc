#include "serve/admission.h"

#include "common/strings.h"

namespace costsense::serve {

Status AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    ++rejected_;
    return Status::Unavailable("server is shutting down");
  }
  if (inflight_ < max_inflight_) {
    ++inflight_;
    ++admitted_;
    if (inflight_ > peak_inflight_) peak_inflight_ = inflight_;
    return Status::Ok();
  }
  if (queued_ >= max_queued_) {
    ++rejected_;
    return Status::Unavailable(StrFormat(
        "server saturated: %zu request(s) inflight and %zu waiting; "
        "retry later",
        inflight_, queued_));
  }
  ++queued_;
  if (queued_ > peak_queued_) peak_queued_ = queued_;
  cv_.wait(lock, [this] { return closed_ || inflight_ < max_inflight_; });
  --queued_;
  if (closed_) {
    ++rejected_;
    return Status::Unavailable("server is shutting down");
  }
  ++inflight_;
  ++admitted_;
  if (inflight_ > peak_inflight_) peak_inflight_ = inflight_;
  return Status::Ok();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
  }
  cv_.notify_one();
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats out;
  out.admitted = admitted_;
  out.rejected = rejected_;
  out.inflight = inflight_;
  out.peak_inflight = peak_inflight_;
  out.queued = queued_;
  out.peak_queued = peak_queued_;
  return out;
}

}  // namespace costsense::serve
