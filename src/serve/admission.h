#ifndef COSTSENSE_SERVE_ADMISSION_H_
#define COSTSENSE_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace costsense::serve {

/// Counters describing admission behaviour since server start. Snapshot
/// semantics: taken under the controller lock, internally consistent.
struct AdmissionStats {
  /// Requests granted an execution slot (immediately or after waiting).
  uint64_t admitted = 0;
  /// Requests turned away with kUnavailable because both the inflight
  /// slots and the wait queue were full, or the controller was closed.
  uint64_t rejected = 0;
  /// Requests currently holding an execution slot.
  size_t inflight = 0;
  /// High-water mark of `inflight`.
  size_t peak_inflight = 0;
  /// Requests currently waiting for a slot.
  size_t queued = 0;
  /// High-water mark of `queued`.
  size_t peak_queued = 0;
};

/// Bounded two-stage admission control for the analysis server.
///
/// At most `max_inflight` requests execute at once; up to `max_queued`
/// more wait for a slot. Anything beyond that is rejected immediately with
/// a typed kUnavailable — overload sheds load instead of building an
/// unbounded backlog, and a saturated server never hangs a client.
///
/// Thread-safe. Every successful Admit() must be paired with exactly one
/// Release() (the server does this in its request path).
class AdmissionController {
 public:
  AdmissionController(size_t max_inflight, size_t max_queued)
      : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
        max_queued_(max_queued) {}

  /// Blocks until an execution slot is granted, or fails fast with
  /// kUnavailable when the wait queue is already full or the controller
  /// has been closed.
  [[nodiscard]] Status Admit();

  /// Returns the slot held by a previously admitted request and wakes one
  /// waiter.
  void Release();

  /// Rejects all current and future waiters with kUnavailable. Requests
  /// already inflight are unaffected (shutdown drains them separately).
  void Close();

  AdmissionStats stats() const;

 private:
  const size_t max_inflight_;
  const size_t max_queued_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  size_t inflight_ = 0;
  size_t peak_inflight_ = 0;
  size_t queued_ = 0;
  size_t peak_queued_ = 0;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_ADMISSION_H_
