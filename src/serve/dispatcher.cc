#include "serve/dispatcher.h"

#include <algorithm>
#include <string>
#include <vector>

#include "blackbox/narrow_optimizer.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/worst_case.h"
#include "opt/optimizer.h"
#include "query/query.h"
#include "runtime/resilience/resilient_oracle.h"
#include "runtime/sink/stages.h"
#include "storage/layout.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::serve {

/// The shared half of a request: one TPC-H query under one storage layout,
/// its optimizer, and the long-lived memoizing cache every request against
/// this pair probes through. Immutable after construction except through
/// the thread-safe oracle layers.
struct Dispatcher::QueryContext {
  QueryContext(const catalog::Catalog& catalog, query::Query q,
               storage::LayoutPolicy policy,
               const runtime::OracleStackBuilder& builder)
      : query(std::move(q)),
        layout(policy, catalog, query::ReferencedTables(query)),
        space(layout.BuildResourceSpace()),
        optimizer(catalog, layout, space),
        narrow(optimizer, query, /*white_box=*/true),
        // The persistence scope matches the figure drivers'
        // "<query>/<layout>" spelling, so a server restart can warm from a
        // sweep's snapshot and vice versa.
        stack(builder.Build(
            narrow, query.name + "/" + storage::LayoutPolicyName(policy))),
        baseline(space.BaselineCosts()) {
    // The initial plan — optimal at the DB2-default baseline — is a
    // property of the (query, layout) pair, so it is computed once here
    // and shared by every request. The probe also warms the cache at the
    // box center every multiplicative band shares.
    const core::OracleResult initial = stack.cache().Optimize(baseline);
    COSTSENSE_CHECK(initial.usage.has_value());
    initial_plan_id = initial.plan_id;
    initial_usage = *initial.usage;
  }

  query::Query query;
  storage::StorageLayout layout;
  storage::ResourceSpace space;
  opt::Optimizer optimizer;
  blackbox::NarrowOptimizer narrow;
  runtime::OracleStack stack;
  core::CostVector baseline;
  std::string initial_plan_id;
  core::UsageVector initial_usage;
};

Dispatcher::~Dispatcher() = default;

Dispatcher::Dispatcher(DispatcherOptions options)
    : options_(std::move(options)),
      catalog_(tpch::MakeTpchCatalog(options_.scale_factor)) {
  if (!options_.cache_path.empty()) {
    runtime::CacheStoreOptions store_options;
    store_options.path = options_.cache_path;
    store_options.catalog_hash = catalog_.Fingerprint();
    store_options.mantissa_bits = options_.cache.mantissa_bits;
    store_ = std::make_unique<runtime::CacheStore>(std::move(store_options));
  }
  builder_.WithCache(options_.cache);
  builder_.WithStore(store_.get());
}

Dispatcher::QueryContext& Dispatcher::GetContext(
    uint16_t query_number, storage::LayoutPolicy policy) {
  const auto key = std::make_pair(query_number, static_cast<int>(policy));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(key);
  if (it == contexts_.end()) {
    // Materialization runs under the dispatcher lock: it costs one
    // baseline optimization, and serializing it guarantees exactly one
    // shared cache per (query, policy) no matter how requests race.
    it = contexts_
             // costsense-lint: allow(R8, "context materialization must be atomic with map insertion so racing requests share one cache per (query, policy)")
             .emplace(key, std::make_unique<QueryContext>(
                               catalog_,
                               tpch::MakeTpchQuery(
                                   catalog_, static_cast<int>(query_number)),
                               policy, builder_))
             .first;
  }
  return *it->second;
}

AnalysisResponse Dispatcher::Handle(const AnalysisRequest& request) {
  AnalysisResponse response;
  runtime::sink::StringSink body(&response.body);
  const Status st = HandleStreaming(request, body);
  if (!st.ok()) {
    response.code = st.code();
    response.body = st.message();  // drops any partially rendered records
  }
  return response;
}

Status Dispatcher::HandleStreaming(const AnalysisRequest& request,
                                   runtime::sink::Sink& records) {
  QueryContext& ctx = GetContext(request.query_number, request.policy);
  const Status st = Render(request, ctx, records);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    if (!st.ok()) ++failed_requests_;
  }
  return st;
}

Status Dispatcher::Render(const AnalysisRequest& request, QueryContext& ctx,
                          runtime::sink::Sink& out) {
  // The per-request half of the oracle chain, stacked above the shared
  // cache in the canonical decorator order (runtime/oracle_stack.h):
  // ResilientOracle (request deadline + retry budget) over an optional
  // fault injector over the long-lived CachingOracle. Deadlines and
  // faults stay request-local; computed points are shared.
  runtime::resilience::Clock* clock = options_.clock;
  std::unique_ptr<runtime::resilience::FaultInjectingOracle> injector;
  std::unique_ptr<core::InfallibleOracleAdapter> adapter;
  core::FalliblePlanOracle* base = nullptr;
  if (options_.fault_injection) {
    injector = std::make_unique<runtime::resilience::FaultInjectingOracle>(
        ctx.stack.cache(), options_.faults, clock);
    base = injector.get();
  } else {
    adapter = std::make_unique<core::InfallibleOracleAdapter>(
        ctx.stack.cache());
    base = adapter.get();
  }
  runtime::resilience::ResilientOracleOptions retry;
  retry.max_retries = options_.max_retries;
  retry.run_deadline_ns = request.deadline_ns != 0
                              ? request.deadline_ns
                              : options_.default_deadline_ns;
  runtime::resilience::ResilientOracle resilient(*base, retry, clock);

  // Plans are discovered once over the widest requested band; candidate
  // sets for narrower bands are subsets (usage vectors are
  // box-independent), so one discovery serves every delta. A v2 request
  // carrying an explicit box replaces that band box for discovery (and
  // for the worst-case LP below); its dimension count must match the
  // query's resource space.
  if (request.box.has_value() &&
      request.box->dims() != ctx.space.dims()) {
    return Status::InvalidArgument(StrFormat(
        "feasible-region box has %zu dimension(s); %s under %s spans %zu",
        request.box->dims(), ctx.query.name.c_str(),
        storage::LayoutPolicyName(request.policy), ctx.space.dims()));
  }
  const double band =
      *std::max_element(request.deltas.begin(), request.deltas.end());
  const core::Box box =
      request.box.has_value()
          ? *request.box
          : core::Box::MultiplicativeBand(ctx.baseline, band);
  Rng rng(options_.seed);
  core::DiscoveryOptions discovery = options_.discovery;
  discovery.pool = options_.pool != nullptr ? options_.pool
                                            : &runtime::ThreadPool::Global();
  Result<core::DiscoveryResult> d =
      core::DiscoverCandidatePlans(resilient, box, rng, discovery);
  if (!d.ok()) return d.status();

  // A request whose budget ran out mid-analysis reports a typed error
  // rather than a silently partial body: partial plan sets are not
  // deterministic functions of the request, and the invariant is that
  // every kOk body is.
  const runtime::resilience::ResilienceStats rs = resilient.stats();
  if (rs.failures > 0) {
    const std::string detail = StrFormat(
        "%zu of %zu oracle probe(s) failed after retries; analysis "
        "abandoned to keep kOk bodies deterministic",
        rs.failures, rs.calls);
    if (rs.deadline_exceeded > 0) return Status::DeadlineExceeded(detail);
    return Status::Unavailable(detail);
  }

  std::vector<core::PlanUsage> plans;
  plans.reserve(d->plans.size());
  for (const core::DiscoveredPlan& dp : d->plans) plans.push_back(dp.plan);

  // Each logical piece is one Write: the prologue, then one record per
  // plan or delta line. Over a StringSink this concatenates into the v1
  // body; over the v2 record sink each piece is one length-prefixed
  // record, so a reassembled v2 stream equals the v1 body byte for byte.
  // The body keeps the v1 stamp under both protocols for that reason.
  Status st = out.Write(StrFormat(
      "costsense-serve v%u %s\n"
      "query=%s policy=%s dims=%zu\n"
      "band_delta=%s\n"
      "initial_plan=%s\n"
      "plans=%zu complete=%d\n",
      kProtocolVersion, AnalysisKindName(request.kind),
      ctx.query.name.c_str(), storage::LayoutPolicyName(request.policy),
      ctx.space.dims(), FormatDouble(band).c_str(),
      ctx.initial_plan_id.c_str(), plans.size(), d->complete ? 1 : 0));
  if (!st.ok()) return st;

  switch (request.kind) {
    case AnalysisKind::kDiscovery: {
      for (size_t i = 0; i < d->plans.size(); ++i) {
        st = out.Write(StrFormat("plan %zu: %s margin=%s\n", i,
                                 d->plans[i].plan.plan_id.c_str(),
                                 FormatDouble(d->plans[i].margin).c_str()));
        if (!st.ok()) return st;
      }
      break;
    }
    case AnalysisKind::kWorstCase:
    case AnalysisKind::kGtcSeries: {
      // Worst-case global relative cost per requested delta, in request
      // order, via the exact linear-fractional program (no further oracle
      // calls). kWorstCase is the single-delta special case; an explicit
      // box replaces its LP region (a gtcseries curve stays
      // delta-parameterized by definition).
      const size_t count =
          request.kind == AnalysisKind::kWorstCase ? 1 : request.deltas.size();
      for (size_t i = 0; i < count; ++i) {
        const bool explicit_box = request.kind == AnalysisKind::kWorstCase &&
                                  request.box.has_value();
        const core::Box delta_box =
            explicit_box ? *request.box
                         : core::Box::MultiplicativeBand(ctx.baseline,
                                                         request.deltas[i]);
        Result<core::WorstCaseResult> wc = core::WorstCaseOverPlansByLp(
            ctx.initial_usage, plans, delta_box, discovery.pool);
        if (!wc.ok()) return wc.status();
        st = out.Write(StrFormat("delta=%s gtc=%s rival=%s\n",
                                 FormatDouble(request.deltas[i]).c_str(),
                                 FormatDouble(wc->gtc).c_str(),
                                 wc->worst_rival.c_str()));
        if (!st.ok()) return st;
      }
      break;
    }
  }
  return Status::Ok();
}

Status Dispatcher::PersistCache() {
  if (store_ == nullptr) return Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, ctx] : contexts_) {
      ctx->stack.PublishToStore();
    }
  }
  return store_->Save();
}

DispatcherStats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DispatcherStats out;
  out.requests = requests_;
  out.failed_requests = failed_requests_;
  out.contexts = contexts_.size();
  for (const auto& [key, ctx] : contexts_) {
    const runtime::OracleCacheStats s = ctx->stack.cache().stats();
    out.cache.hits += s.hits;
    out.cache.misses += s.misses;
    out.cache.evictions += s.evictions;
    out.cache.entries += s.entries;
    out.cache.imported += s.imported;
  }
  if (store_ != nullptr) {
    out.persistent = true;
    out.store = store_->telemetry();
  }
  return out;
}

}  // namespace costsense::serve
