#ifndef COSTSENSE_SERVE_DISPATCHER_H_
#define COSTSENSE_SERVE_DISPATCHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/discovery.h"
#include "runtime/oracle_stack.h"
#include "runtime/cache_store.h"
#include "runtime/oracle_cache.h"
#include "runtime/resilience/clock.h"
#include "runtime/resilience/fault_injector.h"
#include "runtime/sink/sink.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"

namespace costsense::serve {

/// Tuning for the analysis dispatcher.
struct DispatcherOptions {
  /// Discovery budget applied to every request (the request's deltas pick
  /// the band; the budget is a server policy, not a client knob).
  core::DiscoveryOptions discovery;
  /// Sizing of each shared per-(query, policy) oracle cache.
  runtime::OracleCacheOptions cache;
  /// Seed of every request's probe stream. Fixed per server, so equal
  /// requests replay equal probe sequences — the determinism invariant.
  uint64_t seed = 0x5eed;
  /// Deadline applied when a request carries deadline_ns == 0.
  /// 0 = unlimited.
  uint64_t default_deadline_ns = 0;
  /// Retry budget of the per-request resilient tier.
  size_t max_retries = 0;
  /// Optional deterministic fault injection between the per-request
  /// resilient tier and the shared cache (tests drive deadline behaviour
  /// with latency faults on a ManualClock; production servers leave this
  /// off).
  bool fault_injection = false;
  runtime::resilience::FaultInjectionOptions faults;
  /// Pool the per-request discovery probes and per-rival LPs fan out on;
  /// null uses the process-global pool.
  runtime::ThreadPool* pool = nullptr;
  /// Clock for deadlines and latency faults; null = real steady clock.
  runtime::resilience::Clock* clock = nullptr;
  /// TPC-H catalog scale factor (the paper's experiments use 100).
  double scale_factor = 100.0;
  /// Oracle-cache snapshot file (COSTSENSE_CACHE_PATH); empty = no
  /// persistence. Loaded at construction so contexts materialize warm;
  /// PersistCache() writes the merged warmth back.
  std::string cache_path;
};

/// Cross-request dispatcher state counters.
struct DispatcherStats {
  /// Requests handled (any outcome).
  uint64_t requests = 0;
  /// Requests that produced a non-OK response code.
  uint64_t failed_requests = 0;
  /// Materialized (query, policy) contexts.
  size_t contexts = 0;
  /// Aggregate over every context's shared oracle cache.
  runtime::OracleCacheStats cache;
  /// True when a snapshot store is attached (cache_path configured).
  bool persistent = false;
  /// Snapshot load/save/rejection counters (zero without a store).
  runtime::CacheStoreTelemetry store;
};

/// Executes analysis requests against lazily materialized, shared
/// per-(query, policy) optimizer contexts.
///
/// Each context owns the optimizer for one TPC-H query under one storage
/// layout plus the *shared, long-lived* memoizing CachingOracle that every
/// request against that pair probes through — the server's warm cache.
/// Per-request state (Rng, fault injector, ResilientOracle carrying the
/// request deadline) is stacked above the shared cache on each call, so
/// deadlines and faults stay request-local while computed cost points are
/// served from memory across requests and sessions.
///
/// Determinism: a response body is a pure function of the request and the
/// server options. Probe points are generated from a fixed seed, the cache
/// returns bit-identical replies no matter which request computed an entry
/// first, and bodies never include interleaving-dependent counters (cache
/// hits, oracle call totals) — those surface through stats() instead.
class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options);
  ~Dispatcher();  // out of line: QueryContext is incomplete here

  /// Executes one request. Never fails at the C++ level: every outcome is
  /// an AnalysisResponse whose code is kOk, kDeadlineExceeded (budget
  /// spent mid-analysis), or another typed error.
  AnalysisResponse Handle(const AnalysisRequest& request);

  /// Streaming form: every body piece (the prologue, then one record per
  /// plan or delta line) goes through `records` as a separate Write the
  /// moment it is produced. Returns the analysis status; on a non-OK
  /// status the records already written must be discarded by the consumer
  /// (the v2 terminal status frame is what tells a remote client to).
  /// Handle() is this over a StringSink — one rendering path for both
  /// protocol versions, byte-for-byte.
  [[nodiscard]] Status HandleStreaming(const AnalysisRequest& request,
                                       runtime::sink::Sink& records);

  DispatcherStats stats() const;

  /// Publishes every materialized context's cache to the snapshot store
  /// and saves it to disk (tmp + fsync + rename). No-op success when no
  /// cache_path was configured; typed error on I/O failure. Called by
  /// Server::Shutdown() so a clean shutdown leaves the next process warm.
  [[nodiscard]] Status PersistCache();

  const DispatcherOptions& options() const { return options_; }

 private:
  struct QueryContext;

  /// Returns the shared context for (query_number, policy), materializing
  /// it on first use.
  QueryContext& GetContext(uint16_t query_number,
                           storage::LayoutPolicy policy);

  [[nodiscard]] Status Render(const AnalysisRequest& request,
                              QueryContext& ctx, runtime::sink::Sink& out);

  DispatcherOptions options_;
  catalog::Catalog catalog_;
  /// Snapshot store behind every context's stack (null without
  /// cache_path). Declared before builder_ so the builder can point at it.
  std::unique_ptr<runtime::CacheStore> store_;
  runtime::OracleStackBuilder builder_;

  mutable std::mutex mu_;
  std::map<std::pair<uint16_t, int>, std::unique_ptr<QueryContext>> contexts_;
  uint64_t requests_ = 0;
  uint64_t failed_requests_ = 0;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_DISPATCHER_H_
