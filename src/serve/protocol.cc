#include "serve/protocol.h"

#include <cmath>
#include <cstring>

#include "common/strings.h"

namespace costsense::serve {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked big-endian reader over a frame payload. Every Take*
/// reports truncation as a typed error instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view payload) : rest_(payload) {}

  size_t remaining() const { return rest_.size(); }

  [[nodiscard]] Status TakeU8(uint8_t* out) {
    if (rest_.size() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(rest_[0]);
    rest_.remove_prefix(1);
    return Status::Ok();
  }

  [[nodiscard]] Status TakeU16(uint16_t* out) {
    if (rest_.size() < 2) return Truncated("u16");
    *out = static_cast<uint16_t>(
        (static_cast<uint16_t>(static_cast<uint8_t>(rest_[0])) << 8) |
        static_cast<uint16_t>(static_cast<uint8_t>(rest_[1])));
    rest_.remove_prefix(2);
    return Status::Ok();
  }

  [[nodiscard]] Status TakeU32(uint32_t* out) {
    if (rest_.size() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<uint8_t>(rest_[static_cast<size_t>(i)]);
    }
    *out = v;
    rest_.remove_prefix(4);
    return Status::Ok();
  }

  [[nodiscard]] Status TakeU64(uint64_t* out) {
    if (rest_.size() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<uint8_t>(rest_[static_cast<size_t>(i)]);
    }
    *out = v;
    rest_.remove_prefix(8);
    return Status::Ok();
  }

  [[nodiscard]] Status TakeF64(double* out) {
    uint64_t bits = 0;
    Status st = TakeU64(&bits);
    if (!st.ok()) return st;
    std::memcpy(out, &bits, sizeof(bits));
    return Status::Ok();
  }

  [[nodiscard]] Status TakeBytes(size_t n, std::string* out) {
    if (rest_.size() < n) return Truncated("byte block");
    out->assign(rest_.data(), n);
    rest_.remove_prefix(n);
    return Status::Ok();
  }

 private:
  [[nodiscard]] Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("truncated frame payload: expected %s with %zu byte(s) "
                  "remaining",
                  what, rest_.size()));
  }

  std::string_view rest_;
};

[[nodiscard]] Status CheckVersion(uint8_t version) {
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %u (this server speaks %u)",
                  version, kProtocolVersion));
  }
  return Status::Ok();
}

[[nodiscard]] Status CheckRequestVersion(uint8_t version) {
  if (version != kProtocolVersion && version != kProtocolVersionV2) {
    return Status::InvalidArgument(StrFormat(
        "unsupported protocol version %u (this server speaks %u and %u)",
        version, kProtocolVersion, kProtocolVersionV2));
  }
  return Status::Ok();
}

[[nodiscard]] Status TakeKind(Reader& r, AnalysisKind* out) {
  uint8_t kind = 0;
  Status st = r.TakeU8(&kind);
  if (!st.ok()) return st;
  if (kind > static_cast<uint8_t>(AnalysisKind::kGtcSeries)) {
    return Status::InvalidArgument(StrFormat("unknown analysis kind %u", kind));
  }
  *out = static_cast<AnalysisKind>(kind);
  return Status::Ok();
}

[[nodiscard]] Status TakePolicy(Reader& r, storage::LayoutPolicy* out) {
  uint8_t policy = 0;
  Status st = r.TakeU8(&policy);
  if (!st.ok()) return st;
  if (policy >
      static_cast<uint8_t>(storage::LayoutPolicy::kPerTableColocated)) {
    return Status::InvalidArgument(
        StrFormat("unknown storage layout policy %u", policy));
  }
  *out = static_cast<storage::LayoutPolicy>(policy);
  return Status::Ok();
}

}  // namespace

const char* AnalysisKindName(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kDiscovery:
      return "discovery";
    case AnalysisKind::kWorstCase:
      return "worstcase";
    case AnalysisKind::kGtcSeries:
      return "gtcseries";
  }
  return "unknown";
}

std::string EncodeRequest(const AnalysisRequest& request) {
  std::string out;
  out.reserve(15 + 8 * request.deltas.size());
  PutU8(&out, request.version);
  PutU8(&out, static_cast<uint8_t>(request.kind));
  PutU8(&out, static_cast<uint8_t>(request.policy));
  PutU16(&out, request.query_number);
  PutU64(&out, request.deadline_ns);
  PutU16(&out, static_cast<uint16_t>(request.deltas.size()));
  for (double delta : request.deltas) PutF64(&out, delta);
  if (request.version >= kProtocolVersionV2) {
    PutU8(&out, request.box.has_value() ? 1 : 0);
    if (request.box.has_value()) {
      const core::Box& box = *request.box;
      PutU16(&out, static_cast<uint16_t>(box.dims()));
      for (size_t i = 0; i < box.dims(); ++i) PutF64(&out, box.lower()[i]);
      for (size_t i = 0; i < box.dims(); ++i) PutF64(&out, box.upper()[i]);
    }
  }
  return out;
}

Result<AnalysisRequest> DecodeRequest(std::string_view payload) {
  Reader r(payload);
  uint8_t version = 0;
  Status st = r.TakeU8(&version);
  if (!st.ok()) return st;
  st = CheckRequestVersion(version);
  if (!st.ok()) return st;

  AnalysisRequest out;
  out.version = version;
  st = TakeKind(r, &out.kind);
  if (!st.ok()) return st;

  st = TakePolicy(r, &out.policy);
  if (!st.ok()) return st;

  st = r.TakeU16(&out.query_number);
  if (!st.ok()) return st;
  if (out.query_number < 1 || out.query_number > 22) {
    return Status::InvalidArgument(
        StrFormat("query number %u outside TPC-H range 1..22",
                  out.query_number));
  }

  st = r.TakeU64(&out.deadline_ns);
  if (!st.ok()) return st;

  uint16_t ndeltas = 0;
  st = r.TakeU16(&ndeltas);
  if (!st.ok()) return st;
  if (ndeltas == 0 || ndeltas > kMaxDeltas) {
    return Status::InvalidArgument(
        StrFormat("delta count %u outside 1..%u", ndeltas, kMaxDeltas));
  }
  out.deltas.clear();
  out.deltas.reserve(ndeltas);
  for (uint16_t i = 0; i < ndeltas; ++i) {
    double delta = 0.0;
    st = r.TakeF64(&delta);
    if (!st.ok()) return st;
    if (!std::isfinite(delta) || delta <= 1.0) {
      return Status::InvalidArgument(StrFormat(
          "delta %u is %g; error-band factors must be finite and > 1",
          i, delta));
    }
    out.deltas.push_back(delta);
  }
  if (version >= kProtocolVersionV2) {
    uint8_t has_box = 0;
    st = r.TakeU8(&has_box);
    if (!st.ok()) return st;
    if (has_box > 1) {
      return Status::InvalidArgument(
          StrFormat("has-box flag is %u; must be 0 or 1", has_box));
    }
    if (has_box == 1) {
      uint16_t dims = 0;
      st = r.TakeU16(&dims);
      if (!st.ok()) return st;
      if (dims == 0 || dims > kMaxBoxDims) {
        return Status::InvalidArgument(StrFormat(
            "box dimension count %u outside 1..%u", dims, kMaxBoxDims));
      }
      std::vector<double> lower(dims);
      std::vector<double> upper(dims);
      for (uint16_t i = 0; i < dims; ++i) {
        st = r.TakeF64(&lower[i]);
        if (!st.ok()) return st;
      }
      for (uint16_t i = 0; i < dims; ++i) {
        st = r.TakeF64(&upper[i]);
        if (!st.ok()) return st;
      }
      // Box::Validated enforces positive, finite, element-wise ordered
      // bounds as a typed error — the wire never reaches the CHECKing
      // constructor.
      Result<core::Box> box =
          core::Box::Validated(core::CostVector(std::move(lower)),
                               core::CostVector(std::move(upper)));
      if (!box.ok()) return box.status();
      out.box = std::move(box).value();
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing byte(s) after request payload", r.remaining()));
  }
  return out;
}

std::string EncodeResponse(const AnalysisResponse& response) {
  std::string out;
  out.reserve(6 + response.body.size());
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(response.code));
  PutU32(&out, static_cast<uint32_t>(response.body.size()));
  out += response.body;
  return out;
}

Result<AnalysisResponse> DecodeResponse(std::string_view payload) {
  Reader r(payload);
  uint8_t version = 0;
  Status st = r.TakeU8(&version);
  if (!st.ok()) return st;
  st = CheckVersion(version);
  if (!st.ok()) return st;

  AnalysisResponse out;
  uint8_t code = 0;
  st = r.TakeU8(&code);
  if (!st.ok()) return st;
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument(StrFormat("unknown status code %u", code));
  }
  out.code = static_cast<StatusCode>(code);

  uint32_t body_len = 0;
  st = r.TakeU32(&body_len);
  if (!st.ok()) return st;
  if (body_len != r.remaining()) {
    return Status::InvalidArgument(
        StrFormat("response body length %u disagrees with %zu payload "
                  "byte(s) remaining",
                  body_len, r.remaining()));
  }
  st = r.TakeBytes(body_len, &out.body);
  if (!st.ok()) return st;
  return out;
}

std::string EncodeResponseFrame(const ResponseFrame& frame) {
  std::string out;
  PutU8(&out, kProtocolVersionV2);
  PutU8(&out, static_cast<uint8_t>(frame.type));
  switch (frame.type) {
    case ResponseFrameType::kHeader:
      PutU8(&out, static_cast<uint8_t>(frame.kind));
      PutU8(&out, static_cast<uint8_t>(frame.policy));
      PutU16(&out, frame.query_number);
      break;
    case ResponseFrameType::kRecords:
      for (const std::string& record : frame.records) {
        PutU32(&out, static_cast<uint32_t>(record.size()));
        out += record;
      }
      break;
    case ResponseFrameType::kStatus:
      PutU8(&out, static_cast<uint8_t>(frame.code));
      PutU32(&out, static_cast<uint32_t>(frame.message.size()));
      out += frame.message;
      break;
  }
  return out;
}

Result<ResponseFrame> DecodeResponseFrame(std::string_view payload) {
  Reader r(payload);
  uint8_t version = 0;
  Status st = r.TakeU8(&version);
  if (!st.ok()) return st;
  if (version != kProtocolVersionV2) {
    return Status::InvalidArgument(StrFormat(
        "response frame version %u; the frame stream is version %u only",
        version, kProtocolVersionV2));
  }

  ResponseFrame out;
  uint8_t type = 0;
  st = r.TakeU8(&type);
  if (!st.ok()) return st;
  if (type > static_cast<uint8_t>(ResponseFrameType::kStatus)) {
    return Status::InvalidArgument(
        StrFormat("unknown response frame type %u", type));
  }
  out.type = static_cast<ResponseFrameType>(type);

  switch (out.type) {
    case ResponseFrameType::kHeader: {
      st = TakeKind(r, &out.kind);
      if (!st.ok()) return st;
      st = TakePolicy(r, &out.policy);
      if (!st.ok()) return st;
      st = r.TakeU16(&out.query_number);
      if (!st.ok()) return st;
      if (out.query_number < 1 || out.query_number > 22) {
        return Status::InvalidArgument(
            StrFormat("query number %u outside TPC-H range 1..22",
                      out.query_number));
      }
      break;
    }
    case ResponseFrameType::kRecords: {
      while (r.remaining() > 0) {
        uint32_t len = 0;
        st = r.TakeU32(&len);
        if (!st.ok()) return st;
        if (len > r.remaining()) {
          return Status::InvalidArgument(StrFormat(
              "record length %u exceeds %zu frame byte(s) remaining", len,
              r.remaining()));
        }
        std::string record;
        st = r.TakeBytes(len, &record);
        if (!st.ok()) return st;
        out.records.push_back(std::move(record));
      }
      break;
    }
    case ResponseFrameType::kStatus: {
      uint8_t code = 0;
      st = r.TakeU8(&code);
      if (!st.ok()) return st;
      if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
        return Status::InvalidArgument(
            StrFormat("unknown status code %u", code));
      }
      out.code = static_cast<StatusCode>(code);
      uint32_t len = 0;
      st = r.TakeU32(&len);
      if (!st.ok()) return st;
      if (len != r.remaining()) {
        return Status::InvalidArgument(StrFormat(
            "status message length %u disagrees with %zu frame byte(s) "
            "remaining",
            len, r.remaining()));
      }
      st = r.TakeBytes(len, &out.message);
      if (!st.ok()) return st;
      break;
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing byte(s) after response frame", r.remaining()));
  }
  return out;
}

Status ResponseReassembler::Feed(std::string_view payload) {
  if (state_ == State::kDone) {
    return Status::InvalidArgument(
        "response frame after the terminal status frame");
  }
  Result<ResponseFrame> frame = DecodeResponseFrame(payload);
  if (!frame.ok()) return frame.status();

  switch (frame->type) {
    case ResponseFrameType::kHeader: {
      if (state_ != State::kExpectHeader) {
        return Status::InvalidArgument("duplicate response header frame");
      }
      has_header_ = true;
      kind_ = frame->kind;
      policy_ = frame->policy;
      query_number_ = frame->query_number;
      state_ = State::kStreaming;
      return Status::Ok();
    }
    case ResponseFrameType::kRecords: {
      if (state_ != State::kStreaming) {
        return Status::InvalidArgument(
            "record frame before the response header frame");
      }
      for (const std::string& record : frame->records) records_ += record;
      return Status::Ok();
    }
    case ResponseFrameType::kStatus: {
      // Header-first has one exception: an error status may arrive alone
      // when the request was rejected before any analysis began.
      if (state_ == State::kExpectHeader && frame->code == StatusCode::kOk) {
        return Status::InvalidArgument(
            "OK status frame before the response header frame");
      }
      response_.code = frame->code;
      response_.body = frame->code == StatusCode::kOk
                           ? std::move(records_)
                           : std::move(frame->message);
      state_ = State::kDone;
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable response frame type");
}

}  // namespace costsense::serve
