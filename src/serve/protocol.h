#ifndef COSTSENSE_SERVE_PROTOCOL_H_
#define COSTSENSE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feasible_region.h"
#include "storage/layout.h"

namespace costsense::serve {

/// costsense-serve wire protocol, versions 1 and 2.
///
/// A connection carries length-prefixed frames in both directions:
///
///   [u32 big-endian payload length][payload bytes]
///
/// and strictly alternates request/response (one outstanding request per
/// session; clients that want concurrency open more sessions, which is
/// also what keeps per-session state trivial — the MariaDB-style split
/// between session state and shared caches). Every multi-byte integer is
/// big-endian; doubles travel as the big-endian bytes of their IEEE-754
/// representation, so a payload is bit-reproducible across hosts.
///
/// Version 1 request payload:
///
///   u8  version (kProtocolVersion)
///   u8  analysis kind (AnalysisKind)
///   u8  storage layout policy (storage::LayoutPolicy)
///   u16 TPC-H query number (1..22)
///   u64 per-request deadline in nanoseconds (0 = server default)
///   u16 delta count (>= 1, <= kMaxDeltas)
///   f64 x count: multiplicative error-band factors defining the feasible
///       cost box(es) around the layout's baseline costs. kDiscovery and
///       kWorstCase read deltas[0]; kGtcSeries evaluates every delta
///       against the plan set discovered at the widest one.
///
/// Version 1 response payload:
///
///   u8  version
///   u8  status code (StatusCode; kOk on success)
///   u32 body length, then body bytes — the rendered analysis text on
///       success, the error message otherwise.
///
/// Version 2 extends the request with an explicit feasible-region box and
/// replaces the single response payload with a structured frame stream
/// (see ResponseFrameType). A v2 request is the v1 fields with the
/// version byte set to kProtocolVersionV2 followed by:
///
///   u8  has-box flag (0 or 1)
///   [when 1]
///   u16 dims (1..kMaxBoxDims)
///   f64 x dims: per-parameter lower bounds
///   f64 x dims: per-parameter upper bounds
///
/// The bounds are validated at decode time with core::Box::Validated
/// (positive, finite, element-wise lower <= upper); a malformed box is a
/// typed kInvalidArgument, never a crash. When present, the box replaces
/// the multiplicative band for discovery and for the worst-case LP; the
/// deltas still drive the per-delta bands of a kGtcSeries curve. A server
/// accepts both versions on one socket, keyed by the request's version
/// byte.
inline constexpr uint8_t kProtocolVersion = 1;

/// Version tag of the structured-payload protocol revision.
inline constexpr uint8_t kProtocolVersionV2 = 2;

/// Cap on the dimension count of an explicit v2 feasible-region box
/// (matches the 64-dim bound the vertex sweeps can address).
inline constexpr uint16_t kMaxBoxDims = 64;

/// Frames above this size are rejected as malformed rather than trusted
/// to allocate (a corrupted length prefix must not look like a 4 GiB
/// request).
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Cap on deltas per request (a series request is bounded work).
inline constexpr uint16_t kMaxDeltas = 64;

/// What the client wants computed for (query, box).
enum class AnalysisKind : uint8_t {
  /// Candidate-optimal plan discovery over the box: initial plan at the
  /// baseline costs plus every plan the oracle picks somewhere feasible.
  kDiscovery = 0,
  /// Worst-case global relative cost of the initial plan over the box
  /// (the paper's GTC at one delta).
  kWorstCase = 1,
  /// The full GTC-vs-delta curve (paper Figures 5-7, one query).
  kGtcSeries = 2,
};

/// Returns a short stable name for `kind` ("discovery", ...).
const char* AnalysisKindName(AnalysisKind kind);

/// One analysis request. `deltas` defines the feasible-region box(es) as
/// multiplicative error bands around the layout baseline; a v2 request
/// may carry an explicit box instead.
struct AnalysisRequest {
  /// Wire version EncodeRequest emits (and DecodeRequest saw). The box
  /// field only travels on kProtocolVersionV2.
  uint8_t version = kProtocolVersion;
  AnalysisKind kind = AnalysisKind::kDiscovery;
  storage::LayoutPolicy policy = storage::LayoutPolicy::kSharedDevice;
  uint16_t query_number = 1;
  uint64_t deadline_ns = 0;
  std::vector<double> deltas = {100.0};
  /// Explicit feasible-region box (v2 only); validated at decode. When
  /// set, it replaces the multiplicative band for discovery and the
  /// worst-case LP, and its dimension count must match the query's
  /// resource space (checked at dispatch).
  std::optional<core::Box> box;
};

/// One analysis response: a typed status code plus the payload text (the
/// deterministic analysis rendering on success, the error message
/// otherwise).
struct AnalysisResponse {
  StatusCode code = StatusCode::kOk;
  std::string body;

  bool ok() const { return code == StatusCode::kOk; }
};

/// Serializes `request` into a frame payload (no length prefix; the
/// transport owns framing).
std::string EncodeRequest(const AnalysisRequest& request);

/// Parses a frame payload into a request. kInvalidArgument on truncated
/// payloads, unknown versions/kinds/policies, out-of-range query numbers,
/// or non-finite / non-positive deltas.
[[nodiscard]] Result<AnalysisRequest> DecodeRequest(std::string_view payload);

/// Serializes `response` into a frame payload.
std::string EncodeResponse(const AnalysisResponse& response);

/// Parses a frame payload into a response. kInvalidArgument on truncated
/// or version-mismatched payloads.
[[nodiscard]] Result<AnalysisResponse> DecodeResponse(std::string_view payload);

// ---------------------------------------------------------------------------
// Version 2 response frame stream
// ---------------------------------------------------------------------------

/// A v2 response is a stream of transport frames, each carrying one of
/// three payload types:
///
///   header   u8 ver=2 | u8 type=0 | u8 kind | u8 policy | u16 query
///   records  u8 ver=2 | u8 type=1 | repeated (u32 length | body bytes)
///   status   u8 ver=2 | u8 type=2 | u8 code | u32 length | message bytes
///
/// The stream is header-first, then zero or more record frames, then
/// exactly one terminal status frame. On kOk the concatenated record
/// bodies equal the v1 response body byte for byte; on any other code the
/// records are discarded and the message is the error text. As the one
/// exception to header-first, an error status frame may arrive alone
/// (a request rejected before analysis has no header to send).
enum class ResponseFrameType : uint8_t {
  kHeader = 0,
  kRecords = 1,
  kStatus = 2,
};

/// One decoded v2 frame; which fields are meaningful depends on `type`.
struct ResponseFrame {
  ResponseFrameType type = ResponseFrameType::kHeader;
  // kHeader
  AnalysisKind kind = AnalysisKind::kDiscovery;
  storage::LayoutPolicy policy = storage::LayoutPolicy::kSharedDevice;
  uint16_t query_number = 1;
  // kRecords
  std::vector<std::string> records;
  // kStatus
  StatusCode code = StatusCode::kOk;
  std::string message;
};

/// Serializes one v2 frame into a transport payload.
std::string EncodeResponseFrame(const ResponseFrame& frame);

/// Parses one v2 frame payload. kInvalidArgument on truncation, unknown
/// frame types, record lengths that disagree with the payload, or a
/// status length that lies about the remaining bytes.
[[nodiscard]] Result<ResponseFrame> DecodeResponseFrame(
    std::string_view payload);

/// Client-side state machine that folds a v2 frame stream back into the
/// v1-equivalent AnalysisResponse. Feed() every received payload in
/// order; after done() reports true, response() is the reassembled
/// result. Violations of the stream grammar (records before the header,
/// frames after the terminal status, a duplicate header) are typed
/// kInvalidArgument errors.
class ResponseReassembler {
 public:
  [[nodiscard]] Status Feed(std::string_view payload);

  bool done() const { return state_ == State::kDone; }

  /// Valid once done(): the terminal response (concatenated records on
  /// kOk, the status message otherwise).
  const AnalysisResponse& response() const { return response_; }

  /// Valid once a header frame arrived: what the server echoed back.
  bool has_header() const { return has_header_; }
  AnalysisKind kind() const { return kind_; }
  storage::LayoutPolicy policy() const { return policy_; }
  uint16_t query_number() const { return query_number_; }

 private:
  enum class State { kExpectHeader, kStreaming, kDone };

  State state_ = State::kExpectHeader;
  bool has_header_ = false;
  AnalysisKind kind_ = AnalysisKind::kDiscovery;
  storage::LayoutPolicy policy_ = storage::LayoutPolicy::kSharedDevice;
  uint16_t query_number_ = 1;
  std::string records_;
  AnalysisResponse response_;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_PROTOCOL_H_
