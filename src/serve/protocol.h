#ifndef COSTSENSE_SERVE_PROTOCOL_H_
#define COSTSENSE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/layout.h"

namespace costsense::serve {

/// costsense-serve wire protocol, version 1.
///
/// A connection carries length-prefixed frames in both directions:
///
///   [u32 big-endian payload length][payload bytes]
///
/// and strictly alternates request/response (one outstanding request per
/// session; clients that want concurrency open more sessions, which is
/// also what keeps per-session state trivial — the MariaDB-style split
/// between session state and shared caches). Every multi-byte integer is
/// big-endian; doubles travel as the big-endian bytes of their IEEE-754
/// representation, so a payload is bit-reproducible across hosts.
///
/// Request payload:
///
///   u8  version (kProtocolVersion)
///   u8  analysis kind (AnalysisKind)
///   u8  storage layout policy (storage::LayoutPolicy)
///   u16 TPC-H query number (1..22)
///   u64 per-request deadline in nanoseconds (0 = server default)
///   u16 delta count (>= 1, <= kMaxDeltas)
///   f64 x count: multiplicative error-band factors defining the feasible
///       cost box(es) around the layout's baseline costs. kDiscovery and
///       kWorstCase read deltas[0]; kGtcSeries evaluates every delta
///       against the plan set discovered at the widest one.
///
/// Response payload:
///
///   u8  version
///   u8  status code (StatusCode; kOk on success)
///   u32 body length, then body bytes — the rendered analysis text on
///       success, the error message otherwise.
inline constexpr uint8_t kProtocolVersion = 1;

/// Frames above this size are rejected as malformed rather than trusted
/// to allocate (a corrupted length prefix must not look like a 4 GiB
/// request).
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Cap on deltas per request (a series request is bounded work).
inline constexpr uint16_t kMaxDeltas = 64;

/// What the client wants computed for (query, box).
enum class AnalysisKind : uint8_t {
  /// Candidate-optimal plan discovery over the box: initial plan at the
  /// baseline costs plus every plan the oracle picks somewhere feasible.
  kDiscovery = 0,
  /// Worst-case global relative cost of the initial plan over the box
  /// (the paper's GTC at one delta).
  kWorstCase = 1,
  /// The full GTC-vs-delta curve (paper Figures 5-7, one query).
  kGtcSeries = 2,
};

/// Returns a short stable name for `kind` ("discovery", ...).
const char* AnalysisKindName(AnalysisKind kind);

/// One analysis request. `deltas` defines the feasible-region box(es) as
/// multiplicative error bands around the layout baseline.
struct AnalysisRequest {
  AnalysisKind kind = AnalysisKind::kDiscovery;
  storage::LayoutPolicy policy = storage::LayoutPolicy::kSharedDevice;
  uint16_t query_number = 1;
  uint64_t deadline_ns = 0;
  std::vector<double> deltas = {100.0};
};

/// One analysis response: a typed status code plus the payload text (the
/// deterministic analysis rendering on success, the error message
/// otherwise).
struct AnalysisResponse {
  StatusCode code = StatusCode::kOk;
  std::string body;

  bool ok() const { return code == StatusCode::kOk; }
};

/// Serializes `request` into a frame payload (no length prefix; the
/// transport owns framing).
std::string EncodeRequest(const AnalysisRequest& request);

/// Parses a frame payload into a request. kInvalidArgument on truncated
/// payloads, unknown versions/kinds/policies, out-of-range query numbers,
/// or non-finite / non-positive deltas.
[[nodiscard]] Result<AnalysisRequest> DecodeRequest(std::string_view payload);

/// Serializes `response` into a frame payload.
std::string EncodeResponse(const AnalysisResponse& response);

/// Parses a frame payload into a response. kInvalidArgument on truncated
/// or version-mismatched payloads.
[[nodiscard]] Result<AnalysisResponse> DecodeResponse(std::string_view payload);

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_PROTOCOL_H_
