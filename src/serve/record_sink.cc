#include "serve/record_sink.h"

namespace costsense::serve {

Status FrameRecordSink::Write(std::string_view record) {
  pending_.records.emplace_back(record);
  ++records_;
  if (pending_.records.size() >= records_per_frame_) return Flush();
  return Status::Ok();
}

Status FrameRecordSink::Flush() {
  if (pending_.records.empty()) return Status::Ok();
  const Status st = transport_.SendFrame(EncodeResponseFrame(pending_));
  pending_.records.clear();
  if (st.ok()) ++frames_;
  return st;
}

}  // namespace costsense::serve
