#ifndef COSTSENSE_SERVE_RECORD_SINK_H_
#define COSTSENSE_SERVE_RECORD_SINK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "runtime/sink/sink.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace costsense::serve {

/// The serve-side record stage of a v2 response: each Write() is one
/// logical record, batched into kRecords frames of up to
/// `records_per_frame` records and sent through the transport. Flush()
/// sends the partial batch; Close() flushes (the transport is borrowed —
/// the session owns its lifecycle, exactly like the byte-level FdSink).
///
/// This is the piece that makes Dispatcher::HandleStreaming a network
/// protocol: the dispatcher writes plain records, this stage wraps them
/// in protocol frames, the transport frames the bytes onto the socket.
class FrameRecordSink final : public runtime::sink::Sink {
 public:
  explicit FrameRecordSink(FrameTransport& transport,
                           size_t records_per_frame = 8)
      : transport_(transport),
        records_per_frame_(records_per_frame == 0 ? 1 : records_per_frame) {
    pending_.type = ResponseFrameType::kRecords;
  }

  [[nodiscard]] Status Write(std::string_view record) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Close() override { return Flush(); }

  /// Records accepted so far (sent or still batched).
  uint64_t records() const { return records_; }
  /// kRecords frames actually sent.
  uint64_t frames() const { return frames_; }

 private:
  FrameTransport& transport_;
  const size_t records_per_frame_;
  ResponseFrame pending_;
  uint64_t records_ = 0;
  uint64_t frames_ = 0;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_RECORD_SINK_H_
