#include "serve/server.h"

#include <thread>
#include <utility>
#include <vector>

#include "serve/session.h"

namespace costsense::serve {

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      dispatcher_(options_.dispatcher),
      admission_(options_.max_inflight, options_.max_queued) {}

runtime::ThreadPool& Server::pool() const {
  return options_.dispatcher.pool != nullptr ? *options_.dispatcher.pool
                                             : runtime::ThreadPool::Global();
}

AnalysisResponse Server::Handle(const AnalysisRequest& request) {
  Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    AnalysisResponse response;
    response.code = admitted.code();
    response.body = admitted.message();
    return response;
  }
  AnalysisResponse response = dispatcher_.Handle(request);
  admission_.Release();
  return response;
}

Status Server::ServeBlocking(SocketListener& listener, size_t max_sessions) {
  std::vector<std::thread> threads;
  uint64_t accepted = 0;
  Status terminal = Status::Ok();
  for (;;) {
    if (max_sessions != 0 && accepted >= max_sessions) break;
    Result<std::unique_ptr<SocketTransport>> conn = listener.Accept();
    if (!conn.ok()) {
      // kUnavailable is the listener's close signal — a clean shutdown,
      // not an error to propagate.
      if (conn.status().code() != StatusCode::kUnavailable) {
        terminal = conn.status();
      }
      break;
    }
    ++accepted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++sessions_;
    }
    threads.emplace_back(
        [this, transport = std::move(conn).value()]() mutable {
          Session session(*this, std::move(transport));
          // A failed session only affects its own connection; the peer
          // already received a typed error frame where one was possible.
          const Status session_status = session.Run();
          (void)session_status;
        });
  }
  for (std::thread& t : threads) t.join();
  return terminal;
}

void Server::Shutdown() {
  admission_.Close();
  pool().Drain();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.admission = admission_.stats();
  out.dispatcher = dispatcher_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  out.sessions = sessions_;
  return out;
}

}  // namespace costsense::serve
