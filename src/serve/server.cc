#include "serve/server.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "serve/session.h"

namespace costsense::serve {

namespace {
/// Drain poll granularity. Real-clock drains re-check the registry every
/// millisecond; under a ManualClock each poll advances virtual time by
/// exactly this much, so the drain-timeout tests are deterministic.
constexpr uint64_t kDrainPollNs = 1'000'000;
}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      dispatcher_(options_.dispatcher),
      admission_(options_.max_inflight, options_.max_queued) {}

runtime::ThreadPool& Server::pool() const {
  return options_.dispatcher.pool != nullptr ? *options_.dispatcher.pool
                                             : runtime::ThreadPool::Global();
}

runtime::resilience::Clock& Server::clock() const {
  return options_.dispatcher.clock != nullptr
             ? *options_.dispatcher.clock
             : runtime::resilience::Clock::Real();
}

void Server::BeginSession(Session& session) {
  std::lock_guard<std::mutex> lock(mu_);
  // Idempotent: ServeBlocking registers at accept time and Session::Run()
  // registers again via RAII; the session must appear exactly once.
  if (std::find(active_.begin(), active_.end(), &session) == active_.end()) {
    active_.push_back(&session);
  }
}

void Server::EndSession(Session& session) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(std::remove(active_.begin(), active_.end(), &session),
                active_.end());
}

size_t Server::ReapIdleSessions() {
  if (options_.idle_timeout_ns == 0) return 0;
  const uint64_t now = clock().NowNanos();
  size_t reaped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (Session* session : active_) {
    const uint64_t last = session->last_activity_ns();
    if (now > last && now - last >= options_.idle_timeout_ns) {
      // Abort() only touches the transport (thread-safe close); the
      // session deregisters itself before destruction, so this pointer is
      // valid for as long as we hold the registry lock.
      // costsense-lint: allow(R8, "Abort closes, never blocks; the session pointer is only valid while the registry lock pins it")
      session->Abort();
      ++reaped;
    }
  }
  idle_reaped_ += reaped;
  return reaped;
}

void Server::DrainSessions() {
  runtime::resilience::Clock& clk = clock();
  const uint64_t start = clk.NowNanos();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_.empty()) break;
      if (options_.drain_timeout_ns != 0 &&
          clk.NowNanos() - start >= options_.drain_timeout_ns) {
        // Deadline: force-close the stragglers. Their blocked Recv calls
        // wake with end-of-stream and the sessions deregister on exit.
        for (Session* session : active_) {
          // costsense-lint: allow(R8, "Abort closes, never blocks; the session pointer is only valid while the registry lock pins it")
          session->Abort();
          ++shutdown_.forced_sessions;
        }
        break;
      }
    }
    clk.SleepFor(kDrainPollNs);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Accumulated: ServeBlocking drains on exit and Shutdown() drains
  // again; the stat must keep the wait that actually happened rather
  // than be overwritten by a later already-empty drain.
  shutdown_.drain_wait_ns += clk.NowNanos() - start;
  shutdown_.ran = true;
}

AnalysisResponse Server::Handle(const AnalysisRequest& request) {
  Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    AnalysisResponse response;
    response.code = admitted.code();
    response.body = admitted.message();
    return response;
  }
  AnalysisResponse response = dispatcher_.Handle(request);
  admission_.Release();
  return response;
}

Status Server::HandleStreaming(const AnalysisRequest& request,
                               runtime::sink::Sink& records) {
  Status admitted = admission_.Admit();
  if (!admitted.ok()) return admitted;
  const Status st = dispatcher_.HandleStreaming(request, records);
  admission_.Release();
  return st;
}

Status Server::ServeBlocking(SocketListener& listener, size_t max_sessions) {
  std::vector<std::thread> threads;
  uint64_t accepted = 0;
  Status terminal = Status::Ok();
  for (;;) {
    if (max_sessions != 0 && accepted >= max_sessions) break;
    Result<std::unique_ptr<SocketTransport>> conn = listener.Accept();
    if (!conn.ok()) {
      // kUnavailable is the listener's close signal — a clean shutdown,
      // not an error to propagate.
      if (conn.status().code() != StatusCode::kUnavailable) {
        terminal = conn.status();
      }
      break;
    }
    ++accepted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++sessions_;
    }
    auto session = std::make_unique<Session>(*this, std::move(conn).value());
    // Register before spawning the thread: the moment the accept loop can
    // fall through to DrainSessions(), every accepted session must be
    // visible to the drain. Registering inside the session thread loses a
    // race where the drain sees an empty registry (and declares victory)
    // before a wedged connection's thread has reached Run() — which would
    // wedge the join below forever.
    BeginSession(*session);
    threads.emplace_back([session = std::move(session)]() mutable {
      // A failed session only affects its own connection; the peer
      // already received a typed error frame where one was possible.
      const Status session_status = session->Run();
      (void)session_status;
    });
  }
  // Bound the joins: a wedged session would otherwise block this loop
  // forever. After the drain (graceful or forced at the deadline) every
  // session thread is on its way out, so the joins complete.
  DrainSessions();
  for (std::thread& t : threads) t.join();
  return terminal;
}

void Server::Shutdown() {
  admission_.Close();
  DrainSessions();
  pool().Drain();
  const Status persisted = dispatcher_.PersistCache();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_.persist_failed = !persisted.ok();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.admission = admission_.stats();
  out.dispatcher = dispatcher_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  out.sessions = sessions_;
  out.active_sessions = active_.size();
  out.idle_reaped = idle_reaped_;
  out.shutdown = shutdown_;
  return out;
}

}  // namespace costsense::serve
