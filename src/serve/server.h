#ifndef COSTSENSE_SERVE_SERVER_H_
#define COSTSENSE_SERVE_SERVER_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "runtime/thread_pool.h"
#include "serve/admission.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace costsense::serve {

/// Server-wide tuning: the dispatcher policy plus admission bounds.
struct ServerOptions {
  DispatcherOptions dispatcher;
  /// Requests executing at once across all sessions.
  size_t max_inflight = 4;
  /// Requests allowed to wait for a slot; beyond this, kUnavailable.
  size_t max_queued = 16;
};

/// Everything the server can report about itself.
struct ServerStats {
  AdmissionStats admission;
  DispatcherStats dispatcher;
  /// Sessions ever accepted by ServeBlocking (in-process sessions
  /// constructed directly against the server are not counted here).
  uint64_t sessions = 0;
};

/// The long-lived analysis server: admission control in front of the
/// shared dispatcher. Sessions (any number, on any threads) funnel their
/// requests through Handle(), which bounds concurrent work and sheds load
/// with typed kUnavailable once saturated — the server never hangs a
/// client and never crashes from overload.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Admission-controlled request execution; the single entry point for
  /// every session. Admission failures come back as kUnavailable
  /// responses, never as hangs.
  AnalysisResponse Handle(const AnalysisRequest& request);

  /// Accepts connections until the listener is closed (or `max_sessions`
  /// sessions have finished, when nonzero — benches use this for a
  /// drivable shutdown), running each session on its own thread. Returns
  /// after every accepted session has drained.
  [[nodiscard]] Status ServeBlocking(SocketListener& listener,
                                     size_t max_sessions = 0);

  /// Graceful shutdown: stop admitting, reject waiters, and quiesce the
  /// worker pool so in-flight analyses finish before teardown. Idempotent.
  void Shutdown();

  ServerStats stats() const;

  /// Exposed so tests can saturate admission directly.
  AdmissionController& admission() { return admission_; }
  Dispatcher& dispatcher() { return dispatcher_; }

  const ServerOptions& options() const { return options_; }

 private:
  runtime::ThreadPool& pool() const;

  ServerOptions options_;
  Dispatcher dispatcher_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  uint64_t sessions_ = 0;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_SERVER_H_
