#ifndef COSTSENSE_SERVE_SERVER_H_
#define COSTSENSE_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "runtime/resilience/clock.h"
#include "runtime/sink/sink.h"
#include "runtime/thread_pool.h"
#include "serve/admission.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace costsense::serve {

class Session;

/// Server-wide tuning: the dispatcher policy plus admission bounds.
struct ServerOptions {
  DispatcherOptions dispatcher;
  /// Requests executing at once across all sessions.
  size_t max_inflight = 4;
  /// Requests allowed to wait for a slot; beyond this, kUnavailable.
  size_t max_queued = 16;
  /// Bound on Shutdown()/ServeBlocking waiting for live sessions before
  /// force-closing their transports (the --drain-timeout). 0 = wait
  /// forever — one wedged session then wedges shutdown, which is exactly
  /// what this knob exists to prevent. Measured on the dispatcher clock.
  uint64_t drain_timeout_ns = 0;
  /// Idle threshold for ReapIdleSessions(): a session whose last protocol
  /// activity is older than this gets its transport force-closed. 0 =
  /// never reap. Must comfortably exceed the longest expected analysis,
  /// since a session is "idle" from its last completed frame.
  uint64_t idle_timeout_ns = 0;
};

/// How the last Shutdown()/drain went. All zero until one has run.
struct ShutdownStats {
  /// A drain (graceful or forced) has completed.
  bool ran = false;
  /// Sessions force-closed because the drain timeout expired; 0 means
  /// every session ended gracefully.
  uint64_t forced_sessions = 0;
  /// Total time drains spent waiting, on the server clock (accumulated
  /// across ServeBlocking's exit drain and Shutdown()).
  uint64_t drain_wait_ns = 0;
  /// Set when the shutdown cache snapshot failed to persist (the server
  /// still shuts down; the next start is just cold).
  bool persist_failed = false;
};

/// Everything the server can report about itself.
struct ServerStats {
  AdmissionStats admission;
  DispatcherStats dispatcher;
  /// Sessions ever accepted by ServeBlocking (in-process sessions
  /// constructed directly against the server are not counted here).
  uint64_t sessions = 0;
  /// Sessions currently registered: accepted by ServeBlocking or inside
  /// Session::Run().
  size_t active_sessions = 0;
  /// Sessions reclaimed by the idle watchdog over the server's lifetime.
  uint64_t idle_reaped = 0;
  ShutdownStats shutdown;
};

/// The long-lived analysis server: admission control in front of the
/// shared dispatcher. Sessions (any number, on any threads) funnel their
/// requests through Handle(), which bounds concurrent work and sheds load
/// with typed kUnavailable once saturated — the server never hangs a
/// client and never crashes from overload.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Admission-controlled request execution; the single entry point for
  /// every session. Admission failures come back as kUnavailable
  /// responses, never as hangs.
  AnalysisResponse Handle(const AnalysisRequest& request);

  /// Streaming (protocol v2) form of Handle: the same admission gate, but
  /// body records go through `records` as they are produced instead of
  /// accumulating in a response. Returns the analysis status the session
  /// turns into the terminal status frame; on a non-OK status any records
  /// already streamed are discarded by the client's reassembler.
  [[nodiscard]] Status HandleStreaming(const AnalysisRequest& request,
                                       runtime::sink::Sink& records);

  /// Accepts connections until the listener is closed (or `max_sessions`
  /// sessions have finished, when nonzero — benches use this for a
  /// drivable shutdown), running each session on its own thread. Returns
  /// after every accepted session has drained.
  [[nodiscard]] Status ServeBlocking(SocketListener& listener,
                                     size_t max_sessions = 0);

  /// Graceful shutdown, bounded by options().drain_timeout_ns: stop
  /// admitting, reject waiters, wait for live sessions to drain (forcing
  /// any stragglers closed at the deadline), quiesce the worker pool, and
  /// persist the oracle cache when a snapshot path is configured. The
  /// outcome lands in stats().shutdown. Idempotent.
  void Shutdown();

  /// Force-closes every registered session idle longer than
  /// options().idle_timeout_ns (no-op when 0). Returns the number
  /// reclaimed. Called periodically by the stats snapshotter; safe from
  /// any thread.
  size_t ReapIdleSessions();

  /// Session registry. A registered session is reachable by the drain and
  /// the watchdog; deregistration happens before the Session is
  /// destroyed. BeginSession is idempotent: ServeBlocking registers each
  /// accepted session before its thread exists (so a drain starting
  /// immediately after the accept loop cannot miss it), and Session::Run()
  /// registers again via RAII to cover directly constructed sessions.
  void BeginSession(Session& session);
  void EndSession(Session& session);

  /// The clock drains, watchdogs and session activity stamps run on: the
  /// dispatcher's injected clock, or the real steady clock.
  runtime::resilience::Clock& clock() const;

  ServerStats stats() const;

  /// Exposed so tests can saturate admission directly.
  AdmissionController& admission() { return admission_; }
  Dispatcher& dispatcher() { return dispatcher_; }

  const ServerOptions& options() const { return options_; }

 private:
  runtime::ThreadPool& pool() const;

  /// Waits for the registry to empty, force-closing whatever remains once
  /// the drain timeout expires. Records the outcome in shutdown stats.
  void DrainSessions();

  ServerOptions options_;
  Dispatcher dispatcher_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  uint64_t sessions_ = 0;
  std::vector<Session*> active_;
  uint64_t idle_reaped_ = 0;
  ShutdownStats shutdown_;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_SERVER_H_
