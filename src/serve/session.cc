#include "serve/session.h"

#include <utility>

#include "serve/server.h"

namespace costsense::serve {

namespace {

/// Deregisters the session on every Run() exit path, before the Session
/// (and its transport) can be destroyed — which is what makes the
/// server's Abort()-under-registry-lock free of use-after-free.
/// BeginSession is idempotent, so a session ServeBlocking already
/// registered at accept time is not double-counted.
struct SessionRegistration {
  Server& server;
  Session& session;
  SessionRegistration(Server& s, Session& sess) : server(s), session(sess) {
    server.BeginSession(session);
  }
  ~SessionRegistration() { server.EndSession(session); }
};

}  // namespace

Session::Session(Server& server, std::unique_ptr<FrameTransport> transport)
    : server_(server), transport_(std::move(transport)) {
  // Stamped at construction: ServeBlocking registers sessions before
  // their thread first runs, and the idle watchdog must never observe a
  // zero timestamp (it would reap the session as infinitely idle).
  last_activity_ns_.store(server_.clock().NowNanos(),
                          std::memory_order_relaxed);
}

void Session::Abort() { transport_->Close(); }

Status Session::Run() {
  runtime::resilience::Clock& clock = server_.clock();
  last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);
  SessionRegistration registration(server_, *this);
  for (;;) {
    Result<std::string> frame = transport_->RecvFrame();
    if (!frame.ok()) {
      transport_->Close();
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::Ok();  // clean end of stream
      }
      return frame.status();
    }
    last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);

    Result<AnalysisRequest> request = DecodeRequest(*frame);
    AnalysisResponse response;
    if (request.ok()) {
      response = server_.Handle(*request);
    } else {
      response.code = request.status().code();
      response.body = request.status().message();
    }
    Status sent = transport_->SendFrame(EncodeResponse(response));
    if (!sent.ok()) {
      transport_->Close();
      return sent;
    }
    ++requests_served_;
    last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);
    if (!request.ok()) {
      // The peer got a typed error for the malformed frame; drop the
      // connection rather than guess at where the next frame starts.
      transport_->Close();
      return request.status();
    }
  }
}

Result<AnalysisResponse> Call(FrameTransport& transport,
                              const AnalysisRequest& request) {
  Status sent = transport.SendFrame(EncodeRequest(request));
  if (!sent.ok()) return sent;
  Result<std::string> frame = transport.RecvFrame();
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::Unavailable("server closed the stream mid-call");
    }
    return frame.status();
  }
  return DecodeResponse(*frame);
}

}  // namespace costsense::serve
