#include "serve/session.h"

#include <utility>

#include "serve/server.h"

namespace costsense::serve {

Session::Session(Server& server, std::unique_ptr<FrameTransport> transport)
    : server_(server), transport_(std::move(transport)) {}

Status Session::Run() {
  for (;;) {
    Result<std::string> frame = transport_->RecvFrame();
    if (!frame.ok()) {
      transport_->Close();
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::Ok();  // clean end of stream
      }
      return frame.status();
    }

    Result<AnalysisRequest> request = DecodeRequest(*frame);
    AnalysisResponse response;
    if (request.ok()) {
      response = server_.Handle(*request);
    } else {
      response.code = request.status().code();
      response.body = request.status().message();
    }
    Status sent = transport_->SendFrame(EncodeResponse(response));
    if (!sent.ok()) {
      transport_->Close();
      return sent;
    }
    ++requests_served_;
    if (!request.ok()) {
      // The peer got a typed error for the malformed frame; drop the
      // connection rather than guess at where the next frame starts.
      transport_->Close();
      return request.status();
    }
  }
}

Result<AnalysisResponse> Call(FrameTransport& transport,
                              const AnalysisRequest& request) {
  Status sent = transport.SendFrame(EncodeRequest(request));
  if (!sent.ok()) return sent;
  Result<std::string> frame = transport.RecvFrame();
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::Unavailable("server closed the stream mid-call");
    }
    return frame.status();
  }
  return DecodeResponse(*frame);
}

}  // namespace costsense::serve
