#include "serve/session.h"

#include <utility>

#include "serve/record_sink.h"
#include "serve/server.h"

namespace costsense::serve {

namespace {

/// Deregisters the session on every Run() exit path, before the Session
/// (and its transport) can be destroyed — which is what makes the
/// server's Abort()-under-registry-lock free of use-after-free.
/// BeginSession is idempotent, so a session ServeBlocking already
/// registered at accept time is not double-counted.
struct SessionRegistration {
  Server& server;
  Session& session;
  SessionRegistration(Server& s, Session& sess) : server(s), session(sess) {
    server.BeginSession(session);
  }
  ~SessionRegistration() { server.EndSession(session); }
};

}  // namespace

Session::Session(Server& server, std::unique_ptr<FrameTransport> transport)
    : server_(server), transport_(std::move(transport)) {
  // Stamped at construction: ServeBlocking registers sessions before
  // their thread first runs, and the idle watchdog must never observe a
  // zero timestamp (it would reap the session as infinitely idle).
  last_activity_ns_.store(server_.clock().NowNanos(),
                          std::memory_order_relaxed);
}

void Session::Abort() { transport_->Close(); }

Status Session::Run() {
  runtime::resilience::Clock& clock = server_.clock();
  last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);
  SessionRegistration registration(server_, *this);
  for (;;) {
    Result<std::string> frame = transport_->RecvFrame();
    if (!frame.ok()) {
      transport_->Close();
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::Ok();  // clean end of stream
      }
      return frame.status();
    }
    last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);

    Result<AnalysisRequest> request = DecodeRequest(*frame);
    if (request.ok() && request->version >= kProtocolVersionV2) {
      // v2: the response is a frame stream, not a single payload.
      Status served = ServeStreaming(*request);
      if (!served.ok()) {
        transport_->Close();
        return served;
      }
      ++requests_served_;
      last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);
      continue;
    }

    std::string reply;
    if (request.ok()) {
      reply = EncodeResponse(server_.Handle(*request));
    } else if (!frame->empty() &&
               static_cast<uint8_t>((*frame)[0]) == kProtocolVersionV2) {
      // The peer attempted v2 (the version byte says so) but the request
      // did not decode: answer in the grammar it expects — a lone error
      // status frame, the one frame a reassembler accepts without a
      // header.
      ResponseFrame status_frame;
      status_frame.type = ResponseFrameType::kStatus;
      status_frame.code = request.status().code();
      status_frame.message = request.status().message();
      reply = EncodeResponseFrame(status_frame);
    } else {
      AnalysisResponse response;
      response.code = request.status().code();
      response.body = request.status().message();
      reply = EncodeResponse(response);
    }
    Status sent = transport_->SendFrame(reply);
    if (!sent.ok()) {
      transport_->Close();
      return sent;
    }
    ++requests_served_;
    last_activity_ns_.store(clock.NowNanos(), std::memory_order_relaxed);
    if (!request.ok()) {
      // The peer got a typed error for the malformed frame; drop the
      // connection rather than guess at where the next frame starts.
      transport_->Close();
      return request.status();
    }
  }
}

Status Session::ServeStreaming(const AnalysisRequest& request) {
  ResponseFrame header;
  header.type = ResponseFrameType::kHeader;
  header.kind = request.kind;
  header.policy = request.policy;
  header.query_number = request.query_number;
  Status st = transport_->SendFrame(EncodeResponseFrame(header));
  if (!st.ok()) return st;

  FrameRecordSink records(*transport_);
  const Status analysis = server_.HandleStreaming(request, records);
  // Drain the partial batch before the terminal frame; only a transport
  // failure here is a session error (an analysis failure still ends with
  // a well-formed status frame telling the client to discard records).
  st = records.Close();
  if (!st.ok()) return st;

  ResponseFrame status_frame;
  status_frame.type = ResponseFrameType::kStatus;
  status_frame.code = analysis.code();
  if (!analysis.ok()) status_frame.message = analysis.message();
  return transport_->SendFrame(EncodeResponseFrame(status_frame));
}

Result<AnalysisResponse> Call(FrameTransport& transport,
                              const AnalysisRequest& request) {
  Status sent = transport.SendFrame(EncodeRequest(request));
  if (!sent.ok()) return sent;
  Result<std::string> frame = transport.RecvFrame();
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::Unavailable("server closed the stream mid-call");
    }
    return frame.status();
  }
  return DecodeResponse(*frame);
}

Result<AnalysisResponse> CallV2(FrameTransport& transport,
                                const AnalysisRequest& request) {
  AnalysisRequest v2 = request;
  v2.version = kProtocolVersionV2;
  Status sent = transport.SendFrame(EncodeRequest(v2));
  if (!sent.ok()) return sent;
  ResponseReassembler reassembler;
  while (!reassembler.done()) {
    Result<std::string> frame = transport.RecvFrame();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::Unavailable("server closed the stream mid-call");
      }
      return frame.status();
    }
    Status fed = reassembler.Feed(*frame);
    if (!fed.ok()) return fed;
  }
  return reassembler.response();
}

}  // namespace costsense::serve
