#ifndef COSTSENSE_SERVE_SESSION_H_
#define COSTSENSE_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace costsense::serve {

class Server;

/// One client connection: a strict request/response loop over one
/// transport endpoint. All analysis state is shared (the server's
/// dispatcher); per-session state is just the transport and counters,
/// which is the MariaDB-style split that makes sessions cheap.
class Session {
 public:
  /// `server` must outlive the session; the transport is owned.
  Session(Server& server, std::unique_ptr<FrameTransport> transport);

  /// Serves requests until the peer closes (returns OK) or the transport
  /// fails. A frame that does not decode gets a typed error response and
  /// ends the session — after a framing error the stream position is
  /// untrustworthy. The session registers with the server for the
  /// duration, so the bounded drain and idle watchdog can reach it.
  [[nodiscard]] Status Run();

  /// Force-closes the transport from another thread (the server's drain
  /// deadline or idle watchdog). A Run() blocked in Recv wakes with end
  /// of stream and exits; an idle peer just sees its connection drop.
  void Abort();

  /// Server-clock timestamp of the last protocol activity (frame received
  /// or response sent); the idle watchdog's input.
  uint64_t last_activity_ns() const {
    return last_activity_ns_.load(std::memory_order_relaxed);
  }

  uint64_t requests_served() const { return requests_served_; }

 private:
  /// Serves one decoded v2 request: header frame, record frames streamed
  /// straight from the dispatcher, terminal status frame.
  [[nodiscard]] Status ServeStreaming(const AnalysisRequest& request);

  Server& server_;
  std::unique_ptr<FrameTransport> transport_;
  uint64_t requests_served_ = 0;
  std::atomic<uint64_t> last_activity_ns_{0};
};

/// Client-side convenience: one request/response round trip over
/// `transport`. Transport-level failures and undecodable responses come
/// back as error statuses; a decoded response carries its own typed code.
[[nodiscard]] Result<AnalysisResponse> Call(FrameTransport& transport,
                                            const AnalysisRequest& request);

/// Protocol-v2 round trip: sends `request` with the v2 version byte and
/// reassembles the response frame stream into the v1-equivalent
/// AnalysisResponse (on kOk the body is byte-identical to what Call()
/// returns for the same request). Grammar violations in the stream come
/// back as typed errors.
[[nodiscard]] Result<AnalysisResponse> CallV2(FrameTransport& transport,
                                              const AnalysisRequest& request);

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_SESSION_H_
