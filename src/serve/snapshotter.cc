#include "serve/snapshotter.h"

#include <algorithm>

namespace costsense::serve {

namespace {
/// Upper bound on one uninterrupted sleep inside the interval, so Stop()
/// latency is bounded by this rather than by the (possibly long) snapshot
/// interval.
constexpr uint64_t kMaxSleepStepNs = 50'000'000;  // 50 ms
}  // namespace

StatsSnapshotter::StatsSnapshotter(Server& server,
                                   engine::ArtifactWriter& writer,
                                   SnapshotterOptions options)
    : server_(server), writer_(writer), options_(options) {}

StatsSnapshotter::~StatsSnapshotter() { Stop(); }

runtime::resilience::Clock& StatsSnapshotter::clock() const {
  return options_.clock != nullptr ? *options_.clock
                                   : runtime::resilience::Clock::Real();
}

void StatsSnapshotter::Start() {
  if (options_.interval_ns == 0 || thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void StatsSnapshotter::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void StatsSnapshotter::Loop() {
  runtime::resilience::Clock& clk = clock();
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep one interval in bounded steps, re-checking the stop flag so
    // shutdown never waits out a long interval.
    uint64_t slept = 0;
    while (slept < options_.interval_ns &&
           !stop_.load(std::memory_order_acquire)) {
      const uint64_t step =
          std::min(kMaxSleepStepNs, options_.interval_ns - slept);
      clk.SleepFor(step);
      slept += step;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    TickOnce();
  }
}

size_t StatsSnapshotter::TickOnce() {
  // Reap before taking the tick lock: ReapIdleSessions force-closes idle
  // transports, and holding tick_mu_ across that close would let one
  // wedged connection stall every concurrent manual Tick() caller
  // (lint rule R8: no lock held across a transport boundary).
  const size_t reaped = server_.ReapIdleSessions();
  std::lock_guard<std::mutex> lock(tick_mu_);
  const ServerStats stats = server_.stats();
  const uint64_t seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;

  runtime::RuntimeMetrics metrics;
  metrics.AddCacheStats(stats.dispatcher.cache);
  writer_.WriteRunMetrics(
      "serve-stats", metrics,
      {{"snapshot_seq", static_cast<double>(seq)},
       {"requests", static_cast<double>(stats.dispatcher.requests)},
       {"failed_requests",
        static_cast<double>(stats.dispatcher.failed_requests)},
       {"contexts", static_cast<double>(stats.dispatcher.contexts)},
       {"admitted", static_cast<double>(stats.admission.admitted)},
       {"rejected", static_cast<double>(stats.admission.rejected)},
       {"sessions", static_cast<double>(stats.sessions)},
       {"active_sessions", static_cast<double>(stats.active_sessions)},
       {"idle_reaped", static_cast<double>(stats.idle_reaped)}});
  // Checkpoint semantics: an aborted server keeps everything up to here.
  const Status flushed = writer_.Flush();
  (void)flushed;  // a failing sink must not take the server down
  return reaped;
}

}  // namespace costsense::serve
