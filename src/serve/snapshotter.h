#ifndef COSTSENSE_SERVE_SNAPSHOTTER_H_
#define COSTSENSE_SERVE_SNAPSHOTTER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "engine/artifact.h"
#include "runtime/resilience/clock.h"
#include "serve/server.h"

namespace costsense::serve {

/// Tuning for the periodic stats snapshotter.
struct SnapshotterOptions {
  /// Interval between snapshots (COSTSENSE_SERVE_STATS_INTERVAL_MS).
  /// 0 disables the background thread; TickOnce() still works.
  uint64_t interval_ns = 0;
  /// Clock the interval runs on; null = real steady clock. Tests drive
  /// TickOnce() directly and never need the thread.
  runtime::resilience::Clock* clock = nullptr;
};

/// Emits periodic server-side stats snapshots through the artifact sinks
/// while the server is serving — not only at shutdown — and runs the idle
/// watchdog on the same cadence. Each tick writes one RuntimeMetrics
/// record named "serve-stats" (sequence number, admission and cache
/// counters, active sessions) and flushes the sinks, so an aborted server
/// still leaves every snapshot up to the last tick on disk.
///
/// The server and the writer must outlive this object. Stop() (or
/// destruction) joins the background thread; after that the writer is
/// exclusively the caller's again — costsense-serve stops the snapshotter
/// before writing its final shutdown record.
class StatsSnapshotter {
 public:
  StatsSnapshotter(Server& server, engine::ArtifactWriter& writer,
                   SnapshotterOptions options);
  ~StatsSnapshotter();

  StatsSnapshotter(const StatsSnapshotter&) = delete;
  StatsSnapshotter& operator=(const StatsSnapshotter&) = delete;

  /// Launches the background thread (no-op when interval_ns == 0 or
  /// already started).
  void Start();

  /// Stops and joins the background thread. Idempotent; pending sleep is
  /// abandoned within the poll step, not the full interval.
  void Stop();

  /// One snapshot now, on the caller's thread: reap idle sessions, write
  /// the stats record, flush the sinks. Serialized against the background
  /// thread. Returns the number of idle sessions reaped.
  size_t TickOnce();

  /// Snapshots written so far (both threaded and manual ticks).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  runtime::resilience::Clock& clock() const;
  void Loop();

  Server& server_;
  engine::ArtifactWriter& writer_;
  const SnapshotterOptions options_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> ticks_{0};
  std::mutex tick_mu_;
  std::thread thread_;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_SNAPSHOTTER_H_
