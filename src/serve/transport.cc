#include "serve/transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace costsense::serve {
namespace {

std::string FramePrefix(uint32_t length) {
  std::string prefix(4, '\0');
  for (int i = 0; i < 4; ++i) {
    prefix[static_cast<size_t>(i)] =
        static_cast<char>((length >> (24 - 8 * i)) & 0xff);
  }
  return prefix;
}

uint32_t ParsePrefix(const char* bytes) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(bytes[i]);
  }
  return v;
}

[[nodiscard]] Status CheckFrameSize(size_t length) {
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %zu bytes exceeds the %u-byte protocol limit",
                  length, kMaxFrameBytes));
  }
  return Status::Ok();
}

/// Writes all of `data`, retrying on EINTR and short writes. MSG_NOSIGNAL
/// turns a closed peer into EPIPE instead of a process-killing SIGPIPE.
[[nodiscard]] Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("socket send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `size` bytes. `*eof` is set when the peer closed before
/// the first byte — a clean end of stream, not an error.
[[nodiscard]] Status RecvAll(int fd, char* data, size_t size, bool* eof) {
  *eof = false;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("socket recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::Ok();
      }
      return Status::InvalidArgument(StrFormat(
          "peer closed mid-frame: got %zu of %zu byte(s)", got, size));
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::pair<std::unique_ptr<InProcessTransport>,
          std::unique_ptr<InProcessTransport>>
InProcessTransport::CreatePair() {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  auto client = std::unique_ptr<InProcessTransport>(
      new InProcessTransport(b_to_a, a_to_b));
  auto server = std::unique_ptr<InProcessTransport>(
      new InProcessTransport(a_to_b, b_to_a));
  return {std::move(client), std::move(server)};
}

Status InProcessTransport::SendFrame(std::string_view payload) {
  Status st = CheckFrameSize(payload.size());
  if (!st.ok()) return st;
  {
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed) {
      return Status::Unavailable("transport closed; frame not sent");
    }
    out_->frames.emplace_back(payload);
  }
  out_->cv.notify_one();
  return Status::Ok();
}

Result<std::string> InProcessTransport::RecvFrame() {
  std::unique_lock<std::mutex> lock(in_->mu);
  in_->cv.wait(lock, [this] { return !in_->frames.empty() || in_->closed; });
  if (in_->frames.empty()) {
    return Status::NotFound("end of stream");
  }
  std::string frame = std::move(in_->frames.front());
  in_->frames.pop_front();
  return frame;
}

void InProcessTransport::Close() {
  for (const auto& channel : {in_, out_}) {
    {
      std::lock_guard<std::mutex> lock(channel->mu);
      channel->closed = true;
    }
    channel->cv.notify_all();
  }
}

SocketTransport::~SocketTransport() {
  Close();
  if (fd_ >= 0) ::close(fd_);
}

Status SocketTransport::SendFrame(std::string_view payload) {
  Status st = CheckFrameSize(payload.size());
  if (!st.ok()) return st;
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("transport closed; frame not sent");
  }
  std::string frame =
      FramePrefix(static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  return SendAll(fd_, frame.data(), frame.size());
}

Result<std::string> SocketTransport::RecvFrame() {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::NotFound("end of stream");
  }
  char prefix[4];
  bool eof = false;
  Status st = RecvAll(fd_, prefix, sizeof(prefix), &eof);
  if (!st.ok()) return st;
  if (eof) return Status::NotFound("end of stream");
  uint32_t length = ParsePrefix(prefix);
  st = CheckFrameSize(length);
  if (!st.ok()) return st;
  std::string payload(length, '\0');
  if (length > 0) {
    st = RecvAll(fd_, payload.data(), payload.size(), &eof);
    if (!st.ok()) return st;
    if (eof) {
      return Status::InvalidArgument(
          "peer closed between frame prefix and payload");
    }
  }
  return payload;
}

void SocketTransport::Close() {
  // First closer shuts the stream down; the descriptor itself lives until
  // destruction. A thread blocked in recv() wakes with end-of-stream, and
  // no thread can race against descriptor reuse.
  if (fd_ >= 0 && !closed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Result<std::unique_ptr<SocketTransport>> ConnectUnixSocket(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(StrFormat(
        "socket path '%s' exceeds the %zu-byte sockaddr_un limit",
        path.c_str(), sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::Unavailable(StrFormat(
        "connect to '%s' failed: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return std::make_unique<SocketTransport>(fd);
}

SocketListener::~SocketListener() { Close(); }

Result<std::unique_ptr<SocketListener>> SocketListener::Bind(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(StrFormat(
        "socket path '%s' exceeds the %zu-byte sockaddr_un limit",
        path.c_str(), sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Unavailable(StrFormat(
        "bind to '%s' failed: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status st = Status::Unavailable(StrFormat(
        "listen on '%s' failed: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    ::unlink(path.c_str());
    return st;
  }
  return std::unique_ptr<SocketListener>(new SocketListener(fd, path));
}

Result<std::unique_ptr<SocketTransport>> SocketListener::Accept() {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  for (;;) {
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<SocketTransport>(conn);
    if (errno == EINTR) continue;
    // Close() shuts the listening socket down; accept then fails with
    // EINVAL (or EBADF on some kernels), which is the shutdown signal.
    return Status::Unavailable(
        StrFormat("accept failed: %s", std::strerror(errno)));
  }
}

void SocketListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace costsense::serve
