#ifndef COSTSENSE_SERVE_TRANSPORT_H_
#define COSTSENSE_SERVE_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "serve/protocol.h"

namespace costsense::serve {

/// One endpoint of a bidirectional frame stream (see protocol.h for the
/// framing). Implementations deliver whole frames or typed errors; the
/// session/server layers never see partial reads.
///
/// A transport endpoint is owned by one session and is not required to be
/// safe for concurrent Send/Recv from multiple threads; concurrency in
/// costsense-serve comes from running many sessions, not from sharing one.
/// Close() is the exception: it is safe to call from any thread while the
/// owner is blocked in Send/Recv — the watchdog and bounded drain reclaim
/// wedged sessions exactly this way.
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  /// Sends one frame. kUnavailable once the peer has closed.
  [[nodiscard]] virtual Status SendFrame(std::string_view payload) = 0;

  /// Blocks for the next frame. kNotFound signals a clean end of stream
  /// (peer closed with nothing buffered — the session's normal exit);
  /// kInvalidArgument marks a malformed frame on the wire.
  [[nodiscard]] virtual Result<std::string> RecvFrame() = 0;

  /// Closes this endpoint; pending and future Recv calls on the peer see
  /// end of stream once the buffered frames drain. Idempotent.
  virtual void Close() = 0;
};

/// Same-process transport: a pair of endpoints connected by two bounded
/// in-memory frame queues. This is what the deterministic serve tests and
/// the default loadgen mode run on — byte-for-byte the same frames as the
/// socket transport, with no kernel in the loop.
class InProcessTransport final : public FrameTransport {
 public:
  /// Creates a connected endpoint pair (client, server).
  static std::pair<std::unique_ptr<InProcessTransport>,
                   std::unique_ptr<InProcessTransport>>
  CreatePair();

  [[nodiscard]] Status SendFrame(std::string_view payload) override;
  [[nodiscard]] Result<std::string> RecvFrame() override;
  void Close() override;

 private:
  /// One direction of the pair: a frame queue with its own lock, plus the
  /// closed flag that turns blocking receives into end-of-stream.
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> frames;
    bool closed = false;
  };

  InProcessTransport(std::shared_ptr<Channel> in, std::shared_ptr<Channel> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::shared_ptr<Channel> in_;
  std::shared_ptr<Channel> out_;
};

/// A connected stream socket speaking the length-prefixed framing.
/// Constructed by SocketListener::Accept on the server side and
/// ConnectUnixSocket on the client side.
class SocketTransport final : public FrameTransport {
 public:
  /// Takes ownership of a connected socket descriptor.
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] Status SendFrame(std::string_view payload) override;
  [[nodiscard]] Result<std::string> RecvFrame() override;
  void Close() override;

 private:
  /// The descriptor stays valid (and is only ::close()d) until
  /// destruction; Close() merely shuts the stream down. That split is
  /// what makes cross-thread Close() safe: a session blocked in recv()
  /// wakes on the shutdown without ever touching a reused descriptor.
  const int fd_;
  std::atomic<bool> closed_{false};
};

/// Connects to a costsense-serve Unix-domain socket at `path`.
[[nodiscard]] Result<std::unique_ptr<SocketTransport>> ConnectUnixSocket(
    const std::string& path);

/// A bound, listening Unix-domain server socket.
class SocketListener {
 public:
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens on `path`, replacing any stale socket file there.
  [[nodiscard]] static Result<std::unique_ptr<SocketListener>> Bind(
      const std::string& path);

  /// Blocks for the next connection. kUnavailable after Close() (the
  /// server's accept loop uses this as its shutdown signal).
  [[nodiscard]] Result<std::unique_ptr<SocketTransport>> Accept();

  /// Stops accepting and unlinks the socket file; a blocked Accept
  /// returns kUnavailable. Idempotent.
  void Close();

  const std::string& path() const { return path_; }

 private:
  SocketListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace costsense::serve

#endif  // COSTSENSE_SERVE_TRANSPORT_H_
