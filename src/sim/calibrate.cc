#include "sim/calibrate.h"

#include "linalg/least_squares.h"
#include "linalg/matrix.h"

namespace costsense::sim {

namespace {

/// The additive model's feature extraction: repositions (requests not
/// page-contiguous with their predecessor) and total pages.
void TraceFeatures(const IoTrace& trace, double* repositions, double* pages) {
  *repositions = 0.0;
  *pages = 0.0;
  uint64_t next = UINT64_MAX;
  for (const IoRequest& r : trace) {
    if (r.start_page != next) *repositions += 1.0;
    *pages += static_cast<double>(r.num_pages);
    next = r.start_page + r.num_pages;
  }
}

}  // namespace

Result<CalibrationResult> CalibrateAdditiveModel(
    const std::vector<IoTrace>& traces,
    const std::vector<double>& measured_times) {
  if (traces.size() != measured_times.size()) {
    return Status::InvalidArgument("one measured time per trace required");
  }
  if (traces.size() < 2) {
    return Status::InvalidArgument("need at least two calibration runs");
  }
  std::vector<linalg::Vector> rows;
  linalg::Vector t(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    double repositions = 0.0, pages = 0.0;
    TraceFeatures(traces[i], &repositions, &pages);
    rows.push_back(linalg::Vector{repositions, pages});
    t[i] = measured_times[i];
  }
  const linalg::Matrix features = linalg::Matrix::FromRows(rows);
  Result<linalg::Vector> fit = linalg::NonNegativeLeastSquares(
      features, t, /*clamp_tol=*/1e-9 * t.InfNorm());
  if (!fit.ok()) {
    return Status::FailedPrecondition(
        "calibration runs are not linearly independent (mix sequential and "
        "random workloads)");
  }
  CalibrationResult out;
  out.seek_cost = (*fit)[0];
  out.transfer_cost = (*fit)[1];
  out.rms_relative_error = linalg::RelativeResidual(features, *fit, t);
  out.runs = traces.size();
  return out;
}

std::vector<IoTrace> MakeCalibrationWorkload(uint64_t device_pages,
                                             Rng& rng) {
  std::vector<IoTrace> out;
  for (uint64_t pages : {1000u, 10000u, 50000u}) {
    IoTrace t;
    AppendSequential(t, 0, rng.Index(device_pages / 2), pages, 32);
    out.push_back(std::move(t));
  }
  for (uint64_t probes : {500u, 2000u, 8000u}) {
    IoTrace t;
    AppendRandom(t, 0, probes, device_pages, rng);
    out.push_back(std::move(t));
  }
  {
    // One mixed run to anchor the cross term.
    IoTrace t;
    AppendSequential(t, 0, 0, 20000, 32);
    AppendRandom(t, 0, 3000, device_pages, rng);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace costsense::sim
