#ifndef COSTSENSE_SIM_CALIBRATE_H_
#define COSTSENSE_SIM_CALIBRATE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/trace.h"

namespace costsense::sim {

/// Fitted additive-model parameters for one device.
struct CalibrationResult {
  /// Fitted cost per repositioning (the optimizer's d_s).
  double seek_cost = 0.0;
  /// Fitted cost per page transferred (the optimizer's d_t).
  double transfer_cost = 0.0;
  /// RMS relative residual of the fit over the calibration runs.
  double rms_relative_error = 0.0;
  size_t runs = 0;
};

/// Fits (d_s, d_t) by least squares from observed run times: each
/// calibration run i contributes the equation
///
///   repositions_i * d_s + pages_i * d_t = measured_time_i,
///
/// the measurement-side counterpart of the paper's conclusion that
/// optimizers benefit from "accurate and timely information regarding the
/// cost of accessing storage devices" — this is how a monitoring agent
/// would produce that information from I/O telemetry. Needs at least two
/// runs with linearly independent (repositions, pages) profiles — e.g.
/// one sequential and one random workload.
[[nodiscard]] Result<CalibrationResult> CalibrateAdditiveModel(
    const std::vector<IoTrace>& traces,
    const std::vector<double>& measured_times);

/// Builds a standard calibration workload: sequential scans and random
/// probe bursts of varying sizes over a `device_pages`-page device,
/// spanning the (repositions, pages) feature space.
std::vector<IoTrace> MakeCalibrationWorkload(uint64_t device_pages, Rng& rng);

}  // namespace costsense::sim

#endif  // COSTSENSE_SIM_CALIBRATE_H_
