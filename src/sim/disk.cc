#include "sim/disk.h"

#include <cmath>

namespace costsense::sim {

double DiskGeometry::SeekTime(uint64_t from_cylinder,
                              uint64_t to_cylinder) const {
  if (from_cylinder == to_cylinder) return 0.0;
  const double dist =
      from_cylinder > to_cylinder
          ? static_cast<double>(from_cylinder - to_cylinder)
          : static_cast<double>(to_cylinder - from_cylinder);
  const double frac = dist / static_cast<double>(num_cylinders);
  return min_seek + (max_seek - min_seek) * std::sqrt(frac);
}

uint64_t DiskGeometry::CylinderOf(uint64_t page) const {
  const uint64_t cyl =
      static_cast<uint64_t>(static_cast<double>(page) / pages_per_cylinder);
  return cyl >= num_cylinders ? num_cylinders - 1 : cyl;
}

double DiskGeometry::EquivalentSeekCost() const {
  // Random seeks average one third of the stroke; sqrt(1/3) of the span.
  return min_seek + (max_seek - min_seek) * std::sqrt(1.0 / 3.0) +
         rotation / 2.0;
}

}  // namespace costsense::sim
