#ifndef COSTSENSE_SIM_DISK_H_
#define COSTSENSE_SIM_DISK_H_

#include <cstdint>

namespace costsense::sim {

/// A positional disk model in the spirit of Ruemmler & Wilkes (the paper
/// cites their model when calling its own two-parameter (d_s, d_t)
/// treatment "a good first approximation", Section 3.1). Seek time grows
/// with the square root of cylinder distance, plus an average half
/// rotation per repositioning; sequential successor pages pay transfer
/// only. The simulator exists to quantify how much reality that first
/// approximation discards (bench/micro_sim_fidelity).
struct DiskGeometry {
  /// Pages per cylinder.
  double pages_per_cylinder = 1024.0;
  uint64_t num_cylinders = 20000;
  /// Cost of the shortest possible seek (track-to-track), in the same
  /// abstract time units the optimizer uses.
  double min_seek = 6.0;
  /// Cost of a full-stroke seek.
  double max_seek = 40.0;
  /// Full rotation time; each repositioning pays half on average.
  double rotation = 12.0;
  /// Time to transfer one page.
  double transfer_per_page = 9.0;

  /// Seek cost between cylinders, sqrt-shaped in the distance; zero for
  /// the same cylinder.
  double SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const;

  /// Cylinder containing `page`.
  uint64_t CylinderOf(uint64_t page) const;

  /// The average repositioning cost this geometry implies (1/3-stroke
  /// seek + half rotation): what the additive model's d_s parameter
  /// should ideally be set to.
  double EquivalentSeekCost() const;
};

}  // namespace costsense::sim

#endif  // COSTSENSE_SIM_DISK_H_
