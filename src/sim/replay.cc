#include "sim/replay.h"

#include <map>

#include "common/macros.h"

namespace costsense::sim {

ReplayResult Replay(const IoTrace& trace,
                    const std::vector<DiskGeometry>& devices) {
  ReplayResult out;
  out.per_device_time.assign(devices.size(), 0.0);
  // Per device: head cylinder and the page right after the last transfer.
  std::vector<uint64_t> head_cylinder(devices.size(), 0);
  std::vector<uint64_t> next_sequential(devices.size(), UINT64_MAX);

  for (const IoRequest& r : trace) {
    COSTSENSE_CHECK(r.device >= 0 &&
                    r.device < static_cast<int>(devices.size()));
    const DiskGeometry& d = devices[r.device];
    double t = 0.0;
    if (r.start_page != next_sequential[r.device]) {
      // Reposition: seek to the target cylinder plus half a rotation.
      t += d.SeekTime(head_cylinder[r.device], d.CylinderOf(r.start_page)) +
           d.rotation / 2.0;
      ++out.repositions;
    }
    t += static_cast<double>(r.num_pages) * d.transfer_per_page;
    out.per_device_time[r.device] += t;
    out.total_time += t;
    out.pages += r.num_pages;
    head_cylinder[r.device] = d.CylinderOf(r.start_page + r.num_pages - 1);
    next_sequential[r.device] = r.start_page + r.num_pages;
  }
  return out;
}

double AdditiveEstimate(const IoTrace& trace, double seek_cost,
                        double transfer_cost) {
  double total = 0.0;
  std::map<int, uint64_t> next_sequential;
  for (const IoRequest& r : trace) {
    auto [it, inserted] = next_sequential.try_emplace(r.device, UINT64_MAX);
    if (inserted || it->second != r.start_page) total += seek_cost;
    total += static_cast<double>(r.num_pages) * transfer_cost;
    it->second = r.start_page + r.num_pages;
  }
  return total;
}

}  // namespace costsense::sim
