#ifndef COSTSENSE_SIM_REPLAY_H_
#define COSTSENSE_SIM_REPLAY_H_

#include <vector>

#include "sim/disk.h"
#include "sim/trace.h"

namespace costsense::sim {

/// Outcome of replaying a trace against positional disk models.
struct ReplayResult {
  double total_time = 0.0;
  std::vector<double> per_device_time;
  /// Requests that required repositioning (head moved or rotation missed).
  uint64_t repositions = 0;
  uint64_t pages = 0;
};

/// Replays `trace` request-by-request against one DiskGeometry per device,
/// tracking head position so sequential runs pay transfer only.
ReplayResult Replay(const IoTrace& trace,
                    const std::vector<DiskGeometry>& devices);

/// The additive two-parameter estimate of the same trace (paper Section
/// 3.1): every request that is not page-contiguous with its predecessor on
/// the same device costs one d_s, every page one d_t. Comparing this with
/// Replay quantifies the error of the paper's first-approximation disk
/// model (bench/micro_sim_fidelity).
double AdditiveEstimate(const IoTrace& trace, double seek_cost,
                        double transfer_cost);

}  // namespace costsense::sim

#endif  // COSTSENSE_SIM_REPLAY_H_
