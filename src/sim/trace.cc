#include "sim/trace.h"

#include "common/macros.h"

namespace costsense::sim {

void AppendSequential(IoTrace& trace, int device, uint64_t start_page,
                      uint64_t pages, uint64_t extent) {
  COSTSENSE_CHECK(extent > 0);
  uint64_t page = start_page;
  uint64_t left = pages;
  while (left > 0) {
    const uint64_t chunk = left < extent ? left : extent;
    trace.push_back({device, page, chunk});
    page += chunk;
    left -= chunk;
  }
}

void AppendRandom(IoTrace& trace, int device, uint64_t count,
                  uint64_t device_pages, Rng& rng) {
  COSTSENSE_CHECK(device_pages > 0);
  for (uint64_t i = 0; i < count; ++i) {
    trace.push_back({device, rng.Index(device_pages), 1});
  }
}

uint64_t TotalPages(const IoTrace& trace, int device) {
  uint64_t total = 0;
  for (const IoRequest& r : trace) {
    if (device < 0 || r.device == device) total += r.num_pages;
  }
  return total;
}

}  // namespace costsense::sim
