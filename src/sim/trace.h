#ifndef COSTSENSE_SIM_TRACE_H_
#define COSTSENSE_SIM_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace costsense::sim {

/// One contiguous I/O: read/write `num_pages` starting at `start_page` on
/// `device`.
struct IoRequest {
  int device = 0;
  uint64_t start_page = 0;
  uint64_t num_pages = 1;
};

/// A sequence of I/O requests in issue order.
using IoTrace = std::vector<IoRequest>;

/// Appends a sequential run of `pages` pages split into `extent`-sized
/// requests (an optimizer prefetch extent).
void AppendSequential(IoTrace& trace, int device, uint64_t start_page,
                      uint64_t pages, uint64_t extent);

/// Appends `count` single-page random reads uniform over
/// [0, device_pages).
void AppendRandom(IoTrace& trace, int device, uint64_t count,
                  uint64_t device_pages, Rng& rng);

/// Total pages transferred by the trace on `device` (-1 for all devices).
uint64_t TotalPages(const IoTrace& trace, int device = -1);

}  // namespace costsense::sim

#endif  // COSTSENSE_SIM_TRACE_H_
