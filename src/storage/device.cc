#include "storage/device.h"

namespace costsense::storage {

const char* DeviceRoleName(DeviceRole role) {
  switch (role) {
    case DeviceRole::kShared:
      return "shared";
    case DeviceRole::kTableData:
      return "data";
    case DeviceRole::kTableIndexes:
      return "indexes";
    case DeviceRole::kTableColocated:
      return "colocated";
    case DeviceRole::kTemp:
      return "temp";
  }
  return "unknown";
}

}  // namespace costsense::storage
