#ifndef COSTSENSE_STORAGE_DEVICE_H_
#define COSTSENSE_STORAGE_DEVICE_H_

#include <string>

namespace costsense::storage {

/// What a storage device holds, which determines the semantic class of its
/// resource dimensions (needed by the complementarity taxonomy of paper
/// Section 5.6).
enum class DeviceRole {
  /// All data structures share this device (paper Section 8.1.1).
  kShared,
  /// Holds one table's data pages (Section 8.1.2).
  kTableData,
  /// Holds one table's indexes (Section 8.1.2; DB2 limited the paper to
  /// one device per table's whole index set).
  kTableIndexes,
  /// Holds one table together with its indexes (Section 8.1.3).
  kTableColocated,
  /// Holds temporary structures: sorted runs, hash partitions.
  kTemp,
};

/// Returns a short name for the role ("shared", "data", ...).
const char* DeviceRoleName(DeviceRole role);

/// One storage device, modeled as the paper models a disk (Section 3.1):
/// two resources, d_s for queueing/rotational/seek time per random access
/// and d_t for sequentially transferring one page. The defaults are DB2's
/// default values, which the paper adopts as the initial cost vector
/// (Section 8.1): d_s = 24.1 and d_t = 9.0 time units.
struct Device {
  std::string name;
  DeviceRole role = DeviceRole::kShared;
  /// Table this device serves (kTableData/kTableIndexes/kTableColocated);
  /// -1 otherwise.
  int table_id = -1;
  /// Baseline cost of one random positioning operation (DB2 default).
  double seek_cost = 24.1;
  /// Baseline cost of transferring one page (DB2 default).
  double transfer_cost = 9.0;
};

}  // namespace costsense::storage

#endif  // COSTSENSE_STORAGE_DEVICE_H_
