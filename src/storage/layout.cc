#include "storage/layout.h"

#include "common/macros.h"

namespace costsense::storage {

const char* LayoutPolicyName(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kSharedDevice:
      return "shared";
    case LayoutPolicy::kPerTableAndIndex:
      return "per-table-and-index";
    case LayoutPolicy::kPerTableColocated:
      return "per-table-colocated";
  }
  return "unknown";
}

StorageLayout::StorageLayout(LayoutPolicy policy,
                             const catalog::Catalog& catalog,
                             std::vector<int> table_ids, double seek_cost,
                             double transfer_cost)
    : policy_(policy), table_ids_(std::move(table_ids)) {
  COSTSENSE_CHECK_MSG(!table_ids_.empty(), "layout needs at least one table");
  data_device_.resize(table_ids_.size());
  index_device_.resize(table_ids_.size());

  auto add_device = [&](DeviceRole role, int table_id,
                        const std::string& name) {
    devices_.push_back({name, role, table_id, seek_cost, transfer_cost});
    return static_cast<int>(devices_.size()) - 1;
  };

  switch (policy_) {
    case LayoutPolicy::kSharedDevice: {
      const int dev = add_device(DeviceRole::kShared, -1, "disk");
      for (size_t i = 0; i < table_ids_.size(); ++i) {
        data_device_[i] = dev;
        index_device_[i] = dev;
      }
      temp_device_ = dev;
      break;
    }
    case LayoutPolicy::kPerTableAndIndex: {
      for (size_t i = 0; i < table_ids_.size(); ++i) {
        const std::string& tname = catalog.table(table_ids_[i]).name();
        data_device_[i] =
            add_device(DeviceRole::kTableData, table_ids_[i], tname);
        index_device_[i] = add_device(DeviceRole::kTableIndexes,
                                      table_ids_[i], tname + ".ix");
      }
      temp_device_ = add_device(DeviceRole::kTemp, -1, "temp");
      break;
    }
    case LayoutPolicy::kPerTableColocated: {
      for (size_t i = 0; i < table_ids_.size(); ++i) {
        const std::string& tname = catalog.table(table_ids_[i]).name();
        const int dev =
            add_device(DeviceRole::kTableColocated, table_ids_[i], tname);
        data_device_[i] = dev;
        index_device_[i] = dev;
      }
      temp_device_ = add_device(DeviceRole::kTemp, -1, "temp");
      break;
    }
  }
}

int StorageLayout::TablePos(int table_id) const {
  for (size_t i = 0; i < table_ids_.size(); ++i) {
    if (table_ids_[i] == table_id) return static_cast<int>(i);
  }
  COSTSENSE_CHECK_MSG(false, "table not covered by this layout");
  return -1;
}

int StorageLayout::DataDevice(int table_id) const {
  return data_device_[TablePos(table_id)];
}

int StorageLayout::IndexDevice(int table_id) const {
  return index_device_[TablePos(table_id)];
}

int StorageLayout::TempDevice() const { return temp_device_; }

ResourceSpace StorageLayout::BuildResourceSpace(double cpu_baseline) const {
  const Granularity g = policy_ == LayoutPolicy::kSharedDevice
                            ? Granularity::kSplitSeekTransfer
                            : Granularity::kTiedPerDevice;
  return BuildResourceSpace(g, cpu_baseline);
}

ResourceSpace StorageLayout::BuildResourceSpace(Granularity granularity,
                                                double cpu_baseline) const {
  return ResourceSpace(devices_, granularity, cpu_baseline);
}

}  // namespace costsense::storage
