#ifndef COSTSENSE_STORAGE_LAYOUT_H_
#define COSTSENSE_STORAGE_LAYOUT_H_

#include <vector>

#include "catalog/catalog.h"
#include "storage/resource_space.h"

namespace costsense::storage {

/// The three storage configurations of the paper's experiments.
enum class LayoutPolicy {
  /// All tables, indexes and temp space on one device (Section 8.1.1);
  /// three resources total: d_s, d_t, CPU.
  kSharedDevice,
  /// Each table's data and each table's index set on separate devices,
  /// plus a temp device (Section 8.1.2); 2k+2 resources for a k-table
  /// query with the tied d_s:d_t ratio.
  kPerTableAndIndex,
  /// One device per table with its indexes colocated, plus temp
  /// (Section 8.1.3); k+2 resources.
  kPerTableColocated,
};

/// Returns a short name for the policy ("shared", ...).
const char* LayoutPolicyName(LayoutPolicy policy);

/// Maps database objects (a table's data pages, a table's indexes, the
/// temp area) to devices, and builds the matching ResourceSpace.
class StorageLayout {
 public:
  /// Builds a layout for the tables in `table_ids` (usually exactly the
  /// tables referenced by one query, so that a k-table query sees the
  /// paper's k-dependent resource counts). Device baseline costs are the
  /// DB2 defaults unless overridden.
  StorageLayout(LayoutPolicy policy, const catalog::Catalog& catalog,
                std::vector<int> table_ids, double seek_cost = 24.1,
                double transfer_cost = 9.0);

  LayoutPolicy policy() const { return policy_; }
  const std::vector<Device>& devices() const { return devices_; }

  /// Device holding `table_id`'s data pages.
  int DataDevice(int table_id) const;
  /// Device holding `table_id`'s indexes.
  int IndexDevice(int table_id) const;
  /// Device holding temporary structures.
  int TempDevice() const;

  /// Builds the resource cost vector space. The shared layout defaults to
  /// split (d_s, d_t) dimensions — the configuration the paper varies
  /// independently — while the multi-device layouts default to the tied
  /// ratio; pass a granularity to override.
  ResourceSpace BuildResourceSpace(double cpu_baseline = 1e-6) const;
  ResourceSpace BuildResourceSpace(Granularity granularity,
                                   double cpu_baseline) const;

 private:
  LayoutPolicy policy_;
  std::vector<int> table_ids_;
  std::vector<Device> devices_;
  std::vector<int> data_device_;   // parallel to table_ids_
  std::vector<int> index_device_;  // parallel to table_ids_
  int temp_device_ = 0;

  int TablePos(int table_id) const;
};

}  // namespace costsense::storage

#endif  // COSTSENSE_STORAGE_LAYOUT_H_
