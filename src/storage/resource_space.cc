#include "storage/resource_space.h"

#include "common/macros.h"

namespace costsense::storage {

namespace {

core::DimClass DimClassForRole(DeviceRole role) {
  switch (role) {
    case DeviceRole::kShared:
      return core::DimClass::kOther;
    case DeviceRole::kTableData:
      return core::DimClass::kTable;
    case DeviceRole::kTableIndexes:
      return core::DimClass::kIndex;
    case DeviceRole::kTableColocated:
      // A colocated device carries a table and its indexes as one
      // resource; mismatches on it mean genuinely different data volumes
      // from that table, so classify it with the table dims.
      return core::DimClass::kTable;
    case DeviceRole::kTemp:
      return core::DimClass::kTemp;
  }
  return core::DimClass::kOther;
}

}  // namespace

ResourceSpace::ResourceSpace(std::vector<Device> devices,
                             Granularity granularity, double cpu_baseline)
    : devices_(std::move(devices)),
      granularity_(granularity),
      cpu_baseline_(cpu_baseline) {
  COSTSENSE_CHECK_MSG(!devices_.empty(), "need at least one device");
  COSTSENSE_CHECK_MSG(cpu_baseline_ > 0.0, "CPU baseline must be positive");
  seek_dim_.resize(devices_.size());
  transfer_dim_.resize(devices_.size());
  for (size_t d = 0; d < devices_.size(); ++d) {
    const Device& dev = devices_[d];
    const core::DimClass cls = DimClassForRole(dev.role);
    if (granularity_ == Granularity::kSplitSeekTransfer) {
      seek_dim_[d] = dim_info_.size();
      dim_info_.push_back({cls, dev.table_id, dev.name + ".seek"});
      transfer_dim_[d] = dim_info_.size();
      dim_info_.push_back({cls, dev.table_id, dev.name + ".transfer"});
    } else {
      seek_dim_[d] = transfer_dim_[d] = dim_info_.size();
      dim_info_.push_back({cls, dev.table_id, dev.name});
    }
  }
  cpu_dim_ = dim_info_.size();
  dim_info_.push_back({core::DimClass::kCpu, -1, "cpu"});
}

void ResourceSpace::ChargeIo(core::UsageVector& usage, int device_id,
                             double seeks, double pages) const {
  COSTSENSE_CHECK(device_id >= 0 &&
                  device_id < static_cast<int>(devices_.size()));
  COSTSENSE_CHECK(usage.size() == dims());
  const Device& dev = devices_[device_id];
  if (granularity_ == Granularity::kSplitSeekTransfer) {
    usage[seek_dim_[device_id]] += seeks;
    usage[transfer_dim_[device_id]] += pages;
  } else {
    // Tied ratio: usage is pre-priced in baseline time units, so the cost
    // coordinate becomes a per-device multiplier.
    usage[seek_dim_[device_id]] +=
        seeks * dev.seek_cost + pages * dev.transfer_cost;
  }
}

void ResourceSpace::ChargeCpu(core::UsageVector& usage,
                              double instructions) const {
  COSTSENSE_CHECK(usage.size() == dims());
  usage[cpu_dim_] += instructions;
}

core::CostVector ResourceSpace::BaselineCosts() const {
  core::CostVector c(dims());
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (granularity_ == Granularity::kSplitSeekTransfer) {
      c[seek_dim_[d]] = devices_[d].seek_cost;
      c[transfer_dim_[d]] = devices_[d].transfer_cost;
    } else {
      c[seek_dim_[d]] = 1.0;  // multiplier on the tied (d_s, d_t) pair
    }
  }
  c[cpu_dim_] = cpu_baseline_;
  return c;
}

}  // namespace costsense::storage
