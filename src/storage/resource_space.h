#ifndef COSTSENSE_STORAGE_RESOURCE_SPACE_H_
#define COSTSENSE_STORAGE_RESOURCE_SPACE_H_

#include <vector>

#include "core/vectors.h"
#include "storage/device.h"

namespace costsense::storage {

/// How a device's two disk parameters map onto resource dimensions.
enum class Granularity {
  /// d_s and d_t are independent resources (2 dims per device). The
  /// paper's first experiment (Section 8.1.1) varies them independently.
  kSplitSeekTransfer,
  /// d_s and d_t are kept in a fixed ratio (1 dim per device): usage is
  /// pre-weighted by the baseline costs and the resource's cost coordinate
  /// is a unitless multiplier. The paper adopts this tying in the
  /// multi-device experiments "to reduce the running time" (Section
  /// 8.1.2), which is what makes a k-table query a 2k+2-resource problem.
  kTiedPerDevice,
};

/// Assembles the resource cost vector space for a set of devices plus the
/// CPU, and lets the cost model charge I/O and CPU into usage vectors
/// without knowing the dimension layout.
class ResourceSpace {
 public:
  /// Builds the space. `cpu_baseline` is the starting cost per instruction
  /// (the paper uses 1e-6 time units).
  ResourceSpace(std::vector<Device> devices, Granularity granularity,
                double cpu_baseline = 1e-6);

  size_t dims() const { return dim_info_.size(); }
  const std::vector<core::DimInfo>& dim_info() const { return dim_info_; }
  const std::vector<Device>& devices() const { return devices_; }
  Granularity granularity() const { return granularity_; }

  /// Returns a zero usage vector of the right dimensionality.
  core::UsageVector ZeroUsage() const { return core::UsageVector(dims()); }

  /// Charges `seeks` random accesses and `pages` page transfers on device
  /// `device_id` into `usage`.
  void ChargeIo(core::UsageVector& usage, int device_id, double seeks,
                double pages) const;

  /// Charges `instructions` CPU instructions into `usage`.
  void ChargeCpu(core::UsageVector& usage, double instructions) const;

  /// The baseline (estimated) resource cost vector: per-device (d_s, d_t)
  /// and the CPU cost in split mode; all-ones device multipliers plus the
  /// CPU cost in tied mode.
  core::CostVector BaselineCosts() const;

  /// Index of the CPU dimension.
  size_t cpu_dim() const { return cpu_dim_; }

 private:
  std::vector<Device> devices_;
  Granularity granularity_;
  double cpu_baseline_;
  std::vector<core::DimInfo> dim_info_;
  /// Per device: dimension of seeks (split) or the single tied dim.
  std::vector<size_t> seek_dim_;
  /// Per device: dimension of transfers (split) or the single tied dim.
  std::vector<size_t> transfer_dim_;
  size_t cpu_dim_ = 0;
};

}  // namespace costsense::storage

#endif  // COSTSENSE_STORAGE_RESOURCE_SPACE_H_
