#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"
#include "tpch/stats.h"

namespace costsense::tpch {

namespace {

/// Rounds a scaled cardinality to a whole row count.
uint64_t ScaledRows(double base, double sf) {
  return static_cast<uint64_t>(std::llround(base * sf));
}

}  // namespace

const std::vector<double>& GeneratedTable::column(
    const std::string& col_name) const {
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (column_names[i] == col_name) return columns[i];
  }
  COSTSENSE_CHECK_MSG(false, ("no generated column " + col_name).c_str());
  return columns[0];
}

DbgenLite::DbgenLite(double scale_factor, uint64_t seed)
    : scale_factor_(scale_factor), seed_(seed) {
  COSTSENSE_CHECK_MSG(scale_factor_ >= 0.01, "scale factor too small");
}

GeneratedTable DbgenLite::Region() const {
  GeneratedTable t;
  t.name = "region";
  t.column_names = {"r_regionkey", "r_name"};
  t.columns.assign(2, {});
  for (int i = 0; i < 5; ++i) {
    t.columns[0].push_back(i);
    t.columns[1].push_back(i);
  }
  return t;
}

GeneratedTable DbgenLite::Nation() const {
  GeneratedTable t;
  t.name = "nation";
  t.column_names = {"n_nationkey", "n_name", "n_regionkey"};
  t.columns.assign(3, {});
  // The spec pins each nation to a region; the mapping below follows the
  // spec's nation list ordering (5 nations per region).
  for (int i = 0; i < 25; ++i) {
    t.columns[0].push_back(i);
    t.columns[1].push_back(i);
    t.columns[2].push_back(i % 5);
  }
  return t;
}

GeneratedTable DbgenLite::Supplier() const {
  Rng rng(seed_ ^ 0x5001);
  const uint64_t n = ScaledRows(10000, scale_factor_);
  GeneratedTable t;
  t.name = "supplier";
  t.column_names = {"s_suppkey", "s_nationkey", "s_acctbal"};
  t.columns.assign(3, {});
  for (uint64_t i = 1; i <= n; ++i) {
    t.columns[0].push_back(static_cast<double>(i));
    t.columns[1].push_back(static_cast<double>(rng.Index(25)));
    // acctbal uniform in [-999.99, 9999.99], cent-granular.
    t.columns[2].push_back(
        static_cast<double>(rng.Index(1100000)) / 100.0 - 1000.0 + 0.01);
  }
  return t;
}

GeneratedTable DbgenLite::Part() const {
  Rng rng(seed_ ^ 0x9a47);
  const uint64_t n = ScaledRows(200000, scale_factor_);
  GeneratedTable t;
  t.name = "part";
  t.column_names = {"p_partkey", "p_mfgr", "p_brand", "p_type", "p_size",
                    "p_container"};
  t.columns.assign(6, {});
  for (uint64_t i = 1; i <= n; ++i) {
    t.columns[0].push_back(static_cast<double>(i));
    const double mfgr = static_cast<double>(rng.Index(5));
    t.columns[1].push_back(mfgr);
    // Brand = mfgr-dependent (5 brands per manufacturer, 25 total).
    t.columns[2].push_back(mfgr * 5 + static_cast<double>(rng.Index(5)));
    t.columns[3].push_back(static_cast<double>(rng.Index(150)));
    t.columns[4].push_back(static_cast<double>(1 + rng.Index(50)));
    t.columns[5].push_back(static_cast<double>(rng.Index(40)));
  }
  return t;
}

GeneratedTable DbgenLite::PartSupp() const {
  Rng rng(seed_ ^ 0xa5);
  const uint64_t parts = ScaledRows(200000, scale_factor_);
  const uint64_t suppliers = ScaledRows(10000, scale_factor_);
  GeneratedTable t;
  t.name = "partsupp";
  t.column_names = {"ps_partkey", "ps_suppkey", "ps_availqty",
                    "ps_supplycost"};
  t.columns.assign(4, {});
  // Spec: each part has exactly 4 supplier rows, spread across the
  // supplier keyspace by the (partkey, i) formula.
  for (uint64_t p = 1; p <= parts; ++p) {
    for (uint64_t i = 0; i < 4; ++i) {
      const uint64_t s =
          (p + i * (suppliers / 4 + (p - 1) / suppliers)) % suppliers + 1;
      t.columns[0].push_back(static_cast<double>(p));
      t.columns[1].push_back(static_cast<double>(s));
      t.columns[2].push_back(static_cast<double>(1 + rng.Index(9999)));
      t.columns[3].push_back(1.0 +
                             static_cast<double>(rng.Index(99901)) / 100.0);
    }
  }
  return t;
}

GeneratedTable DbgenLite::Customer() const {
  Rng rng(seed_ ^ 0xc001);
  const uint64_t n = ScaledRows(150000, scale_factor_);
  GeneratedTable t;
  t.name = "customer";
  t.column_names = {"c_custkey", "c_nationkey", "c_mktsegment", "c_acctbal"};
  t.columns.assign(4, {});
  for (uint64_t i = 1; i <= n; ++i) {
    t.columns[0].push_back(static_cast<double>(i));
    t.columns[1].push_back(static_cast<double>(rng.Index(25)));
    t.columns[2].push_back(static_cast<double>(rng.Index(5)));
    t.columns[3].push_back(
        static_cast<double>(rng.Index(1100000)) / 100.0 - 1000.0 + 0.01);
  }
  return t;
}

void DbgenLite::OrdersAndLineitem(GeneratedTable* orders,
                                  GeneratedTable* lineitem) const {
  Rng rng(seed_ ^ 0x0dde5);
  const uint64_t n_orders = ScaledRows(1500000, scale_factor_);
  const uint64_t n_customers = ScaledRows(150000, scale_factor_);
  const uint64_t n_parts = ScaledRows(200000, scale_factor_);
  const uint64_t n_suppliers = ScaledRows(10000, scale_factor_);

  orders->name = "orders";
  orders->column_names = {"o_orderkey", "o_custkey", "o_orderstatus",
                          "o_orderdate", "o_orderpriority"};
  orders->columns.assign(5, {});
  lineitem->name = "lineitem";
  lineitem->column_names = {"l_orderkey",   "l_partkey",  "l_suppkey",
                            "l_linenumber", "l_quantity", "l_discount",
                            "l_tax",        "l_shipdate", "l_commitdate",
                            "l_receiptdate"};
  lineitem->columns.assign(10, {});

  const double last_order_day = kOrderDateDays - 1;  // 1998-08-02
  for (uint64_t o = 1; o <= n_orders; ++o) {
    // Customers whose key is divisible by 3 place no orders (this is what
    // makes o_custkey's distinct count 2/3 of the customer count).
    uint64_t cust = 1 + rng.Index(n_customers);
    while (cust % 3 == 0) cust = 1 + rng.Index(n_customers);
    const double odate =
        std::floor(rng.Uniform() * (last_order_day + 1));
    orders->columns[0].push_back(static_cast<double>(o));
    orders->columns[1].push_back(static_cast<double>(cust));
    orders->columns[2].push_back(static_cast<double>(rng.Index(3)));
    orders->columns[3].push_back(odate);
    orders->columns[4].push_back(static_cast<double>(rng.Index(5)));

    const uint64_t lines = 1 + rng.Index(7);
    for (uint64_t ln = 1; ln <= lines; ++ln) {
      const double ship = odate + 1 + static_cast<double>(rng.Index(121));
      const double commit = odate + 30 + static_cast<double>(rng.Index(61));
      const double receipt = ship + 1 + static_cast<double>(rng.Index(30));
      lineitem->columns[0].push_back(static_cast<double>(o));
      lineitem->columns[1].push_back(
          static_cast<double>(1 + rng.Index(n_parts)));
      lineitem->columns[2].push_back(
          static_cast<double>(1 + rng.Index(n_suppliers)));
      lineitem->columns[3].push_back(static_cast<double>(ln));
      lineitem->columns[4].push_back(static_cast<double>(1 + rng.Index(50)));
      lineitem->columns[5].push_back(static_cast<double>(rng.Index(11)) /
                                     100.0);
      lineitem->columns[6].push_back(static_cast<double>(rng.Index(9)) /
                                     100.0);
      lineitem->columns[7].push_back(ship);
      lineitem->columns[8].push_back(commit);
      lineitem->columns[9].push_back(receipt);
    }
  }
}

catalog::ColumnStats MeasureStats(const std::vector<double>& values,
                                  double avg_width_bytes) {
  catalog::ColumnStats stats;
  stats.avg_width_bytes = avg_width_bytes;
  if (values.empty()) return stats;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  stats.min_value = sorted.front();
  stats.max_value = sorted.back();
  double distinct = 1.0;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) distinct += 1.0;
  }
  stats.n_distinct = distinct;
  return stats;
}

}  // namespace costsense::tpch
