#ifndef COSTSENSE_TPCH_DBGEN_H_
#define COSTSENSE_TPCH_DBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/column.h"

namespace costsense::tpch {

/// A generated table: column-major numeric data. Strings are represented
/// by their category codes (the statistics of interest — cardinalities,
/// distinct counts, extrema — are invariant to the encoding).
struct GeneratedTable {
  std::string name;
  std::vector<std::string> column_names;
  /// columns[c][r] = value of column c in row r.
  std::vector<std::vector<double>> columns;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }
  const std::vector<double>& column(const std::string& name) const;
};

/// A miniature re-implementation of the TPC's dbgen population rules
/// (spec clause 4.2): exact table cardinalities, foreign-key structure
/// (4 suppliers per part, 1-7 lineitems per order, customers with key
/// % 3 == 0 receiving no orders), and the date arithmetic that determines
/// o_orderdate / l_shipdate / l_commitdate / l_receiptdate domains.
///
/// Purpose: ground truth for the *analytic* statistics in schema.cc — the
/// paper transplanted RUNSTATS output from a real 100 GB load; we instead
/// prove (tests/tpch/dbgen_test.cc) that measuring generated data
/// reproduces the analytic catalog, so the substitution is sound.
class DbgenLite {
 public:
  /// `scale_factor` down to 0.01 (a 60k-row lineitem) keeps generation
  /// in-memory and fast.
  explicit DbgenLite(double scale_factor, uint64_t seed = 19920101);

  GeneratedTable Region() const;
  GeneratedTable Nation() const;
  GeneratedTable Supplier() const;
  GeneratedTable Part() const;
  GeneratedTable PartSupp() const;
  GeneratedTable Customer() const;
  /// Generates orders and lineitem together (lineitem rows derive from
  /// their order's date and key).
  void OrdersAndLineitem(GeneratedTable* orders,
                         GeneratedTable* lineitem) const;

  double scale_factor() const { return scale_factor_; }

 private:
  double scale_factor_;
  uint64_t seed_;
};

/// Exact single-pass statistics of a value vector: the ground truth that
/// RUNSTATS approximates.
catalog::ColumnStats MeasureStats(const std::vector<double>& values,
                                  double avg_width_bytes = 8.0);

}  // namespace costsense::tpch

#endif  // COSTSENSE_TPCH_DBGEN_H_
