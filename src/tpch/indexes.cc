// The benchmark index set. The paper used the exact indexes of IBM's
// published 100 GB TPC-H run (Full Disclosure Report); that document is
// not redistributable, so this file encodes the standard shape of such
// runs: primary-key indexes on every table, foreign-key indexes on the
// join columns the workload exercises, and date indexes on the heavily
// range-filtered date columns. Orders and lineitem are clustered on the
// order key (dbgen emits them in that order).
#include <cstddef>

#include "common/macros.h"
#include "tpch/schema.h"

namespace costsense::tpch {

namespace {

size_t Col(const catalog::Catalog& cat, int table_id, const char* name) {
  const Result<size_t> idx = cat.table(table_id).ColumnIndex(name);
  COSTSENSE_CHECK_MSG(idx.ok(), name);
  return idx.value();
}

}  // namespace

void AddTpchIndexes(catalog::Catalog& cat) {
  const int region = cat.TableId("region").value();
  const int nation = cat.TableId("nation").value();
  const int supplier = cat.TableId("supplier").value();
  const int part = cat.TableId("part").value();
  const int partsupp = cat.TableId("partsupp").value();
  const int customer = cat.TableId("customer").value();
  const int orders = cat.TableId("orders").value();
  const int lineitem = cat.TableId("lineitem").value();

  cat.AddIndex("r_pk", region, {Col(cat, region, "r_regionkey")},
               /*unique=*/true, /*clustered=*/true);
  cat.AddIndex("n_pk", nation, {Col(cat, nation, "n_nationkey")}, true, true);
  cat.AddIndex("n_rk", nation, {Col(cat, nation, "n_regionkey")}, false,
               false);

  cat.AddIndex("s_pk", supplier, {Col(cat, supplier, "s_suppkey")}, true,
               true);
  cat.AddIndex("s_nk", supplier, {Col(cat, supplier, "s_nationkey")}, false,
               false);

  cat.AddIndex("p_pk", part, {Col(cat, part, "p_partkey")}, true, true);

  cat.AddIndex("ps_pk", partsupp,
               {Col(cat, partsupp, "ps_partkey"),
                Col(cat, partsupp, "ps_suppkey")},
               true, true);
  cat.AddIndex("ps_sk", partsupp, {Col(cat, partsupp, "ps_suppkey")}, false,
               false);

  cat.AddIndex("c_pk", customer, {Col(cat, customer, "c_custkey")}, true,
               true);
  cat.AddIndex("c_nk", customer, {Col(cat, customer, "c_nationkey")}, false,
               false);

  cat.AddIndex("o_pk", orders, {Col(cat, orders, "o_orderkey")}, true, true);
  cat.AddIndex("o_ck", orders, {Col(cat, orders, "o_custkey")}, false, false);
  cat.AddIndex("o_od", orders, {Col(cat, orders, "o_orderdate")}, false,
               false);

  cat.AddIndex("l_ok", lineitem,
               {Col(cat, lineitem, "l_orderkey"),
                Col(cat, lineitem, "l_linenumber")},
               true, /*clustered=*/true);
  cat.AddIndex("l_pk_sk", lineitem,
               {Col(cat, lineitem, "l_partkey"),
                Col(cat, lineitem, "l_suppkey")},
               false, false);
  cat.AddIndex("l_sk", lineitem, {Col(cat, lineitem, "l_suppkey")}, false,
               false);
  cat.AddIndex("l_sd", lineitem, {Col(cat, lineitem, "l_shipdate")}, false,
               false);
}

}  // namespace costsense::tpch
