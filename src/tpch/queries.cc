#include "tpch/queries.h"

#include "common/macros.h"
#include "common/strings.h"
#include "query/builder.h"
#include "tpch/stats.h"

namespace costsense::tpch {

namespace {

using query::JoinKind;
using query::Query;
using query::QueryBuilder;

/// Selectivity of an o_orderdate range predicate covering `days` days.
double OrderDateSel(double days) { return days / kOrderDateDays; }
/// Selectivity of an l_shipdate (or receipt/commit date) range of `days`.
double ShipDateSel(double days) { return days / kShipDateDays; }

double Rows(const catalog::Catalog& cat, const char* table) {
  return cat.table(cat.TableId(table).value()).row_count();
}

Query Q1(const catalog::Catalog& cat) {
  // Pricing summary: single-table scan with a wide shipdate filter,
  // grouped on two tiny columns.
  return QueryBuilder(cat, "Q1")
      .Table("lineitem", "l")
      .Project("l", 0.3)
      .Restrict("l", "l_shipdate", ShipDateSel(2526 - 90))
      .GroupBy(4, {"l.l_returnflag", "l.l_linestatus"})
      .OrderBy("l", "l_returnflag")
      .OrderBy("l", "l_linestatus")
      .Build();
}

Query Q2(const catalog::Catalog& cat) {
  // Minimum-cost supplier. The correlated min(ps_supplycost) subquery is
  // folded into a 1/4 selectivity on partsupp (each part has 4 suppliers;
  // the min picks one).
  return QueryBuilder(cat, "Q2")
      .Table("part", "p")
      .Table("supplier", "s")
      .Table("partsupp", "ps")
      .Table("nation", "n")
      .Table("region", "r")
      .Project("p", 0.3)
      .Project("ps", 0.15)
      .Project("s", 0.6)
      .Restrict("p", "p_size", 1.0 / 50)
      .Restrict("p", "p_type", 0.2, /*sargable=*/false)
      .LocalSelectivity("ps", 0.25)
      .Restrict("r", "r_name", 0.2)
      .Join("p", "p_partkey", "ps", "ps_partkey")
      .Join("s", "s_suppkey", "ps", "ps_suppkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .Join("n", "n_regionkey", "r", "r_regionkey")
      .OrderBy("s", "s_acctbal")
      .Build();
}

Query Q3(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q3")
      .Table("customer", "c")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Project("c", 0.1)
      .Project("o", 0.2)
      .Project("l", 0.15)
      .Restrict("c", "c_mktsegment", 0.2, /*sargable=*/false)
      .Restrict("o", "o_orderdate", OrderDateSel(1168))  // < 1995-03-15
      .Restrict("l", "l_shipdate", ShipDateSel(1358), /*sargable=*/true)
      .Join("c", "c_custkey", "o", "o_custkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .GroupBy(Rows(cat, "orders") * OrderDateSel(1168) * 0.3,
               {"l.l_orderkey"})
      .OrderBy("o", "o_orderdate")
      .Build();
}

Query Q4(const catalog::Catalog& cat) {
  // Order priority checking: EXISTS(lineitem with commit < receipt)
  // flattened to a semi join.
  return QueryBuilder(cat, "Q4")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Restrict("o", "o_orderdate", OrderDateSel(92))
      .Project("o", 0.15)
      .LocalSelectivity("l", 0.63)  // l_commitdate < l_receiptdate
      .Join("o", "o_orderkey", "l", "l_orderkey", JoinKind::kSemi)
      .GroupBy(5, {"o.o_orderpriority"})
      .OrderBy("o", "o_orderpriority")
      .Build();
}

Query Q5(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q5")
      .Table("customer", "c")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Table("supplier", "s")
      .Table("nation", "n")
      .Table("region", "r")
      .Restrict("o", "o_orderdate", OrderDateSel(365))
      .Restrict("r", "r_name", 0.2)
      .Project("c", 0.08)
      .Project("o", 0.08)
      .Project("l", 0.2)
      .Project("s", 0.1)
      .Join("c", "c_custkey", "o", "o_custkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .Join("l", "l_suppkey", "s", "s_suppkey")
      .Join("c", "c_nationkey", "s", "s_nationkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .Join("n", "n_regionkey", "r", "r_regionkey")
      .GroupBy(5, {"n.n_name"})
      .Build();
}

Query Q6(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q6")
      .Table("lineitem", "l")
      .Restrict("l", "l_shipdate", ShipDateSel(365))
      .Project("l", 0.2)
      .Restrict("l", "l_discount", 3.0 / 11, /*sargable=*/false)
      .Restrict("l", "l_quantity", 0.48, /*sargable=*/false)
      .GroupBy(1)
      .Build();
}

Query Q7(const catalog::Catalog& cat) {
  // Volume shipping between two nations; the (n1, n2) pair disjunction is
  // approximated by independent 2/25 filters on each nation ref.
  return QueryBuilder(cat, "Q7")
      .Table("supplier", "s")
      .Table("lineitem", "l")
      .Table("orders", "o")
      .Table("customer", "c")
      .Table("nation", "n1")
      .Table("nation", "n2")
      .Restrict("l", "l_shipdate", ShipDateSel(730))
      .Project("s", 0.1)
      .Project("l", 0.25)
      .Project("o", 0.08)
      .Project("c", 0.08)
      .Restrict("n1", "n_name", 2.0 / 25)
      .Restrict("n2", "n_name", 2.0 / 25)
      .Join("s", "s_suppkey", "l", "l_suppkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .Join("c", "c_custkey", "o", "o_custkey")
      .Join("s", "s_nationkey", "n1", "n_nationkey")
      .Join("c", "c_nationkey", "n2", "n_nationkey")
      .GroupBy(14, {"n1.n_name", "n2.n_name"})
      .OrderBy("n1", "n_name")
      .Build();
}

Query Q8(const catalog::Catalog& cat) {
  // National market share: the paper's 8-table query whose LINEITEM-PART
  // join method flips between hash join and index nested loops as the
  // seek:transfer cost ratio moves (Section 8.1.1).
  return QueryBuilder(cat, "Q8")
      .Table("part", "p")
      .Table("lineitem", "l")
      .Table("supplier", "s")
      .Table("orders", "o")
      .Table("customer", "c")
      .Table("nation", "n1")
      .Table("region", "r")
      .Table("nation", "n2")
      .Project("p", 0.08)
      .Project("l", 0.3)
      .Project("s", 0.08)
      .Project("o", 0.1)
      .Project("c", 0.08)
      .Restrict("p", "p_type", 1.0 / 150, /*sargable=*/false)
      .Restrict("o", "o_orderdate", OrderDateSel(730))
      .Restrict("r", "r_name", 0.2)
      .Join("p", "p_partkey", "l", "l_partkey")
      .Join("s", "s_suppkey", "l", "l_suppkey")
      .Join("l", "l_orderkey", "o", "o_orderkey")
      .Join("o", "o_custkey", "c", "c_custkey")
      .Join("c", "c_nationkey", "n1", "n_nationkey")
      .Join("n1", "n_regionkey", "r", "r_regionkey")
      .Join("s", "s_nationkey", "n2", "n_nationkey")
      .GroupBy(2)
      .Build();
}

Query Q9(const catalog::Catalog& cat) {
  // Product type profit: partsupp joins lineitem on both part and
  // supplier keys (two edges).
  return QueryBuilder(cat, "Q9")
      .Table("part", "p")
      .Table("lineitem", "l")
      .Table("supplier", "s")
      .Table("partsupp", "ps")
      .Table("orders", "o")
      .Table("nation", "n")
      .Project("p", 0.2)
      .Project("l", 0.35)
      .Project("s", 0.1)
      .Project("ps", 0.2)
      .Project("o", 0.1)
      .Restrict("p", "p_name", 1.0 / 17, /*sargable=*/false)
      .Join("p", "p_partkey", "l", "l_partkey")
      .Join("s", "s_suppkey", "l", "l_suppkey")
      .Join("ps", "ps_partkey", "l", "l_partkey")
      .Join("ps", "ps_suppkey", "l", "l_suppkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .GroupBy(175, {"n.n_name"})
      .OrderBy("n", "n_name")
      .Build();
}

Query Q10(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q10")
      .Table("customer", "c")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Table("nation", "n")
      .Restrict("o", "o_orderdate", OrderDateSel(92))
      .Project("c", 0.8)
      .Project("o", 0.1)
      .Project("l", 0.2)
      .Restrict("l", "l_returnflag", 1.0 / 3, /*sargable=*/false)
      .Join("c", "c_custkey", "o", "o_custkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .Join("c", "c_nationkey", "n", "n_nationkey")
      .GroupBy(Rows(cat, "customer") * 0.25, {"c.c_custkey"})
      .Build();
}

Query Q11(const catalog::Catalog& cat) {
  // Important stock: the HAVING-threshold scalar subquery is dropped (it
  // filters output rows after aggregation, not the plan shape).
  return QueryBuilder(cat, "Q11")
      .Table("partsupp", "ps")
      .Table("supplier", "s")
      .Table("nation", "n")
      .Project("ps", 0.2)
      .Project("s", 0.1)
      .Restrict("n", "n_name", 1.0 / 25)
      .Join("ps", "ps_suppkey", "s", "s_suppkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .GroupBy(Rows(cat, "partsupp") / 25 * 0.8, {"ps.ps_partkey"})
      .Build();
}

Query Q12(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q12")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Project("o", 0.2)
      .Project("l", 0.2)
      .Restrict("l", "l_shipmode", 2.0 / 7, /*sargable=*/false)
      .Restrict("l", "l_receiptdate", ShipDateSel(365), /*sargable=*/false)
      .LocalSelectivity("l",
                        (2.0 / 7) * ShipDateSel(365) * 0.63 * 0.63)
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .GroupBy(2, {"l.l_shipmode"})
      .OrderBy("l", "l_shipmode")
      .Build();
}

Query Q13(const catalog::Catalog& cat) {
  // Customer distribution. The LEFT OUTER join is approximated by an
  // inner join (the comment filter keeps 98% of orders).
  return QueryBuilder(cat, "Q13")
      .Table("customer", "c")
      .Table("orders", "o")
      .Project("c", 0.1)
      .Project("o", 0.3)
      .Restrict("o", "o_comment", 0.98, /*sargable=*/false)
      .Join("c", "c_custkey", "o", "o_custkey")
      .GroupBy(Rows(cat, "customer") * kCustomersWithOrdersFraction,
               {"c.c_custkey"})
      .Build();
}

Query Q14(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "Q14")
      .Table("lineitem", "l")
      .Table("part", "p")
      .Project("l", 0.25)
      .Project("p", 0.2)
      .Restrict("l", "l_shipdate", ShipDateSel(30))
      .Join("l", "l_partkey", "p", "p_partkey")
      .GroupBy(1)
      .Build();
}

Query Q15(const catalog::Catalog& cat) {
  // Top supplier: the revenue view is flattened to a grouped join; the
  // max-revenue selection touches only the tiny aggregate output.
  return QueryBuilder(cat, "Q15")
      .Table("supplier", "s")
      .Table("lineitem", "l")
      .Project("s", 0.5)
      .Project("l", 0.2)
      .Restrict("l", "l_shipdate", ShipDateSel(92))
      .Join("s", "s_suppkey", "l", "l_suppkey")
      .GroupBy(Rows(cat, "supplier"), {"s.s_suppkey"})
      .Build();
}

Query Q16(const catalog::Catalog& cat) {
  // Parts/supplier relationship: NOT IN (complaint suppliers) flattened
  // to an anti join against a highly selective supplier filter.
  return QueryBuilder(cat, "Q16")
      .Table("partsupp", "ps")
      .Table("part", "p")
      .Table("supplier", "s")
      .Project("ps", 0.1)
      .Project("p", 0.4)
      .Restrict("p", "p_brand", 24.0 / 25, /*sargable=*/false)
      .Restrict("p", "p_type", 29.0 / 30, /*sargable=*/false)
      .Restrict("p", "p_size", 8.0 / 50)
      .Restrict("s", "s_comment", 5e-4, /*sargable=*/false)
      .Join("ps", "ps_partkey", "p", "p_partkey")
      .Join("ps", "ps_suppkey", "s", "s_suppkey", JoinKind::kAnti)
      .GroupBy(18000, {"p.p_brand"})
      .OrderBy("p", "p_brand")
      .Build();
}

Query Q17(const catalog::Catalog& cat) {
  // Small-quantity-order revenue: the correlated avg(l_quantity) subquery
  // becomes a 0.2 residual selectivity on lineitem.
  return QueryBuilder(cat, "Q17")
      .Table("lineitem", "l")
      .Table("part", "p")
      .Project("l", 0.15)
      .Project("p", 0.1)
      .Restrict("p", "p_brand", 1.0 / 25, /*sargable=*/false)
      .Restrict("p", "p_container", 1.0 / 40, /*sargable=*/false)
      .Restrict("l", "l_quantity", 0.2, /*sargable=*/false)
      .Join("l", "l_partkey", "p", "p_partkey")
      .GroupBy(1)
      .Build();
}

Query Q18(const catalog::Catalog& cat) {
  // Large volume customer: the HAVING sum(l_quantity) > 300 group filter
  // is a semi join of orders against a pre-aggregated lineitem whose
  // qualifying fraction is ~6e-5.
  const double l_rows = Rows(cat, "lineitem");
  const double o_rows = Rows(cat, "orders");
  const double qualifying = 6e-5;
  return QueryBuilder(cat, "Q18")
      .Table("customer", "c")
      .Table("orders", "o")
      .Table("lineitem", "l")
      .Table("lineitem", "lq")
      .Project("c", 0.2)
      .Project("o", 0.3)
      .Project("l", 0.1)
      .Project("lq", 0.05)
      .LocalSelectivity("lq", qualifying)
      .Join("c", "c_custkey", "o", "o_custkey")
      .Join("o", "o_orderkey", "l", "l_orderkey")
      .Join("o", "o_orderkey", "lq", "l_orderkey", JoinKind::kSemi,
            /*selectivity_override=*/std::min(1.0, 1.0 / o_rows) *
                std::min(1.0, o_rows / (l_rows * qualifying)))
      .GroupBy(o_rows * 4e-5, {"c.c_custkey", "o.o_orderkey"})
      .OrderBy("o", "o_totalprice")
      .Build();
}

Query Q19(const catalog::Catalog& cat) {
  // Discounted revenue: three OR'd brand/container/quantity brackets; the
  // paper singles this query out for its LINEITEM-PART join method
  // sensitivity (Section 8.1.1).
  return QueryBuilder(cat, "Q19")
      .Table("lineitem", "l")
      .Table("part", "p")
      .Restrict("l", "l_shipmode", 2.0 / 7, /*sargable=*/false)
      .Project("l", 0.3)
      .Project("p", 0.2)
      .Restrict("l", "l_shipinstruct", 0.25, /*sargable=*/false)
      .Restrict("l", "l_quantity", 0.6, /*sargable=*/false)
      .Restrict("p", "p_brand", 3.0 / 25, /*sargable=*/false)
      .Restrict("p", "p_container", 12.0 / 40, /*sargable=*/false)
      .Restrict("p", "p_size", 0.3)
      .Join("l", "l_partkey", "p", "p_partkey")
      .GroupBy(1)
      .Build();
}

Query Q20(const catalog::Catalog& cat) {
  // Potential part promotion. Flattened to the inner-join chain whose
  // PART-PARTSUPP join method choice the paper identifies as the
  // sensitivity driver (Sections 8.1.1-8.1.2); the availqty subquery
  // becomes a 0.5 filter on partsupp and DISTINCT suppliers the final
  // aggregation.
  return QueryBuilder(cat, "Q20")
      .Table("part", "p")
      .Table("partsupp", "ps")
      .Table("supplier", "s")
      .Table("nation", "n")
      .Project("p", 0.1)
      .Project("ps", 0.15)
      .Project("s", 0.4)
      .Restrict("p", "p_name", 0.01, /*sargable=*/false)
      .LocalSelectivity("ps", 0.5)
      .Restrict("n", "n_name", 1.0 / 25)
      .Join("p", "p_partkey", "ps", "ps_partkey")
      .Join("ps", "ps_suppkey", "s", "s_suppkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .GroupBy(Rows(cat, "supplier") / 25, {"s.s_suppkey"})
      .OrderBy("s", "s_name")
      .Build();
}

Query Q21(const catalog::Catalog& cat) {
  // Suppliers who kept orders waiting: EXISTS (another supplier's line)
  // and NOT EXISTS (another supplier's late line) become semi and anti
  // joins on the order key. Match probabilities are calibrated so the
  // anti join keeps ~10% of orders (multi-supplier orders are common).
  const double l_rows = Rows(cat, "lineitem");
  return QueryBuilder(cat, "Q21")
      .Table("supplier", "s")
      .Table("lineitem", "l1")
      .Table("orders", "o")
      .Table("nation", "n")
      .Table("lineitem", "l2")
      .Table("lineitem", "l3")
      .Project("s", 0.2)
      .Project("l1", 0.15)
      .Project("o", 0.05)
      .Project("l2", 0.05)
      .Project("l3", 0.05)
      .Restrict("l1", "l_receiptdate", 0.5, /*sargable=*/false)
      .Restrict("o", "o_orderstatus", 0.486, /*sargable=*/false)
      .Restrict("n", "n_name", 1.0 / 25)
      .LocalSelectivity("l3", 0.5)
      .Join("s", "s_suppkey", "l1", "l_suppkey")
      .Join("o", "o_orderkey", "l1", "l_orderkey")
      .Join("s", "s_nationkey", "n", "n_nationkey")
      .Join("l1", "l_orderkey", "l2", "l_orderkey", JoinKind::kSemi,
            /*selectivity_override=*/0.95 / l_rows)
      .Join("l1", "l_orderkey", "l3", "l_orderkey", JoinKind::kAnti,
            /*selectivity_override=*/0.9 / (l_rows * 0.5))
      .GroupBy(Rows(cat, "supplier") / 25, {"s.s_name"})
      .OrderBy("s", "s_name")
      .Build();
}

Query Q22(const catalog::Catalog& cat) {
  // Global sales opportunity: customers with no orders (anti join),
  // calibrated so 1/3 of customers survive.
  const double o_rows = Rows(cat, "orders");
  return QueryBuilder(cat, "Q22")
      .Table("customer", "c")
      .Table("orders", "o")
      .Project("c", 0.3)
      .Project("o", 0.05)
      .Restrict("c", "c_phone", 7.0 / 25, /*sargable=*/false)
      .Restrict("c", "c_acctbal", 0.5, /*sargable=*/false)
      .Join("c", "c_custkey", "o", "o_custkey", JoinKind::kAnti,
            /*selectivity_override=*/(2.0 / 3.0) / o_rows)
      .GroupBy(7, {"c.c_phone"})
      .OrderBy("c", "c_phone")
      .Build();
}

}  // namespace

query::Query MakeTpchQuery(const catalog::Catalog& catalog, int number) {
  switch (number) {
    case 1: return Q1(catalog);
    case 2: return Q2(catalog);
    case 3: return Q3(catalog);
    case 4: return Q4(catalog);
    case 5: return Q5(catalog);
    case 6: return Q6(catalog);
    case 7: return Q7(catalog);
    case 8: return Q8(catalog);
    case 9: return Q9(catalog);
    case 10: return Q10(catalog);
    case 11: return Q11(catalog);
    case 12: return Q12(catalog);
    case 13: return Q13(catalog);
    case 14: return Q14(catalog);
    case 15: return Q15(catalog);
    case 16: return Q16(catalog);
    case 17: return Q17(catalog);
    case 18: return Q18(catalog);
    case 19: return Q19(catalog);
    case 20: return Q20(catalog);
    case 21: return Q21(catalog);
    case 22: return Q22(catalog);
    default:
      COSTSENSE_CHECK_MSG(false, "TPC-H query number must be 1..22");
      return {};
  }
}

std::vector<query::Query> MakeTpchQueries(const catalog::Catalog& catalog) {
  std::vector<query::Query> out;
  out.reserve(22);
  for (int i = 1; i <= 22; ++i) out.push_back(MakeTpchQuery(catalog, i));
  return out;
}

}  // namespace costsense::tpch
