#ifndef COSTSENSE_TPCH_QUERIES_H_
#define COSTSENSE_TPCH_QUERIES_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"

namespace costsense::tpch {

/// Builds TPC-H query `number` (1..22) in join-graph form against a
/// catalog produced by MakeTpchCatalog. Selectivities follow the
/// specification's default substitution parameters; correlated subqueries
/// are flattened to semi/anti joins or folded into local selectivities
/// (each flattening is documented inline and in DESIGN.md).
query::Query MakeTpchQuery(const catalog::Catalog& catalog, int number);

/// All 22 queries, in order (the paper's workload, Section 7.4).
std::vector<query::Query> MakeTpchQueries(const catalog::Catalog& catalog);

}  // namespace costsense::tpch

#endif  // COSTSENSE_TPCH_QUERIES_H_
