#include "tpch/schema.h"

#include <algorithm>

#include "tpch/stats.h"

namespace costsense::tpch {

namespace {

using catalog::Column;
using catalog::MakeColumn;
using catalog::Table;

/// Key column uniform over [1, n] with n distinct values, 4 bytes.
Column Key(const char* name, double n) { return MakeColumn(name, n, 1, n, 4); }

/// Categorical column: n distinct values, `width` bytes.
Column Cat(const char* name, double n, double width) {
  return MakeColumn(name, n, 0, n - 1, width);
}

/// Date column encoded as days since 1992-01-01.
Column Date(const char* name, double lo, double hi) {
  return MakeColumn(name, hi - lo + 1, lo, hi, 4);
}

/// Decimal column, 8 bytes.
Column Dec(const char* name, double n, double lo, double hi) {
  return MakeColumn(name, n, lo, hi, 8);
}

}  // namespace

catalog::Catalog MakeTpchCatalog(double scale_factor,
                                 catalog::SystemConfig config) {
  const Cardinalities n = CardinalitiesFor(scale_factor);
  const double page = config.page_size_bytes;
  catalog::Catalog cat(std::move(config));

  cat.AddTable(Table("region", n.region, page,
                     {Key("r_regionkey", 5), Cat("r_name", 5, 25),
                      Cat("r_comment", 5, 100)}));

  cat.AddTable(Table("nation", n.nation, page,
                     {Key("n_nationkey", 25), Cat("n_name", 25, 25),
                      MakeColumn("n_regionkey", 5, 0, 4, 4),
                      Cat("n_comment", 25, 100)}));

  cat.AddTable(Table(
      "supplier", n.supplier, page,
      {Key("s_suppkey", n.supplier), Cat("s_name", n.supplier, 25),
       Cat("s_address", n.supplier, 25),
       MakeColumn("s_nationkey", 25, 0, 24, 4), Cat("s_phone", n.supplier, 15),
       Dec("s_acctbal", std::min(n.supplier, 1.1e6), -999.99, 9999.99),
       Cat("s_comment", n.supplier, 62)}));

  cat.AddTable(Table(
      "part", n.part, page,
      {Key("p_partkey", n.part), Cat("p_name", n.part, 33),
       Cat("p_mfgr", 5, 25), Cat("p_brand", 25, 10), Cat("p_type", 150, 25),
       MakeColumn("p_size", 50, 1, 50, 4), Cat("p_container", 40, 10),
       Dec("p_retailprice", std::min(n.part, 1.2e5), 900, 2100),
       Cat("p_comment", n.part, 14)}));

  cat.AddTable(Table(
      "partsupp", n.partsupp, page,
      {MakeColumn("ps_partkey", n.part, 1, n.part, 4),
       MakeColumn("ps_suppkey", n.supplier, 1, n.supplier, 4),
       MakeColumn("ps_availqty", 9999, 1, 9999, 4),
       Dec("ps_supplycost", 99901, 1.0, 1000.0),
       Cat("ps_comment", n.partsupp, 124)}));

  cat.AddTable(Table(
      "customer", n.customer, page,
      {Key("c_custkey", n.customer), Cat("c_name", n.customer, 18),
       Cat("c_address", n.customer, 25),
       MakeColumn("c_nationkey", 25, 0, 24, 4),
       Cat("c_phone", n.customer, 15),
       Dec("c_acctbal", std::min(n.customer, 1.1e6), -999.99, 9999.99),
       Cat("c_mktsegment", 5, 10), Cat("c_comment", n.customer, 73)}));

  cat.AddTable(Table(
      "orders", n.orders, page,
      {Key("o_orderkey", n.orders),
       MakeColumn("o_custkey", n.customer * kCustomersWithOrdersFraction, 1,
                  n.customer, 4),
       Cat("o_orderstatus", 3, 1), Dec("o_totalprice", n.orders, 800, 600000),
       Date("o_orderdate", 0, kOrderDateDays - 1),
       Cat("o_orderpriority", 5, 15),
       Cat("o_clerk", 1000 * std::max(1.0, scale_factor), 15),
       Cat("o_shippriority", 1, 4), Cat("o_comment", n.orders, 49)}));

  cat.AddTable(Table(
      "lineitem", n.lineitem, page,
      {MakeColumn("l_orderkey", n.orders, 1, n.orders, 4),
       MakeColumn("l_partkey", n.part, 1, n.part, 4),
       MakeColumn("l_suppkey", n.supplier, 1, n.supplier, 4),
       MakeColumn("l_linenumber", 7, 1, 7, 4),
       MakeColumn("l_quantity", 50, 1, 50, 8),
       Dec("l_extendedprice", std::min(n.lineitem, 1.0e6), 900, 105000),
       Dec("l_discount", 11, 0.0, 0.10), Dec("l_tax", 9, 0.0, 0.08),
       Cat("l_returnflag", 3, 1), Cat("l_linestatus", 2, 1),
       Date("l_shipdate", 1, kShipDateDays - 1),
       Date("l_commitdate", 30, kShipDateDays + 60),
       Date("l_receiptdate", 2, kShipDateDays + 29),
       Cat("l_shipinstruct", 4, 25), Cat("l_shipmode", 7, 10),
       Cat("l_comment", n.lineitem, 27)}));

  AddTpchIndexes(cat);
  return cat;
}

}  // namespace costsense::tpch
