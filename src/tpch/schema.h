#ifndef COSTSENSE_TPCH_SCHEMA_H_
#define COSTSENSE_TPCH_SCHEMA_H_

#include "catalog/catalog.h"

namespace costsense::tpch {

/// Builds a catalog holding the TPC-H schema with analytically-derived
/// statistics for `scale_factor` (default 100, the paper's database size)
/// and the benchmark-style index set (see indexes.cc). This substitutes
/// for the paper's transplanted db2look statistics dump (Section 7.2):
/// dbgen data is deterministic, so column cardinalities, extrema and
/// widths are closed-form functions of SF.
catalog::Catalog MakeTpchCatalog(double scale_factor = 100.0,
                                 catalog::SystemConfig config = {});

/// Adds the benchmark index set to a catalog already holding the TPC-H
/// tables (called by MakeTpchCatalog; exposed for tests and ablations).
void AddTpchIndexes(catalog::Catalog& catalog);

}  // namespace costsense::tpch

#endif  // COSTSENSE_TPCH_SCHEMA_H_
