#include "tpch/stats.h"

#include "common/macros.h"

namespace costsense::tpch {

Cardinalities CardinalitiesFor(double scale_factor) {
  COSTSENSE_CHECK_MSG(scale_factor >= 0.01, "scale factor too small");
  Cardinalities c;
  c.supplier = 10000.0 * scale_factor;
  c.part = 200000.0 * scale_factor;
  c.partsupp = 800000.0 * scale_factor;
  c.customer = 150000.0 * scale_factor;
  c.orders = 1500000.0 * scale_factor;
  c.lineitem = 6000000.0 * scale_factor;
  return c;
}

}  // namespace costsense::tpch
