#ifndef COSTSENSE_TPCH_STATS_H_
#define COSTSENSE_TPCH_STATS_H_

namespace costsense::tpch {

/// Exact dbgen table cardinalities as a function of the scale factor
/// (TPC-H specification clause 4.2.5). dbgen data is deterministic, so
/// these are the row counts RUNSTATS would have measured on the paper's
/// 100 GB (SF = 100) database.
struct Cardinalities {
  double region = 5.0;
  double nation = 25.0;
  double supplier = 0.0;
  double part = 0.0;
  double partsupp = 0.0;
  double customer = 0.0;
  double orders = 0.0;
  double lineitem = 0.0;
};

/// Computes the cardinalities for `scale_factor` (SF >= 0.01). Lineitem
/// uses the expected 6,000,000 * SF (the exact dbgen count deviates by
/// <0.1%).
Cardinalities CardinalitiesFor(double scale_factor);

/// Number of distinct o_orderdate values (1992-01-01 .. 1998-08-02),
/// encoded as days since 1992-01-01.
inline constexpr double kOrderDateDays = 2406.0;
/// Number of distinct l_shipdate values (orderdate + 1 .. orderdate + 121).
inline constexpr double kShipDateDays = 2526.0;
/// Customers with at least one order: dbgen gives orders to 2/3 of the
/// customer keyspace.
inline constexpr double kCustomersWithOrdersFraction = 2.0 / 3.0;

}  // namespace costsense::tpch

#endif  // COSTSENSE_TPCH_STATS_H_
