#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/selectivity.h"

namespace costsense::catalog {
namespace {

Table SmallTable() {
  return Table("t", /*row_count=*/100000, /*page_size_bytes=*/4096,
               {MakeColumn("id", 100000, 1, 100000, 4),
                MakeColumn("grp", 50, 1, 50, 4),
                MakeColumn("payload", 100000, 0, 0, 100)});
}

TEST(TableTest, PageCountFromWidths) {
  const Table t = SmallTable();
  // Row width = 10 (overhead) + 4 + 4 + 100 = 118; 4096*0.9/118 = 31
  // rows/page; 100000/31 = 3226 pages.
  EXPECT_DOUBLE_EQ(t.row_width_bytes(), 118.0);
  EXPECT_DOUBLE_EQ(t.pages(), std::ceil(100000.0 / 31.0));
}

TEST(TableTest, ColumnIndexLookups) {
  const Table t = SmallTable();
  EXPECT_EQ(t.ColumnIndex("grp").value(), 1u);
  EXPECT_FALSE(t.ColumnIndex("nope").ok());
}

TEST(TableTest, TinyTableHasOnePage) {
  const Table t("tiny", 5, 4096, {MakeColumn("k", 5, 0, 4, 4)});
  EXPECT_DOUBLE_EQ(t.pages(), 1.0);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  const int id = cat.AddTable(SmallTable());
  EXPECT_EQ(cat.TableId("t").value(), id);
  EXPECT_FALSE(cat.TableId("u").ok());
  EXPECT_EQ(cat.num_tables(), 1u);
}

TEST(CatalogTest, IndexConstructionAndLookup) {
  Catalog cat;
  const int t = cat.AddTable(SmallTable());
  const int pk = cat.AddIndex("t_pk", t, {0}, true, true);
  const int gi = cat.AddIndex("t_grp", t, {1}, false, false);
  EXPECT_EQ(cat.IndexesOn(t), (std::vector<int>{pk, gi}));
  EXPECT_EQ(cat.FindIndexByLeadingColumn(t, 1), gi);
  EXPECT_EQ(cat.FindIndexByLeadingColumn(t, 2), -1);

  const Index& idx = cat.index(pk);
  // Entry = 4 (key) + 8 (rid) = 12 bytes; 4096*0.7/12 = 238 entries/leaf;
  // 100000/238 = 421 leaves; levels: 421 -> 2 -> 1 => 3.
  EXPECT_DOUBLE_EQ(idx.leaf_pages, std::ceil(100000.0 / 238.0));
  EXPECT_EQ(idx.levels, 3);
  EXPECT_TRUE(idx.clustered);
}

TEST(SelectivityTest, Equality) {
  ColumnStats s;
  s.n_distinct = 50;
  EXPECT_DOUBLE_EQ(EqualitySelectivity(s), 0.02);
}

TEST(SelectivityTest, RangeClamped) {
  ColumnStats s;
  s.min_value = 0;
  s.max_value = 100;
  EXPECT_DOUBLE_EQ(RangeSelectivity(s, 0, 50), 0.5);
  EXPECT_DOUBLE_EQ(RangeSelectivity(s, -100, 200), 1.0);
  EXPECT_DOUBLE_EQ(RangeSelectivity(s, 70, 60), 0.0);
}

TEST(SelectivityTest, JoinUsesLargerDomain) {
  ColumnStats a, b;
  a.n_distinct = 100;
  b.n_distinct = 1000;
  EXPECT_DOUBLE_EQ(JoinSelectivity(a, b), 1e-3);
}

TEST(YaoTest, BoundsAndMonotonicity) {
  const double rows = 1e6, pages = 1e4;
  EXPECT_DOUBLE_EQ(ExpectedPagesFetched(0, rows, pages), 0.0);
  double prev = 0.0;
  for (double k : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    const double got = ExpectedPagesFetched(k, rows, pages);
    EXPECT_GE(got, prev);            // monotone in rows fetched
    EXPECT_LE(got, pages * 1.0001);  // never more than all pages
    EXPECT_LE(got, k * 1.0001);      // never more than one page per row
    prev = got;
  }
  // Fetching every row touches essentially every page.
  EXPECT_NEAR(ExpectedPagesFetched(rows, rows, pages), pages, pages * 0.01);
  // Tiny fetch counts touch ~one page each.
  EXPECT_NEAR(ExpectedPagesFetched(5, rows, pages), 5.0, 0.01);
}

TEST(YaoTest, StableAtTpchScale) {
  // SF-100 lineitem: 6e8 rows, ~2e7 pages; must not over/underflow.
  const double got = ExpectedPagesFetched(1e4, 6e8, 2e7);
  EXPECT_GT(got, 9.9e3);
  EXPECT_LT(got, 1.0001e4);
}

TEST(SystemConfigTest, ParameterTableMatchesPaper) {
  const SystemConfig config;
  const auto params = config.ToParameterTable();
  ASSERT_EQ(params.size(), 15u);
  EXPECT_EQ(params[9].first, "DFT_DEGREE");
  EXPECT_EQ(params[9].second, "32");
  EXPECT_EQ(params[13].first, "OPT_BUFFPAGE");
  EXPECT_EQ(params[13].second, "640000");
  EXPECT_EQ(params[14].second, "128000");
}

}  // namespace
}  // namespace costsense::catalog
