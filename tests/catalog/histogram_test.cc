#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace costsense::catalog {
namespace {

TEST(HistogramTest, RejectsEmptyAndZeroBuckets) {
  EXPECT_FALSE(EquiDepthHistogram::Build({}, 4).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({1.0}, 0).ok());
}

TEST(HistogramTest, UniformDataGivesUniformFractions) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  const auto h = EquiDepthHistogram::Build(values, 16);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 16u);
  EXPECT_NEAR(h->FractionBelow(2500), 0.25, 0.01);
  EXPECT_NEAR(h->FractionBelow(5000), 0.50, 0.01);
  EXPECT_NEAR(h->FractionBelow(9999), 1.00, 0.01);
  EXPECT_DOUBLE_EQ(h->FractionBelow(-5), 0.0);
  EXPECT_DOUBLE_EQ(h->FractionBelow(20000), 1.0);
}

TEST(HistogramTest, RangeSelectivityMatchesTruthOnUniform) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 100);
  const auto h = EquiDepthHistogram::Build(values, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->RangeSelectivity(20, 39), 0.20, 0.03);
  EXPECT_DOUBLE_EQ(h->RangeSelectivity(50, 40), 0.0);
}

TEST(HistogramTest, SkewedDataBeatsUniformAssumption) {
  // 90% of rows are value 0; a histogram must see that, while the uniform
  // min/max assumption cannot.
  std::vector<double> values(9000, 0.0);
  for (int i = 0; i < 1000; ++i) values.push_back(1 + i % 100);
  const auto h = EquiDepthHistogram::Build(values, 20);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EqualitySelectivity(0.0), 0.9, 0.02);
  EXPECT_LT(h->EqualitySelectivity(50.0), 0.01);
}

TEST(HistogramTest, DuplicateRunsDoNotStraddleBuckets) {
  // A single value dominating the data must collapse buckets, not split.
  std::vector<double> values(1000, 7.0);
  const auto h = EquiDepthHistogram::Build(values, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 1u);
  EXPECT_NEAR(h->EqualitySelectivity(7.0), 1.0, 1e-9);
}

TEST(HistogramTest, EqualityOutsideDomainIsZero) {
  const auto h = EquiDepthHistogram::Build({1, 2, 3, 4, 5}, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->EqualitySelectivity(99.0), 0.0);
  EXPECT_DOUBLE_EQ(h->EqualitySelectivity(-1.0), 0.0);
}

// Property sweep: on random data, FractionBelow is monotone, bounded, and
// range selectivities approximate true fractions.
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, FractionBelowIsAccurateCdf) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 61 + 3);
  std::vector<double> values;
  const int n = 5000;
  const bool skewed = GetParam() % 2 == 0;
  for (int i = 0; i < n; ++i) {
    values.push_back(skewed ? std::floor(rng.LogUniform(1.0, 1e4))
                            : std::floor(rng.Uniform(0.0, 1000.0)));
  }
  const auto h = EquiDepthHistogram::Build(values, 32);
  ASSERT_TRUE(h.ok());
  double prev = 0.0;
  for (double q : {0.0, 1.0, 5.0, 50.0, 200.0, 900.0, 5000.0, 9999.0}) {
    const double est = h->FractionBelow(q);
    EXPECT_GE(est, prev - 1e-12);  // monotone
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0);
    prev = est;
    // Compare with the exact fraction.
    double exact = 0.0;
    for (double v : values) exact += v <= q ? 1.0 : 0.0;
    exact /= n;
    EXPECT_NEAR(est, exact, 0.05) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace costsense::catalog
