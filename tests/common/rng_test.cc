#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace costsense {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.LogUniform(0.01, 100.0);
    EXPECT_GE(v, 0.01);
    EXPECT_LE(v, 100.0 * (1 + 1e-12));
  }
}

TEST(RngTest, LogUniformMedianIsGeometricMean) {
  // Log-uniform over [1/d, d] should have median ~1 (geometric mean).
  Rng rng(5);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.LogUniform(0.001, 1000.0) < 1.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngTest, IndexBounded) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Index(10)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, ForkIsDeterministic) {
  // Same parent state + same stream id => identical child streams, no
  // matter which thread does the forking.
  const Rng parent(42);
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ForkStreamsDiverge) {
  const Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  Rng c = parent.Fork(0x9e3779b97f4a7c15ULL);
  int same_ab = 0, same_ap = 0;
  Rng p(42);
  for (int i = 0; i < 100; ++i) {
    const uint64_t av = a.Next();
    if (av == b.Next()) ++same_ab;
    if (av == p.Next()) ++same_ap;
    (void)c.Next();
  }
  EXPECT_LT(same_ab, 3);  // children differ from each other
  EXPECT_LT(same_ap, 3);  // and from the parent's own stream
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng forked(42);
  (void)forked.Fork(1);
  (void)forked.Fork(2);
  Rng pristine(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(forked.Next(), pristine.Next());
}

TEST(RngTest, ForkDependsOnParentState) {
  // Advancing the parent changes what its forks produce: stream identity
  // is (parent state, stream id), not just the id.
  Rng p1(42), p2(42);
  (void)p2.Next();
  Rng a = p1.Fork(9);
  Rng b = p2.Fork(9);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace costsense
