#include "common/status.h"

#include <gtest/gtest.h>

namespace costsense {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad delta");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no plan"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

}  // namespace
}  // namespace costsense
