#include "common/strings.h"

#include <gtest/gtest.h>

namespace costsense {
namespace {

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, JoinSingle) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(StringsTest, JoinMany) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("q%d delta=%.1f", 8, 2.5), "q8 delta=2.5");
}

TEST(StringsTest, StrFormatEmptyResult) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(StringsTest, FormatDoubleZero) { EXPECT_EQ(FormatDouble(0.0), "0"); }

TEST(StringsTest, FormatDoubleTrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

TEST(StringsTest, FormatDoubleLargeUsesScientific) {
  const std::string s = FormatDouble(6.0e8);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(StringsTest, FormatDoubleSmallUsesScientific) {
  const std::string s = FormatDouble(1.0e-6);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(StringsTest, FormatDoubleNegative) {
  EXPECT_EQ(FormatDouble(-3.25), "-3.25");
}

}  // namespace
}  // namespace costsense
