// Tests for the paper's Section 6 algorithms: worst-case analysis by
// vertex sweep and LP, least-squares usage extraction through a narrow
// interface, and candidate-plan discovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/discovery.h"
#include "core/relative_cost.h"
#include "core/usage_extraction.h"
#include "core/worst_case.h"
#include "tests/core/fake_oracle.h"

namespace costsense::core {
namespace {

std::vector<PlanUsage> RandomFrontier(Rng& rng, size_t n, size_t count) {
  std::vector<PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    UsageVector u(n);
    for (size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1.0, 1e4);
    }
    if (u.Sum() == 0.0) u[0] = 1.0;
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

TEST(WorstCaseTest, ExampleOneReachesDeltaSquared) {
  // Paper Example 1 through the full machinery: initial plan A=(1,0) is
  // optimal at the center; at delta the worst-case GTC is delta^2.
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 0.0}},
                                        {"b", UsageVector{0.0, 1.0}}};
  FakeOracle oracle(plans, /*white_box=*/true);
  const double delta = 50.0;
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, delta);

  const Result<WorstCaseResult> sweep =
      WorstCaseByVertexSweep(oracle, plans[0].usage, box);
  ASSERT_TRUE(sweep.ok());
  EXPECT_NEAR(sweep->gtc, delta * delta, 1e-6);
  EXPECT_EQ(sweep->worst_rival, "b");

  const WorstCaseResult direct =
      WorstCaseOverPlansByVertices(plans[0].usage, plans, box);
  EXPECT_NEAR(direct.gtc, delta * delta, 1e-6);

  const Result<WorstCaseResult> lp =
      WorstCaseOverPlansByLp(plans[0].usage, plans, box);
  ASSERT_TRUE(lp.ok());
  EXPECT_NEAR(lp->gtc, delta * delta, 1e-4 * delta * delta);
}

TEST(WorstCaseTest, AllMethodsAgreeOnRandomInstances) {
  Rng rng(41);
  for (int t = 0; t < 30; ++t) {
    const size_t n = 2 + rng.Index(4);
    const auto plans = RandomFrontier(rng, n, 3 + rng.Index(5));
    CostVector base(n);
    for (size_t i = 0; i < n; ++i) base[i] = rng.LogUniform(0.01, 10.0);
    const Box box = Box::MultiplicativeBand(base, rng.LogUniform(1.5, 100.0));
    const size_t init = OptimalPlanIndex(plans, box.Center());

    FakeOracle oracle(plans, true);
    const Result<WorstCaseResult> sweep =
        WorstCaseByVertexSweep(oracle, plans[init].usage, box);
    ASSERT_TRUE(sweep.ok());
    const WorstCaseResult direct =
        WorstCaseOverPlansByVertices(plans[init].usage, plans, box);
    const Result<WorstCaseResult> lp =
        WorstCaseOverPlansByLp(plans[init].usage, plans, box);
    ASSERT_TRUE(lp.ok());

    EXPECT_NEAR(sweep->gtc, direct.gtc, 1e-9 * direct.gtc);
    EXPECT_NEAR(lp->gtc, direct.gtc, 1e-6 * direct.gtc);
  }
}

TEST(WorstCaseTest, GtcOneWhenInitialAlwaysOptimal) {
  const std::vector<PlanUsage> plans = {{"only", UsageVector{1.0, 2.0}}};
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  const WorstCaseResult r =
      WorstCaseOverPlansByVertices(plans[0].usage, plans, box);
  EXPECT_DOUBLE_EQ(r.gtc, 1.0);
}

TEST(WorstCaseTest, SweepRefusesHugeDimension) {
  std::vector<PlanUsage> plans = {{"a", UsageVector(25, 1.0)}};
  FakeOracle oracle(plans, true);
  const Box box = Box::MultiplicativeBand(CostVector(25, 1.0), 10.0);
  EXPECT_EQ(WorstCaseByVertexSweep(oracle, plans[0].usage, box)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExtractionTest, RecoversUsageThroughNarrowInterface) {
  // The oracle hides usage vectors; extraction must recover them from
  // (cost vector, total cost) pairs, the paper's Section 6.1.1 method.
  Rng rng(43);
  const std::vector<PlanUsage> plans = {
      {"a", UsageVector{100.0, 3.0, 0.0}},
      {"b", UsageVector{1.0, 50.0, 10.0}},
  };
  FakeOracle oracle(plans, /*white_box=*/false);
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0, 1.0}, 100.0);
  // Seed where plan a wins: make dim 1 cheap relative to dim 0? a uses lots
  // of r0; pick costs with tiny c0.
  const CostVector seed{0.02, 1.0, 1.0};
  ASSERT_EQ(oracle.Optimize(seed).plan_id, "a");

  const Result<ExtractedUsage> ex =
      ExtractUsageVector(oracle, "a", seed, box, rng, {});
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_NEAR(ex->usage[0], 100.0, 1e-3);
  EXPECT_NEAR(ex->usage[1], 3.0, 1e-3);
  EXPECT_NEAR(ex->usage[2], 0.0, 1e-3);
  // Paper: validation discrepancy below one percent.
  EXPECT_LT(ex->validation_error, 0.01);
  EXPECT_GE(ex->samples_used, 2 * 3u);
}

TEST(ExtractionTest, WrongSeedRejected) {
  Rng rng(47);
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 0.0}},
                                        {"b", UsageVector{0.0, 1.0}}};
  FakeOracle oracle(plans, false);
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  // Seed in b's region but asking for plan a.
  const Result<ExtractedUsage> ex = ExtractUsageVector(
      oracle, "a", CostVector{10.0, 0.1}, box, rng, {});
  EXPECT_EQ(ex.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DiscoveryTest, FindsAllPlansOfAFrontier) {
  // 2-D frontier where each plan has a fat region.
  const std::vector<PlanUsage> plans = {{"a", UsageVector{8.0, 1.0}},
                                        {"b", UsageVector{3.0, 3.0}},
                                        {"c", UsageVector{1.0, 8.0}}};
  FakeOracle oracle(plans, /*white_box=*/true);
  Rng rng(53);
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  const Result<DiscoveryResult> d =
      DiscoverCandidatePlans(oracle, box, rng, {});
  ASSERT_TRUE(d.ok());
  std::set<std::string> ids;
  for (const auto& dp : d->plans) ids.insert(dp.plan.plan_id);
  EXPECT_EQ(ids, (std::set<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(d->complete);
}

TEST(DiscoveryTest, NarrowOracleDiscoversAndExtracts) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{8.0, 1.0}},
                                        {"b", UsageVector{1.0, 8.0}}};
  FakeOracle oracle(plans, /*white_box=*/false);
  Rng rng(59);
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 50.0);
  const Result<DiscoveryResult> d =
      DiscoverCandidatePlans(oracle, box, rng, {});
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->plans.size(), 2u);
  for (const auto& dp : d->plans) {
    EXPECT_TRUE(dp.usage_from_least_squares);
    EXPECT_LT(dp.extraction_error, 0.01);
    const UsageVector& truth =
        dp.plan.plan_id == "a" ? plans[0].usage : plans[1].usage;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(dp.plan.usage[i], truth[i], 1e-3 * (1.0 + truth[i]));
    }
  }
}

TEST(DiscoveryTest, HiddenNicheFoundByCompletenessProbe) {
  // Plan "mid" only wins in a thin diagonal wedge that random probing at
  // low sample counts can miss; the completeness LP must locate it.
  const std::vector<PlanUsage> plans = {{"lo", UsageVector{10.0, 1.0}},
                                        {"mid", UsageVector{3.2, 3.2}},
                                        {"hi", UsageVector{1.0, 10.0}}};
  FakeOracle oracle(plans, true);
  Rng rng(61);
  DiscoveryOptions opts;
  opts.random_samples = 0;           // only center/axes/vertices
  opts.bisection_depth = 0;          // no segment refinement
  opts.full_vertex_sweep_max_dims = 0;
  opts.sampled_vertices = 0;
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 1.3);
  const Result<DiscoveryResult> d =
      DiscoverCandidatePlans(oracle, box, rng, opts);
  ASSERT_TRUE(d.ok());
  std::set<std::string> ids;
  for (const auto& dp : d->plans) ids.insert(dp.plan.plan_id);
  EXPECT_TRUE(ids.count("mid") == 1) << "completeness probe missed niche";
}

TEST(DiscoveryTest, DiscoveredSetSupportsExactWorstCase) {
  // End-to-end: discovery + LP worst case equals oracle vertex sweep.
  Rng rng(67);
  for (int t = 0; t < 10; ++t) {
    const size_t n = 2 + rng.Index(3);
    const auto plans = RandomFrontier(rng, n, 4 + rng.Index(4));
    FakeOracle oracle(plans, true);
    CostVector base(n);
    for (size_t i = 0; i < n; ++i) base[i] = rng.LogUniform(0.1, 10.0);
    const Box box = Box::MultiplicativeBand(base, 30.0);
    const size_t init = OptimalPlanIndex(plans, box.Center());

    const Result<DiscoveryResult> d =
        DiscoverCandidatePlans(oracle, box, rng, {});
    ASSERT_TRUE(d.ok());
    std::vector<PlanUsage> found;
    for (const auto& dp : d->plans) found.push_back(dp.plan);

    const Result<WorstCaseResult> via_discovery =
        WorstCaseOverPlansByLp(plans[init].usage, found, box);
    ASSERT_TRUE(via_discovery.ok());
    const Result<WorstCaseResult> via_sweep =
        WorstCaseByVertexSweep(oracle, plans[init].usage, box);
    ASSERT_TRUE(via_sweep.ok());
    EXPECT_NEAR(via_discovery->gtc, via_sweep->gtc, 1e-5 * via_sweep->gtc);
  }
}

TEST(DiscoveryTest, DimensionMismatchRejected) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 2.0}}};
  FakeOracle oracle(plans, true);
  Rng rng(71);
  const Box box = Box::MultiplicativeBand(CostVector{1.0}, 10.0);
  EXPECT_EQ(DiscoverCandidatePlans(oracle, box, rng, {}).status().code(),
            StatusCode::kInvalidArgument);
}


/// Decorates an oracle with cost quantization: the paper oversampled
/// (m >= 2n) specifically "to compensate for quantization error within the
/// query optimizer" — DB2 reports rounded costs.
class QuantizingOracle : public PlanOracle {
 public:
  QuantizingOracle(PlanOracle& inner, double significant_digits)
      : inner_(inner), digits_(significant_digits) {}

  OracleResult Optimize(const CostVector& c) override {
    OracleResult r = inner_.Optimize(c);
    const double mag = std::pow(10.0, std::floor(std::log10(r.total_cost)) -
                                          digits_ + 1.0);
    r.total_cost = std::round(r.total_cost / mag) * mag;
    r.usage.reset();  // quantized oracles are narrow by nature
    return r;
  }
  size_t dims() const override { return inner_.dims(); }

 private:
  PlanOracle& inner_;
  double digits_;
};

TEST(ExtractionTest, SurvivesCostQuantization) {
  // With the oracle rounding costs to 5 significant digits (a DB2-like
  // narrow interface), the m >= 2n oversampled least-squares fit still
  // recovers the usage vector to well under the paper's 1% bar.
  Rng rng(101);
  const std::vector<PlanUsage> plans = {
      {"a", UsageVector{1.7e6, 3.3e2, 0.0, 9.1e4}},
      {"b", UsageVector{2.0e2, 8.8e5, 4.0e3, 1.0e4}},
  };
  FakeOracle exact(plans, false);
  QuantizingOracle oracle(exact, 5.0);
  const Box box =
      Box::MultiplicativeBand(CostVector{1.0, 1.0, 1.0, 1.0}, 100.0);
  const CostVector seed{0.05, 1.0, 1.0, 1.0};  // plan a's region
  ASSERT_EQ(oracle.Optimize(seed).plan_id, "a");

  ExtractionOptions options;
  options.oversample_factor = 3;  // extra slack against the rounding
  const Result<ExtractedUsage> ex =
      ExtractUsageVector(oracle, "a", seed, box, rng, options);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_LT(ex->validation_error, 0.01);  // the paper's < 1% claim
  for (size_t i = 0; i < plans[0].usage.size(); ++i) {
    EXPECT_NEAR(ex->usage[i], plans[0].usage[i],
                0.01 * (plans[0].usage[i] + 1e4))
        << "dim " << i;
  }
}

}  // namespace
}  // namespace costsense::core
