// Tests for relative total cost (paper Section 5.1-5.3) and the two
// severity bounds (Theorems 1 and 2, Sections 5.4-5.5).
#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/feasible_region.h"
#include "core/relative_cost.h"

namespace costsense::core {
namespace {

TEST(RelativeCostTest, RatioOfDotProducts) {
  const UsageVector a{2.0, 0.0};
  const UsageVector b{1.0, 1.0};
  const CostVector c{3.0, 1.0};
  EXPECT_DOUBLE_EQ(RelativeTotalCost(a, b, c), 6.0 / 4.0);
}

TEST(RelativeCostTest, ScaleInvariance) {
  // Paper Observation 1: T_rel(a, b, kC) == T_rel(a, b, C).
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const size_t n = 1 + rng.Index(6);
    UsageVector a(n), b(n);
    CostVector c(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.LogUniform(0.01, 1e5);
      b[i] = rng.LogUniform(0.01, 1e5);
      c[i] = rng.LogUniform(1e-6, 1e3);
    }
    const double k = rng.LogUniform(1e-9, 1e9);
    EXPECT_NEAR(RelativeTotalCost(a, b, c), RelativeTotalCost(a, b, c * k),
                1e-9 * RelativeTotalCost(a, b, c));
  }
}

TEST(RelativeCostTest, GlobalRelativeCostAtLeastOneForMembers) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{2.0, 1.0}},
                                        {"b", UsageVector{1.0, 2.0}}};
  const CostVector c{1.0, 3.0};
  EXPECT_DOUBLE_EQ(GlobalRelativeCost(plans[0].usage, plans, c), 1.0);
  EXPECT_DOUBLE_EQ(GlobalRelativeCost(plans[1].usage, plans, c), 7.0 / 5.0);
}

TEST(RelativeCostTest, OptimalPlanIndexPicksCheapest) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{2.0, 1.0}},
                                        {"b", UsageVector{1.0, 2.0}}};
  EXPECT_EQ(OptimalPlanIndex(plans, CostVector{1.0, 3.0}), 0u);
  EXPECT_EQ(OptimalPlanIndex(plans, CostVector{3.0, 1.0}), 1u);
}

TEST(Theorem1Test, UpperBoundFormula) {
  EXPECT_DOUBLE_EQ(Theorem1UpperBound(1.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(Theorem1UpperBound(2.5, 3.0), 22.5);
}

TEST(Theorem1Test, ExampleOneShowsTightness) {
  // Paper Example 1: A=(1,0), B=(0,1). Under C1=(1,1) T_rel=1; under
  // C2=(d, 1/d) T_rel=d^2, meeting the bound exactly.
  const UsageVector a{1.0, 0.0};
  const UsageVector b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(RelativeTotalCost(a, b, CostVector{1.0, 1.0}), 1.0);
  const double d = 37.0;
  EXPECT_DOUBLE_EQ(RelativeTotalCost(a, b, CostVector{d, 1.0 / d}), d * d);
  EXPECT_DOUBLE_EQ(Theorem1UpperBound(1.0, d), d * d);
}

TEST(Theorem1Test, PropertyHoldsOnRandomPlans) {
  // For any two plans with T_rel = gamma at baseline C, T_rel at any
  // point of the delta-band is within [gamma/d^2, gamma*d^2].
  Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    const size_t n = 1 + rng.Index(6);
    UsageVector a(n), b(n);
    CostVector c0(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform() < 0.3 ? 0.0 : rng.LogUniform(0.1, 1e4);
      b[i] = rng.Uniform() < 0.3 ? 0.0 : rng.LogUniform(0.1, 1e4);
      c0[i] = rng.LogUniform(1e-3, 1e2);
    }
    if (b.Sum() == 0.0) b[0] = 1.0;
    if (a.Sum() == 0.0) a[0] = 1.0;
    const double gamma = RelativeTotalCost(a, b, c0);
    const double delta = rng.LogUniform(1.0, 100.0);
    const Box box = Box::MultiplicativeBand(c0, delta);
    for (int k = 0; k < 20; ++k) {
      const CostVector c = box.SampleLogUniform(rng);
      const double rel = RelativeTotalCost(a, b, c);
      EXPECT_LE(rel, gamma * delta * delta * (1 + 1e-9));
      EXPECT_GE(rel, gamma / (delta * delta) * (1 - 1e-9));
    }
  }
}

TEST(Theorem2Test, DetectsComplementaryPair) {
  const RatioBound rb =
      ComputeRatioBound(UsageVector{1.0, 0.0}, UsageVector{1.0, 1.0});
  EXPECT_TRUE(rb.complementary);
}

TEST(Theorem2Test, RatiosForNonComplementaryPair) {
  const RatioBound rb =
      ComputeRatioBound(UsageVector{4.0, 1.0}, UsageVector{2.0, 2.0});
  EXPECT_FALSE(rb.complementary);
  EXPECT_DOUBLE_EQ(rb.r_min, 0.5);
  EXPECT_DOUBLE_EQ(rb.r_max, 2.0);
}

TEST(Theorem2Test, SharedZeroDimensionSkipped) {
  const RatioBound rb =
      ComputeRatioBound(UsageVector{4.0, 0.0}, UsageVector{2.0, 0.0});
  EXPECT_FALSE(rb.complementary);
  EXPECT_DOUBLE_EQ(rb.r_max, 2.0);
}

TEST(Theorem2Test, BothZeroVectorsNeutral) {
  const RatioBound rb =
      ComputeRatioBound(UsageVector{0.0, 0.0}, UsageVector{0.0, 0.0});
  EXPECT_FALSE(rb.complementary);
  EXPECT_DOUBLE_EQ(rb.r_min, 1.0);
  EXPECT_DOUBLE_EQ(rb.r_max, 1.0);
}

TEST(Theorem2Test, PropertyRelativeCostWithinRatioBounds) {
  // Theorem 2: for non-complementary pairs, T_rel under ANY positive cost
  // vector lies in [r_min, r_max].
  Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    const size_t n = 1 + rng.Index(8);
    UsageVector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.LogUniform(0.01, 1e6);
      b[i] = rng.LogUniform(0.01, 1e6);
    }
    const RatioBound rb = ComputeRatioBound(a, b);
    ASSERT_FALSE(rb.complementary);
    for (int k = 0; k < 20; ++k) {
      CostVector c(n);
      for (size_t i = 0; i < n; ++i) c[i] = rng.LogUniform(1e-9, 1e9);
      const double rel = RelativeTotalCost(a, b, c);
      EXPECT_LE(rel, rb.r_max * (1 + 1e-9));
      EXPECT_GE(rel, rb.r_min * (1 - 1e-9));
    }
  }
}

TEST(ConstantBoundTest, AllNonComplementaryGivesFiniteBound) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{4.0, 1.0}},
                                        {"b", UsageVector{2.0, 2.0}},
                                        {"c", UsageVector{1.0, 4.0}}};
  const double bound = WorstCaseConstantBound(plans);
  EXPECT_DOUBLE_EQ(bound, 4.0);  // a vs c: ratio 4 on dim 0
}

TEST(ConstantBoundTest, ComplementaryPairGivesInfinity) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 0.0}},
                                        {"b", UsageVector{0.0, 1.0}}};
  EXPECT_TRUE(std::isinf(WorstCaseConstantBound(plans)));
}

TEST(ConstantBoundTest, SinglePlanIsOne) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 2.0}}};
  EXPECT_DOUBLE_EQ(WorstCaseConstantBound(plans), 1.0);
}

}  // namespace
}  // namespace costsense::core
