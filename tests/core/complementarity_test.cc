// Tests for the complementary-plan taxonomy of paper Section 5.6.
#include "core/complementarity.h"

#include <gtest/gtest.h>

namespace costsense::core {
namespace {

// Dimension layout used throughout: [t0.table, t0.index, t1.table,
// t1.index, temp, cpu].
std::vector<DimInfo> Dims() {
  return {
      {DimClass::kTable, 0, "t0.table"}, {DimClass::kIndex, 0, "t0.index"},
      {DimClass::kTable, 1, "t1.table"}, {DimClass::kIndex, 1, "t1.index"},
      {DimClass::kTemp, -1, "temp"},     {DimClass::kCpu, -1, "cpu"},
  };
}

TEST(ComplementarityTest, NonComplementaryPair) {
  const UsageVector a{10.0, 1.0, 5.0, 1.0, 2.0, 1.0};
  const UsageVector b{20.0, 2.0, 5.0, 1.0, 4.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_FALSE(pa.complementary);
  EXPECT_DOUBLE_EQ(pa.max_element_ratio, 2.0);
}

TEST(ComplementarityTest, TempComplementaryDetected) {
  // Plan a spills to temp (external sort), plan b pipelines.
  const UsageVector a{10.0, 1.0, 5.0, 1.0, 50.0, 1.0};
  const UsageVector b{10.0, 1.0, 5.0, 1.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.complementary);
  EXPECT_TRUE(pa.temp_complementary);
  EXPECT_FALSE(pa.access_path_complementary);
  EXPECT_FALSE(pa.table_complementary);
}

TEST(ComplementarityTest, AccessPathComplementaryViaIndexDim) {
  // Plan a probes t0's index, plan b scans the table only.
  const UsageVector a{2.0, 8.0, 5.0, 1.0, 0.0, 1.0};
  const UsageVector b{40.0, 0.0, 5.0, 1.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.complementary);
  EXPECT_TRUE(pa.access_path_complementary);
  EXPECT_FALSE(pa.table_complementary);
}

TEST(ComplementarityTest, IndexOnlyVersusTableScanIsAccessPath) {
  // Plan a answers from the index alone (zero table pages); plan b scans.
  // The table-dim mismatch is explained by the index-dim difference, so
  // this is access-path, not table, complementary.
  const UsageVector a{0.0, 8.0, 5.0, 1.0, 0.0, 1.0};
  const UsageVector b{40.0, 0.0, 5.0, 1.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.complementary);
  EXPECT_TRUE(pa.access_path_complementary);
  EXPECT_FALSE(pa.table_complementary);
}

TEST(ComplementarityTest, TableComplementaryWhenTableUntouched) {
  // Plan b reads nothing at all from t1 (neither data nor index pages):
  // the plans access different numbers of tuples from t1 — genuinely
  // table complementary (paper Section 5.6).
  const UsageVector a{10.0, 1.0, 5.0, 1.0, 0.0, 1.0};
  const UsageVector b{10.0, 1.0, 0.0, 0.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.complementary);
  EXPECT_TRUE(pa.table_complementary);
  EXPECT_FALSE(pa.access_path_complementary);
}

TEST(ComplementarityTest, IndexOnlyVersusFetchIsAccessPath) {
  // Identical index traffic, but plan b answers from the index alone
  // while plan a also fetches data pages: an access-path difference, not
  // different tuple counts.
  const UsageVector a{20.0, 8.0, 5.0, 1.0, 0.0, 1.0};
  const UsageVector b{0.0, 8.0, 5.0, 1.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.complementary);
  EXPECT_TRUE(pa.access_path_complementary);
  EXPECT_FALSE(pa.table_complementary);
}

TEST(ComplementarityTest, TinyDimensionsDoNotFalselyComplement) {
  // A 150-vs-50 difference on a tiny table next to a 1e9 scan dimension
  // must not register as complementary (per-dimension zero test).
  const UsageVector a{1e9, 1.0, 150.0, 1.0, 0.0, 1e11};
  const UsageVector b{1e9, 1.0, 50.0, 1.0, 0.0, 1e11};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_FALSE(pa.complementary);
  EXPECT_DOUBLE_EQ(pa.max_element_ratio, 3.0);
}

TEST(ComplementarityTest, MultipleKindsCoexist) {
  const UsageVector a{2.0, 8.0, 5.0, 1.0, 50.0, 1.0};
  const UsageVector b{40.0, 0.0, 5.0, 1.0, 0.0, 1.0};
  const PairAnalysis pa = AnalyzePair(a, b, Dims());
  EXPECT_TRUE(pa.access_path_complementary);
  EXPECT_TRUE(pa.temp_complementary);
}

TEST(ComplementarityTest, ReportAggregates) {
  const std::vector<PlanUsage> plans = {
      {"scan", UsageVector{40.0, 0.0, 5.0, 1.0, 0.0, 1.0}},
      {"probe", UsageVector{2.0, 8.0, 5.0, 1.0, 0.0, 1.0}},
      {"sort", UsageVector{40.0, 0.0, 5.0, 1.0, 50.0, 1.0}},
  };
  const ComplementarityReport report = AnalyzePlanSet(plans, Dims());
  EXPECT_EQ(report.num_pairs, 3u);
  EXPECT_EQ(report.num_complementary, 3u);
  EXPECT_GE(report.num_access_path, 2u);
  EXPECT_GE(report.num_temp, 2u);
  EXPECT_EQ(report.num_table, 0u);
}

TEST(ComplementarityTest, NearComplementaryCounted) {
  const std::vector<PlanUsage> plans = {
      {"a", UsageVector{1000.0, 1.0, 5.0, 1.0, 1.0, 1.0}},
      {"b", UsageVector{1.0, 1.0, 5.0, 1.0, 1.0, 1.0}},
  };
  const ComplementarityReport report = AnalyzePlanSet(plans, Dims());
  EXPECT_EQ(report.num_complementary, 0u);
  EXPECT_EQ(report.num_near_complementary, 1u);
  EXPECT_DOUBLE_EQ(report.pairs[0].max_element_ratio, 1000.0);
}

TEST(ComplementarityTest, PaperExampleTwoRatio) {
  // Paper Example 2: plan A scans T1 (1e6 tuples), plan B probes T1's
  // index fetching 100 tuples via 1e4 probes: ratio 1e4 on T1's resource.
  const std::vector<DimInfo> dims = {
      {DimClass::kTable, 0, "t1"},
      {DimClass::kTable, 1, "rest"},
      {DimClass::kCpu, -1, "cpu"},
  };
  const UsageVector plan_a{1e6, 2e4, 1.0};
  const UsageVector plan_b{100.0, 1.1e6, 1.0};
  const PairAnalysis pa = AnalyzePair(plan_a, plan_b, dims);
  EXPECT_FALSE(pa.complementary);
  EXPECT_DOUBLE_EQ(pa.max_element_ratio, 1e4);
}

}  // namespace
}  // namespace costsense::core
