#ifndef COSTSENSE_TESTS_CORE_FAKE_ORACLE_H_
#define COSTSENSE_TESTS_CORE_FAKE_ORACLE_H_

#include <atomic>
#include <vector>

#include "core/oracle.h"

namespace costsense::core {

/// A synthetic optimizer over an explicit plan set: returns the cheapest
/// plan by dot product, optionally revealing the usage vector (white box)
/// or hiding it (narrow interface, like a commercial optimizer).
class FakeOracle : public PlanOracle {
 public:
  FakeOracle(std::vector<PlanUsage> plans, bool white_box)
      : plans_(std::move(plans)), white_box_(white_box) {}

  OracleResult Optimize(const CostVector& c) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    size_t best = 0;
    double best_cost = TotalCost(plans_[0].usage, c);
    for (size_t i = 1; i < plans_.size(); ++i) {
      const double cost = TotalCost(plans_[i].usage, c);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    OracleResult r;
    r.plan_id = plans_[best].plan_id;
    r.total_cost = best_cost;
    if (white_box_) r.usage = plans_[best].usage;
    return r;
  }

  size_t dims() const override { return plans_[0].usage.size(); }
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::vector<PlanUsage> plans_;
  bool white_box_;
  std::atomic<size_t> calls_{0};  // atomic: probes may run on a pool
};

}  // namespace costsense::core

#endif  // COSTSENSE_TESTS_CORE_FAKE_ORACLE_H_
