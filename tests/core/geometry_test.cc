// Tests for the geometric constructs of the framework: equicost lines,
// switchover planes, half-spaces (paper Section 4.1-4.3), dominance
// (Section 4.4) and the feasible cost region (Section 3.3).
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "core/dominance.h"
#include "core/feasible_region.h"
#include "core/switchover.h"

namespace costsense::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(SwitchoverTest, NormalIsDifferenceOfUsageVectors) {
  const SwitchoverPlane plane(UsageVector{3.0, 1.0}, UsageVector{1.0, 2.0});
  EXPECT_EQ(plane.normal(), (linalg::Vector{2.0, -1.0}));
  EXPECT_FALSE(plane.degenerate());
}

TEST(SwitchoverTest, EqualCostVectorOnPlane) {
  // A=(2,1), B=(1,2): costs tie whenever c1 == c2.
  const SwitchoverPlane plane(UsageVector{2.0, 1.0}, UsageVector{1.0, 2.0});
  EXPECT_EQ(plane.Classify(CostVector{5.0, 5.0}), Side::kOnPlane);
  EXPECT_EQ(plane.Classify(CostVector{6.0, 1.0}), Side::kADominated);
  EXPECT_EQ(plane.Classify(CostVector{1.0, 6.0}), Side::kBDominated);
}

TEST(SwitchoverTest, DegenerateForIdenticalPlans) {
  const UsageVector u{1.0, 2.0};
  const SwitchoverPlane plane(u, u);
  EXPECT_TRUE(plane.degenerate());
  EXPECT_EQ(plane.Classify(CostVector{3.0, 4.0}), Side::kOnPlane);
}

TEST(SwitchoverTest, ClassificationScaleInvariant) {
  // Observation 1: scaling C cannot move it across the plane.
  Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    UsageVector a(3), b(3);
    CostVector c(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = rng.LogUniform(0.1, 1e4);
      b[i] = rng.LogUniform(0.1, 1e4);
      c[i] = rng.LogUniform(1e-3, 1e3);
    }
    const SwitchoverPlane plane(a, b);
    const Side s1 = plane.Classify(c);
    const Side s2 = plane.Classify(c * 1e6);
    const Side s3 = plane.Classify(c * 1e-6);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s3);
  }
}

TEST(EquicostTest, DetectsEqualCosts) {
  const CostVector c{1.0, 1.0};
  EXPECT_TRUE(
      OnSameEquicostLine(UsageVector{2.0, 1.0}, UsageVector{1.0, 2.0}, c));
  EXPECT_FALSE(
      OnSameEquicostLine(UsageVector{2.0, 2.0}, UsageVector{1.0, 2.0}, c));
}

TEST(DominanceTest, ComponentwiseSmallerDominates) {
  EXPECT_TRUE(Dominates(UsageVector{1.0, 1.0}, UsageVector{2.0, 1.0}));
  EXPECT_TRUE(Dominates(UsageVector{1.0, 1.0}, UsageVector{2.0, 3.0}));
  EXPECT_FALSE(Dominates(UsageVector{2.0, 1.0}, UsageVector{1.0, 2.0}));
  EXPECT_FALSE(Dominates(UsageVector{1.0, 1.0}, UsageVector{1.0, 1.0}));
}

TEST(DominanceTest, FilterRemovesDominatedAndDuplicates) {
  // Mirrors paper Figure 3: A1 and A5 are dominated.
  std::vector<PlanUsage> plans = {
      {"a1", UsageVector{5.0, 5.0}},  // dominated by a3
      {"a2", UsageVector{1.0, 6.0}},
      {"a3", UsageVector{3.0, 3.0}},
      {"a4", UsageVector{6.0, 1.0}},
      {"a5", UsageVector{7.0, 2.0}},  // dominated by a4
      {"a2dup", UsageVector{1.0, 6.0}},
  };
  const std::vector<PlanUsage> kept = FilterDominated(std::move(plans));
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].plan_id, "a2");
  EXPECT_EQ(kept[1].plan_id, "a3");
  EXPECT_EQ(kept[2].plan_id, "a4");
}

TEST(DominanceTest, DominatedPlanNeverOptimal) {
  // Property: if a dominates b, then under every positive cost vector the
  // cost of a is <= the cost of b.
  Rng rng(23);
  for (int t = 0; t < 100; ++t) {
    const size_t n = 1 + rng.Index(5);
    UsageVector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.LogUniform(0.1, 100.0);
      b[i] = a[i] + rng.Uniform(0.0, 10.0);
    }
    if (!Dominates(a, b)) continue;
    for (int k = 0; k < 10; ++k) {
      CostVector c(n);
      for (size_t i = 0; i < n; ++i) c[i] = rng.LogUniform(1e-3, 1e3);
      EXPECT_LE(TotalCost(a, c), TotalCost(b, c) + 1e-9);
    }
  }
}

TEST(BoxTest, MultiplicativeBandBounds) {
  const Box box = Box::MultiplicativeBand(CostVector{24.1, 9.0, 1e-6}, 10.0);
  EXPECT_NEAR(box.lower()[0], 2.41, 1e-12);
  EXPECT_NEAR(box.upper()[0], 241.0, 1e-12);
  EXPECT_NEAR(box.lower()[2], 1e-7, 1e-18);
  EXPECT_NEAR(box.upper()[2], 1e-5, 1e-16);
}

TEST(BoxTest, CenterOfBandIsBaseline) {
  const CostVector baseline{24.1, 9.0, 1e-6};
  const Box box = Box::MultiplicativeBand(baseline, 100.0);
  const CostVector center = box.Center();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(center[i], baseline[i], 1e-9 * baseline[i]);
  }
}

TEST(BoxTest, VertexEnumeration) {
  const Box box(CostVector{1.0, 2.0}, CostVector{3.0, 4.0});
  EXPECT_EQ(box.VertexCount(), 4u);
  EXPECT_EQ(box.Vertex(0b00), (CostVector{1.0, 2.0}));
  EXPECT_EQ(box.Vertex(0b01), (CostVector{3.0, 2.0}));
  EXPECT_EQ(box.Vertex(0b10), (CostVector{1.0, 4.0}));
  EXPECT_EQ(box.Vertex(0b11), (CostVector{3.0, 4.0}));
}

TEST(BoxTest, ContainsItsVerticesAndCenter) {
  const Box box = Box::MultiplicativeBand(CostVector{2.0, 5.0}, 7.0);
  for (uint64_t m = 0; m < box.VertexCount(); ++m) {
    EXPECT_TRUE(box.Contains(box.Vertex(m)));
  }
  EXPECT_TRUE(box.Contains(box.Center()));
  EXPECT_FALSE(box.Contains(CostVector{100.0, 5.0}));
}

TEST(BoxTest, SamplesStayInside) {
  Rng rng(31);
  const Box box = Box::MultiplicativeBand(CostVector{24.1, 9.0, 1e-6}, 1000.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(box.Contains(box.SampleLogUniform(rng)));
  }
}

TEST(BoxTest, DeltaOneIsAPoint) {
  const Box box = Box::MultiplicativeBand(CostVector{3.0}, 1.0);
  EXPECT_EQ(box.lower()[0], box.upper()[0]);
  Rng rng(1);
  EXPECT_EQ(box.SampleLogUniform(rng)[0], 3.0);
}

TEST(BoxDeathTest, RejectsNonPositiveLower) {
  EXPECT_DEATH(Box(CostVector{0.0}, CostVector{1.0}), "positive");
}

TEST(BoxDeathTest, RejectsDeltaBelowOne) {
  EXPECT_DEATH(Box::MultiplicativeBand(CostVector{1.0}, 0.5), "delta");
}

TEST(BoxDeathTest, RejectsNonFiniteBounds) {
  EXPECT_DEATH(Box(CostVector{1.0}, CostVector{kInf}), "finite");
  EXPECT_DEATH(Box(CostVector{kNan}, CostVector{1.0}), "finite");
}

TEST(BoxDeathTest, RejectsLowerAboveUpper) {
  EXPECT_DEATH(Box(CostVector{2.0}, CostVector{1.0}), "lower bound above");
}

TEST(BoxValidatedTest, AcceptsGoodBoundsAndMatchesConstructor) {
  const Result<Box> box = Box::Validated(CostVector{1.0, 2.0},
                                         CostVector{3.0, 4.0});
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->lower(), (CostVector{1.0, 2.0}));
  EXPECT_EQ(box->upper(), (CostVector{3.0, 4.0}));
}

TEST(BoxValidatedTest, RejectsBadBoundsWithTypedStatus) {
  // Each violation is a typed InvalidArgument, not a process abort: these
  // bounds may arrive from checkpoints or config rather than local math.
  EXPECT_EQ(Box::Validated(CostVector{2.0}, CostVector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Box::Validated(CostVector{0.0}, CostVector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Box::Validated(CostVector{1.0}, CostVector{kInf}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Box::Validated(CostVector{kNan}, CostVector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Box::Validated(CostVector{1.0}, CostVector{1.0, 2.0}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(BoxValidatedTest, MultiplicativeBandValidatesDeltaAndBaseline) {
  ASSERT_TRUE(Box::ValidatedMultiplicativeBand(CostVector{1.0, 2.0}, 10.0)
                  .ok());
  EXPECT_EQ(Box::ValidatedMultiplicativeBand(CostVector{1.0}, 0.5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Box::ValidatedMultiplicativeBand(CostVector{1.0}, kNan)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Box::ValidatedMultiplicativeBand(CostVector{kNan}, 10.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace costsense::core
