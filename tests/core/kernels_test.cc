// Tests for the batched plan-cost kernel layer: PlanMatrix layout, the
// Gray-code vertex walk, bit-exact equivalence between the scalar and
// incremental sweep kernels (serial and pooled), and the sort-by-sum
// dominance prescreen. Equivalence is asserted with EXPECT_EQ on doubles
// on purpose: the kernels promise byte-identical results, not merely
// close ones.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "core/plan_matrix.h"
#include "core/worst_case.h"
#include "engine/config.h"
#include "linalg/kernels.h"
#include "linalg/simd_kernels.h"
#include "runtime/thread_pool.h"
#include "tests/core/fake_oracle.h"

namespace costsense::core {
namespace {

/// ctest registers this binary twice, with COSTSENSE_KERNEL=scalar and
/// =incremental. Engine::Create normally installs the env choice as the
/// process default; tests have no engine, so this global environment
/// performs the same installation before any test runs — the kernel-less
/// default overloads below then exercise both kernels across the two
/// registrations.
class KernelConfigEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const Result<engine::EngineConfig> config =
        engine::EngineConfig::FromEnv();
    ASSERT_TRUE(config.ok()) << config.status().ToString();
    SetDefaultSweepKernel(config->kernel);
  }
};

const ::testing::Environment* const kKernelEnv =
    ::testing::AddGlobalTestEnvironment(new KernelConfigEnvironment);

std::vector<PlanUsage> RandomPlans(Rng& rng, size_t dims, size_t count) {
  std::vector<PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    UsageVector u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1.0, 1e4);
    }
    if (u.Sum() == 0.0) u[0] = 1.0;
    plans.push_back({"p" + std::to_string(p), std::move(u)});
  }
  return plans;
}

Box RandomBox(Rng& rng, size_t dims) {
  CostVector base(dims);
  for (size_t i = 0; i < dims; ++i) base[i] = rng.LogUniform(0.01, 10.0);
  return Box::MultiplicativeBand(base, rng.LogUniform(1.5, 100.0));
}

/// Reference implementation: the pre-kernel serial sweep over a known plan
/// set, in ascending mask order with per-vertex dot products, plus the
/// degenerate-vertex counter. Both kernels must reproduce this byte for
/// byte.
WorstCaseResult NaivePlansSweep(const UsageVector& initial,
                                const std::vector<PlanUsage>& plans,
                                const Box& box) {
  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (uint64_t mask = 0; mask < box.VertexCount(); ++mask) {
    const CostVector v = box.Vertex(mask);
    size_t ci = 0;
    double cheapest = TotalCost(plans[0].usage, v);
    for (size_t i = 1; i < plans.size(); ++i) {
      const double cost = TotalCost(plans[i].usage, v);
      if (cost < cheapest) {
        cheapest = cost;
        ci = i;
      }
    }
    if (cheapest <= 0.0) {
      ++out.degenerate_vertices;
      continue;
    }
    const double gtc = TotalCost(initial, v) / cheapest;
    if (gtc > out.gtc) {
      out.gtc = gtc;
      out.worst_costs = v;
      out.worst_rival = plans[ci].plan_id;
    }
  }
  return out;
}

/// Reference oracle sweep, same shape as above but asking the oracle.
WorstCaseResult NaiveOracleSweep(PlanOracle& oracle,
                                 const UsageVector& initial, const Box& box) {
  WorstCaseResult out;
  out.worst_costs = box.Center();
  for (uint64_t mask = 0; mask < box.VertexCount(); ++mask) {
    const CostVector v = box.Vertex(mask);
    const OracleResult r = oracle.Optimize(v);
    if (r.total_cost <= 0.0) {
      ++out.degenerate_vertices;
      continue;
    }
    const double gtc = TotalCost(initial, v) / r.total_cost;
    if (gtc > out.gtc) {
      out.gtc = gtc;
      out.worst_costs = v;
      out.worst_rival = r.plan_id;
    }
  }
  return out;
}

void ExpectSameResult(const WorstCaseResult& want, const WorstCaseResult& got) {
  EXPECT_EQ(want.gtc, got.gtc);
  EXPECT_EQ(want.worst_costs, got.worst_costs);
  EXPECT_EQ(want.worst_rival, got.worst_rival);
  EXPECT_EQ(want.degenerate_vertices, got.degenerate_vertices);
}

TEST(GrayCodeTest, VisitsEveryMaskOnceFlippingOneBitPerStep) {
  constexpr size_t kDims = 10;
  std::set<uint64_t> seen;
  for (uint64_t rank = 0; rank < (uint64_t{1} << kDims); ++rank) {
    const uint64_t g = GrayCode(rank);
    EXPECT_TRUE(seen.insert(g).second) << "mask revisited at rank " << rank;
    if (rank > 0) {
      const uint64_t diff = g ^ GrayCode(rank - 1);
      EXPECT_EQ(std::popcount(diff), 1);
      EXPECT_EQ(diff, uint64_t{1} << GrayFlipBit(rank));
    }
  }
  EXPECT_EQ(seen.size(), uint64_t{1} << kDims);
}

TEST(GrayCodeTest, VertexIntoMatchesVertexAndFlipDelta) {
  Rng rng(7);
  const Box box = RandomBox(rng, 6);
  CostVector scratch(box.dims());
  for (uint64_t mask = 0; mask < box.VertexCount(); ++mask) {
    box.VertexInto(mask, scratch);
    EXPECT_EQ(scratch, box.Vertex(mask));
  }
  for (size_t i = 0; i < box.dims(); ++i) {
    EXPECT_EQ(box.FlipDelta(i, true), box.upper()[i] - box.lower()[i]);
    EXPECT_EQ(box.FlipDelta(i, false), box.lower()[i] - box.upper()[i]);
  }
}

TEST(PlanMatrixTest, LayoutSumsNormsAndBatchedCosts) {
  Rng rng(11);
  const auto plans = RandomPlans(rng, 5, 9);
  const PlanMatrix m(plans);
  ASSERT_EQ(m.rows(), plans.size());
  ASSERT_EQ(m.dims(), size_t{5});
  for (size_t p = 0; p < m.rows(); ++p) {
    EXPECT_EQ(m.plan_id(p), plans[p].plan_id);
    double sum = 0.0;
    for (size_t i = 0; i < m.dims(); ++i) {
      EXPECT_EQ(m.at(p, i), plans[p].usage[i]);
      EXPECT_EQ(m.row(p)[i], plans[p].usage[i]);
      EXPECT_EQ(m.col(i)[p], plans[p].usage[i]);
      sum += plans[p].usage[i];
    }
    EXPECT_EQ(m.row_sum(p), sum);
    EXPECT_DOUBLE_EQ(m.row_norm(p) * m.row_norm(p),
                     linalg::Dot(plans[p].usage, plans[p].usage));
  }
  // Batched costs must be bit-identical to per-plan TotalCost.
  const Box box = RandomBox(rng, 5);
  CostVector c = box.Center();
  std::vector<double> costs;
  m.BatchTotalCosts(c, costs);
  ASSERT_EQ(costs.size(), plans.size());
  for (size_t p = 0; p < plans.size(); ++p) {
    EXPECT_EQ(costs[p], TotalCost(plans[p].usage, c));
  }
}

TEST(PlanMatrixTest, EmptyPlanSet) {
  const PlanMatrix m({});
  EXPECT_EQ(m.rows(), size_t{0});
  std::vector<double> costs{1.0, 2.0};
  m.BatchTotalCosts(CostVector{1.0}, costs);
  EXPECT_TRUE(costs.empty());

  Rng rng(3);
  const Box box = RandomBox(rng, 3);
  const WorstCaseResult r = WorstCaseOverPlanMatrix(
      UsageVector{1.0, 1.0, 1.0}, m, box, SweepKernel::kIncremental);
  EXPECT_EQ(r.gtc, 1.0);
  EXPECT_EQ(r.degenerate_vertices, size_t{0});
}

TEST(SweepKernelTest, DefaultKernelFollowsEngineConfig) {
  // The global test environment above installed the typed config's
  // kernel; the process default must reflect it.
  const Result<engine::EngineConfig> config = engine::EngineConfig::FromEnv();
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(DefaultSweepKernel(), config->kernel);
}

TEST(SweepKernelTest, PlanSweepKernelsMatchNaiveSerialAndPooled) {
  Rng rng(123);
  runtime::ThreadPool pool(3);
  for (int t = 0; t < 40; ++t) {
    const size_t dims = 2 + rng.Index(9);  // up to 10 dims = 1024 vertices
    auto plans = RandomPlans(rng, dims, 1 + rng.Index(12));
    // Occasionally add an all-zero plan: its cost is exactly 0 at every
    // vertex, so the whole sweep is degenerate and must be counted as such
    // by every kernel.
    if (t % 7 == 0) {
      plans.push_back({"zero", UsageVector(dims)});
    }
    const Box box = RandomBox(rng, dims);
    const UsageVector& initial = plans[rng.Index(plans.size())].usage;

    const WorstCaseResult want = NaivePlansSweep(initial, plans, box);
    if (t % 7 == 0) {
      EXPECT_EQ(want.degenerate_vertices, box.VertexCount());
    }
    for (SweepKernel kernel : {SweepKernel::kScalar, SweepKernel::kIncremental,
                               SweepKernel::kSimd}) {
      ExpectSameResult(
          want, WorstCaseOverPlansByVertices(initial, plans, box, kernel));
      ExpectSameResult(want, WorstCaseOverPlansByVertices(initial, plans, box,
                                                          kernel, &pool));
    }
    // The config-selected default overload must agree too (it is one of
    // the three kernels, all already shown equal to the reference).
    ExpectSameResult(want,
                     WorstCaseOverPlansByVertices(initial, plans, box));
  }
}

TEST(SweepKernelTest, PlanSweepKernelsMatchWithNegativeUsages) {
  // Negative usage entries break the cost monotonicity the simd kernel's
  // segment certificates rely on; the kernel must detect them and fall
  // back to per-flip screening, still byte-identical to the reference.
  Rng rng(456);
  runtime::ThreadPool pool(3);
  for (int t = 0; t < 10; ++t) {
    const size_t dims = 4 + rng.Index(6);
    auto plans = RandomPlans(rng, dims, 2 + rng.Index(10));
    for (auto& plan : plans) {
      if (rng.Uniform() < 0.5) {
        plan.usage[rng.Index(dims)] *= -1.0;
      }
    }
    const Box box = RandomBox(rng, dims);
    const UsageVector& initial = plans[0].usage;
    const WorstCaseResult want = NaivePlansSweep(initial, plans, box);
    for (SweepKernel kernel : {SweepKernel::kScalar, SweepKernel::kIncremental,
                               SweepKernel::kSimd}) {
      ExpectSameResult(
          want, WorstCaseOverPlansByVertices(initial, plans, box, kernel));
      ExpectSameResult(want, WorstCaseOverPlansByVertices(initial, plans, box,
                                                          kernel, &pool));
    }
  }
}

TEST(SweepKernelTest, SimdKernelMatchesAtCertificateScale) {
  // Big enough (64 aligned segments, a real plan set) that the simd
  // kernel's segment certificates actually fire; the result must still be
  // byte-identical to the scalar reference, serial and pooled.
  Rng rng(0xcafe);
  runtime::ThreadPool pool(3);
  const size_t dims = 12;
  const auto plans = RandomPlans(rng, dims, 64);
  const Box box = RandomBox(rng, dims);
  const UsageVector& initial = plans[0].usage;
  const WorstCaseResult want =
      WorstCaseOverPlansByVertices(initial, plans, box, SweepKernel::kScalar);
  ExpectSameResult(want, WorstCaseOverPlansByVertices(initial, plans, box,
                                                      SweepKernel::kSimd));
  ExpectSameResult(want, WorstCaseOverPlansByVertices(
                             initial, plans, box, SweepKernel::kSimd, &pool));
}

TEST(SweepKernelTest, SimdRequestResolvesToARealKernel) {
  EXPECT_EQ(EffectiveSweepKernel(SweepKernel::kScalar), SweepKernel::kScalar);
  EXPECT_EQ(EffectiveSweepKernel(SweepKernel::kIncremental),
            SweepKernel::kIncremental);
  const SweepKernel resolved = EffectiveSweepKernel(SweepKernel::kSimd);
  if (linalg::SimdSweepAvailable()) {
    EXPECT_EQ(resolved, SweepKernel::kSimd);
  } else {
    EXPECT_EQ(resolved, SweepKernel::kIncremental);
  }
}

// ---------------------------------------------------------------------------
// Property tests for the SIMD primitives themselves (linalg/simd_kernels.h):
// every length hits a different tail shape (the AVX2 paths peel 16-wide,
// 4-wide and scalar remainders), buffers are deliberately mis-aligned, and
// NaN / infinity / signed-zero values are injected to pin down the documented
// result contracts against the scalar twins.
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Random value with occasional non-finite and signed-zero spice.
double SpicedValue(Rng& rng) {
  const double roll = rng.Uniform();
  if (roll < 0.04) return kNaN;
  if (roll < 0.08) return rng.Uniform() < 0.5 ? kInf : -kInf;
  if (roll < 0.14) return rng.Uniform() < 0.5 ? 0.0 : -0.0;
  const double mag = rng.LogUniform(1e-3, 1e3);
  return rng.Uniform() < 0.5 ? mag : -mag;
}

TEST(SimdPrimitiveTest, AxpyMinMatchesScalarOnTailsUnalignedAndNonFinite) {
  Rng rng(2024);
  // Lengths cover every remainder class of the 16-wide main loop and the
  // 4-wide cleanup, plus a couple of large sizes.
  for (size_t n = 1; n <= 40; ++n) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
      // Over-allocate and index off the start so the working pointers are
      // not 32-byte aligned; the kernels take unaligned loads by contract.
      std::vector<double> xbuf(n + offset), ybuf(n + offset);
      for (size_t i = 0; i < n; ++i) {
        xbuf[offset + i] = SpicedValue(rng);
        ybuf[offset + i] = SpicedValue(rng);
      }
      const double alpha = SpicedValue(rng);
      std::vector<double> want_y(ybuf), got_y(ybuf);
      const double want_min =
          linalg::AxpyMin(n, alpha, xbuf.data() + offset,
                          want_y.data() + offset);
      const double got_min =
          linalg::AxpyMinSimd(n, alpha, xbuf.data() + offset,
                              got_y.data() + offset);
      // Updated y[] values must be bit-identical (same mul + add per lane).
      EXPECT_EQ(0, std::memcmp(want_y.data(), got_y.data(),
                               want_y.size() * sizeof(double)))
          << "n=" << n << " offset=" << offset;
      // The minimum matches as a value: NaN iff NaN, else equal (a zero
      // minimum may differ in sign, and EXPECT_EQ treats +-0 as equal —
      // exactly the documented freedom).
      if (std::isnan(want_min)) {
        EXPECT_TRUE(std::isnan(got_min)) << "n=" << n << " offset=" << offset;
      } else {
        EXPECT_EQ(want_min, got_min) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(SimdPrimitiveTest, MinValueMatchesScalarOnTailsUnalignedAndNonFinite) {
  Rng rng(2025);
  for (size_t n = 1; n <= 40; ++n) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{2}}) {
      std::vector<double> buf(n + offset);
      for (size_t i = 0; i < n; ++i) buf[offset + i] = SpicedValue(rng);
      const double want = linalg::MinValue(buf.data() + offset, n);
      const double got = linalg::MinValueSimd(buf.data() + offset, n);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << "n=" << n << " offset=" << offset;
      } else {
        EXPECT_EQ(want, got) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(SimdPrimitiveTest, AxpyScreenVerdictEqualsFormulaOnScalarMin) {
  Rng rng(2026);
  for (int t = 0; t < 400; ++t) {
    const size_t n = 1 + rng.Index(48);
    const size_t offset = rng.Index(4);
    std::vector<double> xbuf(n + offset), ybuf(n + offset);
    for (size_t i = 0; i < n; ++i) {
      xbuf[offset + i] = SpicedValue(rng);
      ybuf[offset + i] = SpicedValue(rng);
    }
    const double alpha = SpicedValue(rng);
    // The sweep only ever passes threshold >= 0 (gtc * (1 - guard) with
    // gtc >= 0) and a finite or NaN init_cost; cover zero thresholds too.
    const double threshold =
        rng.Uniform() < 0.2 ? 0.0 : rng.LogUniform(1e-6, 1e6);
    const double init_cost =
        rng.Uniform() < 0.1 ? kNaN : SpicedValue(rng);
    std::vector<double> want_y(ybuf), got_y(ybuf);
    const double want_min = linalg::AxpyMin(n, alpha, xbuf.data() + offset,
                                            want_y.data() + offset);
    const bool want =
        want_min <= 0.0 || init_cost > threshold * want_min;
    const bool got =
        linalg::AxpyScreenSimd(n, alpha, xbuf.data() + offset,
                               got_y.data() + offset, init_cost, threshold);
    EXPECT_EQ(want, got) << "n=" << n << " offset=" << offset
                         << " min=" << want_min << " init=" << init_cost
                         << " thr=" << threshold;
    EXPECT_EQ(0, std::memcmp(want_y.data(), got_y.data(),
                             want_y.size() * sizeof(double)))
        << "n=" << n << " offset=" << offset;
  }
}

TEST(SimdPrimitiveTest, ScreenOnlyKernelsStayWithinReassociationError) {
  // DotRawSimd / MatVecRowMajorSimd are estimates by contract — they only
  // feed screening. Against well-conditioned same-signed inputs they must
  // stay within a small multiple of n * eps relative error of the exact
  // left-to-right kernels.
  Rng rng(2027);
  for (int t = 0; t < 50; ++t) {
    const size_t rows = 1 + rng.Index(20);
    const size_t cols = 1 + rng.Index(24);
    std::vector<double> a(rows * cols), x(cols), want(rows), got(rows);
    for (double& v : a) v = rng.LogUniform(1e-2, 1e2);
    for (double& v : x) v = rng.LogUniform(1e-2, 1e2);
    linalg::MatVecRowMajor(a.data(), rows, cols, x.data(), want.data());
    linalg::MatVecRowMajorSimd(a.data(), rows, cols, x.data(), got.data());
    const double tol = 16.0 * static_cast<double>(cols) *
                       std::numeric_limits<double>::epsilon();
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(got[r] / want[r], 1.0, tol) << "row " << r;
    }
    const double dot_want = linalg::DotRaw(a.data(), x.data(), cols);
    const double dot_got = linalg::DotRawSimd(a.data(), x.data(), cols);
    EXPECT_NEAR(dot_got / dot_want, 1.0, tol);
  }
}

TEST(SweepKernelTest, OracleSweepKernelsMatchNaiveSerialAndPooled) {
  Rng rng(321);
  runtime::ThreadPool pool(3);
  for (int t = 0; t < 20; ++t) {
    const size_t dims = 2 + rng.Index(7);
    auto plans = RandomPlans(rng, dims, 2 + rng.Index(6));
    if (t % 5 == 0) {
      plans.push_back({"zero", UsageVector(dims)});
    }
    const Box box = RandomBox(rng, dims);
    const UsageVector& initial = plans[0].usage;

    FakeOracle ref_oracle(plans, /*white_box=*/false);
    const WorstCaseResult want = NaiveOracleSweep(ref_oracle, initial, box);
    for (SweepKernel kernel : {SweepKernel::kScalar, SweepKernel::kIncremental,
                               SweepKernel::kSimd}) {
      FakeOracle serial_oracle(plans, false);
      const Result<WorstCaseResult> serial =
          WorstCaseByVertexSweep(serial_oracle, initial, box, kernel);
      ASSERT_TRUE(serial.ok());
      ExpectSameResult(want, *serial);
      EXPECT_EQ(serial_oracle.calls(), box.VertexCount());

      FakeOracle pooled_oracle(plans, false);
      const Result<WorstCaseResult> pooled = WorstCaseByVertexSweep(
          pooled_oracle, initial, box, kernel, /*max_dims=*/20, &pool);
      ASSERT_TRUE(pooled.ok());
      ExpectSameResult(want, *pooled);
    }
  }
}

/// Reference implementation of FilterDominated: the pre-prescreen
/// all-pairs scan, copied verbatim from the seed.
std::vector<PlanUsage> NaiveFilterDominated(std::vector<PlanUsage> plans,
                                            double tol) {
  std::vector<bool> keep(plans.size(), true);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = 0; j < plans.size() && keep[i]; ++j) {
      if (i == j) continue;
      if (Dominates(plans[j].usage, plans[i].usage, tol)) keep[i] = false;
      if (j < i && linalg::ApproxEqual(plans[j].usage, plans[i].usage, tol)) {
        keep[i] = false;
      }
    }
  }
  std::vector<PlanUsage> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (keep[i]) out.push_back(std::move(plans[i]));
  }
  return out;
}

TEST(DominancePrescreenTest, SameSurvivorsAsNaiveScan) {
  Rng rng(99);
  for (int t = 0; t < 30; ++t) {
    const size_t dims = 1 + rng.Index(6);
    auto plans = RandomPlans(rng, dims, 2 + rng.Index(20));
    // Seed eliminations: exact duplicates and dominated copies.
    const size_t base = plans.size();
    const size_t extras = 1 + rng.Index(4);
    for (size_t k = 0; k < extras; ++k) {
      PlanUsage copy = plans[rng.Index(base)];
      copy.plan_id += "_copy" + std::to_string(k);
      if (rng.Uniform() < 0.5) {
        // Strictly worse in one coordinate: dominated.
        copy.usage[rng.Index(dims)] += rng.LogUniform(1.0, 10.0);
      }
      plans.push_back(std::move(copy));
    }
    for (double tol : {0.0, 1e-9, 0.5}) {
      const auto want = NaiveFilterDominated(plans, tol);
      const auto got = FilterDominated(plans, tol);
      ASSERT_EQ(want.size(), got.size()) << "tol=" << tol;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].plan_id, got[i].plan_id);
        EXPECT_EQ(want[i].usage, got[i].usage);
      }
    }
  }
}

TEST(PlanMatrixTest, ValidatedRejectsNonFiniteUsageWithTypedStatus) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<PlanUsage> good = {{"a", UsageVector{1.0, 2.0}},
                                       {"b", UsageVector{2.0, 1.0}}};
  const Result<PlanMatrix> ok = PlanMatrix::Validated(good);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->rows(), 2u);
  EXPECT_EQ(ok->dims(), 2u);

  // Garbage usage vectors — a faulty oracle reply or a degenerate fit —
  // must surface as InvalidArgument naming the plan, not as a CHECK abort.
  const std::vector<PlanUsage> with_nan = {{"a", UsageVector{1.0, 2.0}},
                                           {"bad", UsageVector{kNan, 1.0}}};
  const Result<PlanMatrix> nan_result = PlanMatrix::Validated(with_nan);
  ASSERT_FALSE(nan_result.ok());
  EXPECT_EQ(nan_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan_result.status().message().find("bad"), std::string::npos);

  const std::vector<PlanUsage> with_inf = {{"c", UsageVector{kInf, 1.0}}};
  EXPECT_EQ(PlanMatrix::Validated(with_inf).status().code(),
            StatusCode::kInvalidArgument);

  const std::vector<PlanUsage> ragged = {{"a", UsageVector{1.0, 2.0}},
                                         {"short", UsageVector{1.0}}};
  EXPECT_EQ(PlanMatrix::Validated(ragged).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DominancePrescreenTest, EdgeCases) {
  EXPECT_TRUE(FilterDominated({}, 0.0).empty());
  const std::vector<PlanUsage> one = {{"solo", UsageVector{1.0, 2.0}}};
  const auto out = FilterDominated(one, 0.0);
  ASSERT_EQ(out.size(), size_t{1});
  EXPECT_EQ(out[0].plan_id, "solo");
}

}  // namespace
}  // namespace costsense::core
