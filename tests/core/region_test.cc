// Tests for regions of influence and candidate-optimality (paper
// Sections 4.4-4.5) decided by linear programming.
#include "core/region_of_influence.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/relative_cost.h"

namespace costsense::core {
namespace {

std::vector<PlanUsage> ThreePlans() {
  // Pareto frontier in 2-D: each is optimal somewhere.
  return {{"a", UsageVector{4.0, 1.0}},
          {"b", UsageVector{2.0, 2.0}},
          {"c", UsageVector{1.0, 4.0}}};
}

TEST(RegionTest, EveryFrontierPlanIsCandidate) {
  const auto plans = ThreePlans();
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  for (size_t i = 0; i < plans.size(); ++i) {
    std::vector<PlanUsage> rivals;
    for (size_t j = 0; j < plans.size(); ++j) {
      if (j != i) rivals.push_back(plans[j]);
    }
    const Result<CandidacyResult> r =
        FindRegionWitness(plans[i].usage, rivals, box);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->candidate) << plans[i].plan_id;
    EXPECT_GT(r->margin, 0.0) << plans[i].plan_id;
    // The witness must actually make the plan optimal.
    EXPECT_LE(TotalCost(plans[i].usage, r->witness),
              TotalCost(rivals[0].usage, r->witness) + 1e-9);
    EXPECT_TRUE(box.Contains(r->witness, 1e-9));
  }
}

TEST(RegionTest, DominatedPlanIsNotCandidate) {
  const auto plans = ThreePlans();
  const UsageVector dominated{4.0, 4.0};  // dominated by b=(2,2)
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 1000.0);
  const Result<CandidacyResult> r = FindRegionWitness(dominated, plans, box);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->candidate);
}

TEST(RegionTest, NarrowBoxExcludesExtremePlan) {
  // Plan "a" = (4,1) only wins when c2/c1 is large; with a tight box around
  // equal costs, "b" = (2,2) wins everywhere.
  const auto plans = ThreePlans();
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 1.05);
  std::vector<PlanUsage> rivals = {plans[1], plans[2]};
  const Result<CandidacyResult> r =
      FindRegionWitness(plans[0].usage, rivals, box);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->candidate);
}

TEST(RegionTest, TieOnlyPlanHasZeroMargin) {
  // Identical usage vectors: candidate via ties, but margin 0... identical
  // vectors are skipped, so candidacy holds trivially with margin free to
  // reach the cap. Use a plan that ties only on the box boundary instead.
  const std::vector<PlanUsage> rivals = {{"b", UsageVector{2.0, 2.0}}};
  // a = (4, 1): a.C <= b.C  iff  4c1 + c2 <= 2c1 + 2c2  iff  2c1 <= c2.
  // Box [1,2]^2: only point c=(1,2) satisfies it, with equality.
  const Box box(CostVector{1.0, 1.0}, CostVector{2.0, 2.0});
  const Result<CandidacyResult> r =
      FindRegionWitness(UsageVector{4.0, 1.0}, rivals, box);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->candidate);
  EXPECT_NEAR(r->margin, 0.0, 1e-9);
}

TEST(RegionTest, InRegionOfInfluenceMatchesOptimality) {
  const auto plans = ThreePlans();
  Rng rng(3);
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  for (int t = 0; t < 200; ++t) {
    const CostVector c = box.SampleLogUniform(rng);
    const size_t best = OptimalPlanIndex(plans, c);
    EXPECT_TRUE(InRegionOfInfluence(plans, best, c));
    for (size_t j = 0; j < plans.size(); ++j) {
      if (InRegionOfInfluence(plans, j, c)) {
        // Any member claims only if it matches the best cost.
        EXPECT_NEAR(TotalCost(plans[j].usage, c),
                    TotalCost(plans[best].usage, c),
                    1e-9 * TotalCost(plans[best].usage, c));
      }
    }
  }
}

TEST(RegionTest, RegionsAreConvex) {
  // Paper Observation 3: if a plan is optimal at C1 and C2, it is optimal
  // at every convex combination.
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const size_t n = 2 + rng.Index(4);
    std::vector<PlanUsage> plans;
    for (int p = 0; p < 6; ++p) {
      UsageVector u(n);
      for (size_t i = 0; i < n; ++i) u[i] = rng.LogUniform(0.1, 100.0);
      plans.push_back({"p" + std::to_string(p), std::move(u)});
    }
    CostVector base(n);
    for (size_t i = 0; i < n; ++i) base[i] = rng.LogUniform(0.01, 10.0);
    const Box box = Box::MultiplicativeBand(base, 50.0);
    const CostVector c1 = box.SampleLogUniform(rng);
    const CostVector c2 = box.SampleLogUniform(rng);
    const size_t b1 = OptimalPlanIndex(plans, c1);
    if (b1 != OptimalPlanIndex(plans, c2)) continue;
    for (double beta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const CostVector mid = c1 * beta + c2 * (1.0 - beta);
      EXPECT_TRUE(InRegionOfInfluence(plans, b1, mid, 1e-9));
    }
  }
}

TEST(RegionTest, DimensionMismatchRejected) {
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  EXPECT_FALSE(FindRegionWitness(UsageVector{1.0}, {}, box).ok());
}

}  // namespace
}  // namespace costsense::core
