#include "core/risk.h"

#include <gtest/gtest.h>

#include "core/worst_case.h"

namespace costsense::core {
namespace {

TEST(RiskTest, AlwaysOptimalPlanHasFlatProfile) {
  // A dominating plan is optimal everywhere: GTC identically 1.
  const std::vector<PlanUsage> plans = {{"good", UsageVector{1.0, 1.0}},
                                        {"bad", UsageVector{2.0, 2.0}}};
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  Rng rng(1);
  const auto profile = ComputeRiskProfile(plans[0].usage, plans, box, rng);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->mean_gtc, 1.0);
  EXPECT_DOUBLE_EQ(profile->max_seen, 1.0);
  EXPECT_DOUBLE_EQ(profile->prob_suboptimal, 0.0);
}

TEST(RiskTest, ComplementaryPairRisksGrowWithDelta) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 0.0}},
                                        {"b", UsageVector{0.0, 1.0}}};
  Rng rng(2);
  double prev_p90 = 0.0;
  for (double delta : {2.0, 10.0, 100.0}) {
    const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, delta);
    Rng local(42);
    const auto profile =
        ComputeRiskProfile(plans[0].usage, plans, box, local, 4000);
    ASSERT_TRUE(profile.ok());
    EXPECT_GT(profile->p90, prev_p90);
    prev_p90 = profile->p90;
    // Symmetric setup: plan a loses whenever c1 > c2, half the time.
    EXPECT_NEAR(profile->prob_suboptimal, 0.5, 0.05);
  }
}

TEST(RiskTest, QuantilesOrderedAndBoundedByWorstCase) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{5.0, 1.0, 0.0}},
                                        {"b", UsageVector{1.0, 5.0, 1.0}},
                                        {"c", UsageVector{2.0, 2.0, 2.0}}};
  const Box box =
      Box::MultiplicativeBand(CostVector{1.0, 2.0, 0.5}, 50.0);
  Rng rng(3);
  const auto profile =
      ComputeRiskProfile(plans[0].usage, plans, box, rng, 3000);
  ASSERT_TRUE(profile.ok());
  EXPECT_LE(profile->p50, profile->p90);
  EXPECT_LE(profile->p90, profile->p99);
  EXPECT_LE(profile->p99, profile->max_seen);
  EXPECT_GE(profile->mean_gtc, 1.0);
  // The exact worst case upper-bounds every sample.
  const auto wc = WorstCaseOverPlansByLp(plans[0].usage, plans, box);
  ASSERT_TRUE(wc.ok());
  EXPECT_LE(profile->max_seen, wc->gtc * (1 + 1e-9));
  // And Monte Carlo over a 3-dim box should get reasonably close to it.
  EXPECT_GT(profile->max_seen, 0.2 * wc->gtc);
}

TEST(RiskTest, InvalidInputsRejected) {
  const Box box = Box::MultiplicativeBand(CostVector{1.0}, 10.0);
  Rng rng(4);
  EXPECT_FALSE(ComputeRiskProfile(UsageVector{1.0}, {}, box, rng).ok());
  EXPECT_FALSE(ComputeRiskProfile(UsageVector{1.0, 2.0},
                                  {{"a", UsageVector{1.0}}}, box, rng)
                   .ok());
  EXPECT_FALSE(ComputeRiskProfile(UsageVector{1.0},
                                  {{"a", UsageVector{1.0}}}, box, rng, 0)
                   .ok());
}

TEST(RiskTest, DeterministicGivenSeed) {
  const std::vector<PlanUsage> plans = {{"a", UsageVector{3.0, 1.0}},
                                        {"b", UsageVector{1.0, 3.0}}};
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 20.0);
  Rng rng1(9), rng2(9);
  const auto p1 = ComputeRiskProfile(plans[0].usage, plans, box, rng1, 500);
  const auto p2 = ComputeRiskProfile(plans[0].usage, plans, box, rng2, 500);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_DOUBLE_EQ(p1->mean_gtc, p2->mean_gtc);
  EXPECT_DOUBLE_EQ(p1->p99, p2->p99);
}

}  // namespace
}  // namespace costsense::core
