#include "core/robust.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/relative_cost.h"
#include "core/worst_case.h"

namespace costsense::core {
namespace {

TEST(RobustTest, BalancedPlanBeatsComplementaryExtremes) {
  // Two fully complementary plans risk delta^2 each; a balanced middle
  // plan caps the damage at a constant.
  const std::vector<PlanUsage> plans = {
      {"extreme_a", UsageVector{1.0, 0.0}},
      {"extreme_b", UsageVector{0.0, 1.0}},
      {"balanced", UsageVector{0.75, 0.75}},
  };
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  const Result<RobustChoice> choice = ChooseRobustPlan(plans, box);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->plan_index, 2u);
  // Each extreme risks exactly delta^2 = 1e4 against the other; the
  // balanced plan's exposure is 0.75 * (delta^2 + 1) ~ 7500 — better,
  // though still quadratic (with fully complementary rivals no plan can
  // earn a constant guarantee; cf. Theorem 1).
  EXPECT_NEAR(choice->per_plan_worst_gtc[0], 1e4, 1.0);
  EXPECT_NEAR(choice->per_plan_worst_gtc[1], 1e4, 1.0);
  EXPECT_NEAR(choice->worst_case_gtc, 0.75 * (1e4 + 1.0), 1.0);
}

TEST(RobustTest, SinglePlanIsTriviallyRobust) {
  const std::vector<PlanUsage> plans = {{"only", UsageVector{1.0, 2.0}}};
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  const Result<RobustChoice> choice = ChooseRobustPlan(plans, box);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->plan_index, 0u);
  EXPECT_DOUBLE_EQ(choice->worst_case_gtc, 1.0);
}

TEST(RobustTest, EmptySetRejected) {
  const Box box = Box::MultiplicativeBand(CostVector{1.0}, 10.0);
  EXPECT_FALSE(ChooseRobustPlan({}, box).ok());
}

TEST(RobustTest, GuaranteeNeverWorseThanEstimateOptimal) {
  // Property: the robust choice's worst case is <= the worst case of the
  // plan that is optimal at the box center (the estimate-optimal plan).
  Rng rng(77);
  for (int t = 0; t < 30; ++t) {
    const size_t n = 2 + rng.Index(4);
    std::vector<PlanUsage> plans;
    for (int p = 0; p < 6; ++p) {
      UsageVector u(n);
      for (size_t i = 0; i < n; ++i) {
        u[i] = rng.Uniform() < 0.25 ? 0.0 : rng.LogUniform(1.0, 1e4);
      }
      if (u.Sum() == 0.0) u[0] = 1.0;
      plans.push_back({"p" + std::to_string(p), std::move(u)});
    }
    CostVector base(n);
    for (size_t i = 0; i < n; ++i) base[i] = rng.LogUniform(0.01, 10.0);
    const Box box = Box::MultiplicativeBand(base, rng.LogUniform(2.0, 100.0));

    const Result<RobustChoice> choice = ChooseRobustPlan(plans, box);
    ASSERT_TRUE(choice.ok());
    const size_t est = OptimalPlanIndex(plans, box.Center());
    EXPECT_LE(choice->worst_case_gtc,
              choice->per_plan_worst_gtc[est] * (1 + 1e-9));
    // And the reported landscape is consistent with direct evaluation.
    const auto direct =
        WorstCaseOverPlansByLp(plans[est].usage, plans, box);
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(choice->per_plan_worst_gtc[est], direct->gtc,
                1e-9 * direct->gtc);
  }
}

TEST(RobustTest, PaperExampleOneRobustGuaranteeIsDelta) {
  // For Example 1's symmetric complementary pair, each plan's worst case
  // is delta^2; any mixture is unavailable (only these two plans exist),
  // so the guarantee is delta^2 — choosing either is equally robust.
  const double delta = 10.0;
  const std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 0.0}},
                                        {"b", UsageVector{0.0, 1.0}}};
  const Box box = Box::MultiplicativeBand(CostVector{1.0, 1.0}, delta);
  const Result<RobustChoice> choice = ChooseRobustPlan(plans, box);
  ASSERT_TRUE(choice.ok());
  EXPECT_NEAR(choice->worst_case_gtc, delta * delta, 1e-6);
}

}  // namespace
}  // namespace costsense::core
