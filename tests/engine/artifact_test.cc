// Tests of the artifact sinks. The TextRenderer's stdout contract is
// proven byte-exact by the golden harness (ctest -L golden); here we pin
// the structured JSON sidecar, escaping, the Finish() file protocol, and
// the config-driven sink selection.
#include "engine/artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace costsense::engine {
namespace {

exp::FigureSeries SampleSeries() {
  exp::FigureSeries s;
  s.query_name = "Q19";
  s.num_candidate_plans = 4;
  s.constant_bound = 3.5;
  s.has_complementary_plans = true;
  s.points = {{2, 1.0, "p0"}, {1000, 2.5, "p\"quoted\""}};
  return s;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(EscapeJsonTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(EscapeJson("plain"), "plain");
  EXPECT_EQ(EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJson("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(EscapeJson(std::string("a\x01""b")), "a\\u0001b");
}

TEST(JsonWriterTest, FigureSeriesKeepFullFidelity) {
  JsonWriter writer("/nonexistent/never-touched.jsonl");
  writer.WriteFigure("Figure 6", {SampleSeries()});
  const std::string& line = writer.buffered();
  EXPECT_NE(line.find("\"artifact\":\"figure\""), std::string::npos);
  EXPECT_NE(line.find("\"title\":\"Figure 6\""), std::string::npos);
  EXPECT_NE(line.find("\"query\":\"Q19\""), std::string::npos);
  EXPECT_NE(line.find("\"candidate_plans\":4"), std::string::npos);
  EXPECT_NE(line.find("\"constant_bound\":3.5"), std::string::npos);
  EXPECT_NE(line.find("\"complementary\":true"), std::string::npos);
  EXPECT_NE(line.find("\"delta\":1000"), std::string::npos);
  EXPECT_NE(line.find("\"gtc\":2.5"), std::string::npos);
  EXPECT_NE(line.find("\"worst_rival\":\"p\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_EQ(line.back(), '\n');  // one object per line
}

TEST(JsonWriterTest, NonFiniteBoundsStayParseable) {
  exp::FigureSeries s = SampleSeries();
  s.constant_bound = std::numeric_limits<double>::infinity();
  JsonWriter writer("/nonexistent/never-touched.jsonl");
  writer.WriteFigure("t", {s});
  // JSON has no literal Infinity; the sidecar encodes it as a string.
  EXPECT_NE(writer.buffered().find("\"constant_bound\":\"inf\""),
            std::string::npos);
}

TEST(JsonWriterTest, TextBlocksAndMetricsAreTagged) {
  JsonWriter writer("/nonexistent/never-touched.jsonl");
  writer.WriteTextBlock("row 1\nrow 2\n");
  runtime::RuntimeMetrics metrics;
  metrics.threads = 3;
  writer.WriteRunMetrics("fig6", metrics, {{"queries", 6.0}});
  const std::string& buffered = writer.buffered();
  EXPECT_NE(buffered.find("\"artifact\":\"text\""), std::string::npos);
  EXPECT_NE(buffered.find("row 1\\nrow 2\\n"), std::string::npos);
  EXPECT_NE(buffered.find("\"artifact\":\"metrics\""), std::string::npos);
  EXPECT_NE(buffered.find("fig6"), std::string::npos);
}

TEST(JsonWriterTest, FinishAppendsAndClearsTheBuffer) {
  const std::string path = testing::TempDir() + "artifact_test_sidecar.jsonl";
  std::remove(path.c_str());

  JsonWriter writer(path);
  writer.WriteTextBlock("first");
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.buffered().empty());
  // Idempotent: a second Finish with nothing buffered writes nothing.
  ASSERT_TRUE(writer.Finish().ok());
  const std::string once = ReadFile(path);
  EXPECT_NE(once.find("first"), std::string::npos);

  // Append mode: a later run accumulates instead of truncating.
  JsonWriter second(path);
  second.WriteTextBlock("second");
  ASSERT_TRUE(second.Finish().ok());
  const std::string both = ReadFile(path);
  EXPECT_NE(both.find("first"), std::string::npos);
  EXPECT_NE(both.find("second"), std::string::npos);

  std::remove(path.c_str());
}

TEST(JsonWriterTest, EveryChainCarriesTheSameSidecarBytes) {
  // The chain knob picks the stages, never the content: the buffered
  // chain's file is byte-identical to the plain one, and the compressed
  // chain's file decodes back to exactly those bytes.
  const std::string base = testing::TempDir() + "artifact_test_chain_";
  const std::string plain_path = base + "plain.jsonl";
  const std::string buffered_path = base + "buffered.jsonl";
  const std::string compressed_path = base + "compressed.jsonl.z";
  for (const std::string& p : {plain_path, buffered_path, compressed_path}) {
    std::remove(p.c_str());
  }
  const auto emit = [](JsonWriter& writer) {
    writer.WriteFigure("Figure 5", {SampleSeries()});
    writer.WriteTextBlock("row 1\nrow 2\n");
    runtime::RuntimeMetrics metrics;
    metrics.threads = 3;
    writer.WriteRunMetrics("fig5", metrics, {{"queries", 1.0}});
  };
  JsonWriter plain(plain_path, ArtifactChain::kPlain);
  emit(plain);
  ASSERT_TRUE(plain.Finish().ok());
  JsonWriter buffered(buffered_path, ArtifactChain::kBuffered);
  emit(buffered);
  ASSERT_TRUE(buffered.Finish().ok());
  JsonWriter compressed(compressed_path, ArtifactChain::kCompressed);
  emit(compressed);
  ASSERT_TRUE(compressed.Finish().ok());

  const std::string plain_bytes = ReadFile(plain_path);
  ASSERT_FALSE(plain_bytes.empty());
  EXPECT_EQ(ReadFile(buffered_path), plain_bytes);
  const std::string compressed_bytes = ReadFile(compressed_path);
  EXPECT_NE(compressed_bytes, plain_bytes);
  EXPECT_EQ(compressed_bytes.substr(0, 4), "CSKB");
  const Result<std::string> decoded =
      runtime::sink::DecompressBlocks(compressed_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, plain_bytes);

  for (const std::string& p : {plain_path, buffered_path, compressed_path}) {
    std::remove(p.c_str());
  }
}

TEST(JsonWriterTest, CompressedSidecarAccumulatesAcrossRuns) {
  // Append mode holds for the compressed chain too: each run appends its
  // own block stream and the concatenation decodes as one stream.
  const std::string path = testing::TempDir() + "artifact_test_accum.jsonl.z";
  std::remove(path.c_str());
  {
    JsonWriter writer(path, ArtifactChain::kCompressed);
    writer.WriteTextBlock("first");
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    JsonWriter writer(path, ArtifactChain::kCompressed);
    writer.WriteTextBlock("second");
    ASSERT_TRUE(writer.Finish().ok());
  }
  const Result<std::string> decoded =
      runtime::sink::DecompressBlocks(ReadFile(path));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const size_t first = decoded->find("first");
  const size_t second = decoded->find("second");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  std::remove(path.c_str());
}

TEST(JsonWriterTest, UnwritablePathIsATypedError) {
  JsonWriter writer("/nonexistent-dir/sidecar.jsonl");
  writer.WriteTextBlock("x");
  const Status st = writer.Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sidecar"), std::string::npos);
}

TEST(MakeArtifactWriterTest, SidecarOnlyWhenConfigured) {
  const std::string path = testing::TempDir() + "artifact_test_config.jsonl";
  std::remove(path.c_str());

  // Default config: text only; Finish touches no file.
  EngineConfig plain;
  ASSERT_TRUE(MakeArtifactWriter(plain)->Finish().ok());
  EXPECT_TRUE(ReadFile(path).empty());

  // With artifact_json_path set, the same WriteTextBlock lands in the
  // sidecar too (stdout side is covered by the golden harness).
  EngineConfig with_sidecar;
  with_sidecar.artifact_json_path = path;
  auto writer = MakeArtifactWriter(with_sidecar);
  writer->WriteTextBlock("census row\n");
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_NE(ReadFile(path).find("census row"), std::string::npos);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace costsense::engine
