// Tests of the typed run configuration. EngineConfig::FromEnv is the one
// sanctioned environment reader (lint rule R5), so everything here drives
// the injectable lookup overload — no setenv, no process-global state.
#include "engine/config.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace costsense::engine {
namespace {

/// Env lookup backed by a map; absent keys read as unset.
EngineConfig::EnvLookup MapLookup(
    const std::map<std::string, std::string>& env) {
  return [&env](const char* name) -> const char* {
    const auto it = env.find(name);
    return it == env.end() ? nullptr : it->second.c_str();
  };
}

TEST(EngineConfigTest, EmptyEnvironmentYieldsDefaults) {
  const std::map<std::string, std::string> env;
  const Result<EngineConfig> config = EngineConfig::FromEnv(MapLookup(env));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->threads, 0u);  // 0 = hardware concurrency
  EXPECT_EQ(config->kernel, core::SweepKernel::kIncremental);
  EXPECT_FALSE(config->quick);
  EXPECT_TRUE(config->bench_json_path.empty());
  EXPECT_TRUE(config->artifact_json_path.empty());
  EXPECT_EQ(config->artifact_chain, ArtifactChain::kPlain);
  EXPECT_EQ(config->cache.shards, runtime::OracleCacheOptions{}.shards);
  EXPECT_EQ(config->cache.max_entries,
            runtime::OracleCacheOptions{}.max_entries);
  EXPECT_EQ(config->fault_rate, 0.0);
  EXPECT_EQ(config->max_retries, 5u);
}

TEST(EngineConfigTest, ParsesEveryKnobFromEnv) {
  const std::map<std::string, std::string> env = {
      {"COSTSENSE_THREADS", "3"},
      {"COSTSENSE_KERNEL", "scalar"},
      {"COSTSENSE_QUICK", "1"},
      {"COSTSENSE_BENCH_JSON", "/tmp/bench.jsonl"},
      {"COSTSENSE_ARTIFACT_JSON", "/tmp/artifacts.jsonl"},
      {"COSTSENSE_ARTIFACT_CHAIN", "compressed"},
      {"COSTSENSE_CACHE_ENTRIES", "1024"},
      {"COSTSENSE_CACHE_SHARDS", "4"},
      {"COSTSENSE_FAULT_RATE", "0.25"},
      {"COSTSENSE_MAX_RETRIES", "7"},
  };
  const Result<EngineConfig> config = EngineConfig::FromEnv(MapLookup(env));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->threads, 3u);
  EXPECT_EQ(config->kernel, core::SweepKernel::kScalar);
  EXPECT_TRUE(config->quick);
  EXPECT_EQ(config->bench_json_path, "/tmp/bench.jsonl");
  EXPECT_EQ(config->artifact_json_path, "/tmp/artifacts.jsonl");
  EXPECT_EQ(config->artifact_chain, ArtifactChain::kCompressed);
  EXPECT_EQ(config->cache.max_entries, 1024u);
  EXPECT_EQ(config->cache.shards, 4u);
  EXPECT_EQ(config->fault_rate, 0.25);
  EXPECT_EQ(config->max_retries, 7u);
}

TEST(EngineConfigTest, QuickKeepsItsDocumentedEnvSemantics) {
  // Any set, non-empty value other than "0" turns quick mode on; "" and
  // "0" mean off. Never a parse error.
  for (const auto& [value, expected] :
       std::map<std::string, bool>{
           {"", false}, {"0", false}, {"1", true}, {"yes", true}}) {
    const std::map<std::string, std::string> env = {
        {"COSTSENSE_QUICK", value}};
    const Result<EngineConfig> config = EngineConfig::FromEnv(MapLookup(env));
    ASSERT_TRUE(config.ok()) << "COSTSENSE_QUICK=" << value;
    EXPECT_EQ(config->quick, expected) << "COSTSENSE_QUICK=" << value;
  }
}

TEST(EngineConfigTest, MalformedValuesAreTypedErrorsNamingTheVariable) {
  const std::map<std::string, std::string> bad = {
      {"COSTSENSE_THREADS", "banana"},
      {"COSTSENSE_KERNEL", "vectorized"},
      {"COSTSENSE_ARTIFACT_CHAIN", "zip"},
      {"COSTSENSE_CACHE_ENTRIES", "0"},
      {"COSTSENSE_CACHE_SHARDS", "-2"},
      {"COSTSENSE_FAULT_RATE", "1.5"},
      {"COSTSENSE_MAX_RETRIES", "2.5"},
  };
  for (const auto& [name, value] : bad) {
    const std::map<std::string, std::string> env = {{name, value}};
    const Result<EngineConfig> config = EngineConfig::FromEnv(MapLookup(env));
    ASSERT_FALSE(config.ok()) << name << "=" << value;
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
    // The error must name the offending variable and echo the bad text, so
    // a refused bench run is diagnosable from the one-line message.
    EXPECT_NE(config.status().message().find(name), std::string::npos)
        << config.status().ToString();
    EXPECT_NE(config.status().message().find(value), std::string::npos)
        << config.status().ToString();
  }
}

TEST(EngineConfigTest, OverridesWinOverEnvironment) {
  const std::map<std::string, std::string> env = {
      {"COSTSENSE_THREADS", "2"}, {"COSTSENSE_KERNEL", "incremental"}};
  Result<EngineConfig> config = EngineConfig::FromEnv(MapLookup(env));
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->ApplyOverride("threads=5").ok());
  EXPECT_TRUE(config->ApplyOverride("kernel=scalar").ok());
  EXPECT_EQ(config->threads, 5u);
  EXPECT_EQ(config->kernel, core::SweepKernel::kScalar);
}

TEST(EngineConfigTest, OverrideErrorsAreTyped) {
  EngineConfig config;
  const Status unknown = config.ApplyOverride("bogus=1");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("bogus"), std::string::npos);

  const Status no_eq = config.ApplyOverride("threads");
  EXPECT_EQ(no_eq.code(), StatusCode::kInvalidArgument);

  const Status bad_value = config.ApplyOverride("threads=lots");
  EXPECT_EQ(bad_value.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_value.message().find("threads"), std::string::npos);
}

TEST(EngineConfigTest, IsOverrideRecognizesOnlyKnobKeys) {
  // Every documented knob key is recognized...
  for (const auto& [key, value] : EngineConfig().KnobTable()) {
    EXPECT_TRUE(EngineConfig::IsOverride(key + "=" + value)) << key;
  }
  // ...and everything else passes through to the wrapped tool untouched
  // (google-benchmark flags, bare words, unknown keys).
  EXPECT_FALSE(EngineConfig::IsOverride("--benchmark_filter=BM_Sweep"));
  EXPECT_FALSE(EngineConfig::IsOverride("threads"));
  EXPECT_FALSE(EngineConfig::IsOverride("bogus=1"));
}

void ExpectSameConfig(const EngineConfig& a, const EngineConfig& b) {
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.quick, b.quick);
  EXPECT_EQ(a.bench_json_path, b.bench_json_path);
  EXPECT_EQ(a.artifact_json_path, b.artifact_json_path);
  EXPECT_EQ(a.artifact_chain, b.artifact_chain);
  EXPECT_EQ(a.cache.max_entries, b.cache.max_entries);
  EXPECT_EQ(a.cache.shards, b.cache.shards);
  EXPECT_EQ(a.fault_rate, b.fault_rate);
  EXPECT_EQ(a.max_retries, b.max_retries);
}

TEST(EngineConfigTest, KnobTableRoundTripsEveryKnob) {
  // Feeding KnobTable() rows back through ApplyOverride reproduces the
  // config exactly — the property that keeps the table, the env parsers
  // and the override parsers from drifting apart.
  EngineConfig original;
  original.threads = 6;
  original.kernel = core::SweepKernel::kScalar;
  original.quick = true;
  original.bench_json_path = "/tmp/b.jsonl";
  original.artifact_json_path = "/tmp/a.jsonl";
  original.artifact_chain = ArtifactChain::kCompressed;
  original.cache.max_entries = 512;
  original.cache.shards = 2;
  original.fault_rate = 0.125;  // exact in binary, round-trips through %g
  original.max_retries = 9;

  EngineConfig simd = original;
  simd.kernel = core::SweepKernel::kSimd;
  simd.artifact_chain = ArtifactChain::kBuffered;

  for (const EngineConfig& seed : {original, simd, EngineConfig()}) {
    EngineConfig rebuilt;
    for (const auto& [key, value] : seed.KnobTable()) {
      const Status st = rebuilt.ApplyOverride(key + "=" + value);
      EXPECT_TRUE(st.ok()) << key << "=" << value << ": " << st.ToString();
    }
    ExpectSameConfig(rebuilt, seed);
  }
}

}  // namespace
}  // namespace costsense::engine
