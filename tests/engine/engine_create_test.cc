// Failure-path tests of Engine::Create, isolated in their own binary: the
// happy-path suites must never observe the global thread pool in the
// states these tests deliberately force (the pool is built once per
// process, so poisoning it is irreversible within a binary).
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/config.h"
#include "runtime/thread_pool.h"

namespace costsense::engine {
namespace {

/// An EnvLookup backed by a map, so no test touches the real process
/// environment (and lint rule R5 stays confined to config.cc).
EngineConfig::EnvLookup MapEnv(std::map<std::string, std::string> vars) {
  return [vars = std::move(vars)](const char* name) -> const char* {
    const auto it = vars.find(name);
    return it == vars.end() ? nullptr : it->second.c_str();
  };
}

TEST(EngineCreateTest, PoolAlreadyBuiltAtRequestedSizeSucceeds) {
  // Force the global pool into existence, then create an engine asking
  // for exactly that size: the config can take effect, so this succeeds.
  const size_t built = runtime::ThreadPool::Global().num_threads();
  EngineConfig config;
  config.threads = built;
  const Result<Engine> engine = Engine::Create(config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->config().threads, built);
  EXPECT_EQ(&engine->pool(), &runtime::ThreadPool::Global());
}

TEST(EngineCreateTest, PoolBuiltAtDifferentSizeIsFailedPrecondition) {
  // The pool exists (forced above / by the sibling test); asking for a
  // different size must refuse loudly rather than run mis-sized.
  const size_t built = runtime::ThreadPool::Global().num_threads();
  EngineConfig config;
  config.threads = built + 1;
  const Result<Engine> engine = Engine::Create(config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
  // The message names both sizes so the operator can fix the invocation.
  EXPECT_NE(engine.status().message().find(std::to_string(built)),
            std::string::npos)
      << engine.status().ToString();

  // threads=0 ("use the default") is always reconcilable or rejected
  // deterministically; either way Create must not crash, and a success
  // leaves the built size unchanged.
  EngineConfig relaxed;
  relaxed.threads = 0;
  const Result<Engine> maybe = Engine::Create(relaxed);
  if (maybe.ok()) {
    EXPECT_EQ(runtime::ThreadPool::Global().num_threads(), built);
  } else {
    EXPECT_EQ(maybe.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EngineCreateTest, MalformedEnvironmentIsInvalidArgument) {
  // Every malformed COSTSENSE_* value is a typed kInvalidArgument naming
  // the variable — never a silent fallback that runs misconfigured.
  const struct {
    const char* var;
    const char* value;
  } kCases[] = {
      {"COSTSENSE_THREADS", "banana"},
      {"COSTSENSE_THREADS", "-2"},
      {"COSTSENSE_KERNEL", "quantum"},
      {"COSTSENSE_KERNEL", "avx512"},
      {"COSTSENSE_CACHE_ENTRIES", "0"},
      {"COSTSENSE_CACHE_SHARDS", "zero"},
      {"COSTSENSE_FAULT_RATE", "1.5"},
      {"COSTSENSE_FAULT_RATE", "nan"},
      {"COSTSENSE_MAX_RETRIES", "many"},
      {"COSTSENSE_SERVE_INFLIGHT", "0"},
      {"COSTSENSE_SERVE_QUEUE", "-1"},
      {"COSTSENSE_SERVE_DEADLINE_MS", "soon"},
  };
  for (const auto& c : kCases) {
    const Result<EngineConfig> config =
        EngineConfig::FromEnv(MapEnv({{c.var, c.value}}));
    ASSERT_FALSE(config.ok()) << c.var << "=" << c.value;
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument)
        << c.var << "=" << c.value;
    EXPECT_NE(config.status().message().find(c.var), std::string::npos)
        << "error must name the variable: " << config.status().ToString();
  }
}

TEST(EngineCreateTest, WellFormedEnvironmentReachesTheEngine) {
  const size_t built = runtime::ThreadPool::Global().num_threads();
  const Result<EngineConfig> config = EngineConfig::FromEnv(MapEnv({
      {"COSTSENSE_THREADS", std::to_string(built)},
      {"COSTSENSE_KERNEL", "scalar"},
      {"COSTSENSE_SERVE_INFLIGHT", "2"},
      {"COSTSENSE_SERVE_QUEUE", "0"},
      {"COSTSENSE_SERVE_DEADLINE_MS", "250"},
      {"COSTSENSE_SERVE_SOCKET", "/tmp/alt.sock"},
  }));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->serve_inflight, 2u);
  EXPECT_EQ(config->serve_queue, 0u);
  EXPECT_EQ(config->serve_deadline_ms, 250u);
  EXPECT_EQ(config->serve_socket, "/tmp/alt.sock");
  const Result<Engine> engine = Engine::Create(*config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->config().kernel, core::SweepKernel::kScalar);
}

TEST(EngineCreateTest, SimdKernelParsesAndReachesTheEngine) {
  // "simd" is a valid kernel name on every host; hosts without AVX2
  // resolve it to the incremental path at sweep time (EffectiveSweepKernel),
  // not at config-parse or engine-construction time.
  const size_t built = runtime::ThreadPool::Global().num_threads();
  const Result<EngineConfig> config = EngineConfig::FromEnv(MapEnv({
      {"COSTSENSE_THREADS", std::to_string(built)},
      {"COSTSENSE_KERNEL", "simd"},
  }));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->kernel, core::SweepKernel::kSimd);
  const Result<Engine> engine = Engine::Create(*config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->config().kernel, core::SweepKernel::kSimd);
}

}  // namespace
}  // namespace costsense::engine
