// Tests of the oracle-stack builder: which tiers get built, and the one
// ordering property the stack exists to encode — faults are injected
// *above* the cache, so retries re-enter the injector but never cost an
// extra base-optimizer call, and the cache only ever holds clean replies.
#include "runtime/oracle_stack.h"

#include <gtest/gtest.h>

#include <vector>

#include "engine/config.h"
#include "tests/core/fake_oracle.h"

namespace costsense::runtime {
namespace {

std::vector<core::PlanUsage> TwoPlans() {
  return {{"scan", core::UsageVector{10.0, 1.0}},
          {"index", core::UsageVector{1.0, 10.0}}};
}

TEST(OracleStackTest, DefaultBuildIsCacheOnly) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  OracleStack stack = OracleStackBuilder().Build(base);
  EXPECT_EQ(stack.resilient(), nullptr);
  EXPECT_EQ(stack.injector(), nullptr);
  EXPECT_FALSE(stack.telemetry().resilient);

  const core::CostVector probe{1.0, 2.0};
  const core::OracleResult first = stack.cache().Optimize(probe);
  const core::OracleResult second = stack.cache().Optimize(probe);
  EXPECT_EQ(first.plan_id, second.plan_id);
  EXPECT_EQ(base.calls(), 1u);  // second probe served from the cache

  const StackTelemetry telemetry = stack.telemetry();
  EXPECT_EQ(telemetry.cache.misses, 1u);
  EXPECT_EQ(telemetry.cache.hits, 1u);
  EXPECT_EQ(telemetry.resilience.calls, 0u);
  EXPECT_EQ(telemetry.faults.faults, 0u);
}

TEST(OracleStackTest, WithCacheSizingIsApplied) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  OracleCacheOptions options;
  options.shards = 1;
  options.max_entries = 2;
  OracleStack stack = OracleStackBuilder().WithCache(options).Build(base);
  // Three distinct probes through a 2-entry cache must evict.
  for (double x : {1.0, 2.0, 3.0}) {
    (void)stack.cache().Optimize(core::CostVector{x, 1.0});
  }
  const StackTelemetry telemetry = stack.telemetry();
  EXPECT_EQ(telemetry.cache.misses, 3u);
  EXPECT_GE(telemetry.cache.evictions, 1u);
}

TEST(OracleStackTest, FaultsInjectAboveTheCacheSoRetriesAreFree) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);

  resilience::FaultInjectionOptions faults;
  faults.fault_rate = 1.0;  // every key starts a burst
  faults.max_burst = 2;
  faults.weight_transient = 1.0;
  resilience::ResilientOracleOptions retry;
  retry.max_retries = 5;  // budget > burst: recovery is guaranteed

  OracleStack stack =
      OracleStackBuilder().WithResilience(faults, retry).Build(base);
  ASSERT_NE(stack.resilient(), nullptr);
  ASSERT_NE(stack.injector(), nullptr);
  EXPECT_TRUE(stack.telemetry().resilient);

  const core::CostVector probe{1.0, 2.0};
  const Result<core::OracleResult> reply =
      stack.resilient()->TryOptimize(probe);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  StackTelemetry telemetry = stack.telemetry();
  // The burst consumed two faulting attempts, then the clean attempt fell
  // through the injector onto the (cold) cache exactly once.
  EXPECT_EQ(telemetry.faults.faults, 2u);
  EXPECT_EQ(telemetry.resilience.calls, 1u);
  EXPECT_EQ(telemetry.resilience.attempts, 3u);
  EXPECT_EQ(telemetry.resilience.retries, 2u);
  EXPECT_EQ(telemetry.resilience.failures, 0u);
  EXPECT_EQ(telemetry.cache.misses, 1u);
  EXPECT_EQ(base.calls(), 1u);  // faults never reached the base optimizer

  // Same key again: the burst is spent, the cache is warm — no new fault,
  // no new base call.
  const Result<core::OracleResult> again =
      stack.resilient()->TryOptimize(probe);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->plan_id, reply->plan_id);
  telemetry = stack.telemetry();
  EXPECT_EQ(telemetry.faults.faults, 2u);
  EXPECT_EQ(telemetry.cache.hits, 1u);
  EXPECT_EQ(base.calls(), 1u);
}

TEST(OracleStackTest, ExhaustedRetryBudgetSurfacesTypedFailure) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  resilience::FaultInjectionOptions faults;
  faults.fault_rate = 1.0;
  faults.max_burst = 3;
  resilience::ResilientOracleOptions retry;
  retry.max_retries = 1;  // 2 attempts < burst of 3: the call must fail

  OracleStack stack =
      OracleStackBuilder().WithResilience(faults, retry).Build(base);
  const Result<core::OracleResult> reply =
      stack.resilient()->TryOptimize(core::CostVector{1.0, 2.0});
  EXPECT_FALSE(reply.ok());
  const StackTelemetry telemetry = stack.telemetry();
  EXPECT_EQ(telemetry.resilience.failures, 1u);
  EXPECT_EQ(base.calls(), 0u);  // the fault tier absorbed every attempt
}

TEST(OracleStackTest, MakeBuilderGatesResilienceOnFaultRate) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);

  engine::EngineConfig plain;
  OracleStack no_faults = engine::MakeOracleStackBuilder(plain).Build(base);
  EXPECT_EQ(no_faults.resilient(), nullptr);

  engine::EngineConfig faulty;
  faulty.fault_rate = 0.5;
  faulty.max_retries = 4;
  faulty.cache.shards = 2;
  faulty.cache.max_entries = 64;
  OracleStack with_faults =
      engine::MakeOracleStackBuilder(faulty).Build(base);
  EXPECT_NE(with_faults.resilient(), nullptr);
  EXPECT_NE(with_faults.injector(), nullptr);
}

TEST(OracleStackTest, OneBuilderStampsOutIndependentStacks) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  const OracleStackBuilder builder;
  OracleStack a = builder.Build(base);
  OracleStack b = builder.Build(base);
  const core::CostVector probe{1.0, 2.0};
  (void)a.cache().Optimize(probe);
  (void)b.cache().Optimize(probe);
  // Separate per-query stacks do not share cache state.
  EXPECT_EQ(a.telemetry().cache.misses, 1u);
  EXPECT_EQ(b.telemetry().cache.misses, 1u);
  EXPECT_EQ(base.calls(), 2u);
}

}  // namespace
}  // namespace costsense::runtime
