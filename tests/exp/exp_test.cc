// Integration tests of the experiment harness: these assert the *shape*
// results the paper reports, on a subset of queries at full SF-100 scale.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/figure_runner.h"
#include "exp/report.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::exp {
namespace {

const catalog::Catalog& Cat() {
  static const catalog::Catalog* cat =
      new catalog::Catalog(tpch::MakeTpchCatalog(100.0));
  return *cat;
}

FigureRunner::Options LightOptions() {
  FigureRunner::Options o;
  o.deltas = {2, 10, 100, 1000};
  o.discovery.random_samples = 16;
  o.discovery.sampled_vertices = 32;
  o.discovery.bisection_depth = 3;
  o.discovery.completeness_rounds = 1;
  return o;
}

TEST(FigureRunnerTest, SharedDeviceCurvesAreConstantBounded) {
  // Paper Figure 5 shape: on one device there are no complementary plans
  // and worst-case GTC approaches a constant (Theorem 2 regime).
  const FigureRunner runner(Cat(), LightOptions());
  for (int qn : {1, 11, 19, 20}) {
    const query::Query q = tpch::MakeTpchQuery(Cat(), qn);
    const auto analysis =
        runner.Analyze(q, storage::LayoutPolicy::kSharedDevice);
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
    const auto series = runner.GtcSeries(*analysis);
    ASSERT_TRUE(series.ok());
    EXPECT_FALSE(series->has_complementary_plans) << q.name;
    EXPECT_TRUE(std::isfinite(series->constant_bound)) << q.name;
    for (const GtcPoint& p : series->points) {
      EXPECT_LE(p.gtc, series->constant_bound * (1 + 1e-6))
          << q.name << " at delta " << p.delta;
      EXPECT_GE(p.gtc, 1.0 - 1e-9);
    }
  }
}

TEST(FigureRunnerTest, SeparateDevicesGoQuadratic) {
  // Paper Figure 6 shape: with tables and indexes on separate devices,
  // complementary plans appear and worst-case GTC grows ~delta^2 while
  // respecting the Theorem 1 bound.
  const FigureRunner runner(Cat(), LightOptions());
  const query::Query q = tpch::MakeTpchQuery(Cat(), 19);
  const auto analysis =
      runner.Analyze(q, storage::LayoutPolicy::kPerTableAndIndex);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const auto series = runner.GtcSeries(*analysis);
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->has_complementary_plans);
  const auto& pts = series->points;
  // Quadratic regime between delta=10 and delta=1000: GTC scales by
  // ~(delta ratio)^2 once complementary rivals dominate.
  const double growth = pts[3].gtc / pts[1].gtc;  // delta 1000 vs 10
  EXPECT_GT(growth, 1e3);
  // Theorem 1: never exceeds delta^2 above the baseline GTC of 1.
  for (const GtcPoint& p : pts) {
    EXPECT_LE(p.gtc, p.delta * p.delta * (1 + 1e-6));
  }
}

TEST(FigureRunnerTest, MonotoneInDelta) {
  const FigureRunner runner(Cat(), LightOptions());
  for (auto policy : {storage::LayoutPolicy::kSharedDevice,
                      storage::LayoutPolicy::kPerTableColocated}) {
    const query::Query q = tpch::MakeTpchQuery(Cat(), 8);
    const auto analysis = runner.Analyze(q, policy);
    ASSERT_TRUE(analysis.ok());
    const auto series = runner.GtcSeries(*analysis);
    ASSERT_TRUE(series.ok());
    double prev = 1.0;
    for (const GtcPoint& p : series->points) {
      EXPECT_GE(p.gtc, prev * (1 - 1e-9));  // wider box can't shrink GTC
      prev = p.gtc;
    }
  }
}

TEST(FigureRunnerTest, ComplementarityCensusMatchesPaperShape) {
  // Paper Section 8.2: separated layout shows access-path (not table)
  // complementarity; colocated layout eliminates the access-path kind.
  const FigureRunner runner(Cat(), LightOptions());
  const query::Query q = tpch::MakeTpchQuery(Cat(), 11);

  const auto sep =
      runner.Analyze(q, storage::LayoutPolicy::kPerTableAndIndex);
  ASSERT_TRUE(sep.ok());
  const core::ComplementarityReport sep_report = runner.Complementarity(*sep);
  EXPECT_GT(sep_report.num_access_path, 0u);
  EXPECT_EQ(sep_report.num_table, 0u);

  const auto colo =
      runner.Analyze(q, storage::LayoutPolicy::kPerTableColocated);
  ASSERT_TRUE(colo.ok());
  const core::ComplementarityReport colo_report =
      runner.Complementarity(*colo);
  EXPECT_EQ(colo_report.num_access_path, 0u);
  EXPECT_EQ(colo_report.num_table, 0u);
}

TEST(FigureRunnerTest, InitialPlanIsAmongCandidates) {
  const FigureRunner runner(Cat(), LightOptions());
  const query::Query q = tpch::MakeTpchQuery(Cat(), 3);
  const auto analysis =
      runner.Analyze(q, storage::LayoutPolicy::kSharedDevice);
  ASSERT_TRUE(analysis.ok());
  bool found = false;
  for (const core::PlanUsage& p : analysis->candidate_plans) {
    if (p.plan_id == analysis->initial_plan_id) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(analysis->dims, 3u);
  EXPECT_EQ(analysis->dim_info.size(), 3u);
}

TEST(ReportTest, TablesRender) {
  FigureSeries s;
  s.query_name = "Q1";
  s.num_candidate_plans = 2;
  s.constant_bound = 3.5;
  s.points = {{2, 1.0, "x"}, {10, 2.5, "y"}};
  const std::string table = RenderFigureTable("title", {s});
  EXPECT_NE(table.find("title"), std::string::npos);
  EXPECT_NE(table.find("Q1"), std::string::npos);
  EXPECT_NE(table.find("2.5"), std::string::npos);
  const std::string csv = RenderFigureCsv({s});
  EXPECT_NE(csv.find("Q1,10,2.5,\"y\""), std::string::npos);
}

TEST(ReportTest, QuickQueryNumbersArePaperHighlights) {
  // Quick mode itself lives in engine::EngineConfig now; report only
  // exposes the highlighted query subset.
  EXPECT_EQ(QuickQueryNumbers(), (std::vector<int>{1, 8, 11, 16, 19, 20}));
}

}  // namespace
}  // namespace costsense::exp
