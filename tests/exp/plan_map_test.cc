#include "exp/plan_map.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/core/fake_oracle.h"

namespace costsense::exp {
namespace {

using core::CostVector;
using core::FakeOracle;
using core::PlanUsage;
using core::UsageVector;

TEST(PlanMapTest, RasterizesConeRegions) {
  // Three frontier plans over 2 dims: regions of influence are cones from
  // the origin (paper Figure 4), so the log-log map shows three bands
  // separated by diagonal switchover lines.
  std::vector<PlanUsage> plans = {{"lo", UsageVector{8.0, 1.0}},
                                  {"mid", UsageVector{3.0, 3.0}},
                                  {"hi", UsageVector{1.0, 8.0}}};
  FakeOracle oracle(plans, true);
  const core::Box box =
      core::Box::MultiplicativeBand(CostVector{1.0, 1.0}, 100.0);
  const auto map = ComputePlanMap(oracle, box, 0, 1, 32);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->plan_ids.size(), 3u);
  EXPECT_EQ(map->cells.size(), 32u * 32u);

  // Corners: cheap dim0 + dear dim1 => plan "lo" (heavy on dim0) wins.
  const int bottom_right = map->cell(31, 0);   // x high, y low
  const int top_left = map->cell(0, 31);       // x low, y high
  EXPECT_EQ(map->plan_ids[static_cast<size_t>(map->cell(0, 31))], "lo");
  EXPECT_EQ(map->plan_ids[static_cast<size_t>(bottom_right)], "hi");
  EXPECT_NE(bottom_right, top_left);

  // The diagonal passes through the middle region.
  std::set<int> diagonal;
  for (size_t i = 0; i < 32; ++i) diagonal.insert(map->cell(i, i));
  EXPECT_EQ(diagonal.size(), 1u);  // scale invariance: one plan on the ray
}

TEST(PlanMapTest, ScaleInvarianceAlongDiagonal) {
  // Observation 1: along any ray from the origin the optimal plan cannot
  // change. In log-log coordinates rays are 45-degree diagonals.
  std::vector<PlanUsage> plans = {{"a", UsageVector{5.0, 1.0}},
                                  {"b", UsageVector{1.0, 5.0}}};
  FakeOracle oracle(plans, true);
  const core::Box box =
      core::Box::MultiplicativeBand(CostVector{2.0, 2.0}, 1000.0);
  const auto map = ComputePlanMap(oracle, box, 0, 1, 25);
  ASSERT_TRUE(map.ok());
  for (size_t offset = 0; offset < 25; ++offset) {
    std::set<int> ray;
    for (size_t i = 0; i + offset < 25; ++i) {
      ray.insert(map->cell(i + offset, i));
    }
    EXPECT_EQ(ray.size(), 1u) << "ray offset " << offset;
  }
}

TEST(PlanMapTest, InvalidArgumentsRejected) {
  std::vector<PlanUsage> plans = {{"a", UsageVector{1.0, 2.0}}};
  FakeOracle oracle(plans, true);
  const core::Box box =
      core::Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  EXPECT_FALSE(ComputePlanMap(oracle, box, 0, 0, 8).ok());   // same dims
  EXPECT_FALSE(ComputePlanMap(oracle, box, 0, 5, 8).ok());   // out of range
  EXPECT_FALSE(ComputePlanMap(oracle, box, 0, 1, 1).ok());   // resolution
}

TEST(PlanMapTest, RenderContainsLegendAndGrid) {
  std::vector<PlanUsage> plans = {{"only", UsageVector{1.0, 1.0}}};
  FakeOracle oracle(plans, true);
  const core::Box box =
      core::Box::MultiplicativeBand(CostVector{1.0, 1.0}, 10.0);
  const auto map = ComputePlanMap(oracle, box, 0, 1, 4);
  ASSERT_TRUE(map.ok());
  const std::string text = RenderPlanMap(*map, "d_s", "d_t");
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find("A = only"), std::string::npos);
  EXPECT_NE(text.find("AAAA"), std::string::npos);
}

}  // namespace
}  // namespace costsense::exp
