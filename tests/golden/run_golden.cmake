# Golden-stdout regression check, run as `cmake -P` from ctest:
#
#   cmake -DBINARY=<figure binary> -DEXPECTED=<committed .stdout>
#         [-DKERNEL=scalar|incremental] [-DTHREADS=N]
#         [-DACTUAL_OUT=<dump path>] -P run_golden.cmake
#
# Runs the binary in quick mode under the requested kernel/thread config
# and byte-compares its stdout against the committed expectation. This is
# the executable form of the engine's central contract: figure/table
# stdout is a pure function of the experiment, identical across thread
# counts, sweep kernels and (absorbed) faults — stderr carries everything
# else. A mismatch dumps the actual bytes next to the build for diffing.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "usage: cmake -DBINARY=... -DEXPECTED=... -P run_golden.cmake")
endif()

set(ENV{COSTSENSE_QUICK} "1")
if(DEFINED KERNEL)
  set(ENV{COSTSENSE_KERNEL} "${KERNEL}")
endif()
if(DEFINED THREADS)
  set(ENV{COSTSENSE_THREADS} "${THREADS}")
endif()
# Optionally turn the structured sidecar on: it must not perturb stdout,
# and it must actually get written (checked after the run).
if(DEFINED ARTIFACT_JSON)
  get_filename_component(artifact_dir "${ARTIFACT_JSON}" DIRECTORY)
  file(MAKE_DIRECTORY "${artifact_dir}")
  file(REMOVE "${ARTIFACT_JSON}")
  set(ENV{COSTSENSE_ARTIFACT_JSON} "${ARTIFACT_JSON}")
endif()

execute_process(
  COMMAND "${BINARY}"
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${rc}:\n${stderr_text}")
endif()

if(DEFINED ARTIFACT_JSON AND NOT EXISTS "${ARTIFACT_JSON}")
  message(FATAL_ERROR "sidecar ${ARTIFACT_JSON} was not written")
endif()

file(READ "${EXPECTED}" expected)
if(actual STREQUAL expected)
  return()
endif()

if(DEFINED ACTUAL_OUT)
  file(WRITE "${ACTUAL_OUT}" "${actual}")
  message(FATAL_ERROR
    "stdout drifted from ${EXPECTED}\n"
    "actual bytes dumped to ${ACTUAL_OUT}\n"
    "if the output changed on purpose, copy the dump over the golden file")
endif()
message(FATAL_ERROR "stdout drifted from ${EXPECTED}")
